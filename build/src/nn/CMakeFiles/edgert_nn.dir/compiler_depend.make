# Empty compiler generated dependencies file for edgert_nn.
# This may be replaced when dependencies are built.
