/**
 * @file
 * EdgeWatch tests: sliding-window burn-rate math and edge-triggered
 * alert tiers, flight-recorder ring semantics, latency-inversion
 * anomaly detection, incident-dump determinism, and the end-to-end
 * serve integration — a clean scenario must fire no page alert, an
 * induced overload must page and dump an incident, and same-seed
 * runs must produce byte-identical watch reports and incidents.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "serve/server.hh"
#include "watch/anomaly.hh"
#include "watch/recorder.hh"
#include "watch/slo.hh"
#include "watch/watch.hh"

namespace edgert::watch {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream f(p);
    EXPECT_TRUE(f.good()) << "cannot read " << p;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

TEST(SlidingWindow, ForgetsOutcomesPastItsSpan)
{
    SlidingWindow w(1.0);
    w.add(0.0, true);
    w.add(0.5, false);
    EXPECT_EQ(w.total(), 2);
    EXPECT_EQ(w.bad(), 1);
    EXPECT_DOUBLE_EQ(w.badFraction(), 0.5);

    w.advanceTo(2.0); // both outcomes now older than the span
    EXPECT_EQ(w.total(), 0);
    EXPECT_DOUBLE_EQ(w.badFraction(), 0.0);
}

TEST(SloTracker, MultiWindowRejectsBlipsThenPagesAndClears)
{
    SloTracker::Config cfg; // objective 99% -> budget 0.01
    SloTracker tr("m", cfg);
    EXPECT_NEAR(tr.errorBudget(), 0.01, 1e-12);

    // A healthy baseline fills the mid/slow windows with goods.
    for (int i = 0; i < 50; i++)
        EXPECT_LT(tr.observe(i * 0.01, false).t_s, 0.0);
    EXPECT_EQ(tr.tier(), Alert::kNone);

    // A failure burst: the fast window saturates immediately, but
    // the page needs the *mid* window over threshold too — the
    // first bad outcomes must not page (blip rejection).
    int pages = 0;
    double page_t = -1.0;
    for (int i = 0; i < 20; i++) {
        Alert a = tr.observe(2.0 + i * 0.01, true);
        if (a.t_s >= 0.0 && a.tier == Alert::kPage) {
            pages++;
            page_t = a.t_s;
            EXPECT_GE(a.burn.fast, cfg.page_burn);
            EXPECT_GE(a.burn.mid, cfg.page_burn);
            EXPECT_GT(i, 0) << "paged on the first bad outcome";
        }
    }
    EXPECT_EQ(pages, 1) << "page must be edge-triggered";
    EXPECT_EQ(tr.tier(), Alert::kPage);
    EXPECT_GE(page_t, 2.0);

    // Recovery: once the bad burst leaves the mid window, the next
    // good observation clears the tier (one transition alert).
    Alert clear = tr.observe(15.0, false);
    EXPECT_GE(clear.t_s, 0.0);
    EXPECT_EQ(clear.tier, Alert::kNone);
    EXPECT_EQ(tr.tier(), Alert::kNone);
}

TEST(SloTracker, SustainedModerateBurnWarnsWithoutPaging)
{
    SloTracker::Config cfg;
    SloTracker tr("m", cfg);
    int warns = 0, pages = 0;
    // 1 bad in 11 => fraction ~0.091: burn 9.1 is over the warn
    // threshold (6) but under the page threshold (14.4).
    for (int i = 0; i < 440; i++) {
        Alert a = tr.observe(i * 0.01, i % 11 == 10);
        if (a.t_s < 0.0)
            continue;
        if (a.tier == Alert::kWarn)
            warns++;
        if (a.tier == Alert::kPage)
            pages++;
    }
    EXPECT_GE(warns, 1);
    EXPECT_EQ(pages, 0);
    EXPECT_EQ(tr.tier(), Alert::kWarn);
}

TEST(SloTrackerSet, KeysTrackIndependentlyAndRollupAccumulates)
{
    SloTracker::Config cfg;
    SloTrackerSet set(cfg);
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(set.find("cam0"), nullptr);
    EXPECT_EQ(set.rollup().pages, 0);
    EXPECT_DOUBLE_EQ(set.rollup().first_page_s, -1.0);

    // cam1 burns hard (every outcome bad) while cam0 stays clean:
    // only cam1's tracker must transition, and the rollup must show
    // exactly its page.
    for (int i = 0; i < 200; i++) {
        set.observe("cam0", i * 0.01, false);
        set.observe("cam1", i * 0.01, true);
    }
    ASSERT_EQ(set.size(), 2u);
    ASSERT_NE(set.find("cam0"), nullptr);
    ASSERT_NE(set.find("cam1"), nullptr);
    EXPECT_EQ(set.find("cam0")->tier(), Alert::kNone);
    EXPECT_EQ(set.find("cam1")->tier(), Alert::kPage);
    EXPECT_EQ(set.find("cam0")->bad(), 0);
    EXPECT_EQ(set.find("cam1")->bad(), 200);
    EXPECT_EQ(set.rollup().pages, 1);
    EXPECT_EQ(set.rollup().clears, 0);
    EXPECT_GE(set.rollup().first_page_s, 0.0);

    // Keys are sorted; tier filtering picks out the burning camera.
    EXPECT_EQ(set.keys(),
              (std::vector<std::string>{"cam0", "cam1"}));
    EXPECT_EQ(set.keysAtTier(Alert::kPage),
              std::vector<std::string>{"cam1"});
    EXPECT_EQ(set.keysAtTier(Alert::kNone),
              std::vector<std::string>{"cam0"});

    // cam1 recovers: the clear lands in the rollup, pages stay 1.
    for (int i = 200; i < 20000; i++)
        set.observe("cam1", i * 0.01, false);
    EXPECT_EQ(set.find("cam1")->tier(), Alert::kNone);
    EXPECT_EQ(set.rollup().pages, 1);
    EXPECT_EQ(set.rollup().clears, 1);
}

TEST(SloTrackerSet, SharedConfigAppliesToEveryKey)
{
    // A permissive objective (50%) halves no one: 30% bad never
    // burns past 1 on any key, so no tracker leaves kNone.
    SloTracker::Config cfg;
    cfg.objective_pct = 50.0;
    SloTrackerSet set(cfg);
    for (int i = 0; i < 300; i++) {
        set.observe("a", i * 0.01, i % 10 < 3);
        set.observe("b", i * 0.01, i % 10 < 3);
    }
    EXPECT_EQ(set.find("a")->tier(), Alert::kNone);
    EXPECT_EQ(set.find("b")->tier(), Alert::kNone);
    EXPECT_EQ(set.rollup().pages, 0);
    EXPECT_EQ(set.rollup().warns, 0);
    EXPECT_TRUE(set.keysAtTier(Alert::kPage).empty());
}

TEST(FlightRecorder, RingKeepsTheLastDepthEventsOldestFirst)
{
    FlightRecorder rec(4);
    for (int i = 0; i < 10; i++) {
        FlightEvent e;
        e.t_s = i;
        e.id = i;
        rec.record(e);
    }
    EXPECT_EQ(rec.totalRecorded(), 10);
    std::vector<FlightEvent> got = rec.snapshot();
    ASSERT_EQ(got.size(), 4u);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(got[static_cast<std::size_t>(i)].id, 6 + i);
}

TEST(FlightRecorder, DepthOneKeepsOnlyTheNewestEvent)
{
    FlightRecorder rec(1);
    for (int i = 0; i < 3; i++) {
        FlightEvent e;
        e.id = i;
        rec.record(e);
    }
    std::vector<FlightEvent> got = rec.snapshot();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].id, 2);
}

TEST(AnomalyDetector, FlagsCapabilityOrderInversionOnce)
{
    AnomalyDetector::Config cfg;
    // Device 1 has twice the capability score of device 0 but will
    // observe twice the latency: the paper's F4/F5 inversion.
    AnomalyDetector det(cfg, {"weak", "strong"}, {10.0, 20.0});
    int findings = 0;
    for (int i = 0; i < 2 * cfg.min_samples; i++) {
        det.observe(i * 0.01, "m", 0, 5.0);
        auto f = det.observe(i * 0.01, "m", 1, 10.0);
        if (f) {
            findings++;
            EXPECT_EQ(f->fast_device, 0);
            EXPECT_EQ(f->slow_device, 1);
            EXPECT_EQ(f->fast_device_name, "weak");
            EXPECT_EQ(f->slow_device_name, "strong");
            EXPECT_DOUBLE_EQ(f->fast_median_ms, 5.0);
            EXPECT_DOUBLE_EQ(f->slow_median_ms, 10.0);
            EXPECT_NEAR(f->margin_pct, 100.0, 1e-9);
        }
    }
    EXPECT_EQ(findings, 1) << "one finding per (model, pair)";
    EXPECT_EQ(det.findings().size(), 1u);
}

TEST(AnomalyDetector, ExpectedOrderingAndSmallSamplesStaySilent)
{
    AnomalyDetector::Config cfg;
    AnomalyDetector det(cfg, {"weak", "strong"}, {10.0, 20.0});
    // Strong device faster, as capability predicts: no finding.
    for (int i = 0; i < 2 * cfg.min_samples; i++) {
        EXPECT_FALSE(det.observe(i * 0.01, "m", 0, 10.0));
        EXPECT_FALSE(det.observe(i * 0.01, "m", 1, 5.0));
    }
    // Inverted but under min_samples: still no finding.
    for (int i = 0; i < cfg.min_samples - 1; i++) {
        det.observe(i * 0.01, "n", 0, 5.0);
        EXPECT_FALSE(det.observe(i * 0.01, "n", 1, 10.0));
    }
}

/** Synthetic overload feed: pages, dumps an incident, and the whole
 *  artifact set is byte-deterministic. */
void
driveWatch(EdgeWatch &ew)
{
    std::int64_t id = 0;
    for (int i = 0; i < 50; i++) {
        ew.onAdmit(i * 0.01, 0, id);
        RequestTrace rt;
        rt.id = id++;
        rt.model = 0;
        rt.device = 0;
        rt.arrival_s = i * 0.01;
        rt.dispatch_s = rt.arrival_s + 0.001;
        rt.begin_s = rt.dispatch_s + 0.0005;
        rt.upload_done_s = rt.begin_s + 0.0005;
        rt.compute_done_s = rt.upload_done_s + 0.002;
        rt.done_s = rt.compute_done_s + 0.0005;
        ew.onComplete(rt);
    }
    for (int i = 0; i < 30; i++)
        ew.onShed(1.0 + i * 0.01, 0, id++);
    ew.onSwapBegin(2.0, 0, 7);
    ew.onSwapRollback(2.1, 0, "latency_regression");
    ew.finish(3.0);
}

TEST(EdgeWatch, OverloadPagesAndDumpsByteIdenticalIncidents)
{
    WatchConfig cfg;
    cfg.enabled = true;
    EdgeWatch a(cfg, {"m"}, {10.0}, {"d0"}, {1.0});
    EdgeWatch b(cfg, {"m"}, {10.0}, {"d0"}, {1.0});
    driveWatch(a);
    driveWatch(b);

    EXPECT_GE(a.summary().page_alerts, 1);
    EXPECT_GE(a.summary().first_page_s, 0.0);
    // One incident for the page, one for the swap rollback.
    ASSERT_GE(a.incidents().size(), 2u);
    EXPECT_EQ(a.incidents()[0].first, "000-page_alert.json");

    EXPECT_EQ(a.reportJson(), b.reportJson());
    ASSERT_EQ(a.incidents().size(), b.incidents().size());
    for (std::size_t i = 0; i < a.incidents().size(); i++) {
        EXPECT_EQ(a.incidents()[i].first, b.incidents()[i].first);
        EXPECT_EQ(a.incidents()[i].second,
                  b.incidents()[i].second);
    }

    std::string err;
    EXPECT_TRUE(jsonValid(a.reportJson(), &err)) << err;
    for (const auto &[name, content] : a.incidents())
        EXPECT_TRUE(jsonValid(content, &err)) << name << ": " << err;
}

TEST(EdgeWatch, IncidentCapCountsWithoutDumping)
{
    WatchConfig cfg;
    cfg.enabled = true;
    cfg.max_incidents = 2;
    EdgeWatch ew(cfg, {"m"}, {10.0}, {"d0"}, {1.0});
    for (int i = 0; i < 5; i++)
        ew.onSwapRollback(i * 0.1, 0, "load_failure");
    ew.finish(1.0);
    EXPECT_EQ(ew.incidents().size(), 2u);
    EXPECT_EQ(ew.summary().incidents, 5);
}

// ---------------------------------------------------------------
// Serve-path integration.
// ---------------------------------------------------------------

serve::ServeConfig
watchedConfig(double qps, double slo_ms)
{
    serve::ServeConfig cfg;
    serve::ModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = slo_ms;
    mc.arrivals.qps = qps;
    mc.batching.max_batch = 4;
    cfg.models.push_back(mc);
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = 0.5;
    cfg.watch.enabled = true;
    return cfg;
}

TEST(ServeWatch, CleanScenarioFiresNoPageAlert)
{
    serve::ServeReport rep = serve::runServer(watchedConfig(150, 50));
    ASSERT_TRUE(rep.watch.enabled);
    EXPECT_EQ(rep.watch.page_alerts, 0);
    EXPECT_EQ(rep.watch.incidents, 0);
    EXPECT_LT(rep.watch.first_page_s, 0.0);
    EXPECT_EQ(rep.watch.admitted + rep.watch.shed,
              rep.models.front().offered);
    EXPECT_EQ(rep.watch.completed, rep.models.front().completed);

    // Stage attribution covers the full latency: the stage means
    // must sum to the end-to-end mean.
    ASSERT_EQ(rep.watch.models.size(), 1u);
    const ModelWatchStats &m = rep.watch.models.front();
    EXPECT_GT(m.compute_mean_ms, 0.0);
    EXPECT_NEAR(m.queue_mean_ms + m.dispatch_wait_mean_ms +
                    m.upload_mean_ms + m.compute_mean_ms +
                    m.download_mean_ms,
                m.total_mean_ms, 1e-6);

    // The slowest retained request is the report's max latency.
    ASSERT_FALSE(rep.watch.slow_requests.empty());
    EXPECT_NEAR(rep.watch.slow_requests.front().totalMs(),
                rep.models.front().max_ms, 1e-6);
}

TEST(ServeWatch, InducedOverloadPagesWithFlightRecorderDump)
{
    serve::ServeReport rep = serve::runServer(watchedConfig(900, 10));
    ASSERT_TRUE(rep.watch.enabled);
    EXPECT_GE(rep.watch.page_alerts, 1);
    EXPECT_GE(rep.watch.first_page_s, 0.0);
    EXPECT_LE(rep.watch.first_page_s, 0.5);
    EXPECT_GE(rep.watch.incidents, 1);
    EXPECT_GT(rep.watch.shed, 0);
}

TEST(ServeWatch, WatchTogglePreservesReportBytes)
{
    serve::ServeConfig cfg = watchedConfig(300, 20);
    serve::ServeConfig off_cfg = cfg;
    off_cfg.watch.enabled = false;

    std::string on = serve::runServer(cfg).toJson();
    std::string off = serve::runServer(off_cfg).toJson();

    EXPECT_EQ(off.find("\"watch\""), std::string::npos);
    std::size_t pos = on.find(",\n  \"watch\": {");
    ASSERT_NE(pos, std::string::npos);
    // Everything before the trailing watch key must be the exact
    // watch-off document (minus its closing "\n}\n").
    ASSERT_GT(off.size(), 3u);
    EXPECT_EQ(on.substr(0, pos), off.substr(0, off.size() - 3));

    std::string err;
    EXPECT_TRUE(jsonValid(on, &err)) << err;
}

TEST(ServeWatch, SameSeedRunsProduceByteIdenticalArtifacts)
{
    fs::path dir1 =
        fs::path(::testing::TempDir()) / "edgewatch_run1";
    fs::path dir2 =
        fs::path(::testing::TempDir()) / "edgewatch_run2";
    fs::create_directories(dir1);
    fs::create_directories(dir2);

    auto run = [](const fs::path &dir) {
        serve::ServeConfig cfg = watchedConfig(900, 10);
        cfg.watch.out_path = (dir / "watch.json").string();
        cfg.watch.incident_prefix = (dir / "watch.").string();
        return serve::runServer(cfg);
    };
    serve::ServeReport r1 = run(dir1);
    serve::ServeReport r2 = run(dir2);
    EXPECT_EQ(r1.toJson(), r2.toJson());

    std::string w1 = slurp(dir1 / "watch.json");
    std::string w2 = slurp(dir2 / "watch.json");
    EXPECT_EQ(w1, w2);
    std::string err;
    EXPECT_TRUE(jsonValid(w1, &err)) << err;

    std::vector<fs::path> incidents;
    for (const auto &ent : fs::directory_iterator(dir1))
        if (ent.path().filename() != "watch.json")
            incidents.push_back(ent.path());
    ASSERT_FALSE(incidents.empty());
    std::sort(incidents.begin(), incidents.end());
    for (const fs::path &p : incidents) {
        std::string c1 = slurp(p);
        std::string c2 = slurp(dir2 / p.filename());
        EXPECT_EQ(c1, c2) << p.filename();
        EXPECT_TRUE(jsonValid(c1, &err))
            << p.filename() << ": " << err;
    }

    fs::remove_all(dir1);
    fs::remove_all(dir2);
}

} // namespace
} // namespace edgert::watch
