/**
 * @file
 * Round-trip tests for the frozen-model serialization format.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hh"
#include "nn/model_zoo.hh"
#include "nn/serialize.hh"

namespace edgert::nn {
namespace {

void
expectStructurallyEqual(const Network &a, const Network &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.layers().size(), b.layers().size());
    for (std::size_t i = 0; i < a.layers().size(); i++) {
        const Layer &la = a.layers()[i];
        const Layer &lb = b.layers()[i];
        EXPECT_EQ(la.name, lb.name);
        EXPECT_EQ(la.kind, lb.kind);
        EXPECT_EQ(la.inputs, lb.inputs);
        EXPECT_EQ(a.tensor(la.output).dims, b.tensor(lb.output).dims);
    }
    EXPECT_EQ(a.inputs(), b.inputs());
    EXPECT_EQ(a.outputs(), b.outputs());
    EXPECT_EQ(a.paramCount(), b.paramCount());
    EXPECT_EQ(a.convCount(), b.convCount());
    EXPECT_EQ(a.maxPoolCount(), b.maxPoolCount());
    EXPECT_EQ(a.modelSizeBytes(), b.modelSizeBytes());
}

class SerializeZooTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(SerializeZooTest, RoundTrip)
{
    Network net = buildZooModel(GetParam());
    auto bytes = serializeNetwork(net);
    Network back = deserializeNetwork(bytes).value();
    expectStructurallyEqual(net, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SerializeZooTest,
    ::testing::Values("alexnet", "resnet-18", "tiny-yolov3", "mtcnn",
                      "googlenet", "fcn-resnet18-cityscapes"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Serialize, RejectsGarbage)
{
    // Model files are untrusted input: garbage is a recoverable
    // Status, not a throw or an abort.
    std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
    auto r = deserializeNetwork(junk);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
}

TEST(Serialize, FileRoundTrip)
{
    Network net = buildZooModel("mtcnn");
    std::string path = ::testing::TempDir() + "/mtcnn.ertn";
    saveNetwork(net, path);
    Network back = loadNetwork(path).value();
    expectStructurallyEqual(net, back);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsAnError)
{
    auto r = loadNetwork("/nonexistent/path/model.ertn");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Serialize, SerializationIsDeterministic)
{
    Network a = buildZooModel("resnet-18");
    Network b = buildZooModel("resnet-18");
    EXPECT_EQ(serializeNetwork(a), serializeNetwork(b));
}

} // namespace
} // namespace edgert::nn
