/**
 * @file
 * Tests for the Graphviz and Chrome-trace exporters, and the
 * edgertexec-adjacent file workflows.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/dot.hh"
#include "nn/model_zoo.hh"
#include "obs/trace.hh"
#include "profile/trace_export.hh"
#include "runtime/context.hh"

namespace edgert {
namespace {

TEST(Dot, ContainsAllLayersAndEdges)
{
    nn::Network net = nn::buildZooModel("tiny-yolov3");
    std::string dot = nn::toDot(net);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    for (const auto &l : net.layers())
        EXPECT_NE(dot.find("\"" + l.name + "\""), std::string::npos)
            << l.name;
    // Shape annotation on an edge.
    EXPECT_NE(dot.find("1x3x416x416"), std::string::npos);
    // Balanced braces.
    EXPECT_EQ(dot.back(), '\n');
    EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(Dot, OptionsToggleAnnotations)
{
    nn::Network net = nn::buildZooModel("mtcnn");
    nn::DotOptions bare;
    bare.show_shapes = false;
    bare.show_params = false;
    std::string dot = nn::toDot(net, bare);
    EXPECT_EQ(dot.find("params"), std::string::npos);
    EXPECT_EQ(dot.find("1x3x12x12"), std::string::npos);
}

TEST(ChromeTrace, ValidJsonShape)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("mtcnn");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);

    gpusim::GpuSim sim(nx);
    runtime::ExecutionContext ctx(e, sim, 0);
    ctx.enqueueWeightUpload();
    ctx.enqueueInference(true, true);
    sim.run();

    std::ostringstream oss;
    profile::writeChromeTrace(oss, sim.trace(), "xavier-nx");
    std::string json = oss.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"memcpy_h2d\""),
              std::string::npos);
    EXPECT_NE(json.find("xavier-nx"), std::string::npos);
    // Every op except markers appears.
    std::size_t events = 0;
    for (std::size_t p = json.find("\"ph\":\"X\"");
         p != std::string::npos;
         p = json.find("\"ph\":\"X\"", p + 1))
        events++;
    std::size_t expected = 0;
    for (const auto &rec : sim.trace())
        if (rec.kind != gpusim::OpKind::kMarker)
            expected++;
    EXPECT_EQ(events, expected);
}

TEST(ChromeTrace, NamesStreamTracksViaMetadata)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::GpuSim sim(nx);
    gpusim::KernelDesc k;
    k.name = "probe";
    k.grid_blocks = 6;
    k.flops = 1'000'000;
    k.efficiency = 0.5;
    int s2 = sim.createStream();
    sim.launchKernel(0, k);
    sim.launchKernel(s2, k);
    sim.run();

    std::ostringstream oss;
    profile::writeChromeTrace(oss, sim.trace(), "meta");
    std::string json = oss.str();

    std::string error;
    EXPECT_TRUE(jsonValid(json, &error)) << error;
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("stream 0 (meta)"), std::string::npos);
    EXPECT_NE(json.find("stream " + std::to_string(s2) + " (meta)"),
              std::string::npos);
}

TEST(ChromeTrace, MergedTraceIsValidJsonWithBothClocks)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    gpusim::KernelDesc k;
    k.name = "dev_op";
    k.grid_blocks = 6;
    k.flops = 1'000'000;
    k.efficiency = 0.5;
    sim.launchKernel(0, k);
    sim.run();

    // Hand-built host spans: a hostile name must not break the
    // document, and host timestamps get rebased to zero.
    obs::SpanRecord s1;
    s1.name = "outer \"quoted\"\nname";
    s1.thread = 0;
    s1.start_ns = 5'000'000;
    s1.end_ns = 6'000'000;
    s1.args.push_back({"key", "val\\ue"});
    obs::SpanRecord s2;
    s2.name = "inner";
    s2.thread = 1;
    s2.start_ns = 5'200'000;
    s2.end_ns = 5'400'000;

    std::ostringstream oss;
    profile::writeMergedChromeTrace(oss, {s1, s2}, sim.trace(),
                                    "merged");
    std::string json = oss.str();

    std::string error;
    ASSERT_TRUE(jsonValid(json, &error)) << error;
    EXPECT_NE(json.find("host thread 0"), std::string::npos);
    EXPECT_NE(json.find("host thread 1"), std::string::npos);
    EXPECT_NE(json.find("dev_op"), std::string::npos);
    // Earliest host span is rebased to ts 0.
    EXPECT_NE(json.find("\"ts\":0,"), std::string::npos);
}

TEST(ChromeTrace, SavesToFile)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    gpusim::KernelDesc k;
    k.name = "probe";
    k.grid_blocks = 6;
    k.flops = 1'000'000;
    k.efficiency = 0.5;
    sim.launchKernel(0, k);
    sim.run();

    std::string path = ::testing::TempDir() + "/trace.json";
    profile::saveChromeTrace(path, sim.trace(), "test");
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::string contents((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("probe"), std::string::npos);
    std::remove(path.c_str());

    EXPECT_THROW(profile::saveChromeTrace("/no/such/dir/x.json",
                                          sim.trace(), "t"),
                 FatalError);
}

} // namespace
} // namespace edgert
