/**
 * @file
 * End-to-end observability tests: a real build instruments itself
 * into the global MetricRegistry and Tracer, the resulting snapshot
 * is byte-reproducible under a FakeClock, and the merged
 * chrome-trace document (host spans above device tracks) is valid
 * JSON. These are the acceptance tests for the obs subsystem: they
 * exercise the registry through the builder/optimizer/gpusim/runtime
 * instrumentation seams rather than through its own API.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "profile/trace_export.hh"
#include "runtime/context.hh"
#include "serve/server.hh"

namespace edgert {
namespace {

using obs::FakeClock;
using obs::MetricRegistry;
using obs::ScopedClock;
using obs::Tracer;

/**
 * One cold + one warm build of the same model against a shared
 * timing cache, jobs=1 so no schedule-dependent pool gauges exist
 * and the FakeClock reading sequence is identical across runs.
 */
std::string
coldWarmSnapshot()
{
    MetricRegistry::global().reset();
    FakeClock fake(1'000'000, 500);
    ScopedClock scoped(&fake);

    nn::Network net = nn::buildZooModel("resnet-18");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::TimingCache cache;
    core::BuilderConfig cfg;
    cfg.build_id = 3;
    cfg.jobs = 1;
    cfg.timing_cache = &cache;

    core::Builder builder(nx, cfg);
    core::Engine cold = builder.build(net);
    core::Engine warm = builder.build(net);
    EXPECT_EQ(cold.fingerprint(), warm.fingerprint());

    return MetricRegistry::global().toJson();
}

TEST(ObsE2E, SnapshotIsValidJson)
{
    std::string snapshot = coldWarmSnapshot();
    std::string error;
    EXPECT_TRUE(jsonValid(snapshot, &error)) << error;
}

TEST(ObsE2E, BuildRecordsCacheTrafficAndPassHistograms)
{
    std::string snapshot = coldWarmSnapshot();

    MetricRegistry &reg = MetricRegistry::global();
    obs::Labels dev = {{"device", "xavier-nx"}};

    // The cold build misses the empty cache; the warm rebuild of
    // the same model hits it. Both directions must be nonzero.
    EXPECT_GT(reg.gauge("builder.timing_cache.hits", dev).value(),
              0.0);
    EXPECT_GT(reg.gauge("builder.timing_cache.misses", dev).value(),
              0.0);
    EXPECT_GT(reg.counter("builder.tactic.measured", dev).value(),
              0);
    EXPECT_GT(
        reg.counter("builder.tactic.cache_served", dev).value(), 0);

    // Per-pass optimizer histograms made it into the snapshot with
    // real samples (two builds -> two optimize() calls each).
    for (const char *pass :
         {"dead_layer_removal", "fusion", "horizontal_merge",
          "precision_assignment"}) {
        obs::Histogram h = reg.histogram("builder.pass.duration_us",
                                         {{"pass", pass}});
        EXPECT_EQ(h.count(), 2u) << pass;
        EXPECT_GT(h.sum(), 0.0) << pass;
        EXPECT_NE(snapshot.find(std::string("pass=") + pass),
                  std::string::npos);
    }
}

TEST(ObsE2E, SnapshotBytesReproducibleUnderFakeClock)
{
    // Two full cold+warm cycles, registry reset between them: same
    // build_id + FakeClock => the serialized snapshots must be
    // byte-identical, not merely equivalent.
    std::string first = coldWarmSnapshot();
    std::string second = coldWarmSnapshot();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(ObsE2E, MergedTraceHasHostSpansAndDeviceOps)
{
    MetricRegistry::global().reset();
    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    FakeClock fake(0, 1000);
    ScopedClock scoped(&fake);

    nn::Network net = nn::buildZooModel("alexnet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.build_id = 2;
    core::Engine engine = core::Builder(nx, cfg).build(net);

    gpusim::GpuSim sim(nx);
    runtime::ExecutionContext ctx(engine, sim, 0);
    ctx.enqueueWeightUpload();
    ctx.enqueueInference(true, true);
    sim.run();

    std::ostringstream os;
    profile::writeMergedChromeTrace(os, Tracer::global().spans(),
                                    sim.trace(), "obs_e2e");
    Tracer::global().setEnabled(false);
    std::string doc = os.str();

    std::string error;
    ASSERT_TRUE(jsonValid(doc, &error)) << error;

    // Host side: the build span and a tactic sweep, plus thread
    // names so the viewer labels the tracks.
    EXPECT_NE(doc.find("\"build\""), std::string::npos);
    EXPECT_NE(doc.find("\"tactic_sweep\""), std::string::npos);
    EXPECT_NE(doc.find("\"context_setup\""), std::string::npos);
    EXPECT_NE(doc.find("thread_name"), std::string::npos);
    EXPECT_NE(doc.find("host thread 0"), std::string::npos);

    // Device side: real simulated ops on the stream track.
    EXPECT_NE(doc.find("\"cat\":\"kernel\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"memcpy_h2d\""),
              std::string::npos);
    EXPECT_NE(doc.find("stream 0 (obs_e2e)"), std::string::npos);
}

TEST(ObsE2E, MergedTraceBytesReproducibleUnderFakeClock)
{
    // Same build id + FakeClock + deterministic simulator => the
    // merged trace document itself is byte-identical across runs.
    auto traceOnce = []() {
        Tracer::global().clear();
        Tracer::global().setEnabled(true);
        FakeClock fake(0, 1000);
        ScopedClock scoped(&fake);

        nn::Network net = nn::buildZooModel("alexnet");
        gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
        core::BuilderConfig cfg;
        cfg.build_id = 7;
        cfg.jobs = 1;
        core::Engine engine = core::Builder(nx, cfg).build(net);

        gpusim::GpuSim sim(nx);
        runtime::ExecutionContext ctx(engine, sim, 0);
        ctx.enqueueWeightUpload();
        ctx.enqueueInference(true, true);
        sim.run();

        std::ostringstream os;
        profile::writeMergedChromeTrace(
            os, Tracer::global().spans(), sim.trace(), "repro");
        Tracer::global().setEnabled(false);
        return os.str();
    };

    std::string first = traceOnce();
    std::string second = traceOnce();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(ObsE2E, RuntimeCountsInferencesAndUploadBytes)
{
    MetricRegistry::global().reset();
    nn::Network net = nn::buildZooModel("alexnet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.build_id = 2;
    core::Engine engine = core::Builder(nx, cfg).build(net);

    gpusim::GpuSim sim(nx);
    runtime::ExecutionContext ctx(engine, sim, 0);
    ctx.enqueueWeightUpload();
    ctx.enqueueInference(true, true);
    ctx.enqueueInference(true, true);
    sim.run();

    MetricRegistry &reg = MetricRegistry::global();
    obs::Labels model = {{"model", "alexnet"}};
    EXPECT_EQ(
        reg.counter("runtime.inference.enqueued", model).value(),
        2);
    EXPECT_GT(
        reg.counter("runtime.weight_upload.bytes", model).value(),
        0);

    // GpuSim's own instrumentation saw the launches and copies.
    obs::Labels dev = {{"device", "xavier-nx"}};
    EXPECT_GT(reg.counter("gpusim.kernel.launches", dev).value(),
              0);
    EXPECT_GT(reg.counter("gpusim.memcpy.bytes",
                          {{"device", "xavier-nx"},
                           {"dir", "h2d"}})
                  .value(),
              0);
}

TEST(ObsE2E, EveryEmittedArtifactIsRfc8259Json)
{
    // An overloaded watched serve run emits every artifact kind the
    // observability stack produces: the serve report, the watch
    // report, flight-recorder incident files, the merged
    // chrome-trace timeline and the metric-registry snapshot. Each
    // one must parse as RFC-8259 JSON — no trailing commas, bare
    // NaNs or unescaped control characters anywhere.
    namespace fs = std::filesystem;
    fs::path dir = fs::path(::testing::TempDir()) / "obs_e2e_watch";
    fs::create_directories(dir);

    MetricRegistry::global().reset();
    serve::ServeConfig cfg;
    serve::ModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = 10.0;
    mc.arrivals.qps = 900;
    mc.batching.max_batch = 4;
    cfg.models.push_back(mc);
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = 0.5;
    cfg.trace_out = (dir / "trace.json").string();
    cfg.watch.enabled = true;
    cfg.watch.out_path = (dir / "watch.json").string();
    cfg.watch.incident_prefix = (dir / "watch.").string();

    serve::ServeReport rep = serve::runServer(cfg);
    {
        std::ofstream f(dir / "report.json");
        f << rep.toJson();
    }
    MetricRegistry::global().save((dir / "metrics.json").string());

    EXPECT_GE(rep.watch.incidents, 1)
        << "overload scenario produced no incident file";

    std::vector<fs::path> files;
    for (const auto &ent : fs::directory_iterator(dir))
        files.push_back(ent.path());
    EXPECT_GE(files.size(), 5u); // report, watch, trace, metrics,
                                 // >=1 incident
    for (const fs::path &p : files) {
        std::ifstream f(p);
        std::ostringstream os;
        os << f.rdbuf();
        std::string error;
        EXPECT_TRUE(jsonValid(os.str(), &error))
            << p.filename() << ": " << error;
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace edgert
