/**
 * @file
 * EdgeDeploy lifecycle tests: the EngineRepository's versioned
 * lineage (put / promote / quarantine / rollback), the DriftGate's
 * verdicts, and the RebuildWorker's bootstrap-then-gate pipeline —
 * including the untrusted-input contract (corrupt manifests and
 * tampered blobs come back as Status errors, never crashes).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/builder.hh"
#include "deploy/drift_gate.hh"
#include "deploy/rebuild_worker.hh"
#include "deploy/repository.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace edgert {
namespace {

namespace fs = std::filesystem;

/** Swallow log output while exercising error paths. */
class QuietLogs
{
  public:
    QuietLogs() { setLogSink([](LogLevel, const std::string &) {}); }
    ~QuietLogs() { setLogSink({}); }
};

core::Engine
buildEngine(std::uint64_t seed, const std::string &model = "alexnet")
{
    nn::Network net = nn::buildZooModel(model);
    core::BuilderConfig cfg;
    cfg.build_id = seed;
    return core::Builder(gpusim::DeviceSpec::xavierNX(), cfg)
        .build(net);
}

/** A scratch repository rooted in a per-test temp directory. */
class DeployRepoTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("edgert_deploy_test." +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(root_);
    }
    void TearDown() override { fs::remove_all(root_); }

    fs::path root_;
};

TEST_F(DeployRepoTest, DisplayNameIsFilesystemSafe)
{
    deploy::ModelKey key{"res/net 18", "xavier nx",
                         nn::Precision::kFp16};
    std::string name = key.displayName();
    EXPECT_EQ(name.find('/'), std::string::npos) << name;
    EXPECT_EQ(name.find(' '), std::string::npos) << name;
}

TEST_F(DeployRepoTest, ManifestRoundTrips)
{
    deploy::Manifest m;
    m.key = {"alexnet", "xavier-nx", nn::Precision::kFp16};
    m.live_version = 2;
    deploy::ManifestEntry e1;
    e1.version = 1;
    e1.state = deploy::VersionState::kRetired;
    e1.build_id = 7;
    e1.fingerprint = 0xdeadbeefcafef00dULL;
    e1.plan_bytes = 12345;
    e1.created_by = "test";
    deploy::ManifestEntry e2 = e1;
    e2.version = 2;
    e2.state = deploy::VersionState::kPromoted;
    e2.parent_version = 1;
    e2.drift_pct = 0.25;
    e2.reason = "";
    m.entries = {e1, e2};

    auto r = deploy::Manifest::deserialize(m.serialize());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->key, m.key);
    EXPECT_EQ(r->live_version, 2);
    ASSERT_EQ(r->entries.size(), 2u);
    EXPECT_EQ(r->entries[0].fingerprint, e1.fingerprint);
    EXPECT_EQ(r->entries[1].parent_version, 1);
    EXPECT_DOUBLE_EQ(r->entries[1].drift_pct, 0.25);
    EXPECT_EQ(r->entries[1].state,
              deploy::VersionState::kPromoted);
}

TEST_F(DeployRepoTest, ManifestRoundTripsEveryPrecision)
{
    // Every lineage key the precision ladder can produce — fp16,
    // int8 and mixed — must survive the manifest wire format.
    for (nn::Precision p :
         {nn::Precision::kFp32, nn::Precision::kFp16,
          nn::Precision::kInt8, nn::Precision::kMixed}) {
        deploy::Manifest m;
        m.key = {"resnet-18", "xavier-nx", p};
        m.live_version = 1;
        deploy::ManifestEntry e;
        e.version = 1;
        e.state = deploy::VersionState::kPromoted;
        e.build_id = 3;
        m.entries = {e};
        auto r = deploy::Manifest::deserialize(m.serialize());
        ASSERT_TRUE(r.ok()) << r.status().toString();
        EXPECT_EQ(r->key, m.key);
        EXPECT_EQ(r->key.precision, p);
    }
}

TEST_F(DeployRepoTest, PutAssignsVersionsAndSharesBlobs)
{
    deploy::EngineRepository repo(root_.string());
    core::Engine e = buildEngine(1);
    deploy::BuildMeta meta;
    meta.created_by = "test";

    auto v1 = repo.put(e, meta);
    ASSERT_TRUE(v1.ok()) << v1.status().toString();
    EXPECT_EQ(*v1, 1);
    // Same engine again: a new version, but the content-addressed
    // blob is shared.
    auto v2 = repo.put(e, meta);
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(*v2, 2);

    deploy::ModelKey key{e.modelName(), e.deviceName(),
                         e.precision()};
    auto m = repo.manifest(key);
    ASSERT_TRUE(m.ok());
    ASSERT_EQ(m->entries.size(), 2u);
    EXPECT_EQ(m->entries[0].fingerprint, m->entries[1].fingerprint);
    EXPECT_EQ(m->live_version, -1) << "put never auto-promotes";

    std::size_t blobs = 0;
    for (const auto &de :
         fs::directory_iterator(root_ / "blobs"))
        blobs += de.is_regular_file();
    EXPECT_EQ(blobs, 1u);
}

TEST_F(DeployRepoTest, PromoteRetireRollbackLineage)
{
    QuietLogs quiet;
    deploy::EngineRepository repo(root_.string());
    deploy::BuildMeta meta;
    meta.created_by = "test";
    core::Engine e1 = buildEngine(1), e2 = buildEngine(2);
    deploy::ModelKey key{e1.modelName(), e1.deviceName(),
                         e1.precision()};

    ASSERT_TRUE(repo.put(e1, meta).ok());
    ASSERT_TRUE(repo.put(e2, meta).ok());
    EXPECT_FALSE(repo.loadLive(key).ok())
        << "nothing promoted yet";

    ASSERT_TRUE(repo.promote(key, 1).ok());
    ASSERT_TRUE(repo.promote(key, 2).ok());
    auto m = repo.manifest(key);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->live_version, 2);
    EXPECT_EQ(m->find(1)->state, deploy::VersionState::kRetired);
    EXPECT_EQ(m->find(2)->parent_version, 1);

    // The live version cannot be quarantined in place.
    EXPECT_FALSE(repo.quarantine(key, 2, "test", 0.0).ok());

    // Rollback walks the parent lineage back to v1.
    ASSERT_TRUE(repo.rollback(key).ok());
    m = repo.manifest(key);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->live_version, 1);
    EXPECT_EQ(m->find(2)->state,
              deploy::VersionState::kRolledBack);
    EXPECT_EQ(m->find(1)->state, deploy::VersionState::kPromoted);
    auto live = repo.loadLive(key);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live->fingerprint(), e1.fingerprint());

    // v1 has no parent: a second rollback must fail cleanly.
    EXPECT_FALSE(repo.rollback(key).ok());
}

TEST_F(DeployRepoTest, LoadVersionDetectsBlobTampering)
{
    QuietLogs quiet;
    deploy::EngineRepository repo(root_.string());
    deploy::BuildMeta meta;
    meta.created_by = "test";
    core::Engine e = buildEngine(1);
    ASSERT_TRUE(repo.put(e, meta).ok());
    deploy::ModelKey key{e.modelName(), e.deviceName(),
                         e.precision()};
    ASSERT_TRUE(repo.loadVersion(key, 1).ok());

    // Flip one payload byte in the stored blob.
    std::string path = repo.blobPath(e.fingerprint());
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(20);
    char c;
    f.seekg(20);
    f.get(c);
    f.seekp(20);
    f.put(static_cast<char>(c ^ 0xff));
    f.close();

    auto r = repo.loadVersion(key, 1);
    EXPECT_FALSE(r.ok()) << "tampered blob was accepted";
}

TEST_F(DeployRepoTest, CorruptManifestIsAStatusNotACrash)
{
    QuietLogs quiet;
    deploy::EngineRepository repo(root_.string());
    deploy::BuildMeta meta;
    meta.created_by = "test";
    core::Engine e = buildEngine(1);
    ASSERT_TRUE(repo.put(e, meta).ok());
    deploy::ModelKey key{e.modelName(), e.deviceName(),
                         e.precision()};

    std::ofstream(repo.manifestPath(key), std::ios::binary)
        << "garbage";
    EXPECT_FALSE(repo.manifest(key).ok());
    EXPECT_FALSE(repo.loadLive(key).ok());
    EXPECT_FALSE(repo.promote(key, 1).ok());
    // put refuses to clobber a lineage it cannot read.
    EXPECT_FALSE(repo.put(e, meta).ok());
}

TEST(DriftGateTest, EqualFingerprintsAcceptWithoutCanary)
{
    core::Engine e = buildEngine(42);
    deploy::DriftGate gate;
    deploy::DriftVerdict v = gate.evaluate(e, e);
    EXPECT_TRUE(v.accepted);
    EXPECT_FALSE(v.canary_ran);
    EXPECT_EQ(v.disagreements, 0);
    EXPECT_DOUBLE_EQ(v.kernel_remap_pct, 0.0);
}

TEST(DriftGateTest, RebuildDriftLandsInPaperBandAndIsDeterministic)
{
    core::Engine a = buildEngine(1, "resnet-18");
    core::Engine b = buildEngine(2, "resnet-18");
    ASSERT_NE(a.fingerprint(), b.fingerprint());

    deploy::DriftGate gate;
    deploy::DriftVerdict v1 = gate.evaluate(a, b);
    EXPECT_TRUE(v1.canary_ran);
    EXPECT_GT(v1.canary_size, 0);
    // Finding 2: rebuild disagreement sits in 0.1-0.8%.
    EXPECT_GE(v1.disagreement_pct, 0.1);
    EXPECT_LE(v1.disagreement_pct, 0.8);
    // Finding 6: the kernel mapping changed too.
    EXPECT_GT(v1.kernel_remap_pct, 0.0);
    EXPECT_FALSE(v1.kernel_deltas.empty());

    deploy::DriftVerdict v2 = gate.evaluate(a, b);
    EXPECT_EQ(v1.toJson(), v2.toJson())
        << "same pair must yield byte-identical verdicts";
}

TEST(DriftGateTest, ThresholdSplitsPromoteFromQuarantine)
{
    core::Engine a = buildEngine(1, "resnet-18");
    core::Engine b = buildEngine(2, "resnet-18");

    deploy::DriftGateConfig strict;
    strict.max_disagreement_pct = 0.0;
    deploy::DriftVerdict rejected =
        deploy::DriftGate(strict).evaluate(a, b);
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.reason, "drift_exceeds_threshold");

    deploy::DriftGateConfig lax;
    lax.max_disagreement_pct = 100.0;
    EXPECT_TRUE(deploy::DriftGate(lax).evaluate(a, b).accepted);
}

TEST(DriftGateTest, IdentityMismatchesRejectWithoutCanary)
{
    core::Engine a = buildEngine(1, "alexnet");
    core::Engine b = buildEngine(1, "vgg-16");
    deploy::DriftVerdict v = deploy::DriftGate().evaluate(a, b);
    EXPECT_FALSE(v.accepted);
    EXPECT_EQ(v.reason, "model_mismatch");
    EXPECT_FALSE(v.canary_ran);
}

TEST_F(DeployRepoTest, RebuildWorkerBootstrapsThenGates)
{
    QuietLogs quiet;
    deploy::EngineRepository repo(root_.string());
    deploy::DriftGateConfig gate_cfg;
    gate_cfg.max_disagreement_pct = 0.0; // reject any drift
    deploy::RebuildWorker worker(repo, gate_cfg);

    deploy::RebuildJob job;
    job.model = "resnet-18";
    job.device = gpusim::DeviceSpec::xavierNX();
    job.build_id = 1;

    // First rebuild of an empty key: bootstrap-promoted ungated.
    auto out = worker.run({job});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].status.ok()) << out[0].status.toString();
    EXPECT_FALSE(out[0].gated);
    EXPECT_TRUE(out[0].promoted);
    EXPECT_EQ(out[0].version, 1);

    // Second rebuild at a drifting seed: gated and quarantined.
    job.build_id = 2;
    out = worker.run({job});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].gated);
    EXPECT_TRUE(out[0].quarantined);
    EXPECT_FALSE(out[0].promoted);
    EXPECT_EQ(out[0].verdict.reason, "drift_exceeds_threshold");

    deploy::ModelKey key{"resnet-18", "xavier-nx",
                         nn::Precision::kFp16};
    auto m = repo.manifest(key);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->live_version, 1) << "quarantine must not go live";
    EXPECT_EQ(m->find(2)->state,
              deploy::VersionState::kQuarantined);
    EXPECT_DOUBLE_EQ(m->find(2)->drift_pct,
                     out[0].verdict.disagreement_pct);

    // An identical rebuild of the live seed is accepted (equal
    // fingerprints short-circuit the canary).
    job.build_id = 1;
    out = worker.run({job});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].promoted);
}

} // namespace
} // namespace edgert
