/**
 * @file
 * Unit tests for software binary16 arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/half.hh"
#include "common/rng.hh"

namespace edgert {
namespace {

TEST(Half, ExactSmallIntegers)
{
    for (int i = -2048; i <= 2048; i++) {
        float f = static_cast<float>(i);
        EXPECT_EQ(roundToHalf(f), f) << "i=" << i;
    }
}

TEST(Half, ExactPowersOfTwo)
{
    for (int e = -14; e <= 15; e++) {
        float f = std::ldexp(1.0f, e);
        EXPECT_EQ(roundToHalf(f), f) << "e=" << e;
    }
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalfBits(-1.0f), 0xbc00);
    EXPECT_EQ(floatToHalfBits(2.0f), 0x4000);
    EXPECT_EQ(floatToHalfBits(0.5f), 0x3800);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bff); // max finite half
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalfBits(65536.0f), 0x7c00);
    EXPECT_EQ(floatToHalfBits(-1e10f), 0xfc00);
    EXPECT_TRUE(std::isinf(roundToHalf(1e8f)));
}

TEST(Half, UnderflowToZero)
{
    EXPECT_EQ(floatToHalfBits(1e-10f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-1e-10f), 0x8000);
}

TEST(Half, SubnormalsRepresentable)
{
    // Smallest positive subnormal half is 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(roundToHalf(tiny), tiny);
    float sub = std::ldexp(3.0f, -24);
    EXPECT_EQ(roundToHalf(sub), sub);
}

TEST(Half, NanPropagates)
{
    float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(roundToHalf(nan)));
}

TEST(Half, InfinityPreserved)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(std::isinf(roundToHalf(inf)));
    EXPECT_TRUE(std::isinf(roundToHalf(-inf)));
    EXPECT_LT(roundToHalf(-inf), 0.0f);
}

TEST(Half, RoundToNearestEven)
{
    // 2049 is exactly between 2048 and 2050 in half precision;
    // RNE picks the even mantissa (2048).
    EXPECT_EQ(roundToHalf(2049.0f), 2048.0f);
    // 2051 is between 2050 and 2052 -> 2052 (even).
    EXPECT_EQ(roundToHalf(2051.0f), 2052.0f);
}

TEST(Half, RoundTripThroughBits)
{
    Rng rng(99);
    for (int i = 0; i < 20000; i++) {
        float f = static_cast<float>(rng.gaussian(0.0, 100.0));
        float h = roundToHalf(f);
        // Idempotent: rounding an already-half value is exact.
        EXPECT_EQ(roundToHalf(h), h);
        // Error bounded by half ULP (relative 2^-11 in normal range).
        if (std::fabs(f) > 6.1e-5f && std::fabs(f) < 65504.0f) {
            EXPECT_LE(std::fabs(h - f),
                      std::fabs(f) * 0.000489f + 1e-7f);
        }
    }
}

TEST(Half, ArithmeticRoundsEachOp)
{
    // One ulp of 1.0 in half precision is 2^-10.
    Half a(1.0f), b(0.0009765625f);
    Half c = a + b;
    EXPECT_FLOAT_EQ(c.toFloat(), 1.0009765625f);
    // A half-ulp addend ties and rounds to even (back to 1.0).
    Half half_ulp(0.00048828125f);
    EXPECT_EQ((a + half_ulp).toFloat(), 1.0f);
    // A value far below the ulp leaves the sum unchanged.
    Half tiny(1e-5f);
    EXPECT_EQ((a + tiny).toFloat(), 1.0f);
}

TEST(Half, ComparisonOperators)
{
    EXPECT_TRUE(Half(1.0f) < Half(2.0f));
    EXPECT_TRUE(Half(1.0f) == Half(1.0f));
    EXPECT_FALSE(Half(2.0f) < Half(1.0f));
}

} // namespace
} // namespace edgert
