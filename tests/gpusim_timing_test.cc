/**
 * @file
 * Unit and property tests for the analytic kernel/memcpy timing
 * model: wave quantization, L2 spill, strided-access penalties, and
 * the key monotonicity property that an *identical* kernel can only
 * get slower on a bigger device through the modeled memory-system
 * mechanisms — never through the compute path.
 */

#include <gtest/gtest.h>

#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "gpusim/timing.hh"

namespace edgert::gpusim {
namespace {

KernelDesc
computeKernel(std::int64_t grid, std::int64_t flops)
{
    KernelDesc k;
    k.name = "k";
    k.grid_blocks = grid;
    k.max_blocks_per_sm = 1;
    k.flops = flops;
    k.dram_bytes = 0;
    k.tensor_core = true;
    k.efficiency = 0.5;
    return k;
}

TEST(WaveFactor, OneWhenGridFits)
{
    EXPECT_DOUBLE_EQ(waveFactor(4, 6.0), 1.0);
    EXPECT_DOUBLE_EQ(waveFactor(6, 6.0), 1.0);
}

TEST(WaveFactor, PenalizesTailWaves)
{
    // 7 blocks on 6 concurrent: 2 waves for 7/6 ideal.
    EXPECT_NEAR(waveFactor(7, 6.0), 2.0 / (7.0 / 6.0), 1e-12);
    EXPECT_GT(waveFactor(7, 6.0), 1.0);
}

TEST(WaveFactor, BoundedByTwo)
{
    for (std::int64_t g = 1; g <= 200; g++) {
        double w = waveFactor(g, 6.0);
        EXPECT_GE(w, 1.0);
        EXPECT_LT(w, 2.0 + 1e-12);
    }
}

TEST(WaveFactor, ExactMultiplesAreIdeal)
{
    EXPECT_DOUBLE_EQ(waveFactor(12, 6.0), 1.0);
    EXPECT_DOUBLE_EQ(waveFactor(24, 8.0), 1.0);
}

TEST(Timing, ComputeScalesWithClock)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k = computeKernel(600, 1'000'000'000);
    double slow = soloKernelSeconds(nx, k);
    double fast = soloKernelSeconds(nx.withClock(1.198), k);
    EXPECT_NEAR(slow / fast, 2.0, 1e-9);
}

TEST(Timing, ComputeKernelNeverSlowerWithMoreSms)
{
    // Property: for pure-compute kernels at equal clock, 8 SMs are
    // never slower than 6 (anomalies must come from the memory
    // system, not the compute model).
    DeviceSpec nx = DeviceSpec::xavierNX();
    DeviceSpec agx8 = DeviceSpec::xavierAGX().withClock(
        nx.gpu_clock_ghz);
    for (std::int64_t grid = 1; grid <= 64; grid++) {
        KernelDesc k = computeKernel(grid, 500'000'000);
        double t6 = soloKernelSeconds(nx, k);
        double t8 = soloKernelSeconds(agx8, k);
        EXPECT_LE(t8, t6 * (1.0 + 1e-9)) << "grid=" << grid;
    }
}

TEST(Timing, SmallGridCannotUseAllSms)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k2 = computeKernel(2, 100'000'000);
    KernelDesc k6 = computeKernel(6, 300'000'000);
    // 3x the work on 3x the blocks takes the same time.
    EXPECT_NEAR(soloKernelSeconds(nx, k2),
                soloKernelSeconds(nx, k6), 1e-12);
}

TEST(Timing, MemoryBoundUsesBandwidth)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k;
    k.grid_blocks = 600;
    k.flops = 1000; // negligible
    k.dram_bytes = 44'000'000;
    k.tile_kb = 1.0; // no spill
    double t = soloKernelSeconds(nx, k);
    EXPECT_NEAR(t, 44e6 / nx.effDramBps(), 1e-9);
}

TEST(Timing, L2SpillGrowsWithConcurrentFootprint)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    DeviceSpec agx = DeviceSpec::xavierAGX();
    KernelDesc k;
    k.grid_blocks = 64;
    k.max_blocks_per_sm = 2;
    k.tile_kb = 80.0;
    // NX: 12 blocks x 80KB = 960KB; AGX: 16 x 80 = 1280KB.
    double s_nx = l2SpillFactor(nx, k);
    double s_agx = l2SpillFactor(agx, k);
    EXPECT_GT(s_nx, 1.0);
    EXPECT_GT(s_agx, s_nx);
}

TEST(Timing, NoSpillWhenFootprintFits)
{
    DeviceSpec agx = DeviceSpec::xavierAGX();
    KernelDesc k;
    k.grid_blocks = 4;
    k.max_blocks_per_sm = 1;
    k.tile_kb = 64.0; // 256KB < 512KB L2
    EXPECT_DOUBLE_EQ(l2SpillFactor(agx, k), 1.0);
}

TEST(Timing, StridedAccessWastesWiderBus)
{
    DeviceSpec nx = DeviceSpec::xavierNX();   // 128-bit = 16B burst
    DeviceSpec agx = DeviceSpec::xavierAGX(); // 256-bit = 32B burst
    KernelDesc k;
    k.grid_blocks = 600;
    k.flops = 0;
    k.dram_bytes = 10'000'000;
    k.tile_kb = 1.0;
    k.strided_access = true;
    double t_nx = kernelMemSeconds(nx, k);
    double t_agx = kernelMemSeconds(agx, k);
    // NX's 16B bursts are fully used; AGX's 32B bursts are half
    // wasted by 16B strided accesses.
    EXPECT_NEAR(t_nx, 10e6 / nx.effDramBps(), 1e-9);
    EXPECT_NEAR(t_agx, 10e6 / (agx.effDramBps() * 0.5), 1e-9);
}

TEST(Timing, MemcpyHasPerTransferOverhead)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    double one = memcpySeconds(nx, 1'000'000, 1);
    double many = memcpySeconds(nx, 1'000'000, 10);
    EXPECT_NEAR(many - one,
                9 * nx.h2d_transfer_overhead_us * 1e-6, 1e-12);
}

TEST(Timing, MemcpyMonotonicInBytes)
{
    DeviceSpec agx = DeviceSpec::xavierAGX();
    double prev = 0.0;
    for (std::uint64_t b = 0; b < 10; b++) {
        double t = memcpySeconds(agx, b * 1'000'000, 1);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Timing, AgxUploadSlowerForManyTransfers)
{
    // The Table X mechanism: AGX has higher copy bandwidth but a
    // larger per-transfer driver overhead, so engines with many
    // weight buffers upload slower on AGX.
    DeviceSpec nx = DeviceSpec::xavierNX();
    DeviceSpec agx = DeviceSpec::xavierAGX();
    // inception-v4-like: 83 MB over ~150 transfers.
    EXPECT_GT(memcpySeconds(agx, 83'000'000, 150),
              memcpySeconds(nx, 83'000'000, 150));
    // alexnet-like: 118 MB over ~8 transfers -> AGX faster.
    EXPECT_LT(memcpySeconds(agx, 118'000'000, 8),
              memcpySeconds(nx, 118'000'000, 8));
}

TEST(Device, PresetsMatchTable1)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    DeviceSpec agx = DeviceSpec::xavierAGX();
    EXPECT_EQ(nx.sm_count * nx.cuda_cores_per_sm, 384);
    EXPECT_EQ(agx.sm_count * agx.cuda_cores_per_sm, 512);
    EXPECT_EQ(nx.sm_count * nx.tensor_cores_per_sm, 48);
    EXPECT_EQ(agx.sm_count * agx.tensor_cores_per_sm, 64);
    EXPECT_EQ(nx.l2_kb, 512);
    EXPECT_EQ(agx.l2_kb, 512);
    EXPECT_DOUBLE_EQ(nx.dram_gbps, 51.2);
    EXPECT_DOUBLE_EQ(agx.dram_gbps, 137.0);
    EXPECT_DOUBLE_EQ(nx.ram_gb, 8.0);
    EXPECT_DOUBLE_EQ(agx.ram_gb, 32.0);
}

TEST(Device, MaxClockUnlocksFullBandwidth)
{
    DeviceSpec agx = DeviceSpec::xavierAGX();
    EXPECT_LT(agx.profile_dram_gbps, agx.dram_gbps);
    DeviceSpec maxn = agx.atMaxClock();
    EXPECT_DOUBLE_EQ(maxn.gpu_clock_ghz, agx.max_clock_ghz);
    EXPECT_DOUBLE_EQ(maxn.profile_dram_gbps, agx.dram_gbps);
}

TEST(Device, PeakFlopsFormula)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    // 6 SMs x 8 TCs x 128 flops x clock.
    EXPECT_NEAR(nx.peakFp16Flops(),
                6.0 * 8 * 128 * 0.599e9, 1e3);
    EXPECT_NEAR(nx.peakFp32Flops(), 6.0 * 64 * 2 * 0.599e9, 1e3);
}

} // namespace
} // namespace edgert::gpusim
