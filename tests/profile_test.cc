/**
 * @file
 * Unit tests for the nvprof-style summarizer and the tegrastats
 * sampler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "profile/nvprof.hh"
#include "profile/tegrastats.hh"

namespace edgert::profile {
namespace {

gpusim::KernelDesc
kernel(const std::string &name, std::int64_t flops)
{
    gpusim::KernelDesc k;
    k.name = name;
    k.grid_blocks = 12;
    k.flops = flops;
    k.tensor_core = true;
    k.efficiency = 0.5;
    return k;
}

TEST(Nvprof, SummaryAggregatesByName)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    sim.launchKernel(0, kernel("a", 100'000'000));
    sim.launchKernel(0, kernel("a", 100'000'000));
    sim.launchKernel(0, kernel("b", 400'000'000));
    sim.memcpyH2D(0, 1'000'000, 1, "w");
    sim.run();

    auto rows = summarize(sim.trace());
    ASSERT_EQ(rows.size(), 3u);
    // Sorted by total time: b > a (two short calls) or a's pair...
    double total_pct = 0.0;
    int a_calls = 0;
    for (const auto &r : rows) {
        total_pct += r.pct_of_total;
        if (r.name == "a")
            a_calls = r.calls;
        EXPECT_LE(r.min_ms, r.avg_ms);
        EXPECT_LE(r.avg_ms, r.max_ms);
        EXPECT_NEAR(r.avg_ms * r.calls, r.total_ms, 1e-9);
    }
    EXPECT_EQ(a_calls, 2);
    EXPECT_NEAR(total_pct, 100.0, 1e-6);
}

TEST(Nvprof, SummaryIgnoresMarkersAndDelays)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    sim.recordEvent(0);
    sim.hostDelay(0, 0.001);
    sim.launchKernel(0, kernel("k", 1'000'000));
    sim.run();
    auto rows = summarize(sim.trace());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "k");
}

TEST(Nvprof, MemcpyRowsNamedLikeNvprof)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    sim.memcpyH2D(0, 1'000'000, 1, "weights");
    sim.memcpyD2H(0, 500'000, 1, "out");
    sim.run();
    auto rows = summarize(sim.trace());
    ASSERT_EQ(rows.size(), 2u);
    bool h2d = false, d2h = false;
    for (const auto &r : rows) {
        h2d |= r.name == "[CUDA memcpy HtoD]";
        d2h |= r.name == "[CUDA memcpy DtoH]";
    }
    EXPECT_TRUE(h2d);
    EXPECT_TRUE(d2h);
}

TEST(Nvprof, GpuTraceTruncates)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    for (int i = 0; i < 10; i++)
        sim.launchKernel(0, kernel("k", 1'000'000));
    sim.run();
    std::ostringstream oss;
    std::size_t truncated = printGpuTrace(oss, sim.trace(), 3);
    EXPECT_EQ(truncated, 7u);
    EXPECT_NE(oss.str().find("... 7 more rows"), std::string::npos);

    std::ostringstream full;
    EXPECT_EQ(printGpuTrace(full, sim.trace(), 64), 0u);
    EXPECT_EQ(full.str().find("more rows"), std::string::npos);
}

TEST(Nvprof, InvocationTimesInOrder)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    sim.launchKernel(0, kernel("x", 100'000'000));
    sim.launchKernel(0, kernel("y", 1'000'000));
    sim.launchKernel(0, kernel("x", 100'000'000));
    sim.run();
    auto times = invocationTimesMs(sim.trace(), "x");
    ASSERT_EQ(times.size(), 2u);
    EXPECT_GT(times[0], 0.0);
    EXPECT_TRUE(invocationTimesMs(sim.trace(), "zzz").empty());
}

TEST(Tegrastats, WindowsAreDisjoint)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierNX());
    Tegrastats stats(sim, 1024.0);

    sim.launchKernel(0, kernel("k", 500'000'000));
    sim.run();
    auto s1 = stats.sample();
    EXPECT_GT(s1.gr3d_pct, 0.0);

    // No work in the second window: utilization is zero... but the
    // window is also zero-length; enqueue an idle delay.
    sim.hostDelay(0, 0.01);
    sim.run();
    auto s2 = stats.sample();
    EXPECT_NEAR(s2.gr3d_pct, 0.0, 1e-9);
    EXPECT_EQ(stats.samples().size(), 2u);
}

TEST(Tegrastats, PrintsFormat)
{
    gpusim::GpuSim sim(gpusim::DeviceSpec::xavierAGX());
    Tegrastats stats(sim, 4096.0);
    sim.launchKernel(0, kernel("k", 100'000'000));
    sim.run();
    stats.sample();
    std::ostringstream oss;
    stats.print(oss);
    EXPECT_NE(oss.str().find("RAM 4096/32768MB"), std::string::npos);
    EXPECT_NE(oss.str().find("GR3D_FREQ"), std::string::npos);
    EXPECT_NE(oss.str().find("VDD_GPU"), std::string::npos);
}

TEST(Tegrastats, PowerScalesWithLoadAndClock)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    EXPECT_DOUBLE_EQ(nx.gpuPowerMw(0.0), nx.gpu_idle_mw);
    EXPECT_GT(nx.gpuPowerMw(1.0), nx.gpuPowerMw(0.5));
    // Pinned 599 MHz draws far less than MAXN at the same load.
    EXPECT_LT(nx.gpuPowerMw(1.0),
              nx.atMaxClock().gpuPowerMw(1.0) * 0.3);
    EXPECT_LE(nx.atMaxClock().gpuPowerMw(1.0), nx.gpu_peak_mw);
}

} // namespace
} // namespace edgert::profile
