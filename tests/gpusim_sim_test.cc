/**
 * @file
 * Discrete-event-simulator tests: stream FIFO semantics, cross-
 * stream concurrency, copy-engine serialization, events, host
 * delays, utilization accounting and resource-conservation
 * properties.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/logging.hh"
#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "gpusim/timing.hh"

namespace edgert::gpusim {
namespace {

KernelDesc
kernel(std::int64_t grid, std::int64_t flops,
       std::int64_t bytes = 0)
{
    KernelDesc k;
    k.name = "k" + std::to_string(grid) + "_" + std::to_string(flops);
    k.grid_blocks = grid;
    k.max_blocks_per_sm = 1;
    k.flops = flops;
    k.dram_bytes = bytes;
    k.tensor_core = true;
    k.efficiency = 0.5;
    k.tile_kb = 1.0;
    return k;
}

TEST(GpuSim, SingleKernelMatchesAnalyticTime)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim sim(nx);
    KernelDesc k = kernel(60, 1'000'000'000);
    sim.launchKernel(0, k);
    sim.run();
    ASSERT_EQ(sim.trace().size(), 1u);
    double expect = soloKernelSeconds(nx, k) +
                    nx.kernel_launch_us * 1e-6;
    EXPECT_NEAR(sim.nowSeconds(), expect, 1e-12);
}

TEST(GpuSim, StreamIsFifo)
{
    GpuSim sim(DeviceSpec::xavierNX());
    sim.launchKernel(0, kernel(6, 100'000'000));
    sim.launchKernel(0, kernel(6, 200'000'000));
    sim.run();
    ASSERT_EQ(sim.trace().size(), 2u);
    EXPECT_LE(sim.trace()[0].end_s, sim.trace()[1].start_s + 1e-12);
}

TEST(GpuSim, SmallKernelsOverlapAcrossStreams)
{
    // Two 3-block kernels fit side by side on 6 SMs: the makespan
    // is ~one kernel, not two.
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim solo(nx);
    solo.launchKernel(0, kernel(3, 300'000'000));
    solo.run();
    double t_one = solo.nowSeconds();

    GpuSim sim(nx);
    int s2 = sim.createStream();
    sim.launchKernel(0, kernel(3, 300'000'000));
    sim.launchKernel(s2, kernel(3, 300'000'000));
    sim.run();
    EXPECT_LT(sim.nowSeconds(), 1.5 * t_one);
}

TEST(GpuSim, BigKernelsShareFairly)
{
    // Two machine-filling kernels from different streams finish in
    // about the serial time (work conservation), not faster.
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k = kernel(600, 600'000'000);
    GpuSim solo(nx);
    solo.launchKernel(0, k);
    solo.run();
    double t_one = solo.nowSeconds();

    GpuSim sim(nx);
    int s2 = sim.createStream();
    sim.launchKernel(0, k);
    sim.launchKernel(s2, k);
    sim.run();
    EXPECT_NEAR(sim.nowSeconds(), 2.0 * t_one, 0.15 * t_one);
}

TEST(GpuSim, BandwidthIsConserved)
{
    // N memory-bound kernels across streams cannot move bytes
    // faster than the DRAM bandwidth.
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim sim(nx);
    const int n = 5;
    const std::int64_t bytes = 20'000'000;
    for (int i = 0; i < n; i++) {
        int s = i == 0 ? 0 : sim.createStream();
        sim.launchKernel(s, kernel(600, 1000, bytes));
    }
    sim.run();
    double min_time = static_cast<double>(n) * bytes /
                      nx.effDramBps();
    EXPECT_GE(sim.nowSeconds(), min_time * (1.0 - 1e-9));
}

TEST(GpuSim, CopyEngineSerializesAcrossStreams)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim sim(nx);
    int s2 = sim.createStream();
    sim.memcpyH2D(0, 29'000'000, 1, "a"); // ~10ms each
    sim.memcpyH2D(s2, 29'000'000, 1, "b");
    sim.run();
    double one = memcpySeconds(nx, 29'000'000, 1);
    EXPECT_NEAR(sim.nowSeconds(), 2.0 * one, 1e-9);
}

TEST(GpuSim, CopyOverlapsKernels)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim sim(nx);
    int s2 = sim.createStream();
    KernelDesc k = kernel(60, 2'000'000'000); // ~10ms
    sim.launchKernel(0, k);
    sim.memcpyH2D(s2, 29'000'000, 1, "w"); // ~10ms
    sim.run();
    double t_k = soloKernelSeconds(nx, k) + nx.kernel_launch_us * 1e-6;
    double t_c = memcpySeconds(nx, 29'000'000, 1);
    EXPECT_LT(sim.nowSeconds(), t_k + t_c - 1e-3);
}

TEST(GpuSim, EventsRecordCompletionTimes)
{
    GpuSim sim(DeviceSpec::xavierNX());
    EventId e0 = sim.recordEvent(0);
    sim.launchKernel(0, kernel(6, 500'000'000));
    EventId e1 = sim.recordEvent(0);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.eventSeconds(e0), 0.0);
    EXPECT_NEAR(sim.eventSeconds(e1), sim.nowSeconds(), 1e-12);
}

TEST(GpuSim, PendingEventFatal)
{
    GpuSim sim(DeviceSpec::xavierNX());
    EventId e = sim.recordEvent(0);
    // Not run yet -> event pending... but markers complete on
    // admission, so use a kernel ahead of it.
    sim.launchKernel(0, kernel(6, 1'000'000));
    EventId e2 = sim.recordEvent(0);
    (void)e;
    EXPECT_THROW(sim.eventSeconds(e2), FatalError);
    sim.run();
    EXPECT_NO_THROW(sim.eventSeconds(e2));
}

TEST(GpuSim, HostDelayAdvancesTime)
{
    GpuSim sim(DeviceSpec::xavierNX());
    sim.hostDelay(0, 0.005);
    sim.launchKernel(0, kernel(6, 1'000'000));
    sim.run();
    EXPECT_GT(sim.nowSeconds(), 0.005);
}

TEST(GpuSim, RunUntilEventStopsEarly)
{
    GpuSim sim(DeviceSpec::xavierNX());
    sim.launchKernel(0, kernel(6, 500'000'000));
    EventId mid = sim.recordEvent(0);
    sim.launchKernel(0, kernel(6, 500'000'000));
    EventId end = sim.recordEvent(0);
    sim.runUntilEvent(mid);
    double t_mid = sim.nowSeconds();
    sim.runUntilEvent(end);
    EXPECT_GT(sim.nowSeconds(), t_mid);
}

TEST(GpuSim, ProfilingOverheadSlowsOps)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    GpuSim bare(nx);
    bare.launchKernel(0, kernel(6, 100'000'000));
    bare.run();

    GpuSim prof(nx);
    prof.setProfilingOverheadUs(50.0);
    prof.launchKernel(0, kernel(6, 100'000'000));
    prof.run();
    EXPECT_NEAR(prof.nowSeconds() - bare.nowSeconds(), 50e-6, 1e-9);
}

TEST(GpuSim, UtilizationWithinBounds)
{
    GpuSim sim(DeviceSpec::xavierNX());
    for (int i = 0; i < 4; i++)
        sim.launchKernel(0, kernel(60, 200'000'000, 1'000'000));
    sim.run();
    auto st = sim.stats();
    double util = st.smUtilizationPct(sim.spec().sm_count);
    EXPECT_GT(util, 10.0);
    EXPECT_LE(util, 100.0);
    EXPECT_LE(st.busyPct(), 100.0);
    EXPECT_GT(st.dram_bytes, 0.0);
}

TEST(GpuSim, ResetStatsOpensNewWindow)
{
    GpuSim sim(DeviceSpec::xavierNX());
    sim.launchKernel(0, kernel(60, 500'000'000));
    sim.run();
    sim.resetStats();
    auto st = sim.stats();
    EXPECT_DOUBLE_EQ(st.window_s, 0.0);
    EXPECT_DOUBLE_EQ(st.sm_busy_integral, 0.0);
}

TEST(GpuSim, JitterIsDeterministicPerSeed)
{
    DeviceSpec nx = DeviceSpec::xavierNX();
    auto run_once = [&](std::uint64_t seed) {
        GpuSim sim(nx);
        sim.setTimingJitter(0.05, seed);
        for (int i = 0; i < 5; i++)
            sim.launchKernel(0, kernel(60, 100'000'000));
        sim.run();
        return sim.nowSeconds();
    };
    EXPECT_DOUBLE_EQ(run_once(1), run_once(1));
    EXPECT_NE(run_once(1), run_once(2));
}

TEST(GpuSim, TraceRecordsAllOps)
{
    GpuSim sim(DeviceSpec::xavierNX());
    sim.memcpyH2D(0, 1000, 1, "in");
    sim.launchKernel(0, kernel(6, 1'000'000));
    sim.memcpyD2H(0, 1000, 1, "out");
    sim.run();
    ASSERT_EQ(sim.trace().size(), 3u);
    EXPECT_EQ(sim.trace()[0].kind, OpKind::kMemcpyH2D);
    EXPECT_EQ(sim.trace()[1].kind, OpKind::kKernel);
    EXPECT_EQ(sim.trace()[2].kind, OpKind::kMemcpyD2H);
    sim.clearTrace();
    EXPECT_TRUE(sim.trace().empty());
}

TEST(GpuSim, StreamPrioritiesSkewSharing)
{
    // Two machine-filling kernels; the high-priority stream's kernel
    // finishes first and far earlier than fair sharing would allow.
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k = kernel(600, 600'000'000);

    GpuSim sim(nx);
    int hi = sim.createStream(8.0);
    int lo = sim.createStream(1.0);
    sim.launchKernel(hi, k);
    sim.launchKernel(lo, k);
    EventId e_hi = sim.recordEvent(hi);
    EventId e_lo = sim.recordEvent(lo);
    sim.run();

    double t_hi = sim.eventSeconds(e_hi);
    double t_lo = sim.eventSeconds(e_lo);
    EXPECT_LT(t_hi, t_lo);
    // With an 8:1 weight the favored kernel runs near solo speed.
    GpuSim solo(nx);
    solo.launchKernel(0, k);
    solo.run();
    EXPECT_LT(t_hi, 1.35 * solo.nowSeconds());
    // Work conservation still holds overall.
    EXPECT_NEAR(t_lo, 2.0 * solo.nowSeconds(),
                0.2 * solo.nowSeconds());
}

TEST(GpuSim, InvalidPriorityFatal)
{
    GpuSim sim(DeviceSpec::xavierNX());
    EXPECT_THROW(sim.createStream(0.0), FatalError);
    EXPECT_THROW(sim.createStream(-1.0), FatalError);
}

TEST(GpuSim, WaitEventBlocksUntilProducerRetires)
{
    // Consumer stream waits on an event the producer stream records
    // after a long kernel: the consumer's kernel must start no
    // earlier than the producer finishes.
    GpuSim sim(DeviceSpec::xavierNX());
    int cons = sim.createStream();
    sim.launchKernel(0, kernel(600, 600'000'000));
    EventId produced = sim.recordEvent(0);
    sim.waitEvent(cons, produced);
    sim.launchKernel(cons, kernel(6, 1'000'000));
    EventId done = sim.recordEvent(cons);
    sim.run();
    // Without the wait the tiny consumer kernel would finish far
    // before the 600-block producer does.
    EXPECT_GE(sim.eventSeconds(done),
              sim.eventSeconds(produced) - 1e-12);
}

TEST(GpuSim, WaitEventAlreadySatisfiedCostsNothing)
{
    // Waiting on an event that already completed must not stall the
    // waiting stream: same makespan as not waiting at all.
    GpuSim bare(DeviceSpec::xavierNX());
    bare.launchKernel(0, kernel(6, 100'000'000));
    bare.run();

    GpuSim sim(DeviceSpec::xavierNX());
    int s2 = sim.createStream();
    EventId early = sim.recordEvent(0);
    sim.waitEvent(s2, early);
    sim.launchKernel(s2, kernel(6, 100'000'000));
    sim.run();
    EXPECT_NEAR(sim.nowSeconds(), bare.nowSeconds(), 1e-12);
}

TEST(GpuSim, WaitEventOnUnknownEventFatal)
{
    GpuSim sim(DeviceSpec::xavierNX());
    EXPECT_THROW(sim.waitEvent(0, 42), FatalError);
}

TEST(GpuSim, DelayUntilInterleavedStreamsOverlapStages)
{
    // Two pipelined "frames" on one device, each H2D -> wait ->
    // kernel -> wait -> D2H across dedicated upload / compute /
    // download streams with delayUntil pinning the second frame's
    // release: frame 2's upload must overlap frame 1's compute
    // (start before it ends), and every cross-stage dependency must
    // still be respected.
    auto build = [](GpuSim &sim) {
        int up = 0;
        int comp = sim.createStream();
        int down = sim.createStream();
        std::vector<std::array<EventId, 3>> ev;
        const double release[2] = {0.0, 1e-4};
        for (int i = 0; i < 2; i++) {
            sim.delayUntil(up, release[i]);
            sim.memcpyH2D(up, 500'000, 1, "in", true);
            EventId u = sim.recordEvent(up);
            sim.waitEvent(comp, u);
            sim.launchKernel(comp, kernel(600, 600'000'000));
            EventId c = sim.recordEvent(comp);
            sim.waitEvent(down, c);
            sim.memcpyD2H(down, 200'000, 1, "out", true);
            EventId d = sim.recordEvent(down);
            ev.push_back({u, c, d});
        }
        sim.run();
        return ev;
    };

    GpuSim sim(DeviceSpec::xavierNX());
    auto ev = build(sim);
    double u1 = sim.eventSeconds(ev[0][0]);
    double c1 = sim.eventSeconds(ev[0][1]);
    double d1 = sim.eventSeconds(ev[0][2]);
    double u2 = sim.eventSeconds(ev[1][0]);
    double c2 = sim.eventSeconds(ev[1][1]);
    double d2 = sim.eventSeconds(ev[1][2]);
    // Stage DAG per frame.
    EXPECT_LE(u1, c1);
    EXPECT_LE(c1, d1);
    EXPECT_LE(u2, c2);
    EXPECT_LE(c2, d2);
    // Copy/compute overlap: frame 2's upload finished before frame
    // 1's compute did — the stages genuinely interleave.
    EXPECT_LT(u2, c1);
    // Compute stream is FIFO: frame 2's kernel after frame 1's.
    EXPECT_GE(c2, c1);

    // Determinism: an identical enqueue replays to the exact same
    // event times, so interleaving introduces no ordering jitter.
    GpuSim again(DeviceSpec::xavierNX());
    auto ev2 = build(again);
    for (int i = 0; i < 2; i++)
        for (int s = 0; s < 3; s++)
            EXPECT_DOUBLE_EQ(
                sim.eventSeconds(ev[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(s)]),
                again.eventSeconds(
                    ev2[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(s)]));
}

/** Property sweep: makespan of N identical kernels across N streams
 *  is bounded below by work conservation and above by serial
 *  execution. */
class ConcurrencyProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ConcurrencyProperty, MakespanBounds)
{
    int n = GetParam();
    DeviceSpec nx = DeviceSpec::xavierNX();
    KernelDesc k = kernel(12, 400'000'000);
    GpuSim solo(nx);
    solo.launchKernel(0, k);
    solo.run();
    double t_one = solo.nowSeconds();

    GpuSim sim(nx);
    for (int i = 0; i < n; i++) {
        int s = i == 0 ? 0 : sim.createStream();
        sim.launchKernel(s, k);
    }
    sim.run();
    EXPECT_GE(sim.nowSeconds(), t_one * (1.0 - 1e-9));
    EXPECT_LE(sim.nowSeconds(), n * t_one * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConcurrencyProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16,
                                           24, 32));

} // namespace
} // namespace edgert::gpusim
