#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/clock.hh"
#include "obs/trace.hh"

using namespace edgert::obs;

namespace {

/** Enable the global tracer for one test, restoring state after. */
class TracerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::global().clear();
        Tracer::global().setEnabled(true);
    }

    void
    TearDown() override
    {
        Tracer::global().setEnabled(false);
        Tracer::global().clear();
    }
};

} // namespace

TEST(FakeClock, AutoAdvancesPerReading)
{
    FakeClock fake(100, 10);
    EXPECT_EQ(fake.nowNanos(), 100u);
    EXPECT_EQ(fake.nowNanos(), 110u);
    fake.advance(5);
    EXPECT_EQ(fake.peekNanos(), 125u);
    EXPECT_EQ(fake.nowNanos(), 125u);
}

TEST(FakeClock, ScopedOverrideRestores)
{
    FakeClock fake(0, 1);
    {
        ScopedClock guard(&fake);
        EXPECT_EQ(&edgert::obs::clock(),
                  static_cast<Clock *>(&fake));
    }
    EXPECT_NE(&edgert::obs::clock(), static_cast<Clock *>(&fake));
}

TEST_F(TracerFixture, ScopedSpanRecordsDeterministicTimes)
{
    FakeClock fake(1000, 250);
    ScopedClock guard(&fake);
    {
        EDGERT_SPAN("tactic_sweep", {{"node", "conv1"}});
    }
    auto spans = Tracer::global().spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "tactic_sweep");
    EXPECT_EQ(spans[0].start_ns, 1000u);
    EXPECT_EQ(spans[0].end_ns, 1250u);
    ASSERT_EQ(spans[0].args.size(), 1u);
    EXPECT_EQ(spans[0].args[0].key, "node");
    EXPECT_EQ(spans[0].args[0].value, "conv1");
    EXPECT_DOUBLE_EQ(spans[0].durationUs(), 0.25);
}

TEST_F(TracerFixture, NestedSpansCloseInnerFirst)
{
    FakeClock fake(0, 100);
    ScopedClock guard(&fake);
    {
        EDGERT_SPAN("outer");
        {
            EDGERT_SPAN("inner");
        }
    }
    auto spans = Tracer::global().spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[1].name, "outer");
    // outer opened before inner, closed after it.
    EXPECT_LT(spans[1].start_ns, spans[0].start_ns);
    EXPECT_GT(spans[1].end_ns, spans[0].end_ns);
}

TEST_F(TracerFixture, AssignsStableThreadOrdinals)
{
    FakeClock fake(0, 1);
    ScopedClock guard(&fake);
    {
        EDGERT_SPAN("main_phase");
    }
    std::thread worker([] { EDGERT_SPAN("worker_phase"); });
    worker.join();
    {
        EDGERT_SPAN("main_again");
    }
    auto spans = Tracer::global().spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].thread, 0);
    EXPECT_EQ(spans[1].thread, 1);
    EXPECT_EQ(spans[2].thread, 0); // same thread, same ordinal
}

TEST(Tracer, DisabledSpansCostNoClockReads)
{
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
    FakeClock fake(0, 1);
    ScopedClock guard(&fake);
    {
        EDGERT_SPAN("ignored", {{"k", "v"}});
    }
    EXPECT_EQ(Tracer::global().size(), 0u);
    EXPECT_EQ(fake.peekNanos(), 0u); // clock never consulted
}

TEST(Tracer, ClearForgetsSpansAndOrdinals)
{
    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    FakeClock fake(0, 1);
    ScopedClock guard(&fake);
    std::thread worker([] { EDGERT_SPAN("w"); });
    worker.join();
    {
        EDGERT_SPAN("m");
    }
    ASSERT_EQ(tracer.size(), 2u);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    {
        EDGERT_SPAN("after_clear");
    }
    auto spans = tracer.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].thread, 0); // ordinals restart at zero
    tracer.setEnabled(false);
    tracer.clear();
}
