/**
 * @file
 * Tests for the static cost analysis (FLOP counts and activation /
 * weight traffic) that feeds the GPU kernel cost models.
 */

#include <gtest/gtest.h>

#include "nn/analysis.hh"
#include "nn/model_zoo.hh"

namespace edgert::nn {
namespace {

TEST(Analysis, ConvFlopsFormula)
{
    Network net("f");
    net.addInput("in", Dims(1, 16, 8, 8));
    ConvParams p;
    p.out_channels = 32;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("c", "in", p);
    const Layer &l = net.layer(1);
    // 2 * out_volume * (in_c * k * k)
    EXPECT_EQ(layerFlops(net, l), 2LL * 32 * 8 * 8 * 16 * 9);
}

TEST(Analysis, GroupedConvScalesDown)
{
    Network net("g");
    net.addInput("in", Dims(1, 16, 8, 8));
    ConvParams p;
    p.out_channels = 16;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("full", "in", p);
    ConvParams dw = p;
    dw.groups = 16;
    net.addConvolution("dw", "in", dw);
    EXPECT_EQ(layerFlops(net, net.layer(1)),
              16 * layerFlops(net, net.layer(2)));
}

TEST(Analysis, FcFlops)
{
    Network net("fc");
    net.addInput("in", Dims(1, 64, 2, 2));
    FcParams p;
    p.out_features = 100;
    net.addFullyConnected("fc", "in", p);
    EXPECT_EQ(layerFlops(net, net.layer(1)), 2LL * 100 * 256);
}

TEST(Analysis, PoolingWindowFlops)
{
    Network net("p");
    net.addInput("in", Dims(1, 4, 8, 8));
    PoolParams p;
    p.kernel = 2;
    p.stride = 2;
    net.addPooling("pool", "in", p);
    // out 4x4x4, window 4.
    EXPECT_EQ(layerFlops(net, net.layer(1)), 4LL * 4 * 4 * 4);
}

TEST(Analysis, BatchScalesFlopsLinearly)
{
    Network n1 = buildZooModel("resnet-18", 1);
    Network n4 = buildZooModel("resnet-18", 4);
    EXPECT_EQ(networkFlops(n4), 4 * networkFlops(n1));
}

TEST(Analysis, TrafficBytesUseElementSize)
{
    Network net("t");
    net.addInput("in", Dims(1, 4, 4, 4));
    net.addIdentity("id", "in");
    const Layer &l = net.layer(1);
    EXPECT_EQ(layerInputBytes(net, l, 4), 4LL * 64);
    EXPECT_EQ(layerInputBytes(net, l, 2), 2LL * 64);
    EXPECT_EQ(layerOutputBytes(net, l, 2), 2LL * 64);
    EXPECT_EQ(layerWeightBytes(net, l, 2), 0);
}

TEST(Analysis, ZooFlopsOrdering)
{
    // Sanity ordering of per-frame compute across familiar models.
    auto flops = [](const char *m) {
        Network n = buildZooModel(m);
        return networkFlops(n);
    };
    EXPECT_GT(flops("vgg-16"), flops("resnet-18"));
    EXPECT_GT(flops("resnet-18"), flops("mtcnn"));
    EXPECT_GT(flops("detectnet-coco-dog"), flops("googlenet"));
}

TEST(Analysis, EltwiseAndConcat)
{
    Network net("e");
    net.addInput("a", Dims(1, 4, 2, 2));
    net.addInput("b", Dims(1, 4, 2, 2));
    net.addEltwise("sum", {"a", "b"}, {});
    net.addConcat("cat", {"a", "b"});
    EXPECT_EQ(layerFlops(net, net.layer(2)), 16); // (n-1) * volume
    EXPECT_EQ(layerFlops(net, net.layer(3)), 0);  // pure copy
    EXPECT_EQ(layerInputBytes(net, net.layer(3), 2), 2LL * 32);
}

} // namespace
} // namespace edgert::nn
