/**
 * @file
 * HotSwapper end-to-end: drift-gated mid-run engine swaps into a
 * live EdgeServe run. Verifies the swap protocol's headline claim
 * (no request is ever dropped — every offered request is completed
 * or shed), the fault-injected rollback path (incumbent restored,
 * repository lineage reverted, rollback counter bumped), the
 * corrupt-manifest skip path (the incumbent keeps serving), and
 * same-seed byte determinism of the whole pipeline.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "deploy/hotswap.hh"
#include "deploy/repository.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"

namespace edgert {
namespace {

namespace fs = std::filesystem;

constexpr const char *kModel = "resnet-18";

class QuietLogs
{
  public:
    QuietLogs() { setLogSink([](LogLevel, const std::string &) {}); }
    ~QuietLogs() { setLogSink({}); }
};

serve::ServeConfig
testConfig()
{
    serve::ServeConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = 2.0;
    cfg.seed = 7;
    cfg.build_id = 1;
    serve::ModelConfig mc;
    mc.model = kModel;
    mc.slo_ms = 25.0;
    mc.arrivals.qps = 200.0;
    cfg.models.push_back(mc);
    return cfg;
}

class DeploySwapTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("edgert_swap_test." +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(root_);
    }
    void TearDown() override { fs::remove_all(root_); }

    fs::path root_;
};

TEST_F(DeploySwapTest, CleanSwapCommitsWithZeroDrops)
{
    QuietLogs quiet;
    serve::ServeConfig cfg = testConfig();
    deploy::EngineRepository repo(root_.string());
    deploy::DriftGateConfig gate_cfg;
    gate_cfg.max_disagreement_pct = 100.0; // always promote
    deploy::HotSwapper swapper(repo, gate_cfg);

    deploy::HotSwapPlan plan = swapper.planSwaps(
        cfg, cfg.duration_s / 2, /*rebuild_build_id=*/2);
    ASSERT_EQ(plan.swaps.size(), 1u);
    ASSERT_EQ(plan.outcomes.size(), 1u);
    EXPECT_TRUE(plan.outcomes[0].promoted);

    serve::ServeReport rep = swapper.runWithSwaps(cfg, plan);
    ASSERT_EQ(rep.models.size(), 1u);
    const serve::ModelStats &m = rep.models.front();
    EXPECT_EQ(m.offered, m.completed + m.shed)
        << "requests were dropped across the swap";
    EXPECT_EQ(m.swaps, 1);
    EXPECT_EQ(m.swaps_rolled_back, 0);
    EXPECT_EQ(m.active_build_id, 2u);

    // The repository lineage ends on the promoted candidate.
    deploy::ModelKey key{kModel, cfg.devices.front().name,
                         nn::Precision::kFp16};
    auto man = repo.manifest(key);
    ASSERT_TRUE(man.ok());
    EXPECT_EQ(man->live_version, 2);
    EXPECT_EQ(man->find(1)->state,
              deploy::VersionState::kRetired);
}

TEST_F(DeploySwapTest, FaultedSwapRollsBackAndReconcilesLineage)
{
    QuietLogs quiet;
    obs::MetricRegistry::global().reset();
    serve::ServeConfig cfg = testConfig();
    // Every swap-time candidate load fails.
    cfg.faults.swap_load_failures[kModel] =
        cfg.faults.max_load_attempts;

    deploy::EngineRepository repo(root_.string());
    deploy::DriftGateConfig gate_cfg;
    gate_cfg.max_disagreement_pct = 100.0;
    deploy::HotSwapper swapper(repo, gate_cfg);

    deploy::HotSwapPlan plan =
        swapper.planSwaps(cfg, cfg.duration_s / 2, 2);
    ASSERT_EQ(plan.swaps.size(), 1u);
    serve::ServeReport rep = swapper.runWithSwaps(cfg, plan);
    const serve::ModelStats &m = rep.models.front();
    EXPECT_EQ(m.offered, m.completed + m.shed);
    EXPECT_EQ(m.swaps_rolled_back, 1);
    EXPECT_EQ(m.swap_rollback_reason, "load_failure");
    EXPECT_EQ(m.active_build_id, 1u)
        << "incumbent must keep serving after rollback";

    // Lineage reverted: v1 live again, v2 rolled back.
    deploy::ModelKey key{kModel, cfg.devices.front().name,
                         nn::Precision::kFp16};
    auto man = repo.manifest(key);
    ASSERT_TRUE(man.ok());
    EXPECT_EQ(man->live_version, 1);
    EXPECT_EQ(man->find(2)->state,
              deploy::VersionState::kRolledBack);

    EXPECT_GE(obs::MetricRegistry::global()
                  .counter("deploy.swap.rolled_back",
                           {{"model", kModel},
                            {"reason", "load_failure"}})
                  .value(),
              1);
}

TEST_F(DeploySwapTest, CorruptManifestSkipsSwapButKeepsServing)
{
    QuietLogs quiet;
    serve::ServeConfig cfg = testConfig();
    deploy::EngineRepository repo(root_.string());
    deploy::ModelKey key{kModel, cfg.devices.front().name,
                         nn::Precision::kFp16};
    fs::create_directories(
        fs::path(repo.manifestPath(key)).parent_path());
    std::ofstream(repo.manifestPath(key), std::ios::binary)
        << "garbage";

    deploy::HotSwapper swapper(repo);
    deploy::HotSwapPlan plan =
        swapper.planSwaps(cfg, cfg.duration_s / 2, 2);
    EXPECT_TRUE(plan.swaps.empty())
        << "a corrupt lineage must not schedule a swap";
    ASSERT_EQ(plan.outcomes.size(), 1u);
    EXPECT_FALSE(plan.outcomes[0].status.ok());

    serve::ServeReport rep = swapper.runWithSwaps(cfg, plan);
    const serve::ModelStats &m = rep.models.front();
    EXPECT_EQ(m.offered, m.completed + m.shed);
    EXPECT_EQ(m.swaps, 0);
    EXPECT_GT(m.completed, 0)
        << "the incumbent must keep serving";
}

TEST_F(DeploySwapTest, SameSeedPipelineIsByteDeterministic)
{
    QuietLogs quiet;
    serve::ServeConfig cfg = testConfig();

    auto runOnce = [&](const fs::path &root) {
        fs::remove_all(root);
        deploy::EngineRepository repo(root.string());
        deploy::DriftGateConfig gate_cfg;
        gate_cfg.max_disagreement_pct = 100.0;
        deploy::HotSwapper swapper(repo, gate_cfg);
        deploy::HotSwapPlan plan =
            swapper.planSwaps(cfg, cfg.duration_s / 2, 2);
        std::string out = swapper.runWithSwaps(cfg, plan).toJson();
        fs::remove_all(root);
        return out;
    };

    std::string a = runOnce(root_ / "a");
    std::string b = runOnce(root_ / "b");
    EXPECT_EQ(a, b)
        << "same-seed swap pipeline rendered different reports";
}

} // namespace
} // namespace edgert
