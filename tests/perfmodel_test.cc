/**
 * @file
 * Tests for the BSP performance predictor: self-prediction after
 * calibration is near-exact, cross-platform prediction degrades,
 * and rebuilt engines shift the error (the paper's §VI-B point).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "perfmodel/bsp.hh"
#include "runtime/context.hh"

namespace edgert::perfmodel {
namespace {

std::vector<gpusim::OpRecord>
traceOnce(const core::Engine &e, const gpusim::DeviceSpec &dev,
          double noise = 0.0)
{
    gpusim::GpuSim sim(dev);
    if (noise > 0.0)
        sim.setTimingJitter(noise, 7);
    runtime::ExecutionContext ctx(e, sim, 0);
    ctx.enqueueInference(true, true);
    sim.run();
    return sim.trace();
}

core::Engine
build(const std::string &model, std::uint64_t id,
      const gpusim::DeviceSpec &dev)
{
    nn::Network net = nn::buildZooModel(model);
    core::BuilderConfig cfg;
    cfg.build_id = id;
    return core::Builder(dev, cfg).build(net);
}

TEST(Bsp, RawTimeIsPositiveAndScalesWithClock)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    MicroArchParams p = MicroArchParams::measure(nx);
    gpusim::KernelDesc k;
    k.instructions = 1'000'000;
    k.ldg = 100'000;
    k.stg = 10'000;
    k.lds = 50'000;
    k.sts = 20'000;
    k.l1_hits = 60'000;
    k.l2_hits = 20'000;
    double t1 = bspRawMs(k, nx, p);
    double t2 = bspRawMs(k, nx.withClock(nx.gpu_clock_ghz * 2), p);
    EXPECT_GT(t1, 0.0);
    EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(Bsp, SelfPredictionIsExactWithoutNoise)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = build("googlenet", 1, nx);
    auto trace = traceOnce(e, nx);
    BspModel bsp(nx);
    bsp.calibrate(trace);
    auto pred = bsp.predict(trace, nx);
    EXPECT_EQ(pred.kernels_without_lambda, 0);
    EXPECT_LT(pred.error_pct, 1.0);
}

TEST(Bsp, CrossPlatformPredictionHasError)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    core::Engine e = build("inception-v4", 1, nx);
    BspModel bsp(nx);
    bsp.calibrate(traceOnce(e, nx));
    auto pred = bsp.predict(traceOnce(e, agx), agx);
    // The F*C scaling misses wave/L2/memcpy effects: error nonzero
    // but not absurd.
    EXPECT_GT(pred.error_pct, 0.5);
    EXPECT_LT(pred.error_pct, 60.0);
}

TEST(Bsp, RebuiltEnginesShiftTheError)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    std::vector<double> errors;
    for (std::uint64_t id = 1; id <= 3; id++) {
        core::Engine e = build("inception-v4", id, nx);
        BspModel bsp(nx);
        bsp.calibrate(traceOnce(e, nx, 0.02));
        auto pred = bsp.predict(traceOnce(e, agx, 0.02), agx);
        errors.push_back(pred.error_pct);
    }
    double mn = std::min({errors[0], errors[1], errors[2]});
    double mx = std::max({errors[0], errors[1], errors[2]});
    // Paper Tables XVII/XVIII: a 2-13% swing across engines.
    EXPECT_GT(mx - mn, 0.05);
    EXPECT_LT(mx - mn, 30.0);
}

TEST(Bsp, UnknownKernelsFallBackToUnitLambda)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine a = build("resnet-18", 1, nx);
    core::Engine b = build("mobilenetv1", 1, nx);
    BspModel bsp(nx);
    bsp.calibrate(traceOnce(a, nx));
    auto pred = bsp.predict(traceOnce(b, nx), nx);
    EXPECT_GT(pred.kernels_without_lambda, 0);
}

TEST(Bsp, LambdasPerKernelNamePopulated)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = build("tiny-yolov3", 1, nx);
    BspModel bsp(nx);
    bsp.calibrate(traceOnce(e, nx));
    EXPECT_FALSE(bsp.lambdas().empty());
    for (const auto &[name, entry] : bsp.lambdas()) {
        EXPECT_GT(entry.lambda, 0.0);
        EXPECT_GT(entry.samples, 0);
        EXPECT_FALSE(name.empty());
    }
}

} // namespace
} // namespace edgert::perfmodel
