/**
 * @file
 * Tests for the execution context and measurement harnesses:
 * latency protocol decomposition, profiler perturbation, throughput
 * scaling and utilization bounds.
 */

#include <gtest/gtest.h>

#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/context.hh"
#include "runtime/measure.hh"

namespace edgert::runtime {
namespace {

core::Engine
buildEngine(const std::string &model, const gpusim::DeviceSpec &dev,
            std::uint64_t id = 1)
{
    nn::Network net = nn::buildZooModel(model);
    core::BuilderConfig cfg;
    cfg.build_id = id;
    return core::Builder(dev, cfg).build(net);
}

TEST(Latency, DecompositionSumsWithinTotal)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("resnet-18", nx);
    auto lat = measureLatency(e, nx);
    EXPECT_EQ(lat.samples_ms.size(), 10u);
    EXPECT_GT(lat.mean_ms, 0.0);
    EXPECT_GT(lat.memcpy_mean_ms, 0.0);
    EXPECT_GT(lat.kernel_mean_ms, 0.0);
    // Kernel + memcpy time (plus launch gaps) make up the total.
    EXPECT_LE(lat.memcpy_mean_ms + lat.kernel_mean_ms,
              lat.mean_ms * 1.001);
    EXPECT_GT(lat.memcpy_mean_ms + lat.kernel_mean_ms,
              lat.mean_ms * 0.5);
}

TEST(Latency, ReproducibleWithSameSeeds)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("googlenet", nx);
    auto a = measureLatency(e, nx);
    auto b = measureLatency(e, nx);
    EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
    EXPECT_DOUBLE_EQ(a.std_ms, b.std_ms);
}

TEST(Latency, ProfilerAddsOverhead)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("inception-v4", nx);
    LatencyOptions with, without;
    without.with_profiler = false;
    auto t_with = measureLatency(e, nx, with);
    auto t_without = measureLatency(e, nx, without);
    // Table VIII vs IX: nvprof inflates latency, substantially for
    // kernel-rich models.
    EXPECT_GT(t_with.mean_ms, t_without.mean_ms * 1.1);
}

TEST(Latency, SkippingWeightUploadDropsMemcpy)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("resnet-18", nx);
    LatencyOptions cold, warm;
    warm.upload_weights_per_run = false;
    auto t_cold = measureLatency(e, nx, cold);
    auto t_warm = measureLatency(e, nx, warm);
    EXPECT_LT(t_warm.mean_ms, t_cold.mean_ms * 0.6);
}

TEST(Latency, NonzeroStdFromSystemNoise)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("resnet-18", nx);
    auto lat = measureLatency(e, nx);
    EXPECT_GT(lat.std_ms, 0.0);
    LatencyOptions quiet;
    quiet.system_noise = 0.0;
    auto exact = measureLatency(e, nx, quiet);
    EXPECT_LT(exact.std_ms, 1e-9);
}

TEST(Profile, KernelAggregatesCoverEngine)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    std::vector<KernelProfile> prof;
    auto lat = profileLatency(e, nx, prof);
    EXPECT_FALSE(prof.empty());
    double total = 0.0;
    std::int64_t calls = 0;
    for (const auto &k : prof) {
        EXPECT_GT(k.calls, 0);
        EXPECT_GT(k.mean_ms, 0.0);
        total += k.total_ms;
        calls += k.calls;
    }
    EXPECT_EQ(calls, e.kernelCount());
    EXPECT_NEAR(total, lat.kernel_mean_ms, lat.kernel_mean_ms * 0.2);
}

TEST(Throughput, PositiveAndBounded)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("googlenet", nx);
    ThroughputOptions topt;
    topt.threads = 2;
    topt.frames_per_thread = 10;
    auto r = measureThroughput(e, nx, topt);
    EXPECT_GT(r.aggregate_fps, 0.0);
    EXPECT_NEAR(r.per_thread_fps * 2, r.aggregate_fps, 1e-9);
    EXPECT_GT(r.gpu_util_pct, 0.0);
    EXPECT_LE(r.gpu_util_pct, 100.0);
    EXPECT_LE(r.copy_busy_pct, 100.0);
}

TEST(Throughput, MoreThreadsNeverHurtMuch)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    double prev = 0.0;
    for (int t : {1, 2, 4, 8}) {
        ThroughputOptions topt;
        topt.threads = t;
        topt.frames_per_thread = 12;
        auto r = measureThroughput(e, nx, topt);
        EXPECT_GT(r.aggregate_fps, prev * 0.95) << t;
        prev = r.aggregate_fps;
    }
}

TEST(Throughput, SaturatesAtHighThreadCounts)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    auto fps = [&](int t) {
        ThroughputOptions topt;
        topt.threads = t;
        topt.frames_per_thread = 12;
        return measureThroughput(e, nx, topt).aggregate_fps;
    };
    double f8 = fps(8), f16 = fps(16);
    // Marginal gain well below linear scaling.
    EXPECT_LT(f16, f8 * 1.3);
}

TEST(Throughput, OptimizedBeatsUnoptimizedBy20x)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("resnet-18");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine opt = core::Builder(nx, cfg).build(net);
    core::Engine raw = core::Builder(nx, cfg).buildUnoptimized(net);
    ThroughputOptions topt;
    topt.frames_per_thread = 6;
    double f_opt = measureThroughput(opt, nx, topt).aggregate_fps;
    double f_raw = measureThroughput(raw, nx, topt).aggregate_fps;
    EXPECT_GT(f_opt / f_raw, 20.0);
    EXPECT_LT(f_opt / f_raw, 100.0);
}

TEST(Throughput, AgxFasterAtMaxClock)
{
    core::Engine e =
        buildEngine("tiny-yolov3", gpusim::DeviceSpec::xavierNX());
    ThroughputOptions topt;
    topt.threads = 8;
    topt.frames_per_thread = 10;
    double nx = measureThroughput(
                    e, gpusim::DeviceSpec::xavierNX(), topt)
                    .aggregate_fps;
    double agx = measureThroughput(
                     e, gpusim::DeviceSpec::xavierAGX(), topt)
                     .aggregate_fps;
    EXPECT_GT(agx, nx * 1.2);
}

TEST(Throughput, Equation1BoundIsPlausible)
{
    // Paper Eq. 1: the thread bound scales with memory bandwidth.
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    core::Engine e_nx = buildEngine("tiny-yolov3", nx);
    core::Engine e_agx = buildEngine("tiny-yolov3", agx);
    int n_nx = estimateMaxThreads(e_nx, nx);
    int n_agx = estimateMaxThreads(e_agx, agx);
    EXPECT_GT(n_nx, 4);
    EXPECT_LT(n_nx, 100);
    // The AGX bound exceeds the NX bound (paper: 28 vs 36).
    EXPECT_GT(n_agx, n_nx);
}

TEST(Context, FootprintIncludesWeightsAndArena)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    std::int64_t fp = contextFootprintBytes(e);
    EXPECT_GT(fp, e.weightBytes());
    EXPECT_LT(fp, 2LL << 30);
}

TEST(Context, FootprintMonotoneInEngineSize)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    // Growing the batch grows the I/O bindings and activation
    // arena; growing the network grows the weights. Either way the
    // per-context footprint must grow with the engine.
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Builder builder(nx, cfg);
    std::int64_t prev = 0;
    for (std::int64_t b : {1, 4, 16}) {
        core::Engine e =
            builder.build(nn::buildZooModel("alexnet", b));
        std::int64_t fp = contextFootprintBytes(e);
        EXPECT_GT(fp, prev);
        prev = fp;
    }
    std::int64_t small =
        contextFootprintBytes(buildEngine("resnet-18", nx));
    std::int64_t big =
        contextFootprintBytes(buildEngine("vgg-16", nx));
    EXPECT_GT(big, small);
}

TEST(Context, FootprintBoundsConcurrencyHarnessWithinRam)
{
    // The Eq. 1 thread estimate is what the concurrency harness
    // (and EdgeServe placement) runs with; that many contexts must
    // fit in device RAM or the bound would be unusable.
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    int n = estimateMaxThreads(e, nx);
    ASSERT_GT(n, 0);
    std::int64_t ram =
        static_cast<std::int64_t>(nx.ram_gb * (1LL << 30));
    EXPECT_LE(n * contextFootprintBytes(e), ram);
}

TEST(Context, PipelinedEnqueueOverlapsCopyAndComputeStreams)
{
    // At the DES level a pipelined enqueue must put its copies on a
    // dedicated stream whose transfers run concurrently with the
    // compute stream's kernels (double buffering), not serialize
    // ahead of them.
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("resnet-18", nx);
    gpusim::GpuSim sim(nx);
    ExecutionContext ctx(e, sim, 0);
    ctx.enqueuePipelinedInference();
    sim.run();

    bool overlapped = false;
    for (const auto &copy : sim.trace()) {
        if (copy.kind != gpusim::OpKind::kMemcpyH2D &&
            copy.kind != gpusim::OpKind::kMemcpyD2H)
            continue;
        for (const auto &k : sim.trace()) {
            if (k.kind != gpusim::OpKind::kKernel ||
                k.stream == copy.stream)
                continue;
            if (copy.start_s < k.end_s && k.start_s < copy.end_s)
                overlapped = true;
        }
    }
    EXPECT_TRUE(overlapped);
}

TEST(Context, PipelinedInferenceOverlapsCopies)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine e = buildEngine("tiny-yolov3", nx);
    ThroughputOptions serial, piped;
    serial.pipelined = false;
    serial.threads = piped.threads = 1;
    serial.frames_per_thread = piped.frames_per_thread = 10;
    double f_serial = measureThroughput(e, nx, serial).aggregate_fps;
    double f_piped = measureThroughput(e, nx, piped).aggregate_fps;
    EXPECT_GT(f_piped, f_serial);
}

} // namespace
} // namespace edgert::runtime
