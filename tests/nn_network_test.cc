/**
 * @file
 * Unit tests for the graph IR: shape inference of every layer kind,
 * graph validation, producer/consumer queries and parameter counts.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/network.hh"

namespace edgert::nn {
namespace {

TEST(Network, ConvShapeInference)
{
    Network net("t");
    net.addInput("in", Dims(1, 3, 224, 224));
    ConvParams p;
    p.out_channels = 64;
    p.kernel = 7;
    p.stride = 2;
    p.pad = 3;
    net.addConvolution("c1", "in", p);
    EXPECT_EQ(net.tensor("c1").dims, Dims(1, 64, 112, 112));
}

TEST(Network, ConvDilationShape)
{
    Network net("t");
    net.addInput("in", Dims(1, 8, 32, 32));
    ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.dilation = 2;
    p.pad = 2;
    net.addConvolution("c", "in", p);
    EXPECT_EQ(net.tensor("c").dims, Dims(1, 8, 32, 32));
}

TEST(Network, DepthwiseConvGroups)
{
    Network net("t");
    net.addInput("in", Dims(1, 32, 16, 16));
    ConvParams p;
    p.out_channels = 32;
    p.kernel = 3;
    p.pad = 1;
    p.groups = 32;
    net.addConvolution("dw", "in", p);
    EXPECT_EQ(net.tensor("dw").dims, Dims(1, 32, 16, 16));
    // weights: 32 * 1 * 9 + 32 bias
    EXPECT_EQ(net.layerParamCount(net.layer(1)), 32 * 9 + 32);
}

TEST(Network, InvalidGroupsFatal)
{
    Network net("t");
    net.addInput("in", Dims(1, 30, 8, 8));
    ConvParams p;
    p.out_channels = 8;
    p.groups = 4; // 30 % 4 != 0
    EXPECT_THROW(net.addConvolution("c", "in", p), FatalError);
}

TEST(Network, RectangularConvShapeAndParams)
{
    Network net("t");
    net.addInput("in", Dims(1, 16, 17, 17));
    ConvParams p;
    p.out_channels = 32;
    p.kernel = 1;
    p.kernel_w = 7;
    p.pad = 0;
    p.pad_w = 3;
    net.addConvolution("c1x7", "in", p);
    EXPECT_EQ(net.tensor("c1x7").dims, Dims(1, 32, 17, 17));
    EXPECT_EQ(net.layerParamCount(net.layer(1)),
              32LL * 16 * 1 * 7 + 32);

    ConvParams q;
    q.out_channels = 8;
    q.kernel = 7;
    q.kernel_w = 1;
    q.pad = 3;
    q.pad_w = 0;
    net.addConvolution("c7x1", "c1x7", q);
    EXPECT_EQ(net.tensor("c7x1").dims, Dims(1, 8, 17, 17));
    EXPECT_EQ(net.layerParamCount(net.layer(2)),
              8LL * 32 * 7 * 1 + 8);
}

TEST(Network, DeconvShape)
{
    Network net("t");
    net.addInput("in", Dims(1, 16, 8, 8));
    ConvParams p;
    p.out_channels = 8;
    p.kernel = 4;
    p.stride = 2;
    p.pad = 1;
    net.addDeconvolution("up", "in", p);
    EXPECT_EQ(net.tensor("up").dims, Dims(1, 8, 16, 16));
}

TEST(Network, PoolCeilModeShape)
{
    Network net("t");
    net.addInput("in", Dims(1, 64, 112, 112));
    PoolParams p;
    p.kernel = 3;
    p.stride = 2;
    net.addPooling("p", "in", p);
    // Caffe ceil mode: ceil((112-3)/2)+1 = 56.
    EXPECT_EQ(net.tensor("p").dims, Dims(1, 64, 56, 56));
}

TEST(Network, GlobalPoolShape)
{
    Network net("t");
    net.addInput("in", Dims(2, 512, 7, 9));
    PoolParams p;
    p.global = true;
    p.mode = PoolParams::Mode::kAvg;
    net.addPooling("g", "in", p);
    EXPECT_EQ(net.tensor("g").dims, Dims(2, 512, 1, 1));
}

TEST(Network, FullyConnectedShapeAndParams)
{
    Network net("t");
    net.addInput("in", Dims(1, 256, 6, 6));
    FcParams p;
    p.out_features = 4096;
    net.addFullyConnected("fc", "in", p);
    EXPECT_EQ(net.tensor("fc").dims, Dims(1, 4096, 1, 1));
    EXPECT_EQ(net.layerParamCount(net.layer(1)),
              4096LL * 256 * 36 + 4096);
}

TEST(Network, ConcatSumsChannels)
{
    Network net("t");
    net.addInput("a", Dims(1, 16, 8, 8));
    ConvParams p;
    p.out_channels = 8;
    net.addConvolution("b", "a", p);
    ConvParams q;
    q.out_channels = 24;
    net.addConvolution("c", "a", q);
    net.addConcat("cat", {"b", "c"});
    EXPECT_EQ(net.tensor("cat").dims, Dims(1, 32, 8, 8));
}

TEST(Network, ConcatRejectsSpatialMismatch)
{
    Network net("t");
    net.addInput("a", Dims(1, 4, 8, 8));
    net.addInput("b", Dims(1, 4, 4, 4));
    EXPECT_THROW(net.addConcat("cat", {"a", "b"}), FatalError);
}

TEST(Network, EltwiseRejectsShapeMismatch)
{
    Network net("t");
    net.addInput("a", Dims(1, 4, 8, 8));
    net.addInput("b", Dims(1, 8, 8, 8));
    EXPECT_THROW(net.addEltwise("e", {"a", "b"}, {}), FatalError);
}

TEST(Network, UpsampleAndFlatten)
{
    Network net("t");
    net.addInput("in", Dims(1, 4, 5, 6));
    net.addUpsample("up", "in", {3});
    EXPECT_EQ(net.tensor("up").dims, Dims(1, 4, 15, 18));
    net.addFlatten("flat", "up");
    EXPECT_EQ(net.tensor("flat").dims, Dims(1, 4 * 15 * 18, 1, 1));
}

TEST(Network, DuplicateNameFatal)
{
    Network net("t");
    net.addInput("in", Dims(1, 1, 4, 4));
    EXPECT_THROW(net.addIdentity("in", "in"), FatalError);
}

TEST(Network, UnknownInputFatal)
{
    Network net("t");
    net.addInput("in", Dims(1, 1, 4, 4));
    EXPECT_THROW(net.addIdentity("x", "nope"), FatalError);
}

TEST(Network, ProducerConsumerQueries)
{
    Network net("t");
    net.addInput("in", Dims(1, 4, 4, 4));
    net.addIdentity("a", "in");
    net.addIdentity("b", "in");
    net.addConcat("c", {"a", "b"});
    EXPECT_EQ(net.producerOf("a"), 1);
    EXPECT_EQ(net.producerOf("nothing"), -1);
    auto consumers = net.consumersOf("in");
    ASSERT_EQ(consumers.size(), 2u);
    EXPECT_EQ(consumers[0], 1);
    EXPECT_EQ(consumers[1], 2);
}

TEST(Network, ValidateRequiresOutputs)
{
    Network net("t");
    net.addInput("in", Dims(1, 1, 2, 2));
    net.addIdentity("a", "in");
    EXPECT_THROW(net.validate(), FatalError);
    net.markOutput("a");
    EXPECT_NO_THROW(net.validate());
}

TEST(Network, BatchNormScaleParamCounts)
{
    Network net("t");
    net.addInput("in", Dims(1, 10, 2, 2));
    net.addBatchNorm("bn", "in");
    net.addScale("sc", "bn");
    EXPECT_EQ(net.layerParamCount(net.layer(1)), 20); // mean+var
    EXPECT_EQ(net.layerParamCount(net.layer(2)), 20); // gamma+beta
}

TEST(Network, ModelSizeTracksParams)
{
    Network net("t");
    net.addInput("in", Dims(1, 3, 8, 8));
    ConvParams p;
    p.out_channels = 4;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("c", "in", p);
    net.markOutput("c");
    std::int64_t params = 4 * 3 * 9 + 4;
    EXPECT_EQ(net.paramCount(), params);
    EXPECT_GT(net.modelSizeBytes(), params * 4);
}

} // namespace
} // namespace edgert::nn
