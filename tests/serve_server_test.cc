/**
 * @file
 * End-to-end tests for the EdgeServe server: request conservation,
 * batching and admission behavior, multi-device placement, and the
 * determinism contract — two same-seed runs under a FakeClock must
 * produce byte-identical reports and metric snapshots.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"

namespace edgert::serve {
namespace {

using obs::FakeClock;
using obs::MetricRegistry;
using obs::ScopedClock;

ServeConfig
smallConfig(double qps, double slo_ms, bool batching)
{
    ServeConfig cfg;
    ModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = slo_ms;
    mc.arrivals.qps = qps;
    mc.batching.max_batch = 4;
    cfg.models.push_back(mc);
    cfg.devices.push_back(parseDevice("nx"));
    cfg.duration_s = 0.5;
    cfg.dynamic_batching = batching;
    return cfg;
}

TEST(Server, ConservesRequestsAndOrdersPercentiles)
{
    ServeReport rep = runServer(smallConfig(200, 30, true));
    ASSERT_EQ(rep.models.size(), 1u);
    const ModelStats &m = rep.models.front();
    EXPECT_GT(m.offered, 0);
    EXPECT_EQ(m.offered, m.completed + m.shed);
    EXPECT_GT(m.completed, 0);
    EXPECT_GE(m.mean_batch, 1.0);
    EXPECT_LE(m.p50_ms, m.p95_ms);
    EXPECT_LE(m.p95_ms, m.p99_ms);
    EXPECT_LE(m.p99_ms, m.max_ms);
    EXPECT_GT(m.goodput_qps, 0.0);

    ASSERT_EQ(rep.devices.size(), 1u);
    const DeviceStats &d = rep.devices.front();
    EXPECT_GE(d.instances, 1);
    EXPECT_GT(d.sm_util_pct, 0.0);
    EXPECT_GT(d.ram_used_bytes, 0);
    EXPECT_LE(d.ram_used_bytes, d.ram_budget_bytes);
}

TEST(Server, DynamicBatchingCoalescesUnderLoad)
{
    ServeReport batched = runServer(smallConfig(400, 50, true));
    ServeReport fifo = runServer(smallConfig(400, 50, false));
    EXPECT_GT(batched.models.front().mean_batch, 1.2);
    EXPECT_DOUBLE_EQ(fifo.models.front().mean_batch, 1.0);
}

TEST(Server, AdmissionControlBoundsTailPastTheKnee)
{
    // 900 qps is far past alexnet's batch-1 capacity on NX
    // (~200 qps), so the unprotected queue diverges for the whole
    // window while admission sheds its way to a bounded tail.
    ServeConfig protected_cfg = smallConfig(900, 10, false);
    ServeConfig open_cfg = protected_cfg;
    open_cfg.admission_control = false;

    ServeReport prot = runServer(protected_cfg);
    ServeReport open = runServer(open_cfg);
    const ModelStats &mp = prot.models.front();
    const ModelStats &mo = open.models.front();

    EXPECT_GT(mp.shed, 0);
    EXPECT_EQ(mo.shed, 0);
    EXPECT_LT(mp.p99_ms, 2.0 * mp.slo_ms);
    EXPECT_GT(mo.p99_ms, 5.0 * mo.slo_ms);
    EXPECT_GT(mp.goodput_qps, mo.goodput_qps);
}

TEST(Server, MultiDevicePlacementUsesEveryDevice)
{
    ServeConfig cfg = smallConfig(300, 30, true);
    cfg.devices.push_back(parseDevice("agx"));
    ServeReport rep = runServer(cfg);
    ASSERT_EQ(rep.devices.size(), 2u);
    for (const DeviceStats &d : rep.devices) {
        EXPECT_GE(d.instances, 1);
        EXPECT_GT(d.sm_util_pct, 0.0);
    }
}

/** One full serve run under a FakeClock; returns report JSON and
 *  the global metric snapshot. */
std::pair<std::string, std::string>
seededRun()
{
    MetricRegistry::global().reset();
    FakeClock fake(1'000'000, 500);
    ScopedClock scoped(&fake);
    ServeReport rep = runServer(smallConfig(250, 25, true));
    return {rep.toJson(), MetricRegistry::global().toJson()};
}

TEST(Server, SameSeedRunsAreByteIdentical)
{
    auto [report_a, metrics_a] = seededRun();
    auto [report_b, metrics_b] = seededRun();
    EXPECT_EQ(report_a, report_b);
    EXPECT_EQ(metrics_a, metrics_b);
    EXPECT_FALSE(report_a.empty());
    EXPECT_FALSE(metrics_a.empty());
}

TEST(Server, SeedChangesTheWorkload)
{
    ServeConfig cfg = smallConfig(250, 25, true);
    ServeReport a = runServer(cfg);
    cfg.seed = 2;
    ServeReport b = runServer(cfg);
    EXPECT_NE(a.models.front().offered, b.models.front().offered);
}

} // namespace
} // namespace edgert::serve
