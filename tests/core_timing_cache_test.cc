/**
 * @file
 * Tests for the tactic-timing cache: hit/miss/insert accounting,
 * canonical (de)serialization, file round trips, and the builder
 * integration that mitigates Finding 6 — a shared warm cache
 * freezes tactic choices across build ids, while caches never leak
 * across device presets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/logging.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

using gpusim::DeviceSpec;
using nn::Network;

TEST(TimingCache, KeySeparatesDeviceSignatureTactic)
{
    std::string a = TimingCache::key("xavier-nx", 1, "t");
    EXPECT_NE(a, TimingCache::key("xavier-agx", 1, "t"));
    EXPECT_NE(a, TimingCache::key("xavier-nx", 2, "t"));
    EXPECT_NE(a, TimingCache::key("xavier-nx", 1, "u"));
    EXPECT_EQ(a, TimingCache::key("xavier-nx", 1, "t"));
}

TEST(TimingCache, HitMissInsertAccounting)
{
    TimingCache cache;
    std::string k1 = TimingCache::key("nx", 1, "a");
    std::string k2 = TimingCache::key("nx", 2, "b");

    EXPECT_FALSE(cache.lookup(k1).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    cache.insert(k1, 1.5e-3);
    EXPECT_EQ(cache.stats().inserts, 1u);
    EXPECT_EQ(cache.size(), 1u);

    auto hit = cache.lookup(k1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(*hit, 1.5e-3);
    EXPECT_EQ(cache.stats().hits, 1u);

    // First writer wins; re-insert is not counted and does not
    // retime the entry.
    cache.insert(k1, 9.0);
    EXPECT_EQ(cache.stats().inserts, 1u);
    EXPECT_DOUBLE_EQ(*cache.lookup(k1), 1.5e-3);

    cache.insert(k2, 2.0e-3);
    EXPECT_EQ(cache.stats().inserts, 2u);
    EXPECT_EQ(cache.size(), 2u);

    cache.resetStats();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().inserts, 0u);
    EXPECT_EQ(cache.size(), 2u); // entries survive a stats reset
}

TEST(TimingCache, SerializeRoundTripIsCanonical)
{
    TimingCache a, b;
    // Same contents, different insertion order.
    a.insert(TimingCache::key("nx", 7, "x"), 1e-3);
    a.insert(TimingCache::key("agx", 9, "y"), 2e-3);
    b.insert(TimingCache::key("agx", 9, "y"), 2e-3);
    b.insert(TimingCache::key("nx", 7, "x"), 1e-3);
    EXPECT_EQ(a.serialize(), b.serialize());

    TimingCache back =
        TimingCache::deserialize(a.serialize()).value();
    EXPECT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(*back.lookup(TimingCache::key("nx", 7, "x")),
                     1e-3);
    EXPECT_EQ(back.serialize(), a.serialize());
    // Stats are not part of the serialized state (the lookups above
    // started from zero plus one hit).
    EXPECT_EQ(back.stats().hits, 1u);
}

TEST(TimingCache, DeserializeRejectsGarbage)
{
    // Cache files are untrusted input: garbage yields an error
    // Status, never an abort or a throw.
    std::vector<std::uint8_t> junk = {'n', 'o', 'p', 'e', 1, 2, 3};
    auto r = TimingCache::deserialize(junk);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);

    std::vector<std::uint8_t> empty;
    EXPECT_FALSE(TimingCache::deserialize(empty).ok());
}

TEST(TimingCache, LoadIgnoresCorruptFileWithWarning)
{
    // A corrupt on-disk cache must never kill a build: load() warns
    // and starts cold.
    std::string path = ::testing::TempDir() + "edgert_corrupt.cache";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const char junk[] = "definitely not a timing cache";
        std::fwrite(junk, 1, sizeof(junk), f);
        std::fclose(f);
    }
    setLogSink([](LogLevel, const std::string &) {});
    TimingCache cache = TimingCache::load(path);
    setLogSink({});
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

TEST(TimingCache, FileRoundTripAndColdStart)
{
    std::string path = ::testing::TempDir() + "edgert_timing.cache";
    std::remove(path.c_str());

    // Missing file: cold start with an empty cache.
    TimingCache cold = TimingCache::load(path);
    EXPECT_EQ(cold.size(), 0u);

    cold.insert(TimingCache::key("nx", 3, "t"), 4e-3);
    cold.save(path);
    TimingCache warm = TimingCache::load(path);
    EXPECT_EQ(warm.serialize(), cold.serialize());
    std::remove(path.c_str());
}

TEST(TimingCache, SharedCacheFreezesTacticsAcrossBuildIds)
{
    // Finding 6 mitigation: without a cache, rebuilds of a large
    // model under different build ids pick different tactics; with
    // a shared cache, every rebuild reuses the frozen timings and
    // the tactic mapping (hence the fingerprint, which hashes the
    // tactic selection but not the build id) is identical.
    Network net = nn::buildZooModel("inception-v4");
    const DeviceSpec agx = DeviceSpec::xavierAGX();

    std::set<std::uint64_t> uncached, cached;
    TimingCache cache;
    for (std::uint64_t id = 0; id < 6; id++) {
        BuilderConfig plain;
        plain.build_id = id;
        uncached.insert(
            Builder(agx, plain).build(net).fingerprint());

        BuilderConfig shared = plain;
        shared.timing_cache = &cache;
        cached.insert(
            Builder(agx, shared).build(net).fingerprint());
    }
    EXPECT_GE(uncached.size(), 2u) << "rebuilds should vary";
    EXPECT_EQ(cached.size(), 1u) << "shared cache must freeze them";
}

TEST(TimingCache, WarmRebuildHitsEverythingAndMeasuresNothing)
{
    Network net = nn::buildZooModel("resnet-18");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    TimingCache cache;

    BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.timing_cache = &cache;
    Builder(nx, cfg).build(net);
    auto s1 = cache.stats();
    EXPECT_GT(s1.inserts, 0u);
    EXPECT_EQ(s1.hits, 0u) << "cold build starts from empty";
    EXPECT_EQ(s1.misses, s1.inserts);

    cache.resetStats();
    cfg.build_id = 2; // different id: measurements would differ...
    Builder(nx, cfg).build(net);
    auto s2 = cache.stats();
    EXPECT_EQ(s2.misses, 0u) << "...but the warm cache hits all";
    EXPECT_EQ(s2.inserts, 0u);
    EXPECT_EQ(s2.hits, s1.misses);
}

TEST(TimingCache, NotSharedAcrossDevicePresets)
{
    // The inverse of the mitigation: a cache warmed on NX must not
    // leak timings into an AGX build. The AGX build through the
    // NX-warm cache is bit-identical to an AGX build with no cache
    // history at all, and it hits nothing.
    Network net = nn::buildZooModel("resnet-18");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    const DeviceSpec agx = DeviceSpec::xavierAGX();

    TimingCache shared;
    BuilderConfig cfg;
    cfg.build_id = 5;
    cfg.timing_cache = &shared;
    Builder(nx, cfg).build(net);
    shared.resetStats();

    Engine via_nx_cache = Builder(agx, cfg).build(net);
    EXPECT_EQ(shared.stats().hits, 0u);
    EXPECT_GT(shared.stats().inserts, 0u);

    TimingCache fresh;
    BuilderConfig fresh_cfg = cfg;
    fresh_cfg.timing_cache = &fresh;
    Engine via_fresh = Builder(agx, fresh_cfg).build(net);
    EXPECT_EQ(via_nx_cache.serialize(), via_fresh.serialize());
}

TEST(TimingCache, ParallelAndSerialBuildsProduceIdenticalCaches)
{
    Network net = nn::buildZooModel("googlenet");
    const DeviceSpec nx = DeviceSpec::xavierNX();

    TimingCache serial_cache, parallel_cache;
    BuilderConfig serial;
    serial.build_id = 11;
    serial.jobs = 1;
    serial.timing_cache = &serial_cache;
    BuilderConfig parallel = serial;
    parallel.jobs = 4;
    parallel.timing_cache = &parallel_cache;

    Engine a = Builder(nx, serial).build(net);
    Engine b = Builder(nx, parallel).build(net);
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_EQ(serial_cache.serialize(), parallel_cache.serialize());
}

} // namespace
} // namespace edgert::core
