/**
 * @file
 * Semantic-preservation tests for weight folding: the folded
 * network (one kernel per fused node, normalization folded into
 * conv weights) must compute the same function as the original
 * layer-by-layer network, up to float rounding.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/folding.hh"
#include "nn/executor.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

using nn::Dims;
using nn::Network;
using nn::Tensor;

Tensor
randomTensor(const Dims &d, std::uint64_t seed)
{
    Tensor t(d);
    Rng rng(seed);
    for (std::int64_t i = 0; i < t.volume(); i++)
        t[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    return t;
}

/** Run both networks on the same inputs and compare all outputs. */
void
expectEquivalent(const Network &net, const nn::WeightsStore &ws,
                 double tol, std::uint64_t seed = 99)
{
    auto graph = optimize(net, nn::Precision::kFp16);
    FoldedModel folded = foldOptimizedGraph(graph, ws);

    nn::Executor ref(net, ws);
    nn::Executor fld(*folded.network, *folded.weights);

    std::unordered_map<std::string, Tensor> ins;
    std::uint64_t s = seed;
    for (const auto &in : net.inputs())
        ins[in] = randomTensor(net.tensor(in).dims, s++);

    auto a = ref.run(ins);
    auto b = fld.run(ins);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[name, ta] : a) {
        const Tensor &tb = b.at(name);
        ASSERT_EQ(ta.dims(), tb.dims());
        for (std::int64_t i = 0; i < ta.volume(); i++)
            EXPECT_NEAR(tb[i], ta[i],
                        tol + tol * std::fabs(ta[i]))
                << name << "[" << i << "]";
    }
}

TEST(Folding, ConvBnScaleRelu)
{
    Network net("chain");
    net.addInput("in", Dims(1, 4, 6, 6));
    nn::ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("conv", "in", p);
    net.addBatchNorm("bn", "conv");
    net.addScale("sc", "bn");
    net.addActivation("relu", "sc", {});
    net.markOutput("relu");
    nn::WeightsStore ws(net, 7);
    expectEquivalent(net, ws, 1e-4);
}

TEST(Folding, ConvWithoutBiasGainsFoldedBias)
{
    Network net("nobias");
    net.addInput("in", Dims(1, 3, 5, 5));
    nn::ConvParams p;
    p.out_channels = 6;
    p.kernel = 3;
    p.pad = 1;
    p.has_bias = false;
    net.addConvolution("conv", "in", p);
    net.addBatchNorm("bn", "conv");
    net.markOutput("bn");
    nn::WeightsStore ws(net, 9);
    expectEquivalent(net, ws, 1e-4);

    // The folded conv carries the bn shift as a bias.
    auto g = optimize(net, nn::Precision::kFp16);
    FoldedModel fm = foldOptimizedGraph(g, ws);
    bool found = false;
    for (const auto &l : fm.network->layers())
        if (l.kind == nn::LayerKind::kConvolution) {
            EXPECT_TRUE(l.as<nn::ConvParams>().has_bias);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Folding, FullyConnectedChain)
{
    Network net("fc");
    net.addInput("in", Dims(1, 8, 2, 2));
    nn::FcParams p;
    p.out_features = 10;
    net.addFullyConnected("fc", "in", p);
    net.addBatchNorm("bn", "fc");
    net.addActivation("relu", "bn", {});
    net.markOutput("relu");
    nn::WeightsStore ws(net, 11);
    expectEquivalent(net, ws, 1e-4);
}

TEST(Folding, HorizontalMergeUnmergesCorrectly)
{
    Network net("merge");
    net.addInput("in", Dims(1, 8, 6, 6));
    nn::ConvParams p1;
    p1.out_channels = 4;
    net.addConvolution("a", "in", p1);
    net.addActivation("ra", "a", {});
    nn::ConvParams p2;
    p2.out_channels = 12;
    net.addConvolution("b", "in", p2);
    net.addActivation("rb", "b", {});
    net.addConcat("cat", {"ra", "rb"});
    net.markOutput("cat");
    nn::WeightsStore ws(net, 13);
    // Sanity: the merge actually happened.
    auto g = optimize(net, nn::Precision::kFp16);
    EXPECT_EQ(g.stats().horizontal_merges, 1);
    expectEquivalent(net, ws, 1e-4);
}

TEST(Folding, ResidualBlock)
{
    Network net("res");
    net.addInput("in", Dims(1, 8, 6, 6));
    nn::ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("c1", "in", p);
    net.addBatchNorm("bn1", "c1");
    net.addActivation("r1", "bn1", {});
    net.addConvolution("c2", "r1", p);
    net.addBatchNorm("bn2", "c2");
    auto sum = net.addEltwise("sum", {"bn2", "in"}, {});
    net.addActivation("out", sum, {});
    net.markOutput("out");
    nn::WeightsStore ws(net, 17);
    expectEquivalent(net, ws, 1e-4);
}

TEST(Folding, DeadBranchesDisappear)
{
    Network net("dead");
    net.addInput("in", Dims(1, 4, 4, 4));
    nn::ConvParams p;
    p.out_channels = 4;
    net.addConvolution("live", "in", p);
    net.addConvolution("dead", "in", p); // never marked
    net.markOutput("live");
    nn::WeightsStore ws(net, 19);
    auto g = optimize(net, nn::Precision::kFp16);
    FoldedModel fm = foldOptimizedGraph(g, ws);
    EXPECT_FALSE(fm.network->hasTensor("dead"));
    expectEquivalent(net, ws, 1e-4);
}

TEST(Folding, MtcnnEndToEnd)
{
    // The smallest full zoo model (multi-input, PRelu, FCs,
    // softmaxes): folded execution matches the reference.
    Network net = nn::buildZooModel("mtcnn");
    nn::WeightsStore ws(net, 23);
    expectEquivalent(net, ws, 5e-4);
}

TEST(Folding, FoldedGraphHasFewerLayers)
{
    // BN/scale-heavy models shrink: their normalization layers
    // vanish into the conv weights.
    Network net = nn::buildZooModel("resnet-18");
    nn::WeightsStore ws(net, 23);
    auto g = optimize(net, nn::Precision::kFp16);
    FoldedModel fm = foldOptimizedGraph(g, ws);
    EXPECT_LT(fm.network->layers().size(),
              net.layers().size() * 3 / 4);
}

class FoldingRandomTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FoldingRandomTest, RandomGraphsFoldEquivalently)
{
    // Reuse the random generator shape from property_graph_test via
    // a local generator (kept independent to vary the structures).
    Rng rng(GetParam());
    Network net("rf-" + std::to_string(GetParam()));
    std::string cur = net.addInput("in", Dims(1, 6, 8, 8));
    std::int64_t ch = 6;
    int ctr = 0;
    for (int i = 0; i < static_cast<int>(rng.range(3, 8)); i++) {
        switch (rng.below(5)) {
          case 0: {
            nn::ConvParams p;
            p.out_channels = rng.range(4, 10);
            p.kernel = 3;
            p.pad = 1;
            p.has_bias = rng.chance(0.5);
            cur = net.addConvolution("c" + std::to_string(ctr++),
                                     cur, p);
            ch = p.out_channels;
            break;
          }
          case 1:
            cur = net.addBatchNorm("b" + std::to_string(ctr++), cur);
            break;
          case 2:
            cur = net.addScale("s" + std::to_string(ctr++), cur);
            break;
          case 3:
            cur = net.addActivation("r" + std::to_string(ctr++),
                                    cur, {});
            break;
          case 4: {
            nn::PoolParams p;
            p.kernel = 2;
            p.stride = 1;
            cur = net.addPooling("p" + std::to_string(ctr++), cur,
                                 p);
            break;
          }
        }
    }
    (void)ch;
    net.markOutput(cur);
    nn::WeightsStore ws(net, GetParam() * 31 + 1);
    expectEquivalent(net, ws, 5e-4, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldingRandomTest,
                         ::testing::Range<std::uint64_t>(1, 16));

} // namespace
} // namespace edgert::core
