/**
 * @file
 * Fault-injection tests for EdgeServe: injected engine-load
 * failures must be retried (rebuilds), counted in the metric
 * registry, and — when a model's loads keep failing everywhere —
 * degrade just that model (its traffic is shed) while the rest of
 * the fleet keeps serving. A load fault must never crash the
 * scheduler.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"

namespace edgert::serve {
namespace {

using obs::MetricRegistry;

ServeConfig
twoModelConfig()
{
    ServeConfig cfg;
    ModelConfig a;
    a.model = "alexnet";
    a.slo_ms = 30;
    a.arrivals.qps = 150;
    cfg.models.push_back(a);
    ModelConfig b = a;
    b.model = "resnet-18";
    b.arrivals.qps = 100;
    cfg.models.push_back(b);
    cfg.devices.push_back(parseDevice("nx"));
    cfg.duration_s = 0.5;
    return cfg;
}

/** Find a model's stats in a report. */
const ModelStats &
statsOf(const ServeReport &rep, const std::string &model)
{
    for (const auto &m : rep.models)
        if (m.model == model)
            return m;
    ADD_FAILURE() << "model " << model << " missing from report";
    static ModelStats none;
    return none;
}

TEST(ServeFaults, TransientLoadFailureIsRebuiltAndCounted)
{
    MetricRegistry::global().reset();
    ServeConfig cfg = twoModelConfig();
    cfg.faults.engine_load_failures["alexnet"] = 1;
    cfg.faults.max_load_attempts = 2;

    setLogSink([](LogLevel, const std::string &) {});
    ServeReport rep = runServer(cfg);
    setLogSink({});

    const ModelStats &m = statsOf(rep, "alexnet");
    EXPECT_FALSE(m.degraded);
    EXPECT_EQ(m.load_failures, 1);
    EXPECT_EQ(m.rebuilds, 1);
    EXPECT_GT(m.completed, 0);
    EXPECT_EQ(MetricRegistry::global()
                  .counter("serve.engine.load_failures",
                           {{"model", "alexnet"}})
                  .value(),
              1);
    EXPECT_EQ(MetricRegistry::global()
                  .counter("serve.engine.rebuilds",
                           {{"model", "alexnet"}})
                  .value(),
              1);
}

TEST(ServeFaults, PersistentFailureDegradesOnlyThatModel)
{
    MetricRegistry::global().reset();
    ServeConfig cfg = twoModelConfig();
    // Far more faults than the scheduler will ever attempt: every
    // load of alexnet fails, on every device.
    cfg.faults.engine_load_failures["alexnet"] = 100;
    cfg.faults.max_load_attempts = 2;

    setLogSink([](LogLevel, const std::string &) {});
    ServeReport rep = runServer(cfg);
    setLogSink({});

    const ModelStats &bad = statsOf(rep, "alexnet");
    EXPECT_TRUE(bad.degraded);
    EXPECT_EQ(bad.instances, 0);
    EXPECT_GT(bad.offered, 0);
    EXPECT_EQ(bad.shed, bad.offered) << "all traffic shed";
    EXPECT_EQ(bad.completed, 0);
    EXPECT_EQ(bad.load_failures, 2) << "one per attempt";

    // The healthy model is untouched by its neighbour's faults.
    const ModelStats &good = statsOf(rep, "resnet-18");
    EXPECT_FALSE(good.degraded);
    EXPECT_EQ(good.load_failures, 0);
    EXPECT_GT(good.completed, 0);

    std::string json = rep.toJson();
    EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
    EXPECT_NE(json.find("\"degraded\": false"), std::string::npos);
}

TEST(ServeFaults, FaultyRunsStayDeterministic)
{
    auto run = []() {
        MetricRegistry::global().reset();
        ServeConfig cfg = twoModelConfig();
        cfg.faults.engine_load_failures["alexnet"] = 100;
        setLogSink([](LogLevel, const std::string &) {});
        ServeReport rep = runServer(cfg);
        setLogSink({});
        return rep.toJson();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace edgert::serve
