/**
 * @file
 * Tests for the EdgeServe request queue, the dynamic batcher's
 * dispatch decision, and the SLO-admission sojourn predictor.
 */

#include <gtest/gtest.h>

#include "serve/batcher.hh"
#include "serve/queue.hh"

namespace edgert::serve {
namespace {

/** One-instance backend with a {1,2,4,8} ladder. `base_s` is the
 *  batch-1 service; each ladder step costs 1.5x the previous. */
BackendView
ladderBackend(double free_s, double base_s)
{
    BackendView view;
    view.ladder = {1, 2, 4, 8};
    BackendView::InstanceView inst;
    inst.free_s = free_s;
    double s = base_s;
    for (std::size_t i = 0; i < view.ladder.size(); i++) {
        inst.service_s.push_back(s);
        s *= 1.5;
    }
    view.instances.push_back(inst);
    return view;
}

TEST(RequestQueue, FifoCutOrder)
{
    RequestQueue q;
    q.push(10, 0.1);
    q.push(11, 0.2);
    q.push(12, 0.3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.frontId(), 10);
    EXPECT_DOUBLE_EQ(q.oldestArrivalSeconds(), 0.1);
    auto ids = q.cut(2);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 10);
    EXPECT_EQ(ids[1], 11);
    EXPECT_EQ(q.frontId(), 12);
    EXPECT_FALSE(q.empty());
}

TEST(RequestQueue, EwmaRateConvergesToArrivalRate)
{
    RequestQueue q;
    // 200 Hz arrivals for 8 simulated seconds — 16 EWMA time
    // constants, so the estimate has fully converged.
    for (int i = 0; i < 1600; i++)
        q.observeArrival(i * 0.005);
    EXPECT_NEAR(q.rateHz(), 200.0, 1.0);
}

TEST(Batcher, DispatchesFullBatchImmediately)
{
    DynamicBatcher b({4, 5000.0});
    EXPECT_EQ(b.decide(4, 1.0, 1.0), 4);
    EXPECT_EQ(b.decide(9, 1.0, 1.0), 4);
}

TEST(Batcher, WaitsForTimeoutThenFlushesPartial)
{
    DynamicBatcher b({8, 2000.0});
    // Oldest queued at t=1.0 s; timeout fires at 1.002 s.
    EXPECT_EQ(b.decide(3, 1.0, 1.0010), 0);
    EXPECT_EQ(b.decide(3, 1.0, 1.0020), 3);
    EXPECT_EQ(b.decide(3, 1.0, 1.5), 3);
}

TEST(Sojourn, EmptyBackendIsInfeasible)
{
    BackendView view;
    view.ladder = {1};
    BatchPolicy policy;
    EXPECT_GT(predictSojournSeconds(view, policy, 0, 0.0, 100.0),
              1e6);
}

TEST(Sojourn, IdleBackendPredictsSmallBatchService)
{
    // Idle instance, empty queue, slow arrivals: the estimate is
    // near fill-wait + batch-1 service, nowhere near the batch-8
    // worst case (which would make admission shed light traffic).
    BackendView view = ladderBackend(0.0, 0.010);
    BatchPolicy policy{8, 2000.0};
    double est = predictSojournSeconds(view, policy, 0, 0.0, 10.0);
    EXPECT_GE(est, 0.010);
    EXPECT_LT(est, 0.010 * 1.5 + 0.0021); // < batch-2 svc + timeout
}

TEST(Sojourn, GrowsWithBacklog)
{
    BackendView view = ladderBackend(0.0, 0.010);
    BatchPolicy policy{8, 2000.0};
    double prev = -1.0;
    for (int backlog : {0, 8, 16, 32}) {
        double est =
            predictSojournSeconds(view, policy, backlog, 0.0, 100.0);
        EXPECT_GT(est, prev);
        prev = est;
    }
    // 32 queued ahead = 4 full batch-8 dispatches before ours.
    double svc8 = 0.010 * 1.5 * 1.5 * 1.5;
    EXPECT_GE(prev, 4 * svc8);
}

TEST(Sojourn, BusyInstanceDelaysCompletion)
{
    BatchPolicy policy{8, 2000.0};
    double idle =
        predictSojournSeconds(ladderBackend(0.0, 0.010), policy, 0,
                              0.0, 100.0);
    double busy =
        predictSojournSeconds(ladderBackend(0.5, 0.010), policy, 0,
                              0.0, 100.0);
    EXPECT_NEAR(busy - idle, 0.5, 1e-9);
}

TEST(Sojourn, MoreInstancesDrainBacklogFaster)
{
    BatchPolicy policy{8, 2000.0};
    BackendView one = ladderBackend(0.0, 0.010);
    BackendView two = one;
    two.instances.push_back(two.instances.front());
    double est1 = predictSojournSeconds(one, policy, 32, 0.0, 100.0);
    double est2 = predictSojournSeconds(two, policy, 32, 0.0, 100.0);
    EXPECT_LT(est2, est1);
}

} // namespace
} // namespace edgert::serve
