/**
 * @file
 * Tests for the engine builder: tactic enumeration, autotuner
 * determinism under a pinned build id, cross-build variation,
 * device-dependent tactic sets (Winograd gating), engine
 * serialization, and plan-size behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "core/builder.hh"
#include "core/tactics.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

using gpusim::DeviceSpec;
using nn::Network;

TEST(Tactics, ConvHasMultipleCandidates)
{
    Network net = nn::buildZooModel("resnet-18");
    auto g = optimize(net, nn::Precision::kFp16);
    const DeviceSpec nx = DeviceSpec::xavierNX();
    bool found_conv = false;
    for (const auto &n : g.nodes()) {
        auto cands = tacticCandidates(g, n, nx);
        EXPECT_FALSE(cands.empty()) << n.name;
        for (const auto &t : cands) {
            EXPECT_FALSE(t.kernels.empty());
            for (const auto &k : t.kernels) {
                EXPECT_GT(k.grid_blocks, 0);
                EXPECT_GT(k.efficiency, 0.0);
                EXPECT_GE(k.dram_bytes, 0);
            }
        }
        if (n.kind == FusedOpKind::kConv) {
            EXPECT_GE(cands.size(), 5u);
            found_conv = true;
        }
    }
    EXPECT_TRUE(found_conv);
}

TEST(Tactics, WinogradOnlyOnEightSmDevices)
{
    Network net = nn::buildZooModel("resnet-18");
    auto g = optimize(net, nn::Precision::kFp16);
    auto has_wino = [&](const DeviceSpec &dev) {
        for (const auto &n : g.nodes())
            for (const auto &t : tacticCandidates(g, n, dev))
                if (t.name.find("winograd") != std::string::npos)
                    return true;
        return false;
    };
    EXPECT_FALSE(has_wino(DeviceSpec::xavierNX()));
    EXPECT_TRUE(has_wino(DeviceSpec::xavierAGX()));
}

TEST(Tactics, DepthwiseUsesDepthwiseKernels)
{
    Network net = nn::buildZooModel("mobilenetv1");
    auto g = optimize(net, nn::Precision::kFp16);
    const DeviceSpec nx = DeviceSpec::xavierNX();
    int depthwise_nodes = 0;
    for (const auto &n : g.nodes()) {
        if (n.kind != FusedOpKind::kConv)
            continue;
        auto cands = tacticCandidates(g, n, nx);
        if (cands[0].name.find("cuDepthwise") != std::string::npos)
            depthwise_nodes++;
    }
    EXPECT_EQ(depthwise_nodes, 13);
}

TEST(Builder, BuildValidatesNetwork)
{
    // build() must reject malformed networks at the API boundary,
    // exactly as buildUnoptimized() always did.
    Network net("no-outputs");
    net.addInput("in", nn::Dims(1, 3, 8, 8));
    net.addIdentity("a", "in"); // no output marked → invalid
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    EXPECT_THROW(Builder(nx, cfg).build(net), FatalError);
    EXPECT_THROW(Builder(nx, cfg).buildUnoptimized(net), FatalError);
}

TEST(Builder, ParallelBuildBitIdenticalToSerial)
{
    // BuilderConfig::jobs must never change the built engine: the
    // measurement noise is RNG-keyed, not schedule-dependent.
    Network net = nn::buildZooModel("googlenet");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig serial;
    serial.build_id = 42;
    serial.jobs = 1;
    BuilderConfig parallel = serial;
    parallel.jobs = 8;
    BuilderConfig automatic = serial;
    automatic.jobs = 0; // one per hardware thread
    Engine a = Builder(nx, serial).build(net);
    Engine b = Builder(nx, parallel).build(net);
    Engine c = Builder(nx, automatic).build(net);
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_EQ(a.serialize(), c.serialize());
}

TEST(Builder, PinnedBuildIdIsReproducible)
{
    Network net = nn::buildZooModel("googlenet");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    cfg.build_id = 42;
    Engine a = Builder(nx, cfg).build(net);
    Engine b = Builder(nx, cfg).build(net);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(Builder, RebuildsUsuallyDiffer)
{
    // Finding 6: engine generation is non-deterministic across
    // builds. With 10 build ids on a large model, at least two
    // distinct fingerprints must appear.
    Network net = nn::buildZooModel("inception-v4");
    const DeviceSpec agx = DeviceSpec::xavierAGX();
    std::set<std::uint64_t> prints;
    for (std::uint64_t id = 0; id < 10; id++) {
        BuilderConfig cfg;
        cfg.build_id = id;
        prints.insert(Builder(agx, cfg).build(net).fingerprint());
    }
    EXPECT_GE(prints.size(), 2u);
}

TEST(Builder, ZeroNoiseIsBuildIdIndependent)
{
    // With no timing noise the autotuner is a pure argmin: every
    // build picks identical tactics.
    Network net = nn::buildZooModel("resnet-18");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig a, b;
    a.timing_noise = b.timing_noise = 0.0;
    a.build_id = 1;
    b.build_id = 999;
    EXPECT_EQ(Builder(nx, a).build(net).fingerprint(),
              Builder(nx, b).build(net).fingerprint());
}

TEST(Builder, MoreTimingIterationsReduceVariance)
{
    Network net = nn::buildZooModel("googlenet");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    auto distinct = [&](int iters) {
        std::set<std::uint64_t> prints;
        for (std::uint64_t id = 0; id < 8; id++) {
            BuilderConfig cfg;
            cfg.build_id = id;
            cfg.avg_timing_iterations = iters;
            prints.insert(
                Builder(nx, cfg).build(net).fingerprint());
        }
        return prints.size();
    };
    EXPECT_LE(distinct(16), distinct(1));
}

TEST(Builder, ReportDescribesEveryNode)
{
    Network net = nn::buildZooModel("tiny-yolov3");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    cfg.build_id = 1;
    BuildReport report;
    Engine e = Builder(nx, cfg).build(net, &report);
    EXPECT_EQ(report.tuning.size(), e.steps().size());
    for (const auto &rec : report.tuning) {
        EXPECT_GT(rec.candidates, 0);
        EXPECT_GT(rec.best_ms, 0.0);
        EXPECT_FALSE(rec.chosen_tactic.empty());
    }
}

TEST(Builder, EngineMetadata)
{
    Network net = nn::buildZooModel("resnet-18");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    cfg.build_id = 7;
    Engine e = Builder(nx, cfg).build(net);
    EXPECT_EQ(e.modelName(), "resnet-18");
    EXPECT_EQ(e.deviceName(), "xavier-nx");
    EXPECT_EQ(e.precision(), nn::Precision::kFp16);
    EXPECT_EQ(e.buildId(), 7u);
    EXPECT_GT(e.kernelCount(), 0);
    EXPECT_GT(e.weightBytes(), 0);
    EXPECT_GT(e.weightTransfers(), 0);
    ASSERT_EQ(e.inputs().size(), 1u);
    EXPECT_EQ(e.inputs()[0].dims, nn::Dims(1, 3, 224, 224));
    ASSERT_EQ(e.outputs().size(), 1u);
}

TEST(Builder, Fp16EngineRoughlyHalvesWeights)
{
    Network net = nn::buildZooModel("vgg-16");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    cfg.build_id = 1;
    Engine e = Builder(nx, cfg).build(net);
    double ratio = static_cast<double>(e.weightBytes()) /
                   static_cast<double>(net.paramCount() * 4);
    EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(Builder, EngineSerializationRoundTrip)
{
    Network net = nn::buildZooModel("tiny-yolov3");
    const DeviceSpec agx = DeviceSpec::xavierAGX();
    BuilderConfig cfg;
    cfg.build_id = 3;
    Engine e = Builder(agx, cfg).build(net);
    Engine back = Engine::deserialize(e.serialize()).value();
    EXPECT_EQ(back.fingerprint(), e.fingerprint());
    EXPECT_EQ(back.modelName(), e.modelName());
    EXPECT_EQ(back.deviceName(), e.deviceName());
    EXPECT_EQ(back.planSizeBytes(), e.planSizeBytes());
    EXPECT_EQ(back.kernelCount(), e.kernelCount());
    ASSERT_EQ(back.steps().size(), e.steps().size());
    EXPECT_EQ(back.steps()[0].tactic_name, e.steps()[0].tactic_name);
    EXPECT_EQ(back.serialize(), e.serialize());
}

TEST(Builder, UnoptimizedMapsEveryLiveLayer)
{
    Network net = nn::buildZooModel("alexnet");
    const DeviceSpec nx = DeviceSpec::xavierNX();
    BuilderConfig cfg;
    Engine raw = Builder(nx, cfg).buildUnoptimized(net);
    // One step per non-input layer: no fusion at all.
    EXPECT_EQ(raw.steps().size(), net.layers().size() -
                                      net.inputs().size());
    EXPECT_EQ(raw.precision(), nn::Precision::kFp32);
    // FP32 weights are twice the FP16 engine's.
    Engine opt = Builder(nx, cfg).build(net);
    EXPECT_GT(raw.weightBytes(), opt.weightBytes());
}

TEST(Builder, AgxEngineLargerForWinogradModels)
{
    // Table II shape: ResNet-18's AGX plan is much larger than its
    // NX plan; AlexNet's is not.
    BuilderConfig cfg;
    cfg.build_id = 1;
    const DeviceSpec nx = DeviceSpec::xavierNX();
    const DeviceSpec agx = DeviceSpec::xavierAGX();

    Network resnet = nn::buildZooModel("resnet-18");
    double r_nx = static_cast<double>(
        Builder(nx, cfg).build(resnet).planSizeBytes());
    double r_agx = static_cast<double>(
        Builder(agx, cfg).build(resnet).planSizeBytes());
    EXPECT_GT(r_agx, 1.5 * r_nx);

    Network alex = nn::buildZooModel("alexnet");
    double a_nx = static_cast<double>(
        Builder(nx, cfg).build(alex).planSizeBytes());
    double a_agx = static_cast<double>(
        Builder(agx, cfg).build(alex).planSizeBytes());
    EXPECT_LT(a_agx, 1.1 * a_nx);
}

} // namespace
} // namespace edgert::core
