/**
 * @file
 * Tests for the per-layer precision selector and the mixed-precision
 * engine path: budget extremes, genuinely mixed builds, plan
 * serialization round-trips, the per-step precision byte under
 * corruption, calibration-seed determinism, and the
 * precision-effective throughput factor the serve/fleet layers rank
 * devices by.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/framing.hh"
#include "common/logging.hh"
#include "core/builder.hh"
#include "core/calibrator.hh"
#include "core/engine.hh"
#include "core/precision.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

// Plan file framing (mirrors engine.cc): "ERTE" magic, framed v2.
constexpr std::uint32_t kPlanMagic = 0x45545245;
constexpr std::uint32_t kPlanVersion = 2;

/** Swallow log output while exercising rejection paths. */
class QuietLogs
{
  public:
    QuietLogs() { setLogSink([](LogLevel, const std::string &) {}); }
    ~QuietLogs() { setLogSink({}); }
};

Engine
buildMixed(std::uint64_t calibration_seed = 0,
           const std::string &model = "resnet-18",
           BuildReport *report = nullptr)
{
    nn::Network net = nn::buildZooModel(model);
    BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.precision = nn::Precision::kMixed;
    cfg.calibration_seed = calibration_seed;
    return Builder(gpusim::DeviceSpec::xavierNX(), cfg)
        .build(net, report);
}

TEST(PrecisionSelector, HugeBudgetsKeepEverythingInt8)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    auto graph = optimize(net, nn::Precision::kInt8);
    Int8Calibrator calib(net, 1);
    PrecisionPlanConfig cfg;
    cfg.layer_margin_budget = 1e9;
    cfg.total_margin_budget = 1e9;
    PrecisionPlan plan = selectPrecisions(graph, calib, cfg);
    ASSERT_FALSE(plan.decisions.empty());
    EXPECT_EQ(plan.fp16_fallbacks, 0);
    EXPECT_EQ(plan.int8_nodes,
              static_cast<int>(plan.decisions.size()));
    EXPECT_DOUBLE_EQ(plan.fallback_loss, 0.0);
    EXPECT_GT(plan.quantized_loss, 0.0);
}

TEST(PrecisionSelector, ZeroBudgetsFallEverythingBack)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    auto graph = optimize(net, nn::Precision::kInt8);
    Int8Calibrator calib(net, 1);
    PrecisionPlanConfig cfg;
    cfg.layer_margin_budget = 0.0;
    cfg.total_margin_budget = 0.0;
    PrecisionPlan plan = selectPrecisions(graph, calib, cfg);
    ASSERT_FALSE(plan.decisions.empty());
    EXPECT_EQ(plan.int8_nodes, 0);
    EXPECT_EQ(plan.fp16_fallbacks,
              static_cast<int>(plan.decisions.size()));
}

TEST(PrecisionSelector, TotalBudgetIsRespected)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    auto graph = optimize(net, nn::Precision::kInt8);
    Int8Calibrator calib(net, 1);
    PrecisionPlanConfig cfg; // defaults
    PrecisionPlan plan = selectPrecisions(graph, calib, cfg);
    EXPECT_LE(plan.quantized_loss, cfg.total_margin_budget);
    // Fingerprint is a pure function of the decisions.
    EXPECT_EQ(plan.fingerprint(),
              selectPrecisions(graph, calib, cfg).fingerprint());
    PrecisionPlanConfig zero;
    zero.layer_margin_budget = 0.0;
    zero.total_margin_budget = 0.0;
    EXPECT_NE(plan.fingerprint(),
              selectPrecisions(graph, calib, zero).fingerprint());
}

TEST(MixedBuild, ProducesGenuinelyMixedEngine)
{
    BuildReport report;
    Engine e = buildMixed(0, "resnet-18", &report);
    EXPECT_EQ(e.precision(), nn::Precision::kMixed);
    EXPECT_NE(e.calibrationFingerprint(), 0u);

    // The default budgets keep most of resnet-18 in INT8 but force
    // at least one FP16 fallback — both step precisions coexist.
    ASSERT_FALSE(report.precision_plan.decisions.empty());
    EXPECT_GT(report.precision_plan.int8_nodes, 0);
    EXPECT_GT(report.precision_plan.fp16_fallbacks, 0);
    int int8_steps = 0, fp16_steps = 0;
    for (const auto &s : e.steps()) {
        if (s.precision == nn::Precision::kInt8)
            int8_steps++;
        if (s.precision == nn::Precision::kFp16)
            fp16_steps++;
        // Step-level precisions stay concrete.
        EXPECT_NE(s.precision, nn::Precision::kMixed);
    }
    EXPECT_GT(int8_steps, 0);
    EXPECT_GT(fp16_steps, 0);

    // The INT8 compute share is a genuine mix, strictly between the
    // all-FP16 and all-INT8 poles.
    EXPECT_GT(e.int8ComputeFraction(), 0.0);
    EXPECT_LT(e.int8ComputeFraction(), 1.0);
}

TEST(MixedBuild, Int8FractionPoles)
{
    nn::Network net = nn::buildZooModel("alexnet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    BuilderConfig f16, i8;
    f16.build_id = i8.build_id = 1;
    i8.precision = nn::Precision::kInt8;
    EXPECT_DOUBLE_EQ(
        Builder(nx, f16).build(net).int8ComputeFraction(), 0.0);
    EXPECT_GT(Builder(nx, i8).build(net).int8ComputeFraction(), 0.9);
}

TEST(MixedBuild, SerializeRoundTripPreservesPlan)
{
    Engine e = buildMixed();
    auto r = Engine::deserialize(e.serialize());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->precision(), nn::Precision::kMixed);
    EXPECT_EQ(r->fingerprint(), e.fingerprint());
    EXPECT_EQ(r->calibrationFingerprint(),
              e.calibrationFingerprint());
    ASSERT_EQ(r->steps().size(), e.steps().size());
    for (std::size_t i = 0; i < e.steps().size(); i++)
        EXPECT_EQ(r->steps()[i].precision, e.steps()[i].precision)
            << e.steps()[i].node_name;
    EXPECT_DOUBLE_EQ(r->int8ComputeFraction(),
                     e.int8ComputeFraction());
}

TEST(MixedBuild, SameSeedByteIdenticalDifferentSeedDiffers)
{
    // The calibrator — and therefore the plan and the engine — is a
    // pure function of (model, calibration seed).
    EXPECT_EQ(buildMixed(7).serialize(), buildMixed(7).serialize());
    EXPECT_NE(buildMixed(7).calibrationFingerprint(),
              buildMixed(8).calibrationFingerprint());
}

/** Little-endian u32 at `at`. */
std::uint32_t
readU32(const std::vector<std::uint8_t> &b, std::size_t at)
{
    return static_cast<std::uint32_t>(b[at]) |
           static_cast<std::uint32_t>(b[at + 1]) << 8 |
           static_cast<std::uint32_t>(b[at + 2]) << 16 |
           static_cast<std::uint32_t>(b[at + 3]) << 24;
}

/**
 * Payload offsets of the two precision bytes a plan carries: the
 * engine-level one in the header and the per-step one of step 0.
 * Walks the serialized layout (strings are u32-length-prefixed).
 */
void
precisionByteOffsets(const std::vector<std::uint8_t> &payload,
                     std::size_t *engine_at, std::size_t *step0_at)
{
    std::size_t at = 0;
    auto skipStr = [&] { at += 4 + readU32(payload, at); };
    skipStr();        // model name
    skipStr();        // device name
    *engine_at = at;  // engine-level precision
    at += 1 + 8 + 8;  // precision, build id, calibration fingerprint
    for (int io = 0; io < 2; io++) {
        std::uint32_t n = readU32(payload, at);
        at += 4;
        for (std::uint32_t i = 0; i < n; i++) {
            skipStr();
            at += 5 * 8; // dims + bytes
        }
    }
    at += 4;   // step count
    skipStr(); // node name
    at += 1;   // fused-op kind
    skipStr(); // tactic name
    *step0_at = at;
}

TEST(MixedBuild, CorruptPrecisionBytesAreRejected)
{
    QuietLogs quiet;
    Engine e = buildMixed();
    auto framed = frameUnwrap(kPlanMagic, kPlanVersion, kPlanVersion,
                              e.serialize(), "engine plan");
    ASSERT_TRUE(framed.ok());
    std::size_t engine_at = 0, step0_at = 0;
    precisionByteOffsets(framed->payload, &engine_at, &step0_at);
    ASSERT_EQ(framed->payload[engine_at],
              static_cast<std::uint8_t>(nn::Precision::kMixed));

    // Re-frame each patched payload with a valid CRC so the byte
    // reaches the semantic validator instead of the checksum.
    auto patched = [&](std::size_t at, std::uint8_t v) {
        auto payload = framed->payload;
        payload[at] = v;
        return frameWrap(kPlanMagic, kPlanVersion, payload);
    };
    // Out-of-range values are rejected at either level.
    EXPECT_FALSE(Engine::deserialize(patched(engine_at, 7)).ok());
    EXPECT_FALSE(Engine::deserialize(patched(step0_at, 0xff)).ok());
    // kMixed is an engine-level label only: a *step* claiming it is
    // corrupt even though the same byte is legal in the header.
    EXPECT_FALSE(
        Engine::deserialize(
            patched(step0_at,
                    static_cast<std::uint8_t>(nn::Precision::kMixed)))
            .ok());
    // Sanity: an untouched re-frame still loads.
    EXPECT_TRUE(
        Engine::deserialize(
            frameWrap(kPlanMagic, kPlanVersion, framed->payload))
            .ok());
}

TEST(PrecisionThroughput, FactorOrdersPrecisions)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    double fp32 = precisionThroughputFactor(nx, nn::Precision::kFp32);
    double fp16 = precisionThroughputFactor(nx, nn::Precision::kFp16);
    double mixed =
        precisionThroughputFactor(nx, nn::Precision::kMixed);
    double int8 = precisionThroughputFactor(nx, nn::Precision::kInt8);
    EXPECT_LT(fp32, fp16);
    EXPECT_DOUBLE_EQ(fp16, 1.0);
    EXPECT_GT(mixed, fp16);
    EXPECT_GT(int8, mixed);
    EXPECT_DOUBLE_EQ(int8, nx.int8_speedup);
    EXPECT_DOUBLE_EQ(mixed, 0.5 * (1.0 + nx.int8_speedup));
}

} // namespace
} // namespace edgert::core
