/**
 * @file
 * Corruption fuzzing for the binary file formats. Engine plans,
 * timing caches and frozen models are untrusted input: a stream
 * with any byte flipped, any prefix truncated, or trailing bytes
 * appended must come back as a clean error Status — never an
 * abort, an uncaught exception, or a huge allocation. The framed
 * formats (engine plan, timing cache) carry a CRC-32 over the
 * payload, so *every* single-byte corruption is detected; the
 * unframed network format must simply never escape the Status
 * contract. Legacy (pre-frame, version 1) files must stay
 * readable.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/builder.hh"
#include "core/engine.hh"
#include "core/timing_cache.hh"
#include "deploy/repository.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "nn/serialize.hh"

namespace edgert {
namespace {

/** Swallow log output while fuzzing (rejections warn/error). */
class QuietLogs
{
  public:
    QuietLogs() { setLogSink([](LogLevel, const std::string &) {}); }
    ~QuietLogs() { setLogSink({}); }
};

std::vector<std::uint8_t>
flipByte(const std::vector<std::uint8_t> &bytes, std::size_t at)
{
    std::vector<std::uint8_t> out = bytes;
    out[at] ^= 0xff;
    return out;
}

/**
 * Rewrap a framed v2 stream as its legacy (version 1) equivalent:
 * [magic][1][payload] with no length header and no CRC. The body
 * layout did not change when framing was introduced, so this is
 * byte-exact what an old EdgeRT build would have written.
 */
std::vector<std::uint8_t>
asLegacyV1(const std::vector<std::uint8_t> &framed)
{
    // Framed layout: [magic u32][version u32][len u64][payload][crc].
    EXPECT_GE(framed.size(), 20u);
    std::vector<std::uint8_t> out(framed.begin(), framed.begin() + 4);
    out.push_back(1);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    out.insert(out.end(), framed.begin() + 16, framed.end() - 4);
    return out;
}

core::Engine
smallEngine()
{
    nn::Network net = nn::buildZooModel("alexnet");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    return core::Builder(gpusim::DeviceSpec::xavierNX(), cfg)
        .build(net);
}

TEST(FuzzEngine, EveryByteFlipIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallEngine().serialize();
    ASSERT_TRUE(core::Engine::deserialize(bytes).ok());
    // The CRC covers the payload and the frame header is fully
    // validated, so no single-byte flip anywhere may slip through.
    for (std::size_t at = 0; at < bytes.size(); at++) {
        auto r = core::Engine::deserialize(flipByte(bytes, at));
        EXPECT_FALSE(r.ok()) << "flip at offset " << at
                             << " was not detected";
    }
}

TEST(FuzzEngine, EveryTruncationIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallEngine().serialize();
    for (std::size_t len = 0; len < bytes.size(); len++) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        EXPECT_FALSE(core::Engine::deserialize(prefix).ok())
            << "truncation to " << len << " bytes was not detected";
    }
}

TEST(FuzzEngine, TrailingBytesAreDetected)
{
    QuietLogs quiet;
    auto bytes = smallEngine().serialize();
    bytes.push_back(0);
    EXPECT_FALSE(core::Engine::deserialize(bytes).ok());
}

TEST(FuzzEngine, LegacyVersion1PlansStayReadable)
{
    QuietLogs quiet;
    core::Engine e = smallEngine();
    auto legacy = asLegacyV1(e.serialize());
    auto r = core::Engine::deserialize(legacy);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->fingerprint(), e.fingerprint());
    EXPECT_EQ(r->modelName(), e.modelName());
    EXPECT_EQ(r->steps().size(), e.steps().size());
}

std::vector<std::uint8_t>
smallCacheBytes()
{
    core::TimingCache cache;
    cache.insert(core::TimingCache::key("nx", 1, "gemm"), 1e-3);
    cache.insert(core::TimingCache::key("agx", 2, "winograd"), 2e-3);
    return cache.serialize();
}

TEST(FuzzTimingCache, EveryByteFlipIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallCacheBytes();
    ASSERT_TRUE(core::TimingCache::deserialize(bytes).ok());
    for (std::size_t at = 0; at < bytes.size(); at++) {
        auto r = core::TimingCache::deserialize(flipByte(bytes, at));
        EXPECT_FALSE(r.ok()) << "flip at offset " << at
                             << " was not detected";
    }
}

TEST(FuzzTimingCache, EveryTruncationIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallCacheBytes();
    for (std::size_t len = 0; len < bytes.size(); len++) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        EXPECT_FALSE(core::TimingCache::deserialize(prefix).ok())
            << "truncation to " << len << " bytes was not detected";
    }
}

TEST(FuzzTimingCache, LegacyVersion1CachesStayReadable)
{
    QuietLogs quiet;
    auto v2 = smallCacheBytes();
    auto r = core::TimingCache::deserialize(asLegacyV1(v2));
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->size(), 2u);
    EXPECT_EQ(r->serialize(), v2) << "reserialization upgrades to v2";
}

std::vector<std::uint8_t>
smallManifestBytes()
{
    deploy::Manifest m;
    m.key = {"resnet-18", "xavier-nx", nn::Precision::kFp16};
    m.live_version = 2;
    deploy::ManifestEntry e1;
    e1.version = 1;
    e1.state = deploy::VersionState::kRetired;
    e1.build_id = 3;
    e1.fingerprint = 0x1122334455667788ULL;
    e1.plan_bytes = 4096;
    e1.created_by = "fuzz";
    deploy::ManifestEntry e2 = e1;
    e2.version = 2;
    e2.state = deploy::VersionState::kPromoted;
    e2.parent_version = 1;
    e2.reason = "ok";
    e2.drift_pct = 0.3;
    m.entries = {e1, e2};
    return m.serialize();
}

TEST(FuzzManifest, EveryByteFlipIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallManifestBytes();
    ASSERT_TRUE(deploy::Manifest::deserialize(bytes).ok());
    // Manifests are CRC-framed like engine plans: no single-byte
    // flip anywhere in the stream may slip through.
    for (std::size_t at = 0; at < bytes.size(); at++) {
        auto r = deploy::Manifest::deserialize(flipByte(bytes, at));
        EXPECT_FALSE(r.ok()) << "flip at offset " << at
                             << " was not detected";
    }
}

TEST(FuzzManifest, EveryTruncationIsDetected)
{
    QuietLogs quiet;
    auto bytes = smallManifestBytes();
    for (std::size_t len = 0; len < bytes.size(); len++) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        EXPECT_FALSE(deploy::Manifest::deserialize(prefix).ok())
            << "truncation to " << len << " bytes was not detected";
    }
}

TEST(FuzzManifest, TrailingBytesAreDetected)
{
    QuietLogs quiet;
    auto bytes = smallManifestBytes();
    bytes.push_back(0);
    EXPECT_FALSE(deploy::Manifest::deserialize(bytes).ok());
}

TEST(FuzzManifest, OutOfDomainValuesAreRejected)
{
    QuietLogs quiet;
    // A structurally valid frame whose *payload* violates manifest
    // invariants must still be rejected: non-monotonic versions,
    // a live_version that matches no entry, a parent that is not
    // an earlier version.
    deploy::Manifest m;
    m.key = {"resnet-18", "xavier-nx", nn::Precision::kFp16};
    deploy::ManifestEntry e;
    e.version = 1;
    e.created_by = "fuzz";

    m.live_version = 5; // no such entry
    m.entries = {e};
    EXPECT_FALSE(
        deploy::Manifest::deserialize(m.serialize()).ok());

    m.live_version = -1;
    deploy::ManifestEntry dup = e;
    m.entries = {e, dup}; // versions must strictly increase
    EXPECT_FALSE(
        deploy::Manifest::deserialize(m.serialize()).ok());

    deploy::ManifestEntry bad_parent = e;
    bad_parent.version = 2;
    bad_parent.parent_version = 3; // parent from the future
    m.entries = {e, bad_parent};
    EXPECT_FALSE(
        deploy::Manifest::deserialize(m.serialize()).ok());
}

TEST(FuzzNetwork, FlipsNeverEscapeTheStatusContract)
{
    // The network format is unframed, so a flip is not guaranteed
    // to be *detected* (it may decode as a different valid graph) —
    // but it must never abort, throw, or allocate unboundedly.
    QuietLogs quiet;
    auto bytes = nn::serializeNetwork(nn::buildZooModel("alexnet"));
    for (std::size_t at = 0; at < bytes.size(); at++) {
        EXPECT_NO_THROW(
            (void)nn::deserializeNetwork(flipByte(bytes, at)))
            << "flip at offset " << at << " escaped";
    }
}

TEST(FuzzNetwork, EveryTruncationIsDetected)
{
    QuietLogs quiet;
    auto bytes = nn::serializeNetwork(nn::buildZooModel("alexnet"));
    ASSERT_TRUE(nn::deserializeNetwork(bytes).ok());
    for (std::size_t len = 0; len < bytes.size(); len++) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        EXPECT_FALSE(nn::deserializeNetwork(prefix).ok())
            << "truncation to " << len << " bytes was not detected";
    }
}

TEST(FuzzNetwork, TrailingBytesAreDetected)
{
    QuietLogs quiet;
    auto bytes = nn::serializeNetwork(nn::buildZooModel("alexnet"));
    bytes.push_back(0);
    EXPECT_FALSE(nn::deserializeNetwork(bytes).ok());
}

} // namespace
} // namespace edgert
