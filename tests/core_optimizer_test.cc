/**
 * @file
 * Tests for the model-compression passes: dead-layer removal,
 * no-op elision, vertical fusion, horizontal merging and precision
 * assignment.
 */

#include <gtest/gtest.h>

#include "core/optimizer.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

using nn::ConvParams;
using nn::Dims;
using nn::Network;

Network
fusionChainNet()
{
    Network net("chain");
    net.addInput("in", Dims(1, 8, 16, 16));
    ConvParams p;
    p.out_channels = 16;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("conv", "in", p);
    net.addBatchNorm("bn", "conv");
    net.addScale("scale", "bn");
    net.addActivation("relu", "scale", {});
    net.markOutput("relu");
    return net;
}

TEST(Optimizer, VerticalFusionCollapsesConvBnScaleRelu)
{
    auto g = optimize(fusionChainNet(), nn::Precision::kFp16);
    ASSERT_EQ(g.nodes().size(), 1u);
    const OptNode &n = g.nodes()[0];
    EXPECT_EQ(n.kind, FusedOpKind::kConv);
    EXPECT_EQ(n.layer_ids.size(), 4u);
    EXPECT_TRUE(n.has_activation);
    EXPECT_EQ(n.outputs[0], "relu");
    EXPECT_EQ(g.stats().layers_fused, 3);
}

TEST(Optimizer, FusionStopsAtSharedTensor)
{
    // bn output consumed twice: cannot be absorbed.
    Network net("shared");
    net.addInput("in", Dims(1, 4, 8, 8));
    ConvParams p;
    p.out_channels = 4;
    net.addConvolution("conv", "in", p);
    net.addBatchNorm("bn", "conv");
    net.addActivation("relu", "bn", {});
    net.addIdentity("tap", "bn"); // second consumer of bn
    net.markOutput("relu");
    net.markOutput("tap");
    auto g = optimize(net, nn::Precision::kFp16);
    // conv+bn fuse; relu cannot be absorbed (bn has two consumers).
    const OptNode &conv = g.nodes()[0];
    EXPECT_EQ(conv.layer_ids.size(), 2u);
    EXPECT_FALSE(conv.has_activation);
}

TEST(Optimizer, DeadLayerRemovalDropsAuxHeads)
{
    Network net = nn::buildZooModel("googlenet");
    auto g = optimize(net, nn::Precision::kFp16);
    // Two aux heads: pool + fc + relu + dropout + fc + softmax each.
    EXPECT_GE(g.stats().dead_layers_removed, 10);
    // Dead parameters (aux FCs) do not survive into the live graph.
    EXPECT_LT(g.liveParamCount(), net.paramCount());
}

TEST(Optimizer, NoOpsAreElided)
{
    Network net("noop");
    net.addInput("in", Dims(1, 4, 4, 4));
    net.addDropout("drop", "in");
    net.addFlatten("flat", "drop");
    nn::FcParams fp;
    fp.out_features = 10;
    net.addFullyConnected("fc", "flat", fp);
    net.markOutput("fc");
    auto g = optimize(net, nn::Precision::kFp16);
    ASSERT_EQ(g.nodes().size(), 1u);
    EXPECT_EQ(g.nodes()[0].kind, FusedOpKind::kFullyConnected);
    EXPECT_EQ(g.nodes()[0].inputs[0], "in");
    EXPECT_EQ(g.stats().noops_elided, 2);
}

TEST(Optimizer, HorizontalMergeOnInceptionBranches)
{
    // Three sibling 1x1 convs reading the same tensor merge.
    Network net("incept");
    net.addInput("in", Dims(1, 64, 16, 16));
    ConvParams p1;
    p1.out_channels = 16;
    net.addConvolution("b1", "in", p1);
    net.addActivation("r1", "b1", {});
    ConvParams p2;
    p2.out_channels = 32;
    net.addConvolution("b2", "in", p2);
    net.addActivation("r2", "b2", {});
    ConvParams p3;
    p3.out_channels = 8;
    net.addConvolution("b3", "in", p3);
    net.addActivation("r3", "b3", {});
    net.addConcat("cat", {"r1", "r2", "r3"});
    net.markOutput("cat");

    auto g = optimize(net, nn::Precision::kFp16);
    EXPECT_EQ(g.stats().horizontal_merges, 1);
    // One merged conv node + concat.
    ASSERT_EQ(g.nodes().size(), 2u);
    const OptNode &merged = g.nodes()[0];
    EXPECT_EQ(merged.outputs.size(), 3u);
    EXPECT_EQ(merged.merged_main_ids.size(), 2u);
}

TEST(Optimizer, NoMergeAcrossDifferentGeometry)
{
    Network net("nomerge");
    net.addInput("in", Dims(1, 16, 16, 16));
    ConvParams p1;
    p1.out_channels = 8;
    p1.kernel = 1;
    net.addConvolution("a", "in", p1);
    ConvParams p2;
    p2.out_channels = 8;
    p2.kernel = 3;
    p2.pad = 1;
    net.addConvolution("b", "in", p2);
    net.addConcat("cat", {"a", "b"});
    net.markOutput("cat");
    auto g = optimize(net, nn::Precision::kFp16);
    EXPECT_EQ(g.stats().horizontal_merges, 0);
}

TEST(Optimizer, PrecisionAssignment)
{
    Network net("prec");
    net.addInput("in", Dims(1, 8, 8, 8));
    ConvParams p;
    p.out_channels = 8;
    net.addConvolution("conv", "in", p);
    net.addSoftmax("prob", "conv");
    net.markOutput("prob");

    auto g16 = optimize(net, nn::Precision::kFp16);
    ASSERT_EQ(g16.nodes().size(), 2u);
    EXPECT_EQ(g16.nodes()[0].precision, nn::Precision::kFp16);
    EXPECT_EQ(g16.nodes()[1].precision, nn::Precision::kFp32);

    auto g8 = optimize(net, nn::Precision::kInt8);
    EXPECT_EQ(g8.nodes()[0].precision, nn::Precision::kInt8);
    EXPECT_EQ(g8.nodes()[1].precision, nn::Precision::kFp32);

    auto g32 = optimize(net, nn::Precision::kFp32);
    EXPECT_EQ(g32.nodes()[0].precision, nn::Precision::kFp32);
}

TEST(Optimizer, ResNetEltwiseFusesRelu)
{
    Network net = nn::buildZooModel("resnet-18");
    auto g = optimize(net, nn::Precision::kFp16);
    int eltwise_with_act = 0;
    for (const auto &n : g.nodes())
        if (n.kind == FusedOpKind::kEltwise && n.has_activation)
            eltwise_with_act++;
    EXPECT_EQ(eltwise_with_act, 8); // one per residual block
}

class ZooOptimizeTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(ZooOptimizeTest, GraphShrinksAndCoversLiveLayers)
{
    Network net = nn::buildZooModel(GetParam());
    auto g = optimize(net, nn::Precision::kFp16);
    EXPECT_GT(g.nodes().size(), 0u);
    EXPECT_LT(g.nodes().size(), net.layers().size());
    // Every node's tensors exist in the source network.
    for (const auto &n : g.nodes()) {
        for (const auto &in : n.inputs)
            EXPECT_TRUE(net.hasTensor(in));
        for (const auto &out : n.outputs)
            EXPECT_TRUE(net.hasTensor(out));
        EXPECT_FALSE(n.layer_ids.empty());
    }
    // Live params never exceed total params.
    EXPECT_LE(g.liveParamCount(), net.paramCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooOptimizeTest,
    ::testing::ValuesIn(nn::zooModelNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace edgert::core
