/**
 * @file
 * Tests that the model zoo reproduces Table II's layer counts
 * exactly and its model sizes approximately, for all 13 models.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nn/analysis.hh"
#include "nn/model_zoo.hh"

namespace edgert::nn {
namespace {

class ZooModelTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(ZooModelTest, LayerCountsMatchTable2)
{
    const auto &info = zooModelInfo(GetParam());
    Network net = buildZooModel(GetParam());
    EXPECT_EQ(net.convCount(), info.paper_convs);
    EXPECT_EQ(net.maxPoolCount(), info.paper_maxpools);
}

TEST_P(ZooModelTest, ModelSizeNearPaper)
{
    const auto &info = zooModelInfo(GetParam());
    Network net = buildZooModel(GetParam());
    double mib = static_cast<double>(net.modelSizeBytes()) /
                 (1024.0 * 1024.0);
    // Within 25% of the published model file size (the zoo uses
    // square-kernel stand-ins for factorized towers).
    EXPECT_GT(mib, info.paper_size_mb * 0.75) << mib;
    EXPECT_LT(mib, info.paper_size_mb * 1.25) << mib;
}

TEST_P(ZooModelTest, ValidatesAndHasPositiveFlops)
{
    Network net = buildZooModel(GetParam());
    EXPECT_NO_THROW(net.validate());
    EXPECT_GT(networkFlops(net), 0);
    EXPECT_FALSE(net.outputs().empty());
}

TEST_P(ZooModelTest, BatchParameterScalesInput)
{
    Network net = buildZooModel(GetParam(), 4);
    for (const auto &in : net.inputs())
        EXPECT_EQ(net.tensor(in).dims.n, 4);
}

TEST_P(ZooModelTest, DeterministicConstruction)
{
    Network a = buildZooModel(GetParam());
    Network b = buildZooModel(GetParam());
    ASSERT_EQ(a.layers().size(), b.layers().size());
    EXPECT_EQ(a.paramCount(), b.paramCount());
    for (std::size_t i = 0; i < a.layers().size(); i++) {
        EXPECT_EQ(a.layers()[i].name, b.layers()[i].name);
        EXPECT_EQ(a.layers()[i].kind, b.layers()[i].kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooModelTest,
    ::testing::ValuesIn(zooModelNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(ModelZoo, ThirteenModels)
{
    EXPECT_EQ(zooModelNames().size(), 13u);
}

TEST(ModelZoo, UnknownModelFatal)
{
    EXPECT_THROW(buildZooModel("not-a-model"), FatalError);
    EXPECT_THROW(zooModelInfo("not-a-model"), FatalError);
}

TEST(ModelZoo, GooglenetHasDeadAuxHeads)
{
    // The aux classifier FCs exist but are not marked as outputs.
    Network net = buildZooModel("googlenet");
    int fc_layers = 0;
    for (const auto &l : net.layers())
        if (l.kind == LayerKind::kFullyConnected)
            fc_layers++;
    EXPECT_EQ(fc_layers, 5); // 2 aux heads x 2 + main classifier
    EXPECT_EQ(net.outputs().size(), 1u);
}

TEST(ModelZoo, MtcnnIsMultiInput)
{
    Network net = buildZooModel("mtcnn");
    EXPECT_EQ(net.inputs().size(), 3u);
    EXPECT_EQ(net.outputs().size(), 7u);
}

TEST(ModelZoo, TinyYoloHasTwoRegionHeads)
{
    Network net = buildZooModel("tiny-yolov3");
    int regions = 0;
    for (const auto &l : net.layers())
        if (l.kind == LayerKind::kRegion)
            regions++;
    EXPECT_EQ(regions, 2);
    EXPECT_EQ(net.outputs().size(), 2u);
}

TEST(ModelZoo, VisionTaskNames)
{
    EXPECT_STREQ(visionTaskName(VisionTask::kClassification),
                 "classification");
    EXPECT_EQ(zooModelInfo("tiny-yolov3").task,
              VisionTask::kDetection);
    EXPECT_EQ(zooModelInfo("fcn-resnet18-cityscapes").task,
              VisionTask::kSegmentation);
}

} // namespace
} // namespace edgert::nn
