/**
 * @file
 * EdgeStream tests: seeded frame sources (determinism and lineage
 * independence), StreamQueue backpressure semantics, freshness
 * conservation accounting, and the end-to-end runStreams contract —
 * per-policy frame conservation, skip_to_latest beating block on
 * stale-frame rate at overload, and byte-identical reports across
 * same-seed runs and serial vs threaded replay.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "serve/server.hh"
#include "stream/freshness.hh"
#include "stream/pipeline.hh"
#include "stream/source.hh"
#include "stream/stream.hh"

namespace edgert::stream {
namespace {

TEST(FrameSource, FixedFpsTicksAtTheNominalGap)
{
    FrameSourceConfig cfg;
    cfg.kind = FrameArrival::kFixedFps;
    cfg.fps = 30.0;
    Rng rng(7);
    auto times = generateFrameTimes(cfg, 2.0, rng);
    ASSERT_FALSE(times.empty());
    // Phase in [0, gap), then rock-steady gaps.
    EXPECT_GE(times.front(), 0.0);
    EXPECT_LT(times.front(), 1.0 / 30.0);
    for (std::size_t i = 1; i < times.size(); i++)
        EXPECT_NEAR(times[i] - times[i - 1], 1.0 / 30.0, 1e-12);
    EXPECT_LT(times.back(), 2.0);
    // ~60 frames in 2 s at 30 fps (the phase can shave one).
    EXPECT_NEAR(static_cast<double>(times.size()), 60.0, 1.0);
}

TEST(FrameSource, JitteredCameraKeepsMeanRateAndMonotonicity)
{
    FrameSourceConfig cfg;
    cfg.kind = FrameArrival::kJitteredCamera;
    cfg.fps = 30.0;
    cfg.jitter_pct = 20.0;
    Rng rng(7);
    auto times = generateFrameTimes(cfg, 10.0, rng);
    ASSERT_FALSE(times.empty());
    for (std::size_t i = 1; i < times.size(); i++)
        EXPECT_GT(times[i], times[i - 1]);
    // Mean rate within a few percent of nominal over 10 s.
    EXPECT_NEAR(static_cast<double>(times.size()), 300.0, 15.0);
}

TEST(FrameSource, SameSeedSameTimesDifferentSeedDifferent)
{
    FrameSourceConfig cfg;
    cfg.kind = FrameArrival::kJitteredCamera;
    Rng a(11), b(11), c(12);
    auto ta = generateFrameTimes(cfg, 3.0, a);
    auto tb = generateFrameTimes(cfg, 3.0, b);
    auto tc = generateFrameTimes(cfg, 3.0, c);
    EXPECT_EQ(ta, tb);
    EXPECT_NE(ta, tc);
}

TEST(FrameSource, ParseAndNameRoundTrip)
{
    EXPECT_EQ(parseFrameArrival("fixed"), FrameArrival::kFixedFps);
    EXPECT_EQ(parseFrameArrival("jitter"),
              FrameArrival::kJitteredCamera);
    EXPECT_EQ(frameArrivalName(FrameArrival::kFixedFps), "fixed");
    EXPECT_EQ(frameArrivalName(FrameArrival::kJitteredCamera),
              "jitter");
    EXPECT_THROW(parseFrameArrival("poisson"), FatalError);
}

TEST(BackpressurePolicy, ParseAndNameRoundTrip)
{
    for (auto p : {BackpressurePolicy::kDropOldest,
                   BackpressurePolicy::kSkipToLatest,
                   BackpressurePolicy::kBlock})
        EXPECT_EQ(parseBackpressurePolicy(backpressurePolicyName(p)),
                  p);
    EXPECT_THROW(parseBackpressurePolicy("shed"), FatalError);
}

TEST(StreamQueue, DropOldestEvictsBeyondTheBudgetPerStream)
{
    StreamQueue q(2);
    const auto policy = BackpressurePolicy::kDropOldest;
    // Stream 0 fills its budget of 2...
    EXPECT_TRUE(q.push(0, 0, 0.00, policy, 2).empty());
    EXPECT_TRUE(q.push(1, 0, 0.01, policy, 2).empty());
    // ...stream 1's frames never count against stream 0's budget...
    EXPECT_TRUE(q.push(2, 1, 0.02, policy, 2).empty());
    // ...and the next stream-0 frame evicts stream 0's oldest.
    auto evicted = q.push(3, 0, 0.03, policy, 2);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.queuedOf(0), 2);
    EXPECT_EQ(q.queuedOf(1), 1);
    // FIFO across streams, tombstones skipped: 1, 2, 3.
    EXPECT_EQ(q.frontId(), 1);
    EXPECT_EQ(q.cut(3), (std::vector<std::int64_t>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(StreamQueue, SkipToLatestKeepsExactlyTheNewestFrame)
{
    StreamQueue q(2);
    const auto policy = BackpressurePolicy::kSkipToLatest;
    EXPECT_TRUE(q.push(0, 0, 0.00, policy, 4).empty());
    EXPECT_EQ(q.push(1, 0, 0.01, policy, 4),
              (std::vector<std::int64_t>{0}));
    EXPECT_EQ(q.push(2, 0, 0.02, policy, 4),
              (std::vector<std::int64_t>{1}));
    EXPECT_TRUE(q.push(3, 1, 0.03, policy, 4).empty());
    EXPECT_EQ(q.queuedOf(0), 1);
    EXPECT_EQ(q.queuedOf(1), 1);
    EXPECT_EQ(q.oldestReadySeconds(), 0.02);
    EXPECT_EQ(q.cut(2), (std::vector<std::int64_t>{2, 3}));
}

TEST(StreamQueue, BlockNeverEvictsAndDrainReturnsLeftovers)
{
    StreamQueue q(1);
    const auto policy = BackpressurePolicy::kBlock;
    for (int i = 0; i < 100; i++)
        EXPECT_TRUE(
            q.push(i, 0, i * 0.01, policy, 1).empty());
    EXPECT_EQ(q.size(), 100u);
    EXPECT_EQ(q.cut(10),
              (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8,
                                         9}));
    auto rest = q.drain();
    EXPECT_EQ(rest.size(), 90u);
    EXPECT_EQ(rest.front(), 10);
    EXPECT_EQ(rest.back(), 99);
    EXPECT_TRUE(q.empty());
}

TEST(FreshnessTracker, StaleAccountingAndConservation)
{
    FreshnessTracker t(2, 50.0);
    t.onProduced(0);
    t.onProduced(0);
    t.onProduced(0);
    t.onProduced(1);
    t.onCompleted(0, 20.0); // fresh
    t.onCompleted(0, 80.0); // stale
    t.onDropped(0);
    t.onLeftInFlight(1);
    EXPECT_TRUE(t.conserved());

    FreshnessStats s0 = t.streamStats(0);
    EXPECT_EQ(s0.produced, 3);
    EXPECT_EQ(s0.completed, 2);
    EXPECT_EQ(s0.dropped, 1);
    EXPECT_EQ(s0.stale_completed, 1);
    // (1 drop + 1 stale) / 3 terminal outcomes.
    EXPECT_NEAR(s0.stale_rate_pct, 100.0 * 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(s0.age_mean_ms, 50.0, 1e-9);
    EXPECT_NEAR(s0.age_max_ms, 80.0, 1e-9);

    FreshnessStats total = t.totalStats();
    EXPECT_EQ(total.produced, 4);
    EXPECT_EQ(total.in_flight, 1);

    // A completion the producer never saw breaks conservation.
    t.onCompleted(1, 10.0);
    EXPECT_FALSE(t.conserved());
}

// ---------------------------------------------------------------
// End-to-end runStreams contract.
// ---------------------------------------------------------------

StreamConfig
overloadScenario(BackpressurePolicy policy)
{
    StreamConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = 1.5;
    cfg.seed = 1;
    StreamModelConfig mc;
    mc.model = "tiny-yolov3";
    mc.streams = 16; // far past one NX's capacity at fp16
    mc.fps = 30.0;
    mc.stale_ms = 100.0;
    mc.policy = policy;
    cfg.models.push_back(mc);
    return cfg;
}

TEST(RunStreams, EveryPolicyConservesFramesUnderOverload)
{
    for (auto policy : {BackpressurePolicy::kDropOldest,
                        BackpressurePolicy::kSkipToLatest,
                        BackpressurePolicy::kBlock}) {
        StreamReport rep = runStreams(overloadScenario(policy));
        ASSERT_EQ(rep.models.size(), 1u);
        const StreamModelStats &m = rep.models.front();
        EXPECT_TRUE(m.conserved)
            << backpressurePolicyName(policy);
        EXPECT_EQ(m.freshness.produced,
                  m.freshness.completed + m.freshness.dropped +
                      m.freshness.in_flight)
            << backpressurePolicyName(policy);
        // Per-lane conservation too, and lanes sum to the total.
        std::int64_t produced = 0;
        for (const StreamLaneStats &lane : m.lanes) {
            EXPECT_EQ(lane.freshness.produced,
                      lane.freshness.completed +
                          lane.freshness.dropped +
                          lane.freshness.in_flight);
            produced += lane.freshness.produced;
        }
        EXPECT_EQ(produced, m.freshness.produced);
        if (policy == BackpressurePolicy::kBlock) {
            // block never drops; the backlog ages in flight.
            EXPECT_EQ(m.freshness.dropped, 0);
            EXPECT_GT(m.freshness.in_flight, 0);
        } else {
            // the shedding policies must actually shed here.
            EXPECT_GT(m.freshness.dropped, 0);
        }
    }
}

TEST(RunStreams, SkipToLatestBeatsBlockOnStaleRateAtOverload)
{
    StreamReport skip = runStreams(
        overloadScenario(BackpressurePolicy::kSkipToLatest));
    StreamReport block =
        runStreams(overloadScenario(BackpressurePolicy::kBlock));
    EXPECT_LT(skip.models.front().freshness.stale_rate_pct,
              block.models.front().freshness.stale_rate_pct);
    // Freshness pages must fire under overload and land in the
    // report rollup.
    EXPECT_GT(skip.freshness_pages, 0);
    EXPECT_GE(skip.first_page_s, 0.0);
}

TEST(RunStreams, UnderProvisionedRunStaysFreshAndQuiet)
{
    StreamConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = 1.5;
    StreamModelConfig mc;
    mc.model = "tiny-yolov3";
    mc.streams = 2;
    mc.fps = 20.0;
    mc.stale_ms = 100.0;
    cfg.models.push_back(mc);
    StreamReport rep = runStreams(cfg);
    const StreamModelStats &m = rep.models.front();
    EXPECT_TRUE(m.conserved);
    EXPECT_EQ(m.freshness.dropped, 0);
    EXPECT_DOUBLE_EQ(m.freshness.stale_rate_pct, 0.0);
    EXPECT_EQ(rep.freshness_pages, 0);
    EXPECT_DOUBLE_EQ(rep.first_page_s, -1.0);
    // The staged pipeline attributes every stage: decode and
    // preprocess means sit near their configured costs.
    EXPECT_NEAR(m.decode_mean_ms, mc.stages.decode_ms,
                mc.stages.decode_ms);
    EXPECT_GT(m.compute_mean_ms, 0.0);
    EXPECT_GT(m.postprocess_mean_ms, 0.0);
}

TEST(RunStreams, SameSeedRunsAreByteIdentical)
{
    StreamConfig cfg =
        overloadScenario(BackpressurePolicy::kSkipToLatest);
    EXPECT_EQ(runStreams(cfg).toJson(), runStreams(cfg).toJson());
}

TEST(RunStreams, SerialAndThreadedReplayAreByteIdentical)
{
    StreamConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.devices.push_back(serve::parseDevice("agx"));
    cfg.duration_s = 1.5;
    StreamModelConfig mc;
    mc.model = "tiny-yolov3";
    mc.streams = 8;
    mc.fps = 30.0;
    cfg.models.push_back(mc);

    std::string serial = runStreams(cfg).toJson();
    cfg.sim_threads = 4;
    EXPECT_EQ(serial, runStreams(cfg).toJson());
}

TEST(RunStreams, DuplicateModelNamesAreFatal)
{
    StreamConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    StreamModelConfig mc;
    mc.model = "tiny-yolov3";
    cfg.models.push_back(mc);
    cfg.models.push_back(mc);
    EXPECT_THROW(runStreams(cfg), FatalError);
}

} // namespace
} // namespace edgert::stream
