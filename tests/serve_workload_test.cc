/**
 * @file
 * Tests for the EdgeServe load generator: every arrival process is a
 * pure function of (config, seed), produces sorted in-window times,
 * and hits its configured mean rate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "serve/workload.hh"

namespace edgert::serve {
namespace {

ArrivalConfig
poissonAt(double qps)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::kPoisson;
    cfg.qps = qps;
    return cfg;
}

TEST(Workload, ParseArrivalKindRoundTrips)
{
    for (ArrivalKind k : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                          ArrivalKind::kReplay})
        EXPECT_EQ(parseArrivalKind(arrivalKindName(k)), k);
}

TEST(Workload, PoissonArrivalsSortedAndInWindow)
{
    Rng rng(7);
    auto ts = generateArrivals(poissonAt(500), 4.0, rng);
    ASSERT_FALSE(ts.empty());
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
    EXPECT_GE(ts.front(), 0.0);
    EXPECT_LT(ts.back(), 4.0);
}

TEST(Workload, PoissonMeanRateMatchesQps)
{
    // Count over a long window: lambda*T = 20000, sd = sqrt(20000)
    // ~ 141; a 5-sigma band is ~ +/- 707.
    Rng rng(11);
    auto ts = generateArrivals(poissonAt(1000), 20.0, rng);
    EXPECT_NEAR(static_cast<double>(ts.size()), 20000.0, 707.0);
}

TEST(Workload, PoissonSameSeedReproducible)
{
    Rng a(42), b(42), c(43);
    auto ta = generateArrivals(poissonAt(300), 2.0, a);
    auto tb = generateArrivals(poissonAt(300), 2.0, b);
    auto tc = generateArrivals(poissonAt(300), 2.0, c);
    EXPECT_EQ(ta, tb);
    EXPECT_NE(ta, tc);
}

TEST(Workload, BurstyKeepsLongRunMeanAndBursts)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::kBursty;
    cfg.qps = 400;
    cfg.period_s = 1.0;
    cfg.duty = 0.25;
    cfg.burst_factor = 3.0;
    Rng rng(5);
    auto ts = generateArrivals(cfg, 20.0, rng);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
    // Long-run mean stays qps (5-sigma band around 8000).
    EXPECT_NEAR(static_cast<double>(ts.size()), 8000.0, 450.0);
    // The burst window [0, duty*period) of each cycle runs at
    // burst_factor * qps; count arrivals landing there.
    std::size_t in_burst = 0;
    for (double t : ts)
        if (std::fmod(t, cfg.period_s) < cfg.duty * cfg.period_s)
            in_burst++;
    double burst_frac = static_cast<double>(in_burst) /
                        static_cast<double>(ts.size());
    // Expected share: duty*burst_factor = 0.75 of all arrivals.
    EXPECT_NEAR(burst_frac, 0.75, 0.05);
}

TEST(Workload, ReplayCyclesGapTrace)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::kReplay;
    cfg.replay_gaps_s = {0.010, 0.020, 0.030};
    Rng rng(1);
    auto ts = generateArrivals(cfg, 0.125, rng);
    // Cumulative gaps: .01 .03 .06 .07 .09 .12 | .13 > window.
    std::vector<double> want = {0.01, 0.03, 0.06, 0.07, 0.09, 0.12};
    ASSERT_EQ(ts.size(), want.size());
    for (std::size_t i = 0; i < want.size(); i++)
        EXPECT_NEAR(ts[i], want[i], 1e-12);
}

} // namespace
} // namespace edgert::serve
