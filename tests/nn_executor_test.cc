/**
 * @file
 * Functional-executor tests: per-op numerical semantics against
 * hand-computed references, precision behaviour (FP16 rounding,
 * INT8 quantization), and — central to the paper's Finding 2 — the
 * demonstration that different FP16 accumulation orders (different
 * kernel tactics) produce genuinely different outputs while INT8
 * integer accumulation is order-independent.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/half.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/executor.hh"
#include "nn/model_zoo.hh"

namespace edgert::nn {
namespace {

/** Tiny deterministic input tensor. */
Tensor
makeInput(const Dims &dims, std::uint64_t seed)
{
    Tensor t(dims);
    Rng rng(seed);
    for (std::int64_t i = 0; i < t.volume(); i++)
        t[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    return t;
}

/** 1-conv network used by several tests. */
Network
convNet(const ConvParams &p, const Dims &in)
{
    Network net("conv-test");
    net.addInput("in", in);
    net.addConvolution("conv", "in", p);
    net.markOutput("conv");
    return net;
}

TEST(Executor, ConvIdentityKernel)
{
    // A 1x1 conv whose weights we can reason about: with He-init
    // synthetic weights we instead verify linearity: f(2x) = 2*f(x)
    // - bias terms.
    ConvParams p;
    p.out_channels = 4;
    p.has_bias = false;
    Network net = convNet(p, Dims(1, 3, 5, 5));
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    Tensor x = makeInput(Dims(1, 3, 5, 5), 7);
    Tensor x2(x.dims());
    for (std::int64_t i = 0; i < x.volume(); i++)
        x2[i] = 2.0f * x[i];

    Tensor y = ex.runSimple(x);
    Tensor y2 = ex.runSimple(x2);
    for (std::int64_t i = 0; i < y.volume(); i++)
        EXPECT_NEAR(y2[i], 2.0f * y[i], 1e-4f);
}

TEST(Executor, ConvHandComputed)
{
    // 1 input channel, 1 output channel, 2x2 kernel, no padding:
    // compare one output element against a direct dot product.
    ConvParams p;
    p.out_channels = 1;
    p.kernel = 2;
    Network net = convNet(p, Dims(1, 1, 3, 3));
    WeightsStore ws(net, 5);
    auto blob = ws.materialize(net.layer(1));
    ASSERT_EQ(blob.size(), 5u); // 4 weights + 1 bias

    Tensor x = makeInput(Dims(1, 1, 3, 3), 3);
    Executor ex(net, ws);
    Tensor y = ex.runSimple(x);
    ASSERT_EQ(y.dims(), Dims(1, 1, 2, 2));

    float expect = x.at(0, 0, 0, 0) * blob[0] +
                   x.at(0, 0, 0, 1) * blob[1] +
                   x.at(0, 0, 1, 0) * blob[2] +
                   x.at(0, 0, 1, 1) * blob[3] + blob[4];
    EXPECT_NEAR(y.at(0, 0, 0, 0), expect, 1e-5f);
}

TEST(Executor, ConvPaddingZeroes)
{
    ConvParams p;
    p.out_channels = 1;
    p.kernel = 3;
    p.pad = 1;
    p.has_bias = false;
    Network net = convNet(p, Dims(1, 1, 2, 2));
    WeightsStore ws(net, 9);
    auto blob = ws.materialize(net.layer(1));

    Tensor x(Dims(1, 1, 2, 2));
    x.fill(1.0f);
    Executor ex(net, ws);
    Tensor y = ex.runSimple(x);
    // Corner output only sees the 2x2 bottom-right of the kernel.
    float expect = blob[4] + blob[5] + blob[7] + blob[8];
    EXPECT_NEAR(y.at(0, 0, 0, 0), expect, 1e-5f);
}

TEST(Executor, MaxAndAvgPooling)
{
    Network net("pool-test");
    net.addInput("in", Dims(1, 1, 2, 2));
    PoolParams mp;
    mp.kernel = 2;
    mp.stride = 2;
    net.addPooling("max", "in", mp);
    PoolParams ap = mp;
    ap.mode = PoolParams::Mode::kAvg;
    net.addPooling("avg", "in", ap);
    net.markOutput("max");
    net.markOutput("avg");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    Tensor x(Dims(1, 1, 2, 2));
    x.at(0, 0, 0, 0) = 1.0f;
    x.at(0, 0, 0, 1) = -2.0f;
    x.at(0, 0, 1, 0) = 3.0f;
    x.at(0, 0, 1, 1) = 0.5f;

    std::unordered_map<std::string, Tensor> ins;
    ins["in"] = x;
    auto outs = ex.run(ins);
    EXPECT_FLOAT_EQ(outs.at("max").at(0, 0, 0, 0), 3.0f);
    EXPECT_FLOAT_EQ(outs.at("avg").at(0, 0, 0, 0), 0.625f);
}

TEST(Executor, ActivationFunctions)
{
    Network net("act-test");
    net.addInput("in", Dims(1, 1, 1, 4));
    net.addActivation("relu", "in",
                      {ActivationParams::Mode::kRelu});
    ActivationParams leaky;
    leaky.mode = ActivationParams::Mode::kLeakyRelu;
    leaky.alpha = 0.1f;
    net.addActivation("leaky", "in", leaky);
    net.addActivation("sig", "in",
                      {ActivationParams::Mode::kSigmoid});
    net.markOutput("relu");
    net.markOutput("leaky");
    net.markOutput("sig");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    Tensor x(Dims(1, 1, 1, 4));
    x[0] = -2.0f;
    x[1] = -0.5f;
    x[2] = 0.0f;
    x[3] = 3.0f;
    std::unordered_map<std::string, Tensor> ins;
    ins["in"] = x;
    auto outs = ex.run(ins);
    EXPECT_FLOAT_EQ(outs.at("relu")[0], 0.0f);
    EXPECT_FLOAT_EQ(outs.at("relu")[3], 3.0f);
    EXPECT_FLOAT_EQ(outs.at("leaky")[0], -0.2f);
    EXPECT_NEAR(outs.at("sig")[3], 1.0f / (1.0f + std::exp(-3.0f)),
                1e-6f);
}

TEST(Executor, SoftmaxSumsToOne)
{
    Network net("sm");
    net.addInput("in", Dims(1, 10, 1, 1));
    net.addSoftmax("prob", "in");
    net.markOutput("prob");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);
    Tensor x = makeInput(Dims(1, 10, 1, 1), 17);
    Tensor y = ex.runSimple(x);
    float sum = 0.0f;
    for (std::int64_t i = 0; i < 10; i++) {
        EXPECT_GT(y[i], 0.0f);
        sum += y[i];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Executor, ConcatAndEltwise)
{
    Network net("ce");
    net.addInput("a", Dims(1, 2, 2, 2));
    net.addInput("b", Dims(1, 2, 2, 2));
    net.addConcat("cat", {"a", "b"});
    net.addEltwise("sum", {"a", "b"},
                   {EltwiseParams::Mode::kSum});
    net.addEltwise("max", {"a", "b"},
                   {EltwiseParams::Mode::kMax});
    net.markOutput("cat");
    net.markOutput("sum");
    net.markOutput("max");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    std::unordered_map<std::string, Tensor> ins;
    ins["a"] = makeInput(Dims(1, 2, 2, 2), 1);
    ins["b"] = makeInput(Dims(1, 2, 2, 2), 2);
    auto outs = ex.run(ins);
    EXPECT_EQ(outs.at("cat").dims(), Dims(1, 4, 2, 2));
    EXPECT_FLOAT_EQ(outs.at("cat").at(0, 0, 0, 0),
                    ins["a"].at(0, 0, 0, 0));
    EXPECT_FLOAT_EQ(outs.at("cat").at(0, 2, 0, 0),
                    ins["b"].at(0, 0, 0, 0));
    for (std::int64_t i = 0; i < 8; i++) {
        EXPECT_FLOAT_EQ(outs.at("sum")[i],
                        ins["a"][i] + ins["b"][i]);
        EXPECT_FLOAT_EQ(outs.at("max")[i],
                        std::max(ins["a"][i], ins["b"][i]));
    }
}

TEST(Executor, UpsampleNearest)
{
    Network net("up");
    net.addInput("in", Dims(1, 1, 2, 2));
    net.addUpsample("u", "in", {2});
    net.markOutput("u");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);
    Tensor x(Dims(1, 1, 2, 2));
    x.at(0, 0, 0, 0) = 1;
    x.at(0, 0, 0, 1) = 2;
    x.at(0, 0, 1, 0) = 3;
    x.at(0, 0, 1, 1) = 4;
    Tensor y = ex.runSimple(x);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 1);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 2), 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 4);
}

TEST(Executor, BatchNormNormalizes)
{
    Network net("bn");
    net.addInput("in", Dims(1, 2, 4, 4));
    net.addBatchNorm("norm", "in");
    net.markOutput("norm");
    WeightsStore ws(net, 1);
    auto blob = ws.materialize(net.layer(1)); // mean[2], var[2]
    Executor ex(net, ws);
    Tensor x = makeInput(Dims(1, 2, 4, 4), 23);
    Tensor y = ex.runSimple(x);
    float expect = (x.at(0, 1, 2, 3) - blob[1]) /
                   std::sqrt(blob[3] + 1e-5f);
    EXPECT_NEAR(y.at(0, 1, 2, 3), expect, 1e-5f);
}

TEST(Executor, Fp16RoundsOutputs)
{
    ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.pad = 1;
    Network net = convNet(p, Dims(1, 8, 6, 6));
    WeightsStore ws(net, 11);

    Executor fp32(net, ws, {Precision::kFp32, 0});
    Executor fp16(net, ws, {Precision::kFp16, 0});
    Tensor x = makeInput(Dims(1, 8, 6, 6), 31);
    Tensor y32 = fp32.runSimple(x);
    Tensor y16 = fp16.runSimple(x);
    // Close but not identical; every fp16 output is exactly a half.
    double max_rel = 0.0;
    bool any_diff = false;
    for (std::int64_t i = 0; i < y32.volume(); i++) {
        EXPECT_EQ(roundToHalf(y16[i]), y16[i]);
        if (y16[i] != y32[i])
            any_diff = true;
        if (std::fabs(y32[i]) > 0.1)
            max_rel = std::max(
                max_rel, static_cast<double>(
                             std::fabs(y16[i] - y32[i]) /
                             std::fabs(y32[i])));
    }
    EXPECT_TRUE(any_diff);
    EXPECT_LT(max_rel, 0.01);
}

TEST(Executor, Fp16AccumulationOrderChangesOutputs)
{
    // The mechanical heart of the paper's Finding 2: two FP16
    // "tactics" differing only in reduction tile size produce
    // different bits on the same input.
    ConvParams p;
    p.out_channels = 16;
    p.kernel = 3;
    p.pad = 1;
    Network net = convNet(p, Dims(1, 32, 8, 8));
    WeightsStore ws(net, 13);

    Executor tile8(net, ws, {Precision::kFp16, 8});
    Executor tile32(net, ws, {Precision::kFp16, 32});
    Tensor x = makeInput(Dims(1, 32, 8, 8), 37);
    Tensor a = tile8.runSimple(x);
    Tensor b = tile32.runSimple(x);

    std::int64_t diff = 0;
    for (std::int64_t i = 0; i < a.volume(); i++)
        if (a[i] != b[i])
            diff++;
    EXPECT_GT(diff, 0);
    // But the results stay numerically close: only rounding differs.
    for (std::int64_t i = 0; i < a.volume(); i++)
        EXPECT_NEAR(a[i], b[i], 0.05f + 0.01f * std::fabs(a[i]));
}

TEST(Executor, Int8IsAccumulationOrderIndependent)
{
    // Integer accumulation is associative: tile size cannot matter.
    ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.pad = 1;
    Network net = convNet(p, Dims(1, 16, 6, 6));
    WeightsStore ws(net, 19);

    Executor a(net, ws, {Precision::kInt8, 8});
    Executor b(net, ws, {Precision::kInt8, 64});
    Tensor x = makeInput(Dims(1, 16, 6, 6), 41);
    Tensor ya = a.runSimple(x);
    Tensor yb = b.runSimple(x);
    for (std::int64_t i = 0; i < ya.volume(); i++)
        EXPECT_EQ(ya[i], yb[i]);
}

TEST(Executor, Int8QuantizationErrorBounded)
{
    ConvParams p;
    p.out_channels = 8;
    p.kernel = 1;
    Network net = convNet(p, Dims(1, 16, 4, 4));
    WeightsStore ws(net, 43);
    Executor fp32(net, ws, {Precision::kFp32, 0});
    Executor int8(net, ws, {Precision::kInt8, 0});
    Tensor x = makeInput(Dims(1, 16, 4, 4), 47);
    Tensor y32 = fp32.runSimple(x);
    Tensor y8 = int8.runSimple(x);
    double worst = 0.0;
    double scale = 0.0;
    for (std::int64_t i = 0; i < y32.volume(); i++) {
        worst = std::max(
            worst, static_cast<double>(std::fabs(y8[i] - y32[i])));
        scale = std::max(scale,
                         static_cast<double>(std::fabs(y32[i])));
    }
    EXPECT_LT(worst, scale * 0.1);
}

TEST(Executor, LrnMatchesFormula)
{
    Network net("lrn");
    net.addInput("in", Dims(1, 3, 1, 1));
    LrnParams p;
    p.local_size = 3;
    p.alpha = 1e-2f;
    p.beta = 0.75f;
    p.k = 2.0f;
    net.addLrn("norm", "in", p);
    net.markOutput("norm");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    Tensor x(Dims(1, 3, 1, 1));
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    Tensor y = ex.runSimple(x);
    // Channel 1 sees all three channels in its window.
    float sum = 1.0f + 4.0f + 9.0f;
    float denom = std::pow(2.0f + 1e-2f * sum / 3.0f, 0.75f);
    EXPECT_NEAR(y[1], 2.0f / denom, 1e-5f);
}

TEST(Executor, DeconvLinearAndShaped)
{
    Network net("deconv");
    net.addInput("in", Dims(1, 4, 4, 4));
    ConvParams p;
    p.out_channels = 2;
    p.kernel = 4;
    p.stride = 2;
    p.pad = 1;
    p.has_bias = false;
    net.addDeconvolution("up", "in", p);
    net.markOutput("up");
    WeightsStore ws(net, 3);
    Executor ex(net, ws);

    Tensor x = makeInput(Dims(1, 4, 4, 4), 5);
    Tensor y = ex.runSimple(x);
    ASSERT_EQ(y.dims(), Dims(1, 2, 8, 8));
    // Linearity check (no bias): f(3x) = 3 f(x).
    Tensor x3(x.dims());
    for (std::int64_t i = 0; i < x.volume(); i++)
        x3[i] = 3.0f * x[i];
    Tensor y3 = ex.runSimple(x3);
    for (std::int64_t i = 0; i < y.volume(); i++)
        EXPECT_NEAR(y3[i], 3.0f * y[i], 1e-3f);
}

TEST(Executor, RegionDecodesToValidRanges)
{
    Network net("region");
    // 1 anchor x (5 + 3 classes) = 8 channels.
    net.addInput("in", Dims(1, 8, 2, 2));
    RegionParams p;
    p.num_anchors = 1;
    p.num_classes = 3;
    net.addRegion("yolo", "in", p);
    net.markOutput("yolo");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);

    Tensor x = makeInput(Dims(1, 8, 2, 2), 9);
    Tensor y = ex.runSimple(x);
    for (std::int64_t c = 0; c < 8; c++)
        for (std::int64_t h = 0; h < 2; h++)
            for (std::int64_t w = 0; w < 2; w++) {
                float v = y.at(0, c, h, w);
                if (c == 2 || c == 3) {
                    EXPECT_GT(v, 0.0f); // exp(tw), exp(th)
                } else {
                    EXPECT_GE(v, 0.0f); // logistic outputs
                    EXPECT_LE(v, 1.0f);
                }
            }
}

TEST(Executor, ScaleAppliesGammaBeta)
{
    Network net("scale");
    net.addInput("in", Dims(1, 2, 2, 2));
    net.addScale("sc", "in");
    net.markOutput("sc");
    WeightsStore ws(net, 21);
    auto blob = ws.materialize(net.layer(1)); // gamma[2], beta[2]
    Executor ex(net, ws);
    Tensor x = makeInput(Dims(1, 2, 2, 2), 11);
    Tensor y = ex.runSimple(x);
    EXPECT_NEAR(y.at(0, 1, 0, 1),
                x.at(0, 1, 0, 1) * blob[1] + blob[3], 1e-5f);
}

TEST(Executor, PReluUsesPerChannelSlopes)
{
    Network net("prelu");
    net.addInput("in", Dims(1, 2, 1, 2));
    ActivationParams p;
    p.mode = ActivationParams::Mode::kPRelu;
    net.addActivation("act", "in", p);
    net.markOutput("act");
    WeightsStore ws(net, 33);
    auto slopes = ws.materialize(net.layer(1));
    Executor ex(net, ws);
    Tensor x(Dims(1, 2, 1, 2));
    x[0] = -1.0f;
    x[1] = 2.0f;
    x[2] = -3.0f;
    x[3] = 4.0f;
    Tensor y = ex.runSimple(x);
    EXPECT_NEAR(y[0], -slopes[0], 1e-6f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
    EXPECT_NEAR(y[2], -3.0f * slopes[1], 1e-6f);
    EXPECT_FLOAT_EQ(y[3], 4.0f);
}

TEST(Executor, FlattenAndDropoutPassThrough)
{
    Network net("pass");
    net.addInput("in", Dims(1, 2, 2, 2));
    net.addDropout("drop", "in");
    net.addFlatten("flat", "drop");
    net.markOutput("flat");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);
    Tensor x = makeInput(Dims(1, 2, 2, 2), 13);
    Tensor y = ex.runSimple(x);
    ASSERT_EQ(y.dims(), Dims(1, 8, 1, 1));
    for (std::int64_t i = 0; i < 8; i++)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Executor, GroupedConvIsolatesGroups)
{
    // With 2 groups, output channel 0 must not depend on input
    // channels of group 2.
    ConvParams p;
    p.out_channels = 2;
    p.kernel = 1;
    p.groups = 2;
    p.has_bias = false;
    Network net = convNet(p, Dims(1, 4, 2, 2));
    WeightsStore ws(net, 51);
    Executor ex(net, ws);

    Tensor x = makeInput(Dims(1, 4, 2, 2), 15);
    Tensor y1 = ex.runSimple(x);
    // Perturb a group-2 input channel; group-1 output unchanged.
    Tensor x2 = x;
    x2.at(0, 3, 0, 0) += 10.0f;
    Tensor y2 = ex.runSimple(x2);
    EXPECT_FLOAT_EQ(y1.at(0, 0, 0, 0), y2.at(0, 0, 0, 0));
    EXPECT_NE(y1.at(0, 1, 0, 0), y2.at(0, 1, 0, 0));
}

TEST(Executor, RectangularConvEquivalence)
{
    // A 1x3-then-3x1 stack applied to a separable pattern behaves
    // like independent row/column filters; verify against direct
    // computation of one output element.
    ConvParams p;
    p.out_channels = 1;
    p.kernel = 1;
    p.kernel_w = 3;
    p.pad_w = 1;
    p.has_bias = false;
    Network net = convNet(p, Dims(1, 1, 3, 3));
    WeightsStore ws(net, 61);
    auto blob = ws.materialize(net.layer(1));
    ASSERT_EQ(blob.size(), 3u);

    Tensor x = makeInput(Dims(1, 1, 3, 3), 67);
    Executor ex(net, ws);
    Tensor y = ex.runSimple(x);
    ASSERT_EQ(y.dims(), Dims(1, 1, 3, 3));
    // Interior element: plain 1D convolution along the row.
    float expect = x.at(0, 0, 1, 0) * blob[0] +
                   x.at(0, 0, 1, 1) * blob[1] +
                   x.at(0, 0, 1, 2) * blob[2];
    EXPECT_NEAR(y.at(0, 0, 1, 1), expect, 1e-5f);
    // Column direction is untouched by a 1x3 kernel.
    float edge = x.at(0, 0, 0, 0) * blob[1] +
                 x.at(0, 0, 0, 1) * blob[2];
    EXPECT_NEAR(y.at(0, 0, 0, 0), edge, 1e-5f);
}

TEST(Executor, MissingInputFatal)
{
    Network net("m");
    net.addInput("in", Dims(1, 1, 2, 2));
    net.addIdentity("out", "in");
    net.markOutput("out");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);
    std::unordered_map<std::string, Tensor> empty;
    EXPECT_THROW(ex.run(empty), FatalError);
}

TEST(Executor, WrongInputShapeFatal)
{
    Network net("m");
    net.addInput("in", Dims(1, 1, 2, 2));
    net.addIdentity("out", "in");
    net.markOutput("out");
    WeightsStore ws(net, 1);
    Executor ex(net, ws);
    std::unordered_map<std::string, Tensor> ins;
    ins["in"] = Tensor(Dims(1, 1, 3, 3));
    EXPECT_THROW(ex.run(ins), FatalError);
}

TEST(Executor, RunsMtcnnEndToEnd)
{
    // The smallest real zoo model runs numerically end to end.
    Network net = buildZooModel("mtcnn");
    WeightsStore ws(net, 77);
    Executor ex(net, ws);
    std::unordered_map<std::string, Tensor> ins;
    ins["pnet_data"] = makeInput(Dims(1, 3, 12, 12), 1);
    ins["rnet_data"] = makeInput(Dims(1, 3, 24, 24), 2);
    ins["onet_data"] = makeInput(Dims(1, 3, 48, 48), 3);
    auto outs = ex.run(ins);
    EXPECT_EQ(outs.size(), 7u);
    // Softmax heads are valid distributions.
    const Tensor &cls = outs.begin()->second;
    EXPECT_GT(cls.volume(), 0);
}

} // namespace
} // namespace edgert::nn
