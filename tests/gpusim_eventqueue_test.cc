/**
 * @file
 * SimCore hot-path tests: the flat event calendar (delay min-heap
 * ordering with FIFO tie-break), the arena containers the simulator
 * allocates from, trace-mode thinning, the sampled-trace profiler
 * footer, and the serial-vs-parallel byte-identity contract of the
 * EdgeServe replay (sim_threads must never change an observable
 * byte of the report, metric snapshot or device traces).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "profile/nvprof.hh"
#include "serve/server.hh"

namespace edgert {
namespace {

using gpusim::GpuSim;
using gpusim::KernelDesc;
using gpusim::OpKind;
using gpusim::TraceMode;

KernelDesc
kernel(std::int64_t grid, std::int64_t flops)
{
    KernelDesc k;
    k.name = "k";
    k.grid_blocks = grid;
    k.flops = flops;
    k.dram_bytes = 1 << 20;
    return k;
}

// ---------------------------------------------------------------
// Delay calendar ordering
// ---------------------------------------------------------------

TEST(EventCalendar, DelaysCompleteInTimeOrder)
{
    // Release times enqueued in descending order must still fire
    // ascending: the min-heap, not insertion order, decides.
    GpuSim sim(gpusim::DeviceSpec::xavierNX());
    int s1 = sim.createStream();
    int s2 = sim.createStream();
    sim.delayUntil(0, 0.003);
    sim.delayUntil(s1, 0.002);
    sim.delayUntil(s2, 0.001);
    sim.run();

    std::vector<int> order;
    for (const auto &rec : sim.trace())
        if (rec.kind == OpKind::kDelay)
            order.push_back(rec.stream);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], s2);
    EXPECT_EQ(order[1], s1);
    EXPECT_EQ(order[2], 0);
}

TEST(EventCalendar, EqualTimestampsBreakTiesFifo)
{
    // Three delays expiring at the same instant complete in
    // admission order (stream 0 first) — the seq tie-break that
    // keeps the heap's pop order equal to the old linear scan's.
    GpuSim sim(gpusim::DeviceSpec::xavierNX());
    int s1 = sim.createStream();
    int s2 = sim.createStream();
    sim.delayUntil(0, 0.005);
    sim.delayUntil(s1, 0.005);
    sim.delayUntil(s2, 0.005);
    sim.launchKernel(0, kernel(6, 50'000'000));
    sim.launchKernel(s1, kernel(6, 50'000'000));
    sim.launchKernel(s2, kernel(6, 50'000'000));
    sim.run();

    std::vector<int> delay_order;
    for (const auto &rec : sim.trace())
        if (rec.kind == OpKind::kDelay)
            delay_order.push_back(rec.stream);
    ASSERT_EQ(delay_order.size(), 3u);
    EXPECT_EQ(delay_order[0], 0);
    EXPECT_EQ(delay_order[1], s1);
    EXPECT_EQ(delay_order[2], s2);
}

// ---------------------------------------------------------------
// Arena containers
// ---------------------------------------------------------------

TEST(Arena, ResetRetainsChunks)
{
    Arena a;
    void *p = a.allocate(1024, 16);
    ASSERT_NE(p, nullptr);
    std::size_t reserved = a.bytesReserved();
    EXPECT_GT(reserved, 0u);
    a.reset();
    EXPECT_EQ(a.bytesReserved(), reserved); // memory kept
    EXPECT_EQ(a.bytesAllocated(), 0u);      // but reusable
    EXPECT_EQ(a.allocate(1024, 16), p);     // same chunk again
}

TEST(IndexPool, RecyclesSlotsLifo)
{
    IndexPool<std::string> pool;
    std::int32_t a = pool.acquire();
    std::int32_t b = pool.acquire();
    pool[a] = "first";
    pool[b] = "second";
    EXPECT_EQ(pool.live(), 2u);
    pool.release(a);
    EXPECT_EQ(pool.live(), 1u);
    // LIFO free list: the released index comes back first, and the
    // slot's contents survived (callers must re-init; the pool
    // keeps capacity like string buffers warm).
    std::int32_t c = pool.acquire();
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool[c], "first");
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_EQ(pool.capacity(), 2u); // no third slot was built
}

TEST(RingBuffer, FifoAcrossGrowth)
{
    RingBuffer<int> rb;
    for (int i = 0; i < 100; i++)
        rb.push(i);
    for (int i = 0; i < 50; i++) {
        EXPECT_EQ(rb.front(), i);
        rb.pop();
    }
    for (int i = 100; i < 300; i++) // forces several growths
        rb.push(i);
    for (int i = 50; i < 300; i++) {
        ASSERT_FALSE(rb.empty());
        EXPECT_EQ(rb.front(), i);
        rb.pop();
    }
    EXPECT_TRUE(rb.empty());
}

// ---------------------------------------------------------------
// Trace modes
// ---------------------------------------------------------------

/** One saturated stream: N kernels back to back. */
void
enqueueBurst(GpuSim &sim, int n)
{
    for (int i = 0; i < n; i++)
        sim.launchKernel(0, kernel(12, 80'000'000));
}

TEST(TraceMode, SampledAndOffThinTheTraceOnly)
{
    const int n = 64;
    GpuSim full(gpusim::DeviceSpec::xavierNX());
    GpuSim sampled(gpusim::DeviceSpec::xavierNX());
    sampled.setTraceMode(TraceMode::kSampled, 4);
    GpuSim off(gpusim::DeviceSpec::xavierNX());
    off.setTraceMode(TraceMode::kOff);
    enqueueBurst(full, n);
    enqueueBurst(sampled, n);
    enqueueBurst(off, n);
    full.run();
    sampled.run();
    off.run();

    // The trace mode must not perturb the simulation itself.
    EXPECT_EQ(full.nowSeconds(), sampled.nowSeconds());
    EXPECT_EQ(full.nowSeconds(), off.nowSeconds());
    EXPECT_EQ(full.opsCompleted(), sampled.opsCompleted());
    EXPECT_EQ(full.opsCompleted(), off.opsCompleted());

    EXPECT_EQ(full.trace().size(), static_cast<std::size_t>(n));
    EXPECT_EQ(sampled.trace().size(),
              static_cast<std::size_t>((n + 3) / 4));
    EXPECT_TRUE(off.trace().empty());

    EXPECT_EQ(full.simStats().trace_records, full.trace().size());
    EXPECT_EQ(sampled.simStats().trace_records,
              sampled.trace().size());
    EXPECT_EQ(off.simStats().trace_records, 0u);

    // Sampled records are a strided subset of the full trace.
    for (std::size_t i = 0; i < sampled.trace().size(); i++) {
        EXPECT_EQ(sampled.trace()[i].start_s,
                  full.trace()[i * 4].start_s);
        EXPECT_EQ(sampled.trace()[i].end_s,
                  full.trace()[i * 4].end_s);
    }
}

TEST(TraceMode, GpuTraceFooterStatesSampling)
{
    GpuSim sim(gpusim::DeviceSpec::xavierNX());
    sim.setTraceMode(TraceMode::kSampled, 4);
    enqueueBurst(sim, 16);
    sim.run();
    std::ostringstream os;
    profile::printGpuTrace(os, sim, 64);
    EXPECT_NE(os.str().find("sampled 1/4"), std::string::npos);
    EXPECT_NE(os.str().find("4 of 16 ops recorded"),
              std::string::npos);

    GpuSim bare(gpusim::DeviceSpec::xavierNX());
    enqueueBurst(bare, 16);
    bare.run();
    std::ostringstream os2;
    profile::printGpuTrace(os2, bare, 64);
    EXPECT_EQ(os2.str().find("sampled"), std::string::npos);
}

// ---------------------------------------------------------------
// Serial vs parallel replay byte-identity
// ---------------------------------------------------------------

struct ServeArtifacts
{
    std::string report;
    std::string metrics;
    std::string trace;
};

ServeArtifacts
runFleet(int sim_threads, const std::string &trace_path)
{
    obs::MetricRegistry::global().reset();
    obs::FakeClock fake(1'000'000, 500);
    obs::ScopedClock scoped(&fake);

    serve::ServeConfig cfg;
    serve::ModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = 40.0;
    mc.arrivals.qps = 80.0;
    cfg.models.push_back(mc);
    serve::ModelConfig mc2;
    mc2.model = "mobilenetv1";
    mc2.slo_ms = 20.0;
    mc2.arrivals.qps = 120.0;
    cfg.models.push_back(mc2);
    cfg.devices.push_back(gpusim::DeviceSpec::xavierNX());
    cfg.devices.push_back(gpusim::DeviceSpec::xavierAGX());
    cfg.duration_s = 2.0;
    cfg.seed = 7;
    cfg.sim_threads = sim_threads;
    cfg.trace_out = trace_path;

    serve::ServeReport rep = serve::runServer(cfg);

    ServeArtifacts out;
    out.report = rep.toJson();
    out.metrics = obs::MetricRegistry::global().toJson();
    std::ifstream f(trace_path);
    std::stringstream ss;
    ss << f.rdbuf();
    out.trace = ss.str();
    std::remove(trace_path.c_str());
    return out;
}

TEST(ParallelReplay, ByteIdenticalToSerial)
{
    ServeArtifacts serial = runFleet(1, "eventqueue_serial.json");
    ServeArtifacts parallel =
        runFleet(4, "eventqueue_parallel.json");
    EXPECT_EQ(serial.report, parallel.report);
    EXPECT_EQ(serial.metrics, parallel.metrics);
    ASSERT_FALSE(serial.trace.empty());
    EXPECT_EQ(serial.trace, parallel.trace);
}

} // namespace
} // namespace edgert
