#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json.hh"

using namespace edgert;

TEST(JsonEscape, PassesPlainText)
{
    EXPECT_EQ(jsonEscape("conv1/relu"), "conv1/relu");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscape, HostileNameSurvivesAsDocument)
{
    std::string hostile = "conv\"},\n\\evil\x02{";
    std::string doc = "{\"name\": \"" + jsonEscape(hostile) + "\"}";
    std::string err;
    EXPECT_TRUE(jsonValid(doc, &err)) << err;
}

TEST(JsonNumber, RoundTripsSimpleValues)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(2.0), "2");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(-3.25), "-3.25");
}

TEST(JsonNumber, NonFiniteBecomesZero)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "0");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "0");
    EXPECT_EQ(jsonNumber(-HUGE_VAL), "0");
}

TEST(JsonNumber, Deterministic)
{
    double v = 1.0 / 3.0;
    EXPECT_EQ(jsonNumber(v), jsonNumber(v));
    std::string err;
    EXPECT_TRUE(jsonValid(jsonNumber(v), &err)) << err;
}

TEST(JsonValid, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(jsonValid("{}"));
    EXPECT_TRUE(jsonValid("[]"));
    EXPECT_TRUE(jsonValid("true"));
    EXPECT_TRUE(jsonValid("-1.5e3"));
    EXPECT_TRUE(jsonValid("\"hi\\u0041\""));
    EXPECT_TRUE(jsonValid(
        "{\"a\": [1, 2.5, null], \"b\": {\"c\": false}}"));
}

TEST(JsonValid, RejectsMalformedDocuments)
{
    std::string err;
    EXPECT_FALSE(jsonValid("", &err));
    EXPECT_FALSE(jsonValid("{", &err));
    EXPECT_FALSE(jsonValid("{\"a\": }", &err));
    EXPECT_FALSE(jsonValid("[1,]", &err));
    EXPECT_FALSE(jsonValid("{} extra", &err));
    EXPECT_FALSE(jsonValid("\"unterminated", &err));
    EXPECT_FALSE(jsonValid("\"bad\\x\"", &err));
    EXPECT_FALSE(jsonValid("01", &err));
    EXPECT_FALSE(jsonValid(std::string("\"raw\ncontrol\""), &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonValid, RejectsExcessiveNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(jsonValid(deep));
}
