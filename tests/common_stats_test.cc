/**
 * @file
 * Unit tests for statistics helpers, the text table renderer, the
 * binary I/O streams and the string utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/binio.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace edgert {
namespace {

TEST(RunningStat, MatchesDirectComputation)
{
    std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    RunningStat rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsCombined)
{
    Rng rng(31);
    RunningStat a, b, all;
    for (int i = 0; i < 500; i++) {
        double x = rng.gaussian(3.0, 2.0);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50), FatalError);
    EXPECT_THROW(percentile({1.0}, -1), FatalError);
    EXPECT_THROW(percentile({1.0}, 101), FatalError);
}

TEST(NormalQuantile, InvertsCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                     0.999}) {
        double x = normalQuantile(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-9) << "p=" << p;
    }
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
}

TEST(NormalQuantile, RejectsBounds)
{
    EXPECT_THROW(normalQuantile(0.0), FatalError);
    EXPECT_THROW(normalQuantile(1.0), FatalError);
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"a", "bb"});
    t.addRow({"xxx", "y"});
    std::string s = t.toString();
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| xxx | y  |"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(BinIo, RoundTripScalarsAndStrings)
{
    BinWriter w;
    w.u8(7);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.i64(-42);
    w.f32(3.5f);
    w.f64(-2.25);
    w.str("hello edge");

    BinReader r(w.bytes());
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f32(), 3.5f);
    EXPECT_EQ(r.f64(), -2.25);
    EXPECT_EQ(r.str(), "hello edge");
    EXPECT_TRUE(r.atEnd());
}

TEST(BinIo, TruncatedStreamFails)
{
    BinWriter w;
    w.u32(1);
    BinReader r(w.bytes());
    r.u32();
    EXPECT_THROW(r.u32(), FatalError);
}

TEST(StrUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(1536), "1.50 KB");
    EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(StrUtil, FormatNanos)
{
    EXPECT_EQ(formatNanos(500), "500 ns");
    EXPECT_EQ(formatNanos(1500), "1.50 us");
    EXPECT_EQ(formatNanos(2'500'000), "2.50 ms");
}

TEST(StrUtil, MeanStdCell)
{
    EXPECT_EQ(meanStdCell(12.654, 0.051), "12.65(0.05)");
}

TEST(StrUtil, SplitAndStartsWith)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_TRUE(startsWith("trt_volta_h884", "trt_"));
    EXPECT_FALSE(startsWith("trt", "trt_"));
}

} // namespace
} // namespace edgert
