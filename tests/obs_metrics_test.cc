#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

using namespace edgert;
using namespace edgert::obs;

TEST(MetricKey, CanonicalizesLabels)
{
    EXPECT_EQ(MetricRegistry::key("builder.builds", {}),
              "builder.builds");
    EXPECT_EQ(MetricRegistry::key(
                  "builder.pass.duration_us",
                  {{"pass", "fusion"}, {"device", "NX"}}),
              "builder.pass.duration_us{device=NX,pass=fusion}");
}

TEST(MetricRegistry, CounterAccumulates)
{
    MetricRegistry reg;
    Counter c = reg.counter("x.count", {{"k", "v"}});
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5);
    // Same (name, labels) resolves to the same cell.
    EXPECT_EQ(reg.counter("x.count", {{"k", "v"}}).value(), 5);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, GaugeHoldsLastValue)
{
    MetricRegistry reg;
    Gauge g = reg.gauge("x.level_pct");
    g.set(12.5);
    g.set(90.0);
    EXPECT_DOUBLE_EQ(g.value(), 90.0);
}

TEST(MetricRegistry, KindClashIsFatal)
{
    MetricRegistry reg;
    reg.counter("x.mixed");
    EXPECT_THROW(reg.gauge("x.mixed"), FatalError);
    EXPECT_THROW(reg.histogram("x.mixed"), FatalError);
}

TEST(MetricRegistry, NullHandlesAreInert)
{
    Counter c;
    Gauge g;
    Histogram h;
    c.add();
    g.set(1.0);
    h.record(1.0);
    EXPECT_EQ(c.value(), 0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, TracksSummaryStats)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    for (double v : {1.0, 10.0, 100.0})
        h.record(v);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 111.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, PercentilesAreBucketAccurate)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    // 99 samples 1..99: p50 ~ 50, p99 ~ 99. Log buckets are ~33%
    // wide (10^(1/8)), so allow that relative error.
    for (int i = 1; i <= 99; i++)
        h.record(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0.50), 50.0, 50.0 * 0.35);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 99.0 * 0.35);
    // Quantiles never leave the observed range.
    EXPECT_GE(h.percentile(0.0), 1.0);
    EXPECT_LE(h.percentile(1.0), 99.0);
}

TEST(Histogram, IgnoresNonFiniteSamples)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    h.record(std::nan(""));
    h.record(HUGE_VAL);
    EXPECT_EQ(h.count(), 0u);
}

TEST(MetricRegistry, ResetZeroesButKeepsHandles)
{
    MetricRegistry reg;
    Counter c = reg.counter("x.count");
    Histogram h = reg.histogram("x.duration_us");
    c.add(7);
    h.record(3.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(reg.size(), 2u); // keys survive reset
    c.add(); // handle still live
    EXPECT_EQ(c.value(), 1);
}

TEST(MetricRegistry, SnapshotIsValidJson)
{
    MetricRegistry reg;
    reg.counter("b.count", {{"device", "Xavier NX"}}).add(2);
    reg.gauge("a.level_pct").set(37.5);
    reg.histogram("c.duration_us", {{"pass", "fu\"sion\n"}})
        .record(4.2);
    std::string err;
    EXPECT_TRUE(jsonValid(reg.toJson(), &err)) << err;
}

TEST(MetricRegistry, SnapshotPrefixFilterKeepsMatchingFamilies)
{
    MetricRegistry reg;
    reg.counter("deploy.repo.puts").add(1);
    reg.gauge("serve.device.util_pct").set(50.0);
    reg.histogram("builder.pass.duration_us").record(9.0);

    std::string filtered = reg.toJson({"deploy.", "serve."});
    EXPECT_NE(filtered.find("deploy.repo.puts"), std::string::npos);
    EXPECT_NE(filtered.find("serve.device.util_pct"),
              std::string::npos);
    EXPECT_EQ(filtered.find("builder.pass.duration_us"),
              std::string::npos);
    std::string err;
    EXPECT_TRUE(jsonValid(filtered, &err)) << err;

    // An empty prefix list keeps everything.
    EXPECT_NE(reg.toJson().find("builder.pass.duration_us"),
              std::string::npos);
}

TEST(MetricRegistry, SnapshotIsByteIdenticalForEqualState)
{
    auto populate = [](MetricRegistry &reg) {
        reg.counter("b.count", {{"device", "NX"}}).add(3);
        reg.gauge("a.util_pct").set(66.625);
        Histogram h = reg.histogram("c.duration_us");
        for (double v : {0.5, 1.0 / 3.0, 12.0, 480.0})
            h.record(v);
    };
    MetricRegistry r1, r2;
    populate(r1);
    populate(r2);
    EXPECT_EQ(r1.toJson(), r2.toJson());

    // Registration order must not leak into the snapshot.
    MetricRegistry r3;
    r3.gauge("a.util_pct").set(66.625);
    Histogram h = r3.histogram("c.duration_us");
    for (double v : {0.5, 1.0 / 3.0, 12.0, 480.0})
        h.record(v);
    r3.counter("b.count", {{"device", "NX"}}).add(3);
    EXPECT_EQ(r1.toJson(), r3.toJson());
}

TEST(MetricRegistry, CountersAreThreadSafe)
{
    MetricRegistry reg;
    Counter c = reg.counter("x.count");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++)
        threads.emplace_back([&] {
            for (int i = 0; i < 10000; i++)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 40000);
}

TEST(MetricRegistry, GlobalIsSingleton)
{
    EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

TEST(Histogram, SmallSamplePercentilesAreExact)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    // Well under kExactCap: nearest-rank over the raw values, not
    // the ~33%-wide geometric-midpoint bucket estimate.
    for (double v : {7.0, 3.0, 11.0, 5.0, 9.0})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 11.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 11.0);
}

TEST(Histogram, ExactnessEndsPastTheCap)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    int cap = metrics_detail::HistogramCell::kExactCap;
    for (int i = 1; i <= cap; i++)
        h.record(static_cast<double>(i));
    // At the cap the median is still the exact nearest-rank value.
    EXPECT_DOUBLE_EQ(h.percentile(0.50),
                     static_cast<double>(cap / 2));

    std::string at_cap = reg.toJson();
    EXPECT_NE(at_cap.find("\"exact\": true"), std::string::npos);

    h.record(static_cast<double>(cap + 1));
    std::string past_cap = reg.toJson();
    EXPECT_NE(past_cap.find("\"exact\": false"),
              std::string::npos);
    // Estimation degrades gracefully to the bucketed path.
    EXPECT_NEAR(h.percentile(0.50),
                static_cast<double>(cap) / 2.0,
                static_cast<double>(cap) / 2.0 * 0.35);
}

TEST(Histogram, ResetRestoresExactness)
{
    MetricRegistry reg;
    Histogram h = reg.histogram("x.duration_us");
    int cap = metrics_detail::HistogramCell::kExactCap;
    for (int i = 0; i < cap + 10; i++)
        h.record(1.0);
    reg.reset();
    h.record(42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
    EXPECT_NE(reg.toJson().find("\"exact\": true"),
              std::string::npos);
}

TEST(PromText, RendersCountersGaugesAndSummaries)
{
    MetricRegistry reg;
    reg.counter("serve.requests.total", {{"model", "alexnet"}})
        .add(12);
    reg.gauge("serve.device.util_pct").set(37.5);
    Histogram h =
        reg.histogram("serve.latency_ms", {{"model", "alexnet"}});
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.record(v);

    std::string text = reg.toPromText();
    EXPECT_NE(text.find("# TYPE serve_requests_total counter\n"
                        "serve_requests_total{model=\"alexnet\"} "
                        "12\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_device_util_pct gauge\n"
                        "serve_device_util_pct 37.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_latency_ms summary"),
              std::string::npos);
    EXPECT_NE(
        text.find("serve_latency_ms{model=\"alexnet\","
                  "quantile=\"0.5\"} 2\n"),
        std::string::npos);
    EXPECT_NE(text.find("serve_latency_ms_sum{model=\"alexnet\"} "
                        "10\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("serve_latency_ms_count{model=\"alexnet\"} 4\n"),
        std::string::npos);
}

TEST(PromText, OneTypeLinePerFamilyAcrossLabelSets)
{
    MetricRegistry reg;
    reg.counter("b.count", {{"device", "NX"}}).add(1);
    // Canonical key order puts `b.countx` between `b.count{...}`
    // rows only in JSON; prom output must still group the family.
    reg.counter("b.countx").add(2);
    reg.counter("b.count", {{"device", "AGX"}}).add(3);

    std::string text = reg.toPromText();
    std::size_t first = text.find("# TYPE b_count counter");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# TYPE b_count counter", first + 1),
              std::string::npos);
    EXPECT_NE(text.find("b_count{device=\"AGX\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("b_count{device=\"NX\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE b_countx counter"),
              std::string::npos);
}

TEST(PromText, EscapesLabelValuesAndSanitizesNames)
{
    MetricRegistry reg;
    reg.counter("serve.engine.load_failures",
                {{"model", "res\"net\\v2\nx"}})
        .add(1);
    std::string text = reg.toPromText();
    EXPECT_NE(text.find("serve_engine_load_failures{model="
                        "\"res\\\"net\\\\v2\\nx\"} 1"),
              std::string::npos);
}

TEST(PromText, PrefixFilterUsesCanonicalKeys)
{
    MetricRegistry reg;
    reg.counter("deploy.repo.puts").add(1);
    reg.counter("builder.builds").add(1);
    std::string text = reg.toPromText({"deploy."});
    EXPECT_NE(text.find("deploy_repo_puts 1"), std::string::npos);
    EXPECT_EQ(text.find("builder_builds"), std::string::npos);
}

// ---------------------------------------------------------------
// mergeFrom: fleet-wide snapshot assembly from per-node registries.
// ---------------------------------------------------------------

TEST(MergeFrom, CountersAdd)
{
    MetricRegistry dst, src;
    dst.counter("serve.completed").add(10);
    src.counter("serve.completed").add(5);
    src.counter("serve.shed").add(2);
    dst.mergeFrom(src);
    EXPECT_EQ(dst.counter("serve.completed").value(), 15);
    EXPECT_EQ(dst.counter("serve.shed").value(), 2);
}

TEST(MergeFrom, GaugesLastMergeWins)
{
    MetricRegistry dst, a, b;
    dst.gauge("fleet.depth").set(1.0);
    a.gauge("fleet.depth").set(7.0);
    b.gauge("fleet.depth").set(3.0);
    dst.mergeFrom(a);
    dst.mergeFrom(b);
    EXPECT_DOUBLE_EQ(dst.gauge("fleet.depth").value(), 3.0);
}

TEST(MergeFrom, HistogramsCombine)
{
    MetricRegistry dst, src;
    Histogram hd = dst.histogram("lat.ms");
    Histogram hs = src.histogram("lat.ms");
    hd.record(1.0);
    hd.record(2.0);
    hs.record(0.5);
    hs.record(8.0);
    dst.mergeFrom(src);
    EXPECT_EQ(hd.count(), 4u);
    EXPECT_DOUBLE_EQ(hd.sum(), 11.5);
    EXPECT_DOUBLE_EQ(hd.min(), 0.5);
    EXPECT_DOUBLE_EQ(hd.max(), 8.0);
    // Both sides under the exact cap: percentiles stay nearest-rank.
    EXPECT_DOUBLE_EQ(hd.percentile(100.0), 8.0);
}

TEST(MergeFrom, PrefixNamespacesEveryKind)
{
    MetricRegistry dst, src;
    src.counter("done", {{"model", "alexnet"}}).add(3);
    src.gauge("depth").set(2.0);
    src.histogram("lat").record(1.0);
    dst.mergeFrom(src, "fleet.nx0.");
    EXPECT_EQ(
        dst.counter("fleet.nx0.done", {{"model", "alexnet"}}).value(),
        3);
    EXPECT_DOUBLE_EQ(dst.gauge("fleet.nx0.depth").value(), 2.0);
    EXPECT_EQ(dst.histogram("fleet.nx0.lat").count(), 1u);
    // Source untouched, unprefixed keys absent from the target.
    EXPECT_EQ(src.counter("done", {{"model", "alexnet"}}).value(), 3);
    EXPECT_EQ(dst.counter("done", {{"model", "alexnet"}}).value(), 0);
}

TEST(MergeFrom, DeterministicLabelOrdering)
{
    // Labels registered in different orders must land on the same
    // canonical key, so merged snapshots are byte-stable.
    MetricRegistry a, b, src1, src2;
    src1.counter("c", {{"x", "1"}, {"y", "2"}}).add(1);
    src2.counter("c", {{"y", "2"}, {"x", "1"}}).add(1);
    a.mergeFrom(src1, "p.");
    b.mergeFrom(src2, "p.");
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(MergeFrom, MergeIsDeterministicJson)
{
    auto build = []() {
        MetricRegistry dst;
        MetricRegistry n0, n1;
        n0.counter("serve.completed").add(4);
        n0.histogram("lat.ms").record(1.5);
        n1.counter("serve.completed").add(6);
        n1.histogram("lat.ms").record(2.5);
        dst.mergeFrom(n0, "fleet.a.");
        dst.mergeFrom(n1, "fleet.b.");
        return dst.toJson();
    };
    EXPECT_EQ(build(), build());
}

TEST(MergeFrom, CrossKindCollisionIsFatal)
{
    MetricRegistry dst, src;
    dst.counter("thing").add(1);
    src.gauge("thing").set(1.0);
    EXPECT_THROW(dst.mergeFrom(src), FatalError);
}
