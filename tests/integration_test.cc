/**
 * @file
 * Cross-module integration tests: the full model -> optimize ->
 * autotune -> serialize -> deploy -> measure pipeline, and the
 * paper's headline behaviours end to end.
 */

#include <gtest/gtest.h>

#include "core/builder.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "nn/serialize.hh"
#include "profile/nvprof.hh"
#include "profile/tegrastats.hh"
#include "runtime/context.hh"
#include "runtime/measure.hh"

namespace edgert {
namespace {

TEST(Integration, FullPipelineModelToLatency)
{
    // Freeze -> ship -> load -> build on device -> serialize plan ->
    // reload plan -> run. Structure and results survive every hop.
    nn::Network net = nn::buildZooModel("resnet-18");
    auto model_bytes = nn::serializeNetwork(net);
    nn::Network shipped = nn::deserializeNetwork(model_bytes).value();

    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.build_id = 9;
    core::Engine engine = core::Builder(nx, cfg).build(shipped);
    core::Engine loaded =
        core::Engine::deserialize(engine.serialize()).value();

    auto a = runtime::measureLatency(engine, nx);
    auto b = runtime::measureLatency(loaded, nx);
    EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
}

TEST(Integration, ResnetShowsPaperCase1Anomaly)
{
    // The headline anomaly: ResNet-18 native engines run slower on
    // the bigger AGX than on NX (paper Table VIII, bold case 1).
    nn::Network net = nn::buildZooModel("resnet-18");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    core::Engine e_nx = core::Builder(nx, cfg).build(net);
    core::Engine e_agx = core::Builder(agx, cfg).build(net);
    auto nx_native = runtime::measureLatency(e_nx, nx);
    auto agx_native = runtime::measureLatency(e_agx, agx);
    EXPECT_GT(agx_native.mean_ms, nx_native.mean_ms);
}

TEST(Integration, AlexnetShowsNoAnomaly)
{
    // Table VIII also shows models with *no* anomaly: AlexNet.
    nn::Network net = nn::buildZooModel("alexnet");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    core::Engine e_nx = core::Builder(nx, cfg).build(net);
    core::Engine e_agx = core::Builder(agx, cfg).build(net);
    auto nx_native = runtime::measureLatency(e_nx, nx);
    auto agx_native = runtime::measureLatency(e_agx, agx);
    EXPECT_LT(agx_native.mean_ms, nx_native.mean_ms);
}

TEST(Integration, DeployOneBinaryRemovesOutputNondeterminism)
{
    // §VI-A mitigation: ship the exact same serialized engine to
    // every unit -> identical outputs everywhere.
    nn::Network net = nn::buildZooModel("resnet-18");
    core::BuilderConfig cfg;
    cfg.build_id = 4;
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine master = core::Builder(nx, cfg).build(net);

    auto unit1 =
        core::Engine::deserialize(master.serialize()).value();
    auto unit2 =
        core::Engine::deserialize(master.serialize()).value();
    auto clf1 = data::SurrogateClassifier::forEngine(
        "resnet-18", unit1.fingerprint());
    auto clf2 = data::SurrogateClassifier::forEngine(
        "resnet-18", unit2.fingerprint());

    data::AdversarialDataset ds(50, 10, {1, 5});
    for (std::size_t i = 0; i < ds.size(); i++)
        EXPECT_EQ(clf1.predict(ds.at(i)), clf2.predict(ds.at(i)));
}

TEST(Integration, RebuildingChangesOutputsSomewhere)
{
    // ...whereas rebuilding per unit (the default workflow) lets
    // units disagree (Finding 2).
    nn::Network net = nn::buildZooModel("inception-v4");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    core::BuilderConfig c1, c2;
    c1.build_id = 11;
    c2.build_id = 12;
    auto e1 = core::Builder(nx, c1).build(net);
    auto e2 = core::Builder(agx, c2).build(net);
    ASSERT_NE(e1.fingerprint(), e2.fingerprint());

    auto clf1 = data::SurrogateClassifier::forEngine(
        "inception-v4", e1.fingerprint());
    auto clf2 = data::SurrogateClassifier::forEngine(
        "inception-v4", e2.fingerprint());
    data::AdversarialDataset ds(100, 20, {1, 5});
    std::size_t diff = 0;
    for (std::size_t i = 0; i < ds.size(); i++)
        if (clf1.predict(ds.at(i)) != clf2.predict(ds.at(i)))
            diff++;
    EXPECT_GT(diff, 0u);
}

TEST(Integration, NvprofSummaryCoversInference)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("tiny-yolov3");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);

    gpusim::GpuSim sim(nx);
    sim.setProfilingOverheadUs(50.0);
    runtime::ExecutionContext ctx(e, sim, 0);
    ctx.enqueueWeightUpload();
    ctx.enqueueInference(true, true);
    sim.run();

    auto rows = profile::summarize(sim.trace());
    ASSERT_FALSE(rows.empty());
    double pct = 0.0;
    bool has_h2d = false;
    for (const auto &r : rows) {
        pct += r.pct_of_total;
        if (r.name == "[CUDA memcpy HtoD]")
            has_h2d = true;
    }
    EXPECT_NEAR(pct, 100.0, 0.1);
    EXPECT_TRUE(has_h2d);

    std::ostringstream oss;
    profile::printSummary(oss, sim.trace());
    EXPECT_NE(oss.str().find("==PROF=="), std::string::npos);
    std::ostringstream trace_os;
    profile::printGpuTrace(trace_os, sim.trace(), 16);
    EXPECT_NE(trace_os.str().find("Stream"), std::string::npos);
}

TEST(Integration, TegrastatsSamplesUtilization)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("googlenet");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);

    gpusim::GpuSim sim(nx);
    runtime::ExecutionContext ctx(e, sim, 0);
    profile::Tegrastats stats(sim, 2048.0);
    ctx.enqueueInference(true, true);
    sim.run();
    auto s = stats.sample();
    EXPECT_GT(s.gr3d_pct, 0.0);
    EXPECT_LE(s.gr3d_pct, 100.0);
    EXPECT_LE(s.emc_pct, 100.0);
    EXPECT_DOUBLE_EQ(s.ram_total_mb, 8.0 * 1024.0);

    std::ostringstream oss;
    stats.print(oss);
    EXPECT_NE(oss.str().find("GR3D_FREQ"), std::string::npos);
}

TEST(Integration, EngineVarianceAcrossBuildsOnSamePlatform)
{
    // Table XII behaviour: rebuilt engines can differ in latency —
    // on AGX, ResNet-18 flips between Winograd and direct tactics,
    // changing both kernel times and the plan's upload size (the
    // paper's 9.02 ms vs 13.94 ms engines).
    nn::Network net = nn::buildZooModel("resnet-18");
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    double mn = 1e300, mx = 0.0;
    for (std::uint64_t id = 0; id < 8; id++) {
        core::BuilderConfig cfg;
        cfg.build_id = id;
        core::Engine e = core::Builder(agx, cfg).build(net);
        runtime::LatencyOptions opts;
        opts.system_noise = 0.0; // isolate tactic-choice effects
        auto lat = runtime::measureLatency(e, agx, opts);
        mn = std::min(mn, lat.mean_ms);
        mx = std::max(mx, lat.mean_ms);
    }
    EXPECT_GT(mx, mn * 1.02);
}

TEST(Integration, AnomalyDirectionRobustAcrossBuildSeeds)
{
    // The resnet-18 case-1 anomaly must not be an artifact of one
    // lucky build id: across 8 rebuild pairs, the AGX-native engine
    // is slower than the NX-native one in the majority of cases.
    nn::Network net = nn::buildZooModel("resnet-18");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    int anomalous = 0;
    for (std::uint64_t id = 1; id <= 8; id++) {
        core::BuilderConfig cfg;
        cfg.build_id = id;
        core::Engine e_nx = core::Builder(nx, cfg).build(net);
        core::Engine e_agx = core::Builder(agx, cfg).build(net);
        runtime::LatencyOptions opts;
        opts.runs = 5;
        auto l_nx = runtime::measureLatency(e_nx, nx, opts);
        auto l_agx = runtime::measureLatency(e_agx, agx, opts);
        if (l_agx.mean_ms > l_nx.mean_ms)
            anomalous++;
    }
    EXPECT_GE(anomalous, 5) << "of 8 rebuild pairs";
}

TEST(Integration, SpeedupRobustAcrossBuildSeeds)
{
    // Finding 3's magnitude holds for any build, not just the
    // pinned one.
    nn::Network net = nn::buildZooModel("googlenet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    for (std::uint64_t id = 1; id <= 4; id++) {
        core::BuilderConfig cfg;
        cfg.build_id = id;
        core::Engine opt = core::Builder(nx, cfg).build(net);
        core::Engine raw =
            core::Builder(nx, cfg).buildUnoptimized(net);
        runtime::ThroughputOptions topt;
        topt.frames_per_thread = 5;
        double g =
            runtime::measureThroughput(opt, nx, topt).aggregate_fps /
            runtime::measureThroughput(raw, nx, topt).aggregate_fps;
        EXPECT_GT(g, 15.0) << "build " << id;
        EXPECT_LT(g, 120.0) << "build " << id;
    }
}

} // namespace
} // namespace edgert
