/**
 * @file
 * Tests for datasets, the surrogate classifier calibration, the
 * engine-consistency behaviour (Finding 2 mechanics) and the
 * detection stack (IOU, matching, traffic data, surrogate
 * detector).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "data/datasets.hh"
#include "data/detection.hh"
#include "data/surrogate.hh"

namespace edgert::data {
namespace {

TEST(Datasets, BenignShape)
{
    BenignDataset ds(100, 50);
    EXPECT_EQ(ds.size(), 5000u);
    EXPECT_EQ(ds.at(0).class_id, 0);
    EXPECT_EQ(ds.at(0).index, 0);
    EXPECT_EQ(ds.at(4999).class_id, 99);
    EXPECT_EQ(ds.at(4999).index, 49);
    EXPECT_THROW(ds.at(5000), FatalError);
}

TEST(Datasets, AdversarialShapeMatchesPaper)
{
    AdversarialDataset ds(100, 20, {1, 5});
    EXPECT_EQ(ds.size(), 60000u); // 15 x 2 x 100 x 20
    auto first = ds.at(0);
    EXPECT_EQ(first.noise, NoiseType::kGaussian);
    EXPECT_EQ(first.severity, 1);
    auto last = ds.at(59999);
    EXPECT_EQ(last.noise, NoiseType::kJpeg);
    EXPECT_EQ(last.severity, 5);
    EXPECT_EQ(last.base.class_id, 99);
}

TEST(Datasets, SeedsAreUniquePerImage)
{
    BenignDataset ds(10, 10);
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < ds.size(); i++)
        seeds.insert(ds.at(i).seed());
    EXPECT_EQ(seeds.size(), ds.size());
}

TEST(Datasets, InvalidConfigFatal)
{
    EXPECT_THROW(BenignDataset(0, 10), FatalError);
    EXPECT_THROW(AdversarialDataset(10, 10, {}), FatalError);
    EXPECT_THROW(AdversarialDataset(10, 10, {6}), FatalError);
}

double
benignError(const SurrogateClassifier &clf, int classes = 100,
            int per_class = 50)
{
    BenignDataset ds(classes, per_class);
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < ds.size(); i++)
        if (clf.predict(ds.at(i)) != ds.at(i).class_id)
            wrong++;
    return 100.0 * static_cast<double>(wrong) /
           static_cast<double>(ds.size());
}

TEST(Surrogate, CalibratedToProfile)
{
    for (const char *model : {"alexnet", "resnet-18", "vgg-16"}) {
        const auto &p = accuracyProfile(model);
        auto opt = SurrogateClassifier::forEngine(model, 123);
        auto raw = SurrogateClassifier::unoptimized(model);
        EXPECT_NEAR(benignError(opt), p.benign_err_opt, 2.5) << model;
        EXPECT_NEAR(benignError(raw), p.benign_err_unopt, 2.5)
            << model;
    }
}

TEST(Surrogate, OptimizedBeatsUnoptimized)
{
    auto opt = SurrogateClassifier::forEngine("resnet-18", 55);
    auto raw = SurrogateClassifier::unoptimized("resnet-18");
    EXPECT_LT(benignError(opt), benignError(raw));
}

TEST(Surrogate, SeverityFiveWorseThanOne)
{
    auto clf = SurrogateClassifier::forEngine("vgg-16", 9);
    AdversarialDataset s1(50, 20, {1});
    AdversarialDataset s5(50, 20, {5});
    auto err = [&](const AdversarialDataset &ds) {
        std::size_t wrong = 0;
        for (std::size_t i = 0; i < ds.size(); i++)
            if (clf.predict(ds.at(i)) != ds.at(i).base.class_id)
                wrong++;
        return static_cast<double>(wrong) /
               static_cast<double>(ds.size());
    };
    EXPECT_GT(err(s5), err(s1) + 0.2);
}

TEST(Surrogate, IdenticalFingerprintsAgreeEverywhere)
{
    auto a = SurrogateClassifier::forEngine("resnet-18", 777);
    auto b = SurrogateClassifier::forEngine("resnet-18", 777);
    AdversarialDataset ds(20, 10, {1, 5});
    for (std::size_t i = 0; i < ds.size(); i++)
        EXPECT_EQ(a.predict(ds.at(i)), b.predict(ds.at(i)));
}

TEST(Surrogate, DifferentFingerprintsDisagreeRarely)
{
    auto a = SurrogateClassifier::forEngine("resnet-18", 1);
    auto b = SurrogateClassifier::forEngine("resnet-18", 2);
    AdversarialDataset ds(100, 20, {1, 5});
    std::size_t diff = 0;
    for (std::size_t i = 0; i < ds.size(); i++)
        if (a.predict(ds.at(i)) != b.predict(ds.at(i)))
            diff++;
    // Paper Table V/VI band: ~0.1-0.8% of 60k predictions.
    EXPECT_GT(diff, 30u);
    EXPECT_LT(diff, 600u);
}

TEST(Surrogate, UnoptimizedIsDeterministicBinary)
{
    auto a = SurrogateClassifier::unoptimized("vgg-16");
    auto b = SurrogateClassifier::unoptimized("vgg-16");
    BenignDataset ds(50, 20);
    for (std::size_t i = 0; i < ds.size(); i++)
        EXPECT_EQ(a.predict(ds.at(i)), b.predict(ds.at(i)));
}

TEST(Surrogate, WrongPredictionsShareConfusionClass)
{
    // Two engines that both misclassify an image emit the same
    // wrong label (the confusion is a property of the image).
    auto a = SurrogateClassifier::forEngine("alexnet", 10);
    auto b = SurrogateClassifier::forEngine("alexnet", 20);
    BenignDataset ds(100, 50);
    for (std::size_t i = 0; i < ds.size(); i++) {
        ImageRef img = ds.at(i);
        int pa = a.predict(img);
        int pb = b.predict(img);
        if (pa != img.class_id && pb != img.class_id) {
            EXPECT_EQ(pa, pb);
        }
    }
}

TEST(Detection, IouMath)
{
    Box a{0.0, 0.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
    Box b{0.5, 0.0, 1.5, 1.0};
    EXPECT_NEAR(iou(a, b), 0.5 / 1.5, 1e-12);
    Box c{2.0, 2.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(iou(a, c), 0.0);
}

TEST(Detection, EvaluateHandCase)
{
    TrafficScene scene;
    scene.id = 0;
    Detection gt;
    gt.box = {0.1, 0.1, 0.3, 0.3};
    gt.cls = VehicleClass::kCar;
    scene.ground_truth.push_back(gt);

    Detection hit = gt;
    hit.score = 0.9;
    Detection miss;
    miss.box = {0.6, 0.6, 0.8, 0.8};
    miss.cls = VehicleClass::kBus;
    miss.score = 0.8;

    auto m = evaluateDetections({scene}, {{hit, miss}}, 0.75);
    EXPECT_EQ(m.true_positives, 1);
    EXPECT_EQ(m.false_positives, 1);
    EXPECT_EQ(m.false_negatives, 0);
    EXPECT_DOUBLE_EQ(m.precision, 0.5);
    EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(Detection, ClassMustMatch)
{
    TrafficScene scene;
    scene.id = 1;
    Detection gt;
    gt.box = {0.1, 0.1, 0.3, 0.3};
    gt.cls = VehicleClass::kCar;
    scene.ground_truth.push_back(gt);
    Detection wrong_cls = gt;
    wrong_cls.cls = VehicleClass::kTruck;
    auto m = evaluateDetections({scene}, {{wrong_cls}}, 0.75);
    EXPECT_EQ(m.true_positives, 0);
    EXPECT_EQ(m.false_positives, 1);
    EXPECT_EQ(m.false_negatives, 1);
}

TEST(Detection, TrafficDatasetDeterministic)
{
    TrafficDataset a(100), b(100);
    ASSERT_EQ(a.size(), 100u);
    for (std::size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a.at(i).ground_truth.size(),
                  b.at(i).ground_truth.size());
        EXPECT_EQ(a.at(i).ground_truth[0].plate,
                  b.at(i).ground_truth[0].plate);
    }
}

TEST(Detection, SceneContentsPlausible)
{
    TrafficDataset ds(200);
    for (std::size_t i = 0; i < ds.size(); i++) {
        const auto &scene = ds.at(i);
        EXPECT_GE(scene.ground_truth.size(), 1u);
        EXPECT_LE(scene.ground_truth.size(), 8u);
        for (const auto &d : scene.ground_truth) {
            EXPECT_GE(d.box.x1, 0.0);
            EXPECT_LE(d.box.x2, 1.0);
            EXPECT_GT(d.box.area(), 0.0);
            EXPECT_EQ(d.plate.size(), 6u);
        }
    }
}

TEST(Detection, SurrogateDetectorAtPaperOperatingPoint)
{
    TrafficDataset ds(1670); // paper's test split size
    SurrogateDetector det("pednet", 42, true);
    std::vector<TrafficScene> scenes;
    std::vector<std::vector<Detection>> preds;
    for (std::size_t i = 0; i < ds.size(); i++) {
        scenes.push_back(ds.at(i));
        preds.push_back(det.detect(ds.at(i)));
    }
    auto m = evaluateDetections(scenes, preds, 0.75);
    EXPECT_GT(m.precision, 0.55);
    EXPECT_GT(m.recall, 0.55);
    EXPECT_LT(m.precision, 0.95);
}

TEST(Detection, EngineChangesBorderlineDetections)
{
    TrafficDataset ds(400);
    SurrogateDetector a("pednet", 1, true);
    SurrogateDetector b("pednet", 2, true);
    int scenes_differ = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        if (a.detect(ds.at(i)).size() != b.detect(ds.at(i)).size())
            scenes_differ++;
    }
    EXPECT_GT(scenes_differ, 0);
    EXPECT_LT(scenes_differ, 120);
}

TEST(PlateReader, IdenticalEnginesReadIdentically)
{
    SurrogatePlateReader a(42), b(42);
    for (std::uint64_t s = 0; s < 500; s++)
        EXPECT_EQ(a.read("KA1234", s), b.read("KA1234", s));
}

TEST(PlateReader, DifferentEnginesDisagreeRarely)
{
    SurrogatePlateReader a(1), b(2);
    int diff = 0;
    const int n = 2000;
    for (std::uint64_t s = 0; s < n; s++)
        if (a.read("MH0786", s) != b.read("MH0786", s))
            diff++;
    EXPECT_GT(diff, 0);
    // Only borderline characters can flip: a few percent of plates.
    EXPECT_LT(diff, n / 10);
}

TEST(PlateReader, MisreadsAreConfusablePairs)
{
    SurrogatePlateReader r(7, /*borderline_rate=*/1.0);
    // With every character borderline and flips forced by seed
    // search, misreads stay within the confusable alphabet.
    for (std::uint64_t s = 0; s < 200; s++) {
        std::string got = r.read("B80O17", s);
        ASSERT_EQ(got.size(), 6u);
        EXPECT_TRUE(got[0] == 'B' || got[0] == '8');
        EXPECT_TRUE(got[1] == '8' || got[1] == 'B');
        EXPECT_TRUE(got[2] == '0' || got[2] == 'O');
        EXPECT_TRUE(got[3] == 'O' || got[3] == '0');
        EXPECT_TRUE(got[4] == '1' || got[4] == '2');
    }
}

TEST(Detection, NoiseNames)
{
    EXPECT_STREQ(noiseTypeName(NoiseType::kGaussian),
                 "gaussian_noise");
    EXPECT_STREQ(noiseTypeName(NoiseType::kJpeg),
                 "jpeg_compression");
    EXPECT_STREQ(vehicleClassName(VehicleClass::kAutoRickshaw),
                 "auto-rickshaw");
}

} // namespace
} // namespace edgert::data
