/**
 * @file
 * Tests for the Status / Result<T> error model: code and message
 * propagation, context chaining, and value semantics. This is the
 * recoverable half of the error-handling contract — fatal() and
 * panic() stay reserved for user errors and internal bugs.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/status.hh"

namespace edgert {
namespace {

TEST(Status, OkIsDefaultAndCarriesNoMessage)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kOk);
    EXPECT_TRUE(s.message().empty());
    EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s = errorStatus(ErrorCode::kDataLoss, "bad magic ",
                           0xdead);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kDataLoss);
    EXPECT_NE(s.message().find("bad magic"), std::string::npos);
    EXPECT_NE(s.toString().find(errorCodeName(ErrorCode::kDataLoss)),
              std::string::npos);
}

TEST(Status, ContextChainsOutermostFirst)
{
    Status s = errorStatus(ErrorCode::kIoError, "read failed")
                   .context("parsing header")
                   .context("Engine::deserialize");
    EXPECT_EQ(s.code(), ErrorCode::kIoError);
    std::string m = s.message();
    auto outer = m.find("Engine::deserialize");
    auto mid = m.find("parsing header");
    auto inner = m.find("read failed");
    ASSERT_NE(outer, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(inner, std::string::npos);
    EXPECT_LT(outer, mid);
    EXPECT_LT(mid, inner);
}

TEST(Status, EveryCodeHasAName)
{
    for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); c++)
        EXPECT_STRNE(errorCodeName(static_cast<ErrorCode>(c)), "");
}

TEST(Result, HoldsAValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsAnError)
{
    Result<int> r(errorStatus(ErrorCode::kNotFound, "no such file"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Result, MoveOnlyPayloadsMoveOut)
{
    Result<std::string> r(std::string("payload"));
    std::string s = std::move(r).value();
    EXPECT_EQ(s, "payload");
}

TEST(Result, ArrowReachesMembers)
{
    Result<std::string> r(std::string("abc"));
    EXPECT_EQ(r->size(), 3u);
}

TEST(Result, ContextWrapsTheCarriedStatus)
{
    Result<int> r(errorStatus(ErrorCode::kDataLoss, "truncated"));
    Status s = r.status().context("loadNetwork");
    EXPECT_LT(s.message().find("loadNetwork"),
              s.message().find("truncated"));
}

} // namespace
} // namespace edgert
