/**
 * @file
 * Concurrency tests for the observability layer: metric recording
 * racing snapshots, and flight-recorder writes racing snapshots.
 * These are the suites the ThreadSanitizer CI job
 * (-DEDGERT_SANITIZE=thread) leans on — the assertions here are
 * deliberately loose (no torn state, conserved totals); the
 * sanitizer provides the strict part.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "obs/metrics.hh"
#include "watch/recorder.hh"

using namespace edgert;
using namespace edgert::obs;

namespace {

TEST(MetricConcurrency, RecordingRacesSnapshotsSafely)
{
    MetricRegistry reg;
    Counter c = reg.counter("x.count");
    Gauge g = reg.gauge("x.level_pct");
    Histogram h = reg.histogram("x.duration_us");

    constexpr int kWriters = 4;
    constexpr int kOps = 5000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; t++)
        writers.emplace_back([&, t] {
            for (int i = 0; i < kOps; i++) {
                c.add();
                g.set(static_cast<double>(i));
                h.record(static_cast<double>(t * kOps + i + 1));
            }
        });

    // Snapshot continuously while the writers hammer the cells:
    // every snapshot must be well-formed JSON (and prom text must
    // render) regardless of interleaving.
    std::thread reader([&] {
        std::string err;
        while (!stop.load(std::memory_order_relaxed)) {
            EXPECT_TRUE(jsonValid(reg.toJson(), &err)) << err;
            EXPECT_FALSE(reg.toPromText().empty());
        }
    });

    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(c.value(), kWriters * kOps);
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kWriters * kOps));
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(),
                     static_cast<double>(kWriters * kOps));
}

TEST(MetricConcurrency, HandleCreationRacesSafely)
{
    MetricRegistry reg;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++)
        threads.emplace_back([&] {
            for (int i = 0; i < 200; i++) {
                reg.counter("x.count",
                            {{"k", std::to_string(i % 8)}})
                    .add();
                reg.histogram("x.duration_us").record(1.0);
            }
        });
    for (auto &t : threads)
        t.join();
    // 8 labeled counters + 1 histogram.
    EXPECT_EQ(reg.size(), 9u);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(reg.counter("x.count",
                              {{"k", std::to_string(i)}})
                      .value(),
                  100);
}

TEST(FlightRecorderConcurrency, WritersRaceSnapshotsSafely)
{
    watch::FlightRecorder rec(64);
    constexpr int kWriters = 4;
    constexpr int kEvents = 4000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; t++)
        writers.emplace_back([&, t] {
            for (int i = 0; i < kEvents; i++) {
                watch::FlightEvent e;
                e.t_s = i;
                e.id = t * kEvents + i;
                e.model = "m";
                rec.record(e);
            }
        });

    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::vector<watch::FlightEvent> snap = rec.snapshot();
            EXPECT_LE(snap.size(), 64u);
            for (const auto &e : snap)
                EXPECT_EQ(e.model, "m"); // never a torn event
        }
    });

    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(rec.totalRecorded(), kWriters * kEvents);
    EXPECT_EQ(rec.snapshot().size(), 64u);
}

} // namespace
