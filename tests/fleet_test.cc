/**
 * @file
 * EdgeFleet end-to-end invariants: same-seed byte-identity (serial
 * and parallel replay), request conservation across node failures,
 * spec parsing, placement ranking and rollout cohort planning.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "deploy/cohort.hh"
#include "fleet/fleet.hh"
#include "fleet/placement.hh"
#include "fleet/spec.hh"

namespace {

using namespace edgert;

fleet::FleetConfig
smallFleet()
{
    fleet::FleetConfig cfg;
    cfg.groups.push_back(fleet::parseNodeGroup("nx:3"));
    cfg.groups.push_back(fleet::parseNodeGroup("agx:1"));
    fleet::FleetModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = 100.0;
    mc.arrivals.qps = 400.0;
    cfg.models.push_back(mc);
    cfg.duration_s = 1.0;
    cfg.seed = 7;
    return cfg;
}

TEST(Fleet, SameSeedByteIdenticalSerialAndParallel)
{
    fleet::FleetConfig cfg = smallFleet();
    fleet::FailureSpec fs;
    fs.node = 1;
    fs.fail_s = 0.3;
    fs.rejoin_s = 0.7;
    cfg.failures.push_back(fs);

    std::string serial = fleet::runFleet(cfg).toJson();
    std::string rerun = fleet::runFleet(cfg).toJson();
    EXPECT_EQ(serial, rerun);

    cfg.sim_threads = 4;
    std::string parallel = fleet::runFleet(cfg).toJson();
    EXPECT_EQ(serial, parallel);
}

TEST(Fleet, DifferentSeedDifferentWorkload)
{
    fleet::FleetConfig cfg = smallFleet();
    std::string a = fleet::runFleet(cfg).toJson();
    cfg.seed = 8;
    std::string b = fleet::runFleet(cfg).toJson();
    EXPECT_NE(a, b);
}

// Every admitted request is accounted for: completed + shed ==
// offered even when a node drains mid-run and later rejoins.
TEST(Fleet, FailureConservesRequests)
{
    fleet::FleetConfig cfg = smallFleet();
    fleet::FailureSpec fs;
    fs.node = 0;
    fs.fail_s = 0.4;
    fs.rejoin_s = 0.8;
    cfg.failures.push_back(fs);

    fleet::FleetReport rep = fleet::runFleet(cfg);
    EXPECT_GT(rep.offered, 0);
    EXPECT_EQ(rep.unaccounted, 0);
    EXPECT_EQ(rep.completed + rep.shed, rep.offered);

    ASSERT_EQ(rep.events.size(), 2u);
    EXPECT_EQ(rep.events[0].kind, "fail");
    EXPECT_DOUBLE_EQ(rep.events[0].t_s, 0.4);
    EXPECT_GT(rep.events[0].remap_pct, 0.0);
    EXPECT_EQ(rep.events[1].kind, "rejoin");
    EXPECT_DOUBLE_EQ(rep.events[1].t_s, 0.8);
}

TEST(Fleet, ValidatesConfig)
{
    fleet::FleetConfig none;
    EXPECT_THROW(fleet::runFleet(none), FatalError);

    fleet::FleetConfig bad = smallFleet();
    bad.failures.push_back({99, 0.5, -1.0});
    EXPECT_THROW(fleet::runFleet(bad), FatalError);

    fleet::FleetConfig dup = smallFleet();
    dup.models.push_back(dup.models[0]);
    EXPECT_THROW(fleet::runFleet(dup), FatalError);
}

TEST(FleetSpec, ParseNodeGroup)
{
    fleet::NodeGroup g =
        fleet::parseNodeGroup("nx:8:clock=0.6:name=straggler");
    EXPECT_EQ(g.count, 8);
    EXPECT_EQ(g.name, "straggler");
    EXPECT_DOUBLE_EQ(g.clock_ghz, 0.6);
    // parseNodeGroup only parses; semantic validation (positive
    // counts, known devices) happens when the fleet is resolved.
    EXPECT_THROW(
        fleet::resolveFleet({fleet::parseNodeGroup("nx:0")}),
        FatalError);
    EXPECT_THROW(
        fleet::resolveFleet({fleet::parseNodeGroup("warp9:4")}),
        FatalError);
    EXPECT_THROW(fleet::parseNodeGroup("nx"), FatalError);
    EXPECT_THROW(fleet::parseNodeGroup("nx:4:warp=9"), FatalError);
}

TEST(FleetSpec, ResolveSharesDeviceClasses)
{
    std::vector<fleet::NodeGroup> groups = {
        fleet::parseNodeGroup("nx:2"),
        fleet::parseNodeGroup("nx:2"), // same class as pool 0
        fleet::parseNodeGroup("nx:2:clock=0.6"),
        fleet::parseNodeGroup("agx:1")};
    fleet::ResolvedFleet fleet = fleet::resolveFleet(groups);
    ASSERT_EQ(fleet.nodes.size(), 7u);
    // nx, nx@0.6 and agx: three distinct (device, clock) classes.
    EXPECT_EQ(fleet.classes.size(), 3u);
    EXPECT_EQ(fleet.nodes[0].dev_class, fleet.nodes[2].dev_class);
    EXPECT_NE(fleet.nodes[0].dev_class, fleet.nodes[4].dev_class);
    EXPECT_EQ(fleet.nodes[0].name, "nx0/0");
}

// Capability order ranks by nominal spec-sheet FLOPS (max clock),
// so a throttled straggler class still ranks as its full-speed
// platform; calibrated order uses the measured service time and
// demotes it.
TEST(FleetPlacement, CapabilityVsCalibrated)
{
    std::vector<fleet::NodeGroup> groups = {
        fleet::parseNodeGroup("nx:2"),
        fleet::parseNodeGroup("agx:2:clock=0.6")};
    fleet::ResolvedFleet fleet = fleet::resolveFleet(groups);
    ASSERT_EQ(fleet.classes.size(), 2u);

    auto cap = fleet::rankClasses(
        fleet::PlacementPolicy::kCapabilityOrder, fleet.classes, {});
    // Nominal AGX >> nominal NX regardless of the throttle.
    EXPECT_EQ(fleet.classes[static_cast<std::size_t>(cap[0])].label(),
              "agx@0.6");

    auto cal = fleet::rankClasses(
        fleet::PlacementPolicy::kCalibrated, fleet.classes,
        {0.002, 0.009});
    EXPECT_EQ(fleet.classes[static_cast<std::size_t>(cal[0])].label(),
              "nx");

    EXPECT_THROW(
        fleet::rankClasses(fleet::PlacementPolicy::kCalibrated,
                           fleet.classes, {0.1}),
        FatalError);
}

// Regression for the capability-placement blind spot: ranking by
// raw peakFp16Flops regardless of serving precision placed an INT8
// model exactly like an FP16 one. With precision-effective peaks, a
// class with a modest FP16 peak but a strong IMMA/DP4A path outranks
// a nominally bigger class once the model serves @int8.
TEST(FleetPlacement, PrecisionFlipsCapabilityOrder)
{
    fleet::DeviceClass big; // high FP16 peak, weak INT8 path
    big.device = "agx";
    big.spec = gpusim::DeviceSpec::xavierAGX();
    big.spec.int8_speedup = 1.0;
    fleet::DeviceClass small_; // lower peak, strong INT8 path
    small_.device = "nx";
    small_.spec = gpusim::DeviceSpec::xavierNX();
    small_.spec.int8_speedup = 2.0;
    std::vector<fleet::DeviceClass> classes = {big, small_};

    auto fp16 = fleet::rankClasses(
        fleet::PlacementPolicy::kCapabilityOrder, classes, {},
        nn::Precision::kFp16);
    EXPECT_EQ(fp16[0], 0) << "fp16 fleet prefers the big class";

    auto int8 = fleet::rankClasses(
        fleet::PlacementPolicy::kCapabilityOrder, classes, {},
        nn::Precision::kInt8);
    EXPECT_EQ(int8[0], 1) << "int8 fleet prefers the INT8-fast class";
}

TEST(FleetPlacement, SelectNodesTakesRankOrder)
{
    std::vector<fleet::NodeGroup> groups = {
        fleet::parseNodeGroup("nx:4"),
        fleet::parseNodeGroup("agx:4")};
    fleet::ResolvedFleet fleet = fleet::resolveFleet(groups);
    auto cal = fleet::rankClasses(
        fleet::PlacementPolicy::kCalibrated, fleet.classes,
        {0.001, 0.002});
    auto serves = fleet::selectNodes(fleet, cal, 50.0);
    int count = 0;
    for (std::size_t n = 0; n < serves.size(); n++)
        if (serves[n])
            count++;
    EXPECT_EQ(count, 4);
    // The preferred class (nx, nodes 0-3) fills the quota.
    for (int n = 0; n < 4; n++)
        EXPECT_TRUE(serves[static_cast<std::size_t>(n)]);
}

TEST(CohortPlanner, NestedDeterministicCohorts)
{
    std::vector<int> members;
    for (int i = 0; i < 200; i++)
        members.push_back(i);

    deploy::CohortPlanner a(members, 17);
    deploy::CohortPlanner b(members, 17);
    EXPECT_EQ(a.order(), b.order());

    auto c1 = a.cohort(1.0);
    auto c10 = a.cohort(10.0);
    auto c100 = a.cohort(100.0);
    EXPECT_EQ(c1.size(), 2u);   // ceil(1% of 200)
    EXPECT_EQ(c10.size(), 20u); // ceil(10% of 200)
    EXPECT_EQ(c100.size(), 200u);
    EXPECT_TRUE(std::is_sorted(c1.begin(), c1.end()));

    std::set<int> s10(c10.begin(), c10.end());
    for (int n : c1)
        EXPECT_TRUE(s10.count(n)) << "cohorts must be nested";

    // A different seed draws a different canary set (with 200
    // members the chance of an identical 20-node draw is nil).
    deploy::CohortPlanner c(members, 18);
    EXPECT_NE(c.cohort(10.0), c10);

    // Tiny fleets still canary at least one node.
    deploy::CohortPlanner tiny({5, 6}, 1);
    EXPECT_EQ(tiny.cohort(1.0).size(), 1u);
}

// A staged rollout through the fleet: verdicts are per device
// class, rejected classes quarantine their canaries, and the
// rollout halts before the bad build goes wide.
TEST(Fleet, RolloutHaltsOnRejectedClass)
{
    fleet::FleetConfig cfg = smallFleet();
    cfg.duration_s = 2.0;
    cfg.models[0].model = "resnet-18";
    fleet::RolloutSpec ro;
    ro.model = "resnet-18";
    ro.candidate_build_id = 2;
    ro.stages.push_back({0.8, 10.0});
    ro.stages.push_back({1.4, 100.0});
    cfg.rollouts.push_back(ro);

    fleet::FleetReport rep = fleet::runFleet(cfg);
    ASSERT_EQ(rep.rollouts.size(), 1u);
    const fleet::RolloutStats &rs = rep.rollouts[0];
    EXPECT_EQ(rs.verdicts.size(), 2u); // one per device class
    bool any_rejected = false;
    int quarantined = 0;
    for (const auto &st : rs.stages)
        quarantined += st.quarantined;
    for (const auto &v : rs.verdicts)
        any_rejected = any_rejected || !v.accepted;
    if (any_rejected) {
        EXPECT_TRUE(rs.halted);
        EXPECT_GT(quarantined, 0);
        EXPECT_FALSE(rs.stages.back().executed);
    } else {
        EXPECT_FALSE(rs.halted);
        EXPECT_EQ(quarantined, 0);
    }
    EXPECT_EQ(rep.unaccounted, 0);
}

} // namespace
