/**
 * @file
 * Unit tests for the deterministic RNG and hashing utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace edgert {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(3);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; i++) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        double g = r.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        sum += r.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ForkIndependence)
{
    // Drawing from one fork must not change another fork's stream.
    Rng base(21);
    Rng b1 = base.fork("b");
    std::uint64_t b_first = b1.next();

    Rng a2 = base.fork("a");
    for (int i = 0; i < 10; i++)
        a2.next();
    Rng b2 = base.fork("b");
    EXPECT_EQ(b2.next(), b_first);
}

TEST(Rng, ForkByLabelAndIndexDiffer)
{
    Rng base(23);
    EXPECT_NE(base.fork("x").next(), base.fork("y").next());
    EXPECT_NE(base.fork(0).next(), base.fork(1).next());
}

TEST(Rng, ChanceExtremes)
{
    Rng r(29);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Hashing, StringHashStable)
{
    EXPECT_EQ(hashString("edgert"), hashString("edgert"));
    EXPECT_NE(hashString("edgert"), hashString("edgerT"));
    EXPECT_NE(hashString(""), hashString("a"));
}

TEST(Hashing, CombineOrderMatters)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hashing, Mix64Bijective)
{
    // Distinct inputs map to distinct outputs (spot check).
    std::set<std::uint64_t> out;
    for (std::uint64_t i = 0; i < 10000; i++)
        out.insert(mix64(i));
    EXPECT_EQ(out.size(), 10000u);
}

} // namespace
} // namespace edgert
