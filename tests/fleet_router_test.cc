/**
 * @file
 * Routing invariants for the EdgeFleet consistent-hash ring and the
 * least-predicted-sojourn policy built on top of it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "fleet/fleet.hh"
#include "fleet/router.hh"

namespace {

using namespace edgert;
using fleet::HashRing;

std::vector<int>
iota(int n)
{
    std::vector<int> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        v[static_cast<std::size_t>(i)] = i;
    return v;
}

// At >= 100 vnodes the arc-length spread per member is ~1/sqrt(v)
// relative, so over 50 members every node's share of 100k probe
// keys must stay within [0.5x, 1.5x] of the fair share.
TEST(HashRing, BalanceWithinBoundAt128Vnodes)
{
    const int kNodes = 50, kProbes = 100'000;
    HashRing ring(42, 128);
    ring.reset(iota(kNodes));

    std::map<int, int> load;
    for (int i = 0; i < kProbes; i++)
        load[ring.route(ring.keyFor(i))]++;

    ASSERT_EQ(load.size(), static_cast<std::size_t>(kNodes));
    double fair = static_cast<double>(kProbes) / kNodes;
    for (const auto &[node, hits] : load) {
        EXPECT_GT(hits, 0.5 * fair) << "node " << node;
        EXPECT_LT(hits, 1.5 * fair) << "node " << node;
    }
}

// Removing one member must move ONLY the keys that member owned —
// every key owned by a survivor keeps its owner.
TEST(HashRing, MinimalRemapOnRemoval)
{
    const int kNodes = 20, kProbes = 50'000, kVictim = 7;
    HashRing before(7, 128);
    before.reset(iota(kNodes));
    HashRing after = before;
    after.remove(kVictim);

    int moved = 0;
    for (int i = 0; i < kProbes; i++) {
        std::uint64_t key = before.keyFor(i);
        int was = before.route(key), now = after.route(key);
        ASSERT_NE(now, kVictim);
        if (was != kVictim)
            EXPECT_EQ(now, was) << "survivor-owned key moved";
        else
            moved++;
    }
    // The victim's share ~ 1/20 of the key space.
    EXPECT_GT(moved, kProbes / 100);
    EXPECT_LT(moved, kProbes / 5);

    double pct = fleet::remapPct(before, after, kProbes);
    EXPECT_GT(pct, 1.0);
    EXPECT_LT(pct, 20.0);
}

TEST(HashRing, RejoinRestoresOwnership)
{
    HashRing ring(3, 100);
    ring.reset(iota(12));
    HashRing original = ring;
    ring.remove(5);
    ring.add(5);
    for (int i = 0; i < 10'000; i++) {
        std::uint64_t key = ring.keyFor(i);
        EXPECT_EQ(ring.route(key), original.route(key));
    }
}

TEST(HashRing, SameSeedSameRing)
{
    HashRing a(99, 128), b(99, 128);
    a.reset(iota(30));
    b.reset(iota(30));
    for (int i = 0; i < 10'000; i++)
        EXPECT_EQ(a.route(a.keyFor(i)), b.route(b.keyFor(i)));
}

TEST(HashRing, SuccessorsAreDistinctAndStartAtOwner)
{
    HashRing ring(5, 128);
    ring.reset(iota(10));
    for (int i = 0; i < 1000; i++) {
        std::uint64_t key = ring.keyFor(i);
        auto succ = ring.successors(key, 4);
        ASSERT_EQ(succ.size(), 4u);
        EXPECT_EQ(succ.front(), ring.route(key));
        std::set<int> uniq(succ.begin(), succ.end());
        EXPECT_EQ(uniq.size(), succ.size());
    }
    // Asking for more successors than members returns each member
    // exactly once.
    auto all = ring.successors(ring.keyFor(0), 64);
    EXPECT_EQ(all.size(), 10u);
}

TEST(HashRing, EmptyRingRoutesNowhere)
{
    HashRing ring(1, 128);
    EXPECT_EQ(ring.route(12345), -1);
    EXPECT_TRUE(ring.successors(12345, 4).empty());
}

// Least-sojourn tie-break: on a fleet of identical idle nodes every
// candidate scores the same predicted sojourn, so the lowest node
// id among the ring candidates must win — deterministically. With
// sojourn_choices covering the whole fleet, that is node 0 for
// every widely-spaced request.
TEST(SojournPolicy, TieBreaksToLowestNodeId)
{
    fleet::FleetConfig cfg;
    // Four identical single-node pools so the report's per-group
    // stats expose which node served.
    cfg.groups.push_back(fleet::parseNodeGroup("nx:1:name=a"));
    cfg.groups.push_back(fleet::parseNodeGroup("nx:1:name=b"));
    cfg.groups.push_back(fleet::parseNodeGroup("nx:1:name=c"));
    cfg.groups.push_back(fleet::parseNodeGroup("nx:1:name=d"));
    fleet::FleetModelConfig mc;
    mc.model = "alexnet";
    mc.slo_ms = 100.0;
    // Sparse arrivals: at 4 qps the expected gap (250 ms) dwarfs
    // the alexnet service time, so every node is idle at every
    // arrival and the predicted sojourns tie exactly.  (A clustered
    // Poisson pair would make the busy node lose on merit — that is
    // least-sojourn working, not a tie.)
    mc.arrivals.qps = 4.0;
    mc.batching.max_batch = 1; // no fill-wait term: exact ties
    cfg.models.push_back(mc);
    cfg.duration_s = 2.0;
    cfg.route_policy = fleet::RoutePolicy::kLeastSojourn;
    cfg.sojourn_choices = 4; // candidate set = the whole fleet

    fleet::FleetReport rep = fleet::runFleet(cfg);
    ASSERT_EQ(rep.groups.size(), 4u);
    EXPECT_GT(rep.offered, 0);
    EXPECT_EQ(rep.groups[0].completed, rep.completed)
        << "ties must resolve to node 0";
    for (std::size_t g = 1; g < rep.groups.size(); g++)
        EXPECT_EQ(rep.groups[g].completed, 0)
            << "group " << rep.groups[g].group;
}

TEST(RoutePolicy, ParseAndName)
{
    EXPECT_EQ(fleet::parseRoutePolicy("hash"),
              fleet::RoutePolicy::kHash);
    EXPECT_EQ(fleet::parseRoutePolicy("sojourn"),
              fleet::RoutePolicy::kLeastSojourn);
    EXPECT_STREQ(fleet::routePolicyName(fleet::RoutePolicy::kHash),
                 "hash");
    EXPECT_STREQ(
        fleet::routePolicyName(fleet::RoutePolicy::kLeastSojourn),
        "sojourn");
    EXPECT_THROW(fleet::parseRoutePolicy("random"),
                 edgert::FatalError);
}

} // namespace
