/**
 * @file
 * Tests for the logging / error-reporting utilities.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace edgert {
namespace {

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad config: ", 42, " is not allowed");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config: 42 is not allowed");
    }
}

TEST(Logging, FatalFormatsMixedTypes)
{
    try {
        fatal("x=", 1.5, " name=", std::string("abc"), " flag=",
              true);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "x=1.5 name=abc flag=1");
    }
}

TEST(Logging, VerboseToggle)
{
    bool before = verbose();
    setVerbose(false);
    EXPECT_FALSE(verbose());
    inform("this is suppressed; must not crash");
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(before);
}

TEST(Logging, WarnDoesNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning: ", 7));
}

TEST(Logging, FatalErrorIsRuntimeError)
{
    // Callers may catch at the std::runtime_error level.
    EXPECT_THROW(fatal("boom"), std::runtime_error);
}

} // namespace
} // namespace edgert
