/**
 * @file
 * Tests for the INT8 calibrator, the optimizer's ablation switches
 * and the INT8 build path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/builder.hh"
#include "core/calibrator.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace edgert::core {
namespace {

TEST(Calibrator, RangesForEveryTensor)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    Int8Calibrator cal(net);
    for (const auto &l : net.layers()) {
        const auto &r = cal.range(l.output);
        EXPECT_GT(r.abs_max, 0.0f) << l.name;
        EXPECT_NEAR(r.scale, r.abs_max / 127.0f, 1e-7f);
    }
    EXPECT_THROW(cal.range("no-such-tensor"), FatalError);
}

TEST(Calibrator, DeterministicPerSeed)
{
    nn::Network net = nn::buildZooModel("googlenet");
    Int8Calibrator a(net, 1), b(net, 1), c(net, 2);
    EXPECT_EQ(a.tableFingerprint(), b.tableFingerprint());
    EXPECT_NE(a.tableFingerprint(), c.tableFingerprint());
}

TEST(Calibrator, MoreBatchesTightenJitter)
{
    // With many calibration batches, two differently-seeded tables
    // are closer than with one batch.
    nn::Network net = nn::buildZooModel("tiny-yolov3");
    auto spread = [&](int batches) {
        Int8Calibrator a(net, 1, batches), b(net, 2, batches);
        double total = 0.0;
        int n = 0;
        for (const auto &[name, ra] : a.ranges()) {
            const auto &rb = b.range(name);
            total += std::fabs(ra.abs_max - rb.abs_max) /
                     std::max(1e-6f, ra.abs_max);
            n++;
        }
        return total / n;
    };
    EXPECT_LT(spread(100), spread(1));
}

TEST(Calibrator, ReluShrinksRange)
{
    nn::Network net("cal");
    net.addInput("in", nn::Dims(1, 8, 8, 8));
    nn::ConvParams p;
    p.out_channels = 8;
    p.kernel = 3;
    p.pad = 1;
    net.addConvolution("conv", "in", p);
    net.addActivation("relu", "conv", {});
    net.markOutput("relu");
    Int8Calibrator cal(net, 0, 1000); // negligible jitter
    EXPECT_LT(cal.range("relu").abs_max,
              cal.range("conv").abs_max);
}

TEST(OptimizerOptions, DisablingFusionKeepsLayersSeparate)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    OptimizerOptions off;
    off.vertical_fusion = false;
    auto g_off = optimize(net, nn::Precision::kFp16, off);
    auto g_on = optimize(net, nn::Precision::kFp16);
    EXPECT_GT(g_off.nodes().size(), g_on.nodes().size());
    EXPECT_EQ(g_off.stats().layers_fused, 0);
}

TEST(OptimizerOptions, DisablingDeadRemovalKeepsAuxHeads)
{
    nn::Network net = nn::buildZooModel("googlenet");
    OptimizerOptions off;
    off.dead_layer_removal = false;
    auto g_off = optimize(net, nn::Precision::kFp16, off);
    auto g_on = optimize(net, nn::Precision::kFp16);
    EXPECT_EQ(g_off.stats().dead_layers_removed, 0);
    EXPECT_GT(g_off.liveParamCount(), g_on.liveParamCount());
}

TEST(OptimizerOptions, DisablingNoopElisionKeepsCopies)
{
    nn::Network net("noop");
    net.addInput("in", nn::Dims(1, 4, 4, 4));
    net.addDropout("drop", "in");
    net.addSoftmax("sm", "drop");
    net.markOutput("sm");
    OptimizerOptions off;
    off.noop_elision = false;
    auto g = optimize(net, nn::Precision::kFp16, off);
    EXPECT_EQ(g.nodes().size(), 2u);
    EXPECT_EQ(g.stats().noops_elided, 0);
}

TEST(Int8Build, SmallerPlanAndFasterThanFp16)
{
    nn::Network net = nn::buildZooModel("resnet-18");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    BuilderConfig f16, i8;
    f16.build_id = i8.build_id = 1;
    i8.precision = nn::Precision::kInt8;
    Engine e16 = Builder(nx, f16).build(net);
    Engine e8 = Builder(nx, i8).build(net);
    EXPECT_LT(e8.planSizeBytes(), e16.planSizeBytes());
    EXPECT_EQ(e8.precision(), nn::Precision::kInt8);
    EXPECT_NE(e8.calibrationFingerprint(), 0u);
    EXPECT_EQ(e16.calibrationFingerprint(), 0u);
    // INT8 kernels carry the imma naming.
    bool has_imma = false;
    for (const auto &s : e8.steps())
        if (s.tactic_name.find("i8816") != std::string::npos)
            has_imma = true;
    EXPECT_TRUE(has_imma);
}

TEST(Int8Build, CalibrationSeedChangesFingerprint)
{
    nn::Network net = nn::buildZooModel("googlenet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    BuilderConfig a, b;
    a.precision = b.precision = nn::Precision::kInt8;
    a.build_id = b.build_id = 5;
    a.calibration_seed = 1;
    b.calibration_seed = 2;
    Engine ea = Builder(nx, a).build(net);
    Engine eb = Builder(nx, b).build(net);
    // Same tactics (same build id), different calibration table.
    EXPECT_NE(ea.fingerprint(), eb.fingerprint());
}

TEST(Int8Build, SerializationPreservesCalibration)
{
    nn::Network net = nn::buildZooModel("mtcnn");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    BuilderConfig cfg;
    cfg.precision = nn::Precision::kInt8;
    cfg.build_id = 3;
    cfg.calibration_seed = 17;
    Engine e = Builder(nx, cfg).build(net);
    Engine back = Engine::deserialize(e.serialize()).value();
    EXPECT_EQ(back.calibrationFingerprint(),
              e.calibrationFingerprint());
    EXPECT_EQ(back.fingerprint(), e.fingerprint());
}

} // namespace
} // namespace edgert::core
