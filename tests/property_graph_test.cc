/**
 * @file
 * Property-based tests over randomly generated network graphs:
 * the builder pipeline must be total (never crash, always produce a
 * runnable engine) and semantic invariants must hold for any valid
 * DAG, not just the zoo architectures.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/executor.hh"
#include "nn/serialize.hh"
#include "runtime/measure.hh"

namespace edgert {
namespace {

using nn::Dims;
using nn::Network;

/**
 * Generate a random but valid single-input network: a chain with
 * occasional branches (concat / eltwise joins), random layer kinds
 * and shapes kept small enough for the functional executor.
 */
Network
randomNetwork(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("random-" + std::to_string(seed));
    std::int64_t channels = 1 + rng.range(2, 8);
    std::string cur =
        net.addInput("in", Dims(1, channels, 16, 16));

    int layers = static_cast<int>(rng.range(3, 10));
    int name_ctr = 0;
    auto name = [&](const char *base) {
        return std::string(base) + std::to_string(name_ctr++);
    };

    for (int i = 0; i < layers; i++) {
        switch (rng.below(7)) {
          case 0: {
            nn::ConvParams p;
            p.out_channels = rng.range(4, 16);
            p.kernel = 3;
            p.pad = 1;
            cur = net.addConvolution(name("conv"), cur, p);
            channels = p.out_channels;
            break;
          }
          case 1: {
            nn::ConvParams p;
            p.out_channels = rng.range(4, 16);
            p.kernel = 1;
            cur = net.addConvolution(name("pw"), cur, p);
            channels = p.out_channels;
            break;
          }
          case 2:
            cur = net.addActivation(name("relu"), cur, {});
            break;
          case 3:
            cur = net.addBatchNorm(name("bn"), cur);
            break;
          case 4: {
            // Branch: two 1x1 convs re-joined by concat.
            nn::ConvParams p;
            p.out_channels = rng.range(2, 8);
            auto a = net.addConvolution(name("bra"), cur, p);
            auto b = net.addConvolution(name("brb"), cur, p);
            cur = net.addConcat(name("cat"), {a, b});
            channels = 2 * p.out_channels;
            break;
          }
          case 5: {
            // Residual: identity + pointwise, joined by eltwise.
            nn::ConvParams p;
            p.out_channels = channels;
            p.kernel = 1;
            auto a = net.addConvolution(name("res"), cur, p);
            cur = net.addEltwise(name("sum"), {a, cur}, {});
            break;
          }
          case 6:
            cur = net.addDropout(name("drop"), cur);
            break;
        }
    }
    cur = net.addSoftmax(name("prob"), cur);
    net.markOutput(cur);
    net.validate();
    return net;
}

class RandomGraphTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomGraphTest, SerializationRoundTrips)
{
    Network net = randomNetwork(GetParam());
    Network back =
        nn::deserializeNetwork(nn::serializeNetwork(net)).value();
    EXPECT_EQ(back.layers().size(), net.layers().size());
    EXPECT_EQ(back.paramCount(), net.paramCount());
}

TEST_P(RandomGraphTest, OptimizerCoversAllLiveWork)
{
    Network net = randomNetwork(GetParam());
    auto g = core::optimize(net, nn::Precision::kFp16);
    EXPECT_GT(g.nodes().size(), 0u);
    // Conservation: fused layer ids are unique and live.
    std::set<std::int32_t> seen;
    for (const auto &n : g.nodes())
        for (auto id : n.layer_ids) {
            EXPECT_TRUE(seen.insert(id).second)
                << "layer " << id << " appears twice";
        }
    EXPECT_EQ(g.liveParamCount(), net.paramCount());
}

TEST_P(RandomGraphTest, BuildsAndRunsOnBothPlatforms)
{
    Network net = randomNetwork(GetParam());
    core::BuilderConfig cfg;
    cfg.build_id = GetParam();
    for (const auto &dev : {gpusim::DeviceSpec::xavierNX(),
                            gpusim::DeviceSpec::xavierAGX()}) {
        core::Engine e = core::Builder(dev, cfg).build(net);
        EXPECT_GT(e.kernelCount(), 0);
        auto lat = runtime::measureLatency(e, dev,
                                           {.runs = 2});
        EXPECT_GT(lat.mean_ms, 0.0);
        EXPECT_TRUE(std::isfinite(lat.mean_ms));
    }
}

TEST_P(RandomGraphTest, Fp16TracksFp32Numerically)
{
    Network net = randomNetwork(GetParam());
    nn::WeightsStore ws(net, GetParam());
    nn::Executor fp32(net, ws, {nn::Precision::kFp32, 0});
    nn::Executor fp16(net, ws, {nn::Precision::kFp16, 16});

    nn::Tensor x(net.tensor(net.inputs()[0]).dims);
    Rng rng(GetParam() ^ 0xabcdef);
    for (std::int64_t i = 0; i < x.volume(); i++)
        x[i] = static_cast<float>(rng.gaussian(0.0, 1.0));

    std::unordered_map<std::string, nn::Tensor> ins;
    ins[net.inputs()[0]] = x;
    auto o32 = fp32.run(ins);
    auto o16 = fp16.run(ins);
    for (const auto &[name, t32] : o32) {
        const auto &t16 = o16.at(name);
        for (std::int64_t i = 0; i < t32.volume(); i++) {
            // Softmax outputs live in [0,1]; absolute tolerance.
            EXPECT_NEAR(t16[i], t32[i], 0.05)
                << name << "[" << i << "]";
        }
    }
}

TEST_P(RandomGraphTest, ParallelBuildBitIdenticalToSerial)
{
    // The determinism contract of the parallel autotuner, for
    // arbitrary valid DAGs: with a pinned build_id, jobs > 1 yields
    // the same serialized bytes as a serial build — with and
    // without a timing cache — and cache-backed builds also leave
    // identical caches behind.
    Network net = randomNetwork(GetParam());
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();

    core::BuilderConfig serial;
    serial.build_id = GetParam();
    serial.jobs = 1;
    core::BuilderConfig parallel = serial;
    parallel.jobs = 4;
    EXPECT_EQ(core::Builder(nx, serial).build(net).serialize(),
              core::Builder(nx, parallel).build(net).serialize());

    core::TimingCache serial_cache, parallel_cache;
    serial.timing_cache = &serial_cache;
    parallel.timing_cache = &parallel_cache;
    EXPECT_EQ(core::Builder(nx, serial).build(net).serialize(),
              core::Builder(nx, parallel).build(net).serialize());
    EXPECT_EQ(serial_cache.serialize(), parallel_cache.serialize());
}

TEST_P(RandomGraphTest, PinnedBuildsAreReproducible)
{
    Network net = randomNetwork(GetParam());
    core::BuilderConfig cfg;
    cfg.build_id = 77;
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::Engine a = core::Builder(nx, cfg).build(net);
    core::Engine b = core::Builder(nx, cfg).build(net);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace edgert
