#!/usr/bin/env bash
# Reproduce every table and figure of the paper plus the extension
# studies, writing the combined report next to this script's repo.
#
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== running test suites =="
ctest --test-dir "$BUILD" --output-on-failure 2>&1 \
    | tee "$ROOT/test_output.txt"

echo "== regenerating paper tables and figures =="
{
    for b in "$BUILD"/bench/*; do
        [ -x "$b" ] || continue
        echo
        echo "########## $(basename "$b") ##########"
        "$b" --benchmark_min_time=0.01s
    done
} 2>&1 | tee "$ROOT/bench_output.txt"

echo
echo "Reports written to test_output.txt and bench_output.txt."
echo "Per-experiment commentary: EXPERIMENTS.md"
