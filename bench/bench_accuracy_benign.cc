/**
 * @file
 * Reproduces Table III: top-1 error (%) of the image-classification
 * networks on the benign dataset (100 classes x 50 images = 5000),
 * for TensorRT-style engines built on AGX and NX and for the
 * un-optimized FP32 models.
 *
 * Expected shape: the optimized engines match or slightly beat the
 * un-optimized models (quantization regularizes the over-fit FP32
 * weights — paper Finding 1), and the NX/AGX engines agree to
 * within a fraction of a percent.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace edgert;

double
topOneErrorPct(const data::SurrogateClassifier &clf,
               const data::BenignDataset &ds)
{
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        data::ImageRef img = ds.at(i);
        if (clf.predict(img) != img.class_id)
            wrong++;
    }
    return 100.0 * static_cast<double>(wrong) /
           static_cast<double>(ds.size());
}

void
printTable3()
{
    data::BenignDataset ds(/*classes=*/100, /*per_class=*/50);
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "AGX Error(%) TensorRT",
                     "NX Error(%) TensorRT", "Error(%) Unoptimized",
                     "Paper (AGX/NX/unopt)"});

    struct PaperRow { const char *m; const char *ref; };
    const PaperRow paper[] = {
        {"alexnet", "45.16 / 45.10 / 47.72"},
        {"resnet-18", "35.90 / 35.76 / 55.18"},
        {"vgg-16", "33.76 / 33.78 / 38.46"},
    };

    for (const auto &row : paper) {
        nn::Network net = nn::buildZooModel(row.m);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e_nx = core::Builder(nx, cfg).build(net);
        core::Engine e_agx = core::Builder(agx, cfg).build(net);

        auto clf_nx = data::SurrogateClassifier::forEngine(
            row.m, e_nx.fingerprint());
        auto clf_agx = data::SurrogateClassifier::forEngine(
            row.m, e_agx.fingerprint());
        auto clf_raw = data::SurrogateClassifier::unoptimized(row.m);

        table.addRow({row.m,
                      formatDouble(topOneErrorPct(clf_agx, ds), 2),
                      formatDouble(topOneErrorPct(clf_nx, ds), 2),
                      formatDouble(topOneErrorPct(clf_raw, ds), 2),
                      row.ref});
    }
    std::printf("\n=== Table III: top-1 error (%%) on the benign "
                "dataset (5000 images) ===\n");
    table.render(std::cout);
}

void
BM_BenignEval(benchmark::State &state)
{
    data::BenignDataset ds(100, 50);
    auto clf = data::SurrogateClassifier::forEngine("resnet-18",
                                                    0x1234abcd);
    for (auto _ : state) {
        double err = topOneErrorPct(clf, ds);
        benchmark::DoNotOptimize(err);
    }
}

} // namespace

BENCHMARK(BM_BenignEval)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
