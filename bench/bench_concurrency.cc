/**
 * @file
 * Reproduces Figures 3 and 4: aggregate FPS and tegrastats-style
 * GPU utilization as the number of concurrent inference threads
 * grows, for a light CNN (Tiny-YOLOv3) and a heavy CNN (GoogLeNet),
 * on both platforms at maximum GPU clocks.
 *
 * Thread sweeps extend to the saturation counts the paper observed
 * (NX: 28 / 16 threads, AGX: 36 / 24 threads for the light / heavy
 * model). Expected shape: FPS climbs modestly and flattens once the
 * GPU saturates; utilization climbs from ~60-70% at one thread to
 * the low-to-mid 80s at the saturation point; AGX sustains more
 * threads and higher FPS than NX; the heavier model saturates at
 * fewer threads.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "report.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

/** One measured point of a concurrency sweep. */
struct SweepRow
{
    std::string model;
    std::string device;
    int threads = 0;
    double aggregate_fps = 0.0;
    double per_thread_fps = 0.0;
    double gpu_util_pct = 0.0;
    double copy_busy_pct = 0.0;
};

std::vector<SweepRow>
sweep(const std::string &model, const gpusim::DeviceSpec &dev,
      int max_threads)
{
    nn::Network net = nn::buildZooModel(model);
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine engine = core::Builder(dev, cfg).build(net);

    std::printf("\n--- %s on %s (max clock %.2f GHz, paper "
                "saturation: %d threads; Eq.1 bound: N = %d) ---\n",
                model.c_str(), dev.name.c_str(), dev.max_clock_ghz,
                max_threads,
                runtime::estimateMaxThreads(engine, dev));
    TextTable table({"Threads", "Aggregate FPS", "FPS/thread",
                     "GPU util (%)", "Copy engine busy (%)"});
    std::vector<SweepRow> rows;
    for (int t = 1; t <= max_threads;
         t = t < 4 ? t + 3 : t + 4) {
        runtime::ThroughputOptions topt;
        topt.threads = t;
        topt.frames_per_thread = 24;
        auto r = runtime::measureThroughput(engine, dev, topt);
        table.addRow({std::to_string(t),
                      formatDouble(r.aggregate_fps, 1),
                      formatDouble(r.per_thread_fps, 2),
                      formatDouble(r.gpu_util_pct, 1),
                      formatDouble(r.copy_busy_pct, 1)});
        SweepRow row;
        row.model = model;
        row.device = dev.name;
        row.threads = t;
        row.aggregate_fps = r.aggregate_fps;
        row.per_thread_fps = r.per_thread_fps;
        row.gpu_util_pct = r.gpu_util_pct;
        row.copy_busy_pct = r.copy_busy_pct;
        rows.push_back(std::move(row));
    }
    table.render(std::cout);
    return rows;
}

void
writeJsonReport(const std::vector<SweepRow> &rows)
{
    bench::saveBenchReport(
        "BENCH_concurrency.json", "concurrency",
        [&](bench::JsonWriter &w) {
            w.key("sweeps").beginArray();
            for (const SweepRow &r : rows) {
                w.beginObject();
                w.field("model", r.model);
                w.field("device", r.device);
                w.field("threads", r.threads);
                w.field("aggregate_fps", r.aggregate_fps);
                w.field("per_thread_fps", r.per_thread_fps);
                w.field("gpu_util_pct", r.gpu_util_pct);
                w.field("copy_busy_pct", r.copy_busy_pct);
                w.endObject();
            }
            w.endArray();
        });
}

void
printFigures()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    // The snapshot embedded in the JSON report should cover the
    // figure sweeps only, not whatever ran before us.
    obs::MetricRegistry::global().reset();

    std::vector<SweepRow> all;
    auto append = [&all](std::vector<SweepRow> rows) {
        all.insert(all.end(),
                   std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
    };

    std::printf("\n=== Figure 3: Tiny-YOLOv3 concurrency (paper: NX "
                "saturates at 28 threads/82%% util, AGX at 36 "
                "threads/86%% util) ===\n");
    append(sweep("tiny-yolov3", nx, 28));
    append(sweep("tiny-yolov3", agx, 36));

    // The paper's Figure 4 "Googlenet" is the object-detection
    // deployment of the GoogLeNet backbone (its §IV-B discusses
    // detection workloads); we therefore run the DetectNet FCN
    // (GoogLeNet backbone at 512x512), which matches the heavier
    // per-frame cost the figure shows.
    std::printf("\n=== Figure 4: GoogLeNet(-backbone detection) "
                "concurrency (paper: NX 16 threads/82%% util, AGX "
                "24 threads/86%% util) ===\n");
    append(sweep("detectnet-coco-dog", nx, 16));
    append(sweep("detectnet-coco-dog", agx, 24));

    writeJsonReport(all);
}

void
BM_Concurrency(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("tiny-yolov3");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    runtime::ThroughputOptions topt;
    topt.threads = static_cast<int>(state.range(0));
    topt.frames_per_thread = 8;
    state.counters["sim_fps"] =
        runtime::measureThroughput(e, nx, topt).aggregate_fps;
    for (auto _ : state) {
        double fps =
            runtime::measureThroughput(e, nx, topt).aggregate_fps;
        benchmark::DoNotOptimize(fps);
    }
}

} // namespace

BENCHMARK(BM_Concurrency)->Arg(1)->Arg(8)->Arg(28)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printFigures();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
