/**
 * @file
 * EdgeFleet benchmark: cluster-scale serving on a simulated
 * heterogeneous Jetson fleet.
 *
 * Five studies, all pure functions of (config, seed):
 *
 *  - scale: a 500-node NX/AGX fleet (plus throttled stragglers)
 *    serving resnet-18 at a six-figure aggregate request rate under
 *    least-predicted-sojourn routing. The fleet must meet the p99
 *    SLO; any miss fails the bench (the CI gate).
 *  - failover: a node is drained mid-run and later rejoins. Queued
 *    requests reroute at the drain point and every admitted request
 *    must still complete — zero dropped in-flight work — with the
 *    consistent-hash ring remapping only the failed node's share of
 *    the key space.
 *  - placement: calibrated (measured per-(device,engine) service
 *    time) vs capability-order (nominal spec-sheet FLOPS) placement
 *    for mobilenetv1 on half the fleet. The paper's F4/F5 findings
 *    say the nominally bigger AGX is *slower* for such nets at
 *    batch 1, so calibrated placement must win on p99.
 *  - rollout: a staged 1% -> 10% -> 100% canary of a rebuilt engine
 *    through DriftGate. Classes whose candidate drifts are rejected,
 *    their cohort nodes quarantine, and the rollout halts before
 *    the bad build reaches the fleet.
 *  - determinism: the failover scenario re-run with the same seed
 *    and with a parallel replay (`sim_threads`) must produce
 *    byte-identical fleet reports.
 *
 * `--smoke` shrinks simulated durations for CI; fleet shapes, rates
 * and the JSON schema are identical. Every value in
 * BENCH_fleet.json derives from simulated time, so same-seed reruns
 * of the bench are byte-identical too.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "obs/metrics.hh"
#include "report.hh"

namespace {

using namespace edgert;

bool g_smoke = false;

/** 500 nodes: Table I's NX/AGX mix plus throttled stragglers. */
std::vector<fleet::NodeGroup>
bigFleet()
{
    return {fleet::parseNodeGroup("nx:400"),
            fleet::parseNodeGroup("agx:80"),
            fleet::parseNodeGroup("nx:20:clock=0.6:name=straggler")};
}

fleet::FleetConfig
baseConfig(const std::vector<fleet::NodeGroup> &groups,
           const std::string &model, double qps, double slo_ms)
{
    fleet::FleetConfig cfg;
    cfg.groups = groups;
    fleet::FleetModelConfig mc;
    mc.model = model;
    mc.arrivals.qps = qps;
    mc.slo_ms = slo_ms;
    cfg.models.push_back(mc);
    cfg.seed = 1;
    return cfg;
}

void
writeLatency(bench::JsonWriter &w, const fleet::FleetReport &r)
{
    w.key("latency_ms").beginObject();
    w.field("mean", r.mean_ms);
    w.field("p50", r.p50_ms);
    w.field("p95", r.p95_ms);
    w.field("p99", r.p99_ms);
    w.field("max", r.max_ms);
    w.endObject();
}

void
writeTotals(bench::JsonWriter &w, const fleet::FleetReport &r)
{
    w.field("nodes", r.nodes);
    w.field("offered", r.offered);
    w.field("completed", r.completed);
    w.field("shed", r.shed);
    w.field("unaccounted", r.unaccounted);
    w.field("aggregate_offered_qps", r.aggregate_offered_qps);
}

int
runFigures()
{
    obs::MetricRegistry::global().reset();
    std::printf("=== EdgeFleet: cluster-scale serving across a "
                "heterogeneous fleet%s ===\n",
                g_smoke ? " (smoke)" : "");
    int rc = 0;

    // ------------------------------------------------------------
    // Study 1: p99 SLO at six-figure aggregate qps on 500 nodes.
    // ------------------------------------------------------------
    const double kScaleSlo = 50.0;
    fleet::FleetConfig scale =
        baseConfig(bigFleet(), "resnet-18", 120000.0, kScaleSlo);
    scale.duration_s = g_smoke ? 1.0 : 4.0;
    scale.route_policy = fleet::RoutePolicy::kLeastSojourn;
    scale.sim_threads = 8;
    fleet::FleetReport scale_rep = fleet::runFleet(scale);
    bool scale_slo_met = scale_rep.p99_ms <= kScaleSlo &&
                         scale_rep.unaccounted == 0;
    std::printf("scale: %d nodes | %.0f qps aggregate | p50 %.2f "
                "ms | p99 %.2f ms vs SLO %.0f ms -> %s\n",
                scale_rep.nodes, scale_rep.aggregate_offered_qps,
                scale_rep.p50_ms, scale_rep.p99_ms, kScaleSlo,
                scale_slo_met ? "met" : "MISSED");
    if (!scale_slo_met) {
        std::fprintf(stderr,
                     "FAIL: 500-node fleet missed the p99 SLO "
                     "(p99 %.2f ms, SLO %.0f ms, unaccounted "
                     "%lld)\n",
                     scale_rep.p99_ms, kScaleSlo,
                     static_cast<long long>(scale_rep.unaccounted));
        rc = 1;
    }

    // ------------------------------------------------------------
    // Study 2: node failure + rejoin with zero dropped requests.
    // ------------------------------------------------------------
    std::vector<fleet::NodeGroup> small = {
        fleet::parseNodeGroup("nx:8"), fleet::parseNodeGroup("agx:4")};
    double fail_dur = g_smoke ? 3.0 : 6.0;
    fleet::FleetConfig failover =
        baseConfig(small, "resnet-18", 2000.0, 50.0);
    failover.duration_s = fail_dur;
    fleet::FailureSpec fs;
    fs.node = 3;
    fs.fail_s = fail_dur / 3.0;
    fs.rejoin_s = 2.0 * fail_dur / 3.0;
    failover.failures.push_back(fs);
    fleet::FleetReport fail_rep = fleet::runFleet(failover);
    bool zero_dropped =
        fail_rep.unaccounted == 0 &&
        fail_rep.completed + fail_rep.shed == fail_rep.offered &&
        fail_rep.events.size() == 2;
    std::printf("failover: offered %lld | completed %lld | shed "
                "%lld | unaccounted %lld | %zu membership "
                "event(s) -> %s\n",
                static_cast<long long>(fail_rep.offered),
                static_cast<long long>(fail_rep.completed),
                static_cast<long long>(fail_rep.shed),
                static_cast<long long>(fail_rep.unaccounted),
                fail_rep.events.size(),
                zero_dropped ? "zero dropped" : "DROPPED WORK");
    for (const auto &e : fail_rep.events)
        std::printf("  t=%.3f s %-10s %s: rerouted %lld, remapped "
                    "%.2f%% of key space\n",
                    e.t_s, e.kind.c_str(), e.node_name.c_str(),
                    static_cast<long long>(e.rerouted), e.remap_pct);
    if (!zero_dropped) {
        std::fprintf(stderr, "FAIL: failover scenario dropped "
                             "in-flight requests\n");
        rc = 1;
    }

    // ------------------------------------------------------------
    // Study 3: F4/F5-aware placement vs capability order.
    // ------------------------------------------------------------
    std::vector<fleet::NodeGroup> half = {
        fleet::parseNodeGroup("nx:40"),
        fleet::parseNodeGroup("agx:40")};
    auto placementRun = [&](fleet::PlacementPolicy p) {
        fleet::FleetConfig cfg =
            baseConfig(half, "mobilenetv1", 5000.0, 20.0);
        cfg.models[0].nodes_pct = 50.0;
        cfg.duration_s = g_smoke ? 1.0 : 2.0;
        cfg.placement = p;
        // Compare the placements themselves: no quarantine, so a
        // bad placement keeps hurting p99 instead of being bailed
        // out mid-run by the watch layer.
        cfg.quarantine_on_page = false;
        return fleet::runFleet(cfg);
    };
    fleet::FleetReport cal_rep =
        placementRun(fleet::PlacementPolicy::kCalibrated);
    fleet::FleetReport cap_rep =
        placementRun(fleet::PlacementPolicy::kCapabilityOrder);
    bool calibrated_wins = cal_rep.p99_ms < cap_rep.p99_ms;
    std::printf("placement (mobilenetv1, half fleet): calibrated "
                "p99 %.2f ms [%s first] vs capability p99 %.2f ms "
                "[%s first] -> %s\n",
                cal_rep.p99_ms,
                cal_rep.models[0].placement_rank.front().c_str(),
                cap_rep.p99_ms,
                cap_rep.models[0].placement_rank.front().c_str(),
                calibrated_wins ? "calibrated wins"
                                : "CAPABILITY WINS");
    if (!calibrated_wins) {
        std::fprintf(stderr,
                     "FAIL: heterogeneity-aware placement did not "
                     "beat capability order on p99\n");
        rc = 1;
    }

    // ------------------------------------------------------------
    // Study 4: staged canary rollout with DriftGate quarantine.
    // ------------------------------------------------------------
    fleet::FleetConfig canary =
        baseConfig(small, "resnet-18", 2000.0, 50.0);
    canary.duration_s = g_smoke ? 3.0 : 6.0;
    fleet::RolloutSpec ro;
    ro.model = "resnet-18";
    ro.candidate_build_id = 2;
    double t0 = canary.duration_s / 3.0;
    ro.stages.push_back({t0, 1.0});
    ro.stages.push_back({t0 + 0.5, 10.0});
    ro.stages.push_back({t0 + 1.0, 100.0});
    canary.rollouts.push_back(ro);
    fleet::FleetReport roll_rep = fleet::runFleet(canary);
    const fleet::RolloutStats &rs = roll_rep.rollouts.front();
    bool any_rejected = false;
    for (const auto &v : rs.verdicts)
        any_rejected = any_rejected || !v.accepted;
    int quarantined = 0;
    for (const auto &st : rs.stages)
        quarantined += st.quarantined;
    // Logical consistency: a rejected class means its canary nodes
    // quarantined and the rollout halted before 100%.
    bool rollout_ok = rs.verdicts.size() == 2 &&
                      (!any_rejected ||
                       (rs.halted && quarantined > 0)) &&
                      roll_rep.unaccounted == 0;
    std::printf("rollout: build %llu %s | %zu class verdict(s), "
                "%d node(s) quarantined\n",
                static_cast<unsigned long long>(
                    rs.candidate_build_id),
                rs.halted ? "halted" : "completed",
                rs.verdicts.size(), quarantined);
    for (const auto &v : rs.verdicts)
        std::printf("  class %-4s %s (drift %.3f%%)%s%s\n",
                    v.dev_class.c_str(),
                    v.accepted ? "accepted" : "rejected",
                    v.disagreement_pct,
                    v.reason.empty() ? "" : ": ",
                    v.reason.c_str());
    if (!rollout_ok) {
        std::fprintf(stderr, "FAIL: rollout bookkeeping "
                             "inconsistent\n");
        rc = 1;
    }

    // ------------------------------------------------------------
    // Study 5: byte-identity — same seed, serial vs parallel.
    // ------------------------------------------------------------
    std::string serial = fail_rep.toJson();
    std::string rerun = fleet::runFleet(failover).toJson();
    fleet::FleetConfig par_cfg = failover;
    par_cfg.sim_threads = 8;
    std::string parallel = fleet::runFleet(par_cfg).toJson();
    bool same_seed_identical = serial == rerun;
    bool serial_equals_parallel = serial == parallel;
    std::printf("determinism: same-seed rerun %s, serial vs "
                "sim_threads=8 %s\n",
                same_seed_identical ? "byte-identical" : "DIFFERS",
                serial_equals_parallel ? "byte-identical"
                                       : "DIFFERS");
    if (!same_seed_identical || !serial_equals_parallel) {
        std::fprintf(stderr, "FAIL: fleet reports are not "
                             "byte-identical\n");
        rc = 1;
    }

    bench::saveBenchReport(
        "BENCH_fleet.json", "bench_fleet",
        [&](bench::JsonWriter &w) {
            w.field("smoke", g_smoke);
            w.key("scale").beginObject();
            w.field("model", "resnet-18");
            w.field("route_policy", scale_rep.route_policy);
            w.field("slo_ms", kScaleSlo);
            writeTotals(w, scale_rep);
            writeLatency(w, scale_rep);
            w.field("slo_met", scale_slo_met);
            w.key("classes").beginArray();
            for (const auto &c : scale_rep.classes) {
                w.beginObject();
                w.field("label", c.label);
                w.field("nodes", c.nodes);
                w.field("svc1_ms", c.svc1_ms.front());
                w.endObject();
            }
            w.endArray();
            w.endObject();

            w.key("failover").beginObject();
            writeTotals(w, fail_rep);
            w.field("zero_dropped", zero_dropped);
            w.key("events").beginArray();
            for (const auto &e : fail_rep.events) {
                w.beginObject();
                w.field("t_s", e.t_s);
                w.field("kind", e.kind);
                w.field("node", e.node_name);
                w.field("rerouted", e.rerouted);
                w.field("remap_pct", e.remap_pct);
                w.endObject();
            }
            w.endArray();
            w.endObject();

            w.key("placement").beginObject();
            w.field("model", "mobilenetv1");
            w.field("nodes_pct", 50.0);
            w.field("calibrated_p99_ms", cal_rep.p99_ms);
            w.field("capability_p99_ms", cap_rep.p99_ms);
            w.field("calibrated_first",
                    cal_rep.models[0].placement_rank.front());
            w.field("capability_first",
                    cap_rep.models[0].placement_rank.front());
            w.field("calibrated_beats_capability", calibrated_wins);
            w.endObject();

            w.key("rollout").beginObject();
            w.field("model", rs.model);
            w.field("candidate_build_id",
                    static_cast<std::int64_t>(
                        rs.candidate_build_id));
            w.field("halted", rs.halted);
            w.field("quarantined", quarantined);
            w.key("verdicts").beginArray();
            for (const auto &v : rs.verdicts) {
                w.beginObject();
                w.field("class", v.dev_class);
                w.field("accepted", v.accepted);
                w.field("disagreement_pct", v.disagreement_pct);
                w.field("reason", v.reason);
                w.endObject();
            }
            w.endArray();
            w.key("stages").beginArray();
            for (const auto &st : rs.stages) {
                w.beginObject();
                w.field("t_s", st.t_s);
                w.field("pct", st.pct);
                w.field("executed", st.executed);
                w.field("cohort", st.cohort);
                w.field("switched", st.switched);
                w.field("quarantined", st.quarantined);
                w.endObject();
            }
            w.endArray();
            w.endObject();

            w.key("determinism").beginObject();
            w.field("same_seed_identical", same_seed_identical);
            w.field("serial_equals_parallel",
                    serial_equals_parallel);
            w.endObject();
        });
    return rc;
}

/** Wall time of one mid-size fleet run end to end. */
void
BM_FleetScenario(benchmark::State &state)
{
    std::vector<fleet::NodeGroup> groups = {
        fleet::parseNodeGroup("nx:32"),
        fleet::parseNodeGroup("agx:8")};
    fleet::FleetConfig cfg =
        baseConfig(groups, "resnet-18", 8000.0, 50.0);
    cfg.duration_s = 1.0;
    for (auto _ : state) {
        fleet::FleetReport rep = fleet::runFleet(cfg);
        benchmark::DoNotOptimize(rep.completed);
    }
}

} // namespace

BENCHMARK(BM_FleetScenario)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    int rc = runFigures();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return rc;
}
