/**
 * @file
 * EdgeWatch benchmark: alerting latency, incident production and
 * tracing overhead for the serving observability layer.
 *
 * Three studies, all on the AlexNet serving scenario the policy
 * bench uses:
 *
 *  - clean: a comfortably-provisioned run. The burn-rate alerter
 *    must stay silent — any page-tier alert here is a false alarm
 *    and the process exits non-zero (the CI gate).
 *  - overload: offered load far past the capacity knee. The page
 *    alert must fire, and `first_page_s` is the alert latency —
 *    how much simulated time passes between the overload starting
 *    and the pager going off. The run writes its watch report and
 *    flight-recorder incident dumps next to BENCH_watch.json so CI
 *    archives a real incident artifact.
 *  - overhead: the same scenario with watch off vs on, wall-clock
 *    timed. Request-scoped tracing rides the existing replay event
 *    stream (the server always stages its enqueues), so the
 *    watch-on cost is one in-memory feed replay — the report
 *    records the measured percentage.
 *
 * A same-seed double run of the overload scenario must produce
 * byte-identical serve reports (watch block included); the report
 * carries that check's outcome too.
 *
 * `--smoke` shrinks durations for CI; the JSON shape is identical.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "report.hh"
#include "serve/server.hh"
#include "watch/watch.hh"

namespace {

using namespace edgert;

constexpr const char *kModel = "alexnet";
constexpr double kSloMs = 25.0;

bool g_smoke = false;

serve::ServeConfig
scenario(const char *model, double qps, double slo_ms, bool watch)
{
    serve::ServeConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = g_smoke ? 1.0 : 2.0;
    cfg.seed = 1;
    serve::ModelConfig mc;
    mc.model = model;
    mc.slo_ms = slo_ms;
    mc.arrivals.qps = qps;
    cfg.models.push_back(mc);
    cfg.watch.enabled = watch;
    return cfg;
}

serve::ServeConfig
scenario(double qps, bool watch)
{
    return scenario(kModel, qps, kSloMs, watch);
}

struct ScenarioOutcome
{
    std::string name;
    double qps = 0.0;
    watch::WatchSummary watch;
    double p99_ms = 0.0;
    std::int64_t offered = 0;
};

ScenarioOutcome
runWatched(const char *name, double qps, const std::string &out,
           const std::string &incident_prefix)
{
    serve::ServeConfig cfg = scenario(qps, true);
    cfg.watch.out_path = out;
    cfg.watch.incident_prefix = incident_prefix;
    serve::ServeReport rep = serve::runServer(cfg);
    ScenarioOutcome o;
    o.name = name;
    o.qps = qps;
    o.watch = rep.watch;
    o.p99_ms = rep.models.front().p99_ms;
    o.offered = rep.models.front().offered;
    std::printf("%-9s %4.0f qps: %lld page / %lld warn alert(s), "
                "first page %s, %lld anomaly(ies), %lld "
                "incident(s), %lld shed\n",
                name, qps,
                static_cast<long long>(o.watch.page_alerts),
                static_cast<long long>(o.watch.warn_alerts),
                o.watch.first_page_s < 0.0
                    ? "never"
                    : (std::to_string(o.watch.first_page_s) + " s")
                          .c_str(),
                static_cast<long long>(o.watch.anomalies),
                static_cast<long long>(o.watch.incidents),
                static_cast<long long>(o.watch.shed));
    return o;
}

/** One timed runServer call, in wall milliseconds. */
double
timedRun(const serve::ServeConfig &cfg)
{
    auto t0 = std::chrono::steady_clock::now();
    serve::ServeReport rep = serve::runServer(cfg);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(rep.models.front().p99_ms);
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

void
writeScenario(bench::JsonWriter &w, const ScenarioOutcome &o)
{
    w.beginObject();
    w.field("scenario", o.name);
    w.field("target_qps", o.qps);
    w.field("offered", o.offered);
    w.field("p99_ms", o.p99_ms);
    w.field("admitted", o.watch.admitted);
    w.field("shed", o.watch.shed);
    w.field("completed", o.watch.completed);
    w.field("page_alerts", o.watch.page_alerts);
    w.field("warn_alerts", o.watch.warn_alerts);
    w.field("clear_alerts", o.watch.clear_alerts);
    w.field("first_page_s", o.watch.first_page_s);
    w.field("anomalies", o.watch.anomalies);
    w.field("incidents", o.watch.incidents);
    w.endObject();
}

int
runFigures()
{
    obs::MetricRegistry::global().reset();
    std::printf("=== EdgeWatch: alert latency, incidents, tracing "
                "overhead (%s, SLO %.0f ms%s) ===\n",
                kModel, kSloMs, g_smoke ? ", smoke" : "");

    // Clean: generous headroom; the pager must stay silent.
    ScenarioOutcome clean =
        runWatched("clean", 300, "BENCH_watch_clean.json",
                   "BENCH_watch_clean.");

    // Overload: far past the knee; the pager must fire and the
    // flight recorder must dump the run-up.
    ScenarioOutcome overload =
        runWatched("overload", 900, "BENCH_watch_overload.json",
                   "BENCH_watch_overload.");

    // Same-seed determinism over the full report (watch included).
    std::string again;
    {
        serve::ServeConfig cfg = scenario(900, true);
        cfg.watch.out_path = "BENCH_watch_overload.json";
        cfg.watch.incident_prefix = "BENCH_watch_overload.";
        again = serve::runServer(cfg).toJson();
    }
    std::string first;
    {
        serve::ServeConfig cfg = scenario(900, true);
        cfg.watch.out_path = "BENCH_watch_overload.json";
        cfg.watch.incident_prefix = "BENCH_watch_overload.";
        first = serve::runServer(cfg).toJson();
    }
    bool same_seed = first == again;
    std::printf("same-seed determinism (watch on): reports %s\n",
                same_seed ? "byte-identical" : "DIFFER");

    // Overhead: watch off vs on, two workloads. AlexNet is the
    // adversarial case — its requests simulate in ~3 us each, so a
    // fixed per-request watch cost shows at its very worst;
    // tiny-yolov3 is the representative case, with enough device
    // work per request that the percentage reflects a real serving
    // mix. A single run finishes in milliseconds, where scheduler
    // noise on a shared box swamps the signal, so the timed config
    // stretches the window (sim time is free), the off/on reps
    // interleave so slow machine phases hit both sides equally,
    // and the estimate is the min over reps — the classic
    // noise-robust choice for a deterministic workload.
    struct OverheadPoint
    {
        const char *model;
        double qps;
        double slo_ms;
        double off_ms = 0.0;
        double on_ms = 0.0;
        std::int64_t requests = 0;

        double pct() const
        {
            return off_ms > 0.0
                       ? 100.0 * (on_ms - off_ms) / off_ms
                       : 0.0;
        }
        double usPerRequest() const
        {
            return requests > 0
                       ? 1000.0 * (on_ms - off_ms) /
                             static_cast<double>(requests)
                       : 0.0;
        }
    };
    OverheadPoint overhead[] = {
        {"tiny-yolov3", 60, 60.0, 0, 0, 0},
        {kModel, 300, kSloMs, 0, 0, 0},
    };
    int reps = g_smoke ? 3 : 9;
    for (OverheadPoint &p : overhead) {
        serve::ServeConfig off_cfg =
            scenario(p.model, p.qps, p.slo_ms, false);
        serve::ServeConfig on_cfg =
            scenario(p.model, p.qps, p.slo_ms, true);
        off_cfg.duration_s = on_cfg.duration_s =
            g_smoke ? 2.0 : 8.0;
        serve::ServeReport warm =
            serve::runServer(off_cfg); // warm caches untimed
        p.requests = warm.models.front().offered;
        p.off_ms = p.on_ms = 1e300;
        for (int i = 0; i < reps; i++) {
            p.off_ms = std::min(p.off_ms, timedRun(off_cfg));
            p.on_ms = std::min(p.on_ms, timedRun(on_cfg));
        }
        std::printf("tracing overhead (%s): watch off %.1f ms, on "
                    "%.1f ms (%+.1f%%, %.2f us/request)\n",
                    p.model, p.off_ms, p.on_ms, p.pct(),
                    p.usPerRequest());
    }

    bench::saveBenchReport(
        "BENCH_watch.json", "bench_watch",
        [&](bench::JsonWriter &w) {
            w.field("model", kModel);
            w.field("slo_ms", kSloMs);
            w.field("smoke", g_smoke);
            w.key("scenarios").beginArray();
            writeScenario(w, clean);
            writeScenario(w, overload);
            w.endArray();
            w.field("alert_latency_s", overload.watch.first_page_s);
            w.field("same_seed_identical", same_seed);
            w.key("overhead").beginArray();
            for (const OverheadPoint &p : overhead) {
                w.beginObject();
                w.field("model", p.model);
                w.field("target_qps", p.qps);
                w.field("requests", p.requests);
                w.field("watch_off_ms", p.off_ms);
                w.field("watch_on_ms", p.on_ms);
                w.field("overhead_pct", p.pct());
                w.field("watch_us_per_request", p.usPerRequest());
                w.endObject();
            }
            w.endArray();
        });

    int rc = 0;
    if (clean.watch.page_alerts > 0) {
        std::fprintf(stderr,
                     "FAIL: %lld page-tier alert(s) on the clean "
                     "scenario — the alerter false-alarmed\n",
                     static_cast<long long>(
                         clean.watch.page_alerts));
        rc = 1;
    }
    if (overload.watch.page_alerts < 1) {
        std::fprintf(stderr,
                     "FAIL: induced overload fired no page-tier "
                     "alert\n");
        rc = 1;
    }
    if (overload.watch.incidents < 1) {
        std::fprintf(stderr, "FAIL: induced overload dumped no "
                             "flight-recorder incident\n");
        rc = 1;
    }
    if (!same_seed) {
        std::fprintf(stderr, "FAIL: same-seed watched runs "
                             "differ\n");
        rc = 1;
    }
    return rc;
}

/** Wall time of one watched serve scenario end to end. */
void
BM_WatchedServeScenario(benchmark::State &state)
{
    for (auto _ : state) {
        serve::ServeReport rep = serve::runServer(scenario(300, true));
        benchmark::DoNotOptimize(rep.watch.completed);
    }
}

} // namespace

BENCHMARK(BM_WatchedServeScenario)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    int rc = runFigures();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return rc;
}
