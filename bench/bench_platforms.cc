/**
 * @file
 * Reproduces Table I: the two evaluation platforms' hardware
 * resources, as reported by a deviceQuery-style dump of the device
 * models.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "gpusim/timing.hh"
#include "report.hh"

namespace {

using namespace edgert;

void
printTable1()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    auto fmt = [](double v, const char *suffix) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.4g%s", v, suffix);
        return std::string(buf);
    };

    TextTable t({"Attribute", "Xavier NX (GV10B)",
                 "Xavier AGX (GV10B)"});
    t.addRow({"# GPU cores",
              std::to_string(nx.sm_count * nx.cuda_cores_per_sm) +
                  " (64 per SM)",
              std::to_string(agx.sm_count * agx.cuda_cores_per_sm) +
                  " (64 per SM)"});
    t.addRow({"# SMs", std::to_string(nx.sm_count),
              std::to_string(agx.sm_count)});
    t.addRow({"# Tensor cores",
              std::to_string(nx.sm_count * nx.tensor_cores_per_sm) +
                  " (8 per SM)",
              std::to_string(agx.sm_count * agx.tensor_cores_per_sm) +
                  " (8 per SM)"});
    t.addRow({"L1 cache", fmt(nx.l1_kb_per_sm, "KB per SM"),
              fmt(agx.l1_kb_per_sm, "KB per SM")});
    t.addRow({"L2 cache", fmt(nx.l2_kb, "KB"), fmt(agx.l2_kb, "KB")});
    t.addRow({"Memory",
              fmt(nx.ram_gb, "GB ") + std::to_string(nx.bus_bits) +
                  "-bit LPDDR4x " + fmt(nx.dram_gbps, "GB/s"),
              fmt(agx.ram_gb, "GB ") + std::to_string(agx.bus_bits) +
                  "-bit LPDDR4x " + fmt(agx.dram_gbps, "GB/s")});
    t.addRow({"GPU clock (max)", fmt(nx.max_clock_ghz, " GHz"),
              fmt(agx.max_clock_ghz, " GHz")});
    t.addRow({"GPU clock (pinned, latency exps)",
              fmt(nx.gpu_clock_ghz * 1e3, " MHz"),
              fmt(agx.gpu_clock_ghz * 1e3, " MHz")});
    t.addRow({"Peak FP16 tensor (pinned clock)",
              fmt(nx.peakFp16Flops() / 1e12, " TFLOP/s"),
              fmt(agx.peakFp16Flops() / 1e12, " TFLOP/s")});
    t.addRow({"Technology", "12nm", "12nm"});

    std::printf("\n=== Table I: evaluation platforms ===\n");
    t.render(std::cout);

    auto writePlatform = [](bench::JsonWriter &w,
                            const gpusim::DeviceSpec &d) {
        w.beginObject();
        w.field("name", d.name);
        w.field("gpu_cores", d.sm_count * d.cuda_cores_per_sm);
        w.field("sm_count", d.sm_count);
        w.field("tensor_cores", d.sm_count * d.tensor_cores_per_sm);
        w.field("l1_kb_per_sm", d.l1_kb_per_sm);
        w.field("l2_kb", d.l2_kb);
        w.field("ram_gb", d.ram_gb);
        w.field("bus_bits", d.bus_bits);
        w.field("dram_gbps", d.dram_gbps);
        w.field("max_clock_ghz", d.max_clock_ghz);
        w.field("pinned_clock_ghz", d.gpu_clock_ghz);
        w.field("peak_fp16_tflops", d.peakFp16Flops() / 1e12);
        w.endObject();
    };
    bench::saveBenchReport(
        "BENCH_platforms.json", "bench_platforms",
        [&](bench::JsonWriter &w) {
            w.key("platforms").beginArray();
            writePlatform(w, nx);
            writePlatform(w, agx);
            w.endArray();
        });
}

void
BM_SoloKernelTiming(benchmark::State &state)
{
    gpusim::DeviceSpec dev = state.range(0) == 0
                                 ? gpusim::DeviceSpec::xavierNX()
                                 : gpusim::DeviceSpec::xavierAGX();
    gpusim::KernelDesc k;
    k.name = "probe";
    k.grid_blocks = 96;
    k.flops = 500'000'000;
    k.dram_bytes = 4'000'000;
    k.tensor_core = true;
    k.efficiency = 0.6;
    state.SetLabel(dev.name);
    state.counters["sim_kernel_us"] =
        gpusim::soloKernelSeconds(dev, k) * 1e6;
    for (auto _ : state) {
        double t = gpusim::soloKernelSeconds(dev, k);
        benchmark::DoNotOptimize(t);
    }
}

} // namespace

BENCHMARK(BM_SoloKernelTiming)->Arg(0)->Arg(1);

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
