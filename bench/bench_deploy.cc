/**
 * @file
 * EdgeDeploy study: the engine-lifecycle pipeline end to end.
 *
 * Part A — drift-gate seed sweep: rebuild resnet-18 at a ladder of
 * builder seeds against a fixed incumbent and push each candidate
 * through the DriftGate. Expected shape: canary disagreements land
 * in the paper's Finding 2 band (0.1–0.8% of predictions), so with
 * the default 0.4% gate some rebuilds promote and some are rejected
 * — rebuilding is *not* behaviour-preserving, and the gate is what
 * catches it.
 *
 * Part B — live hot-swap: run EdgeServe with a mid-run drift-gated
 * swap (HotSwapper: repository bootstrap → gated rebuild →
 * serve::SwapSpec) and verify the swap protocol's headline claim:
 * every offered request is either completed or shed by admission —
 * none are dropped across the swap. A second run injects swap-time
 * load faults and shows the rollback path restoring the incumbent.
 *
 * The whole study is a pure function of its seeds: the report
 * renders twice and the run aborts if the two documents differ
 * (byte determinism), mirroring bench_serving.
 *
 * `--smoke` (stripped before benchmark::Initialize) shrinks the
 * seed ladder and the serving window for CI.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <filesystem>
#include <string>
#include <vector>

#include "report.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "deploy/drift_gate.hh"
#include "deploy/hotswap.hh"
#include "deploy/repository.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"
#include "watch/watch.hh"

namespace {

using namespace edgert;

bool g_smoke = false;

constexpr const char *kModel = "resnet-18";
constexpr std::uint64_t kIncumbentSeed = 1;

/** Scratch repository root, recreated per study run. */
const char *kRepoDir = "bench_deploy_repo.tmp";

// ---------- Part A: drift-gate seed sweep ----------

struct GatePoint
{
    std::uint64_t seed = 0;
    std::uint64_t fingerprint = 0;
    bool accepted = false;
    std::int64_t disagreements = 0;
    double disagreement_pct = 0.0;
    double kernel_remap_pct = 0.0;
    std::string reason;
};

struct GateStudy
{
    std::vector<GatePoint> points;
    int rejected = 0;
    int rejected_in_band = 0; //!< rejections with drift in 0.1–0.8%
};

GateStudy
gateSweep()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel(kModel, 1);

    auto buildAt = [&](std::uint64_t seed) {
        core::BuilderConfig cfg;
        cfg.build_id = seed;
        return core::Builder(nx, cfg).build(net);
    };
    core::Engine incumbent = buildAt(kIncumbentSeed);

    deploy::DriftGate gate; // default 0.4% threshold
    GateStudy study;
    std::uint64_t last_seed = g_smoke ? 5 : 13;
    for (std::uint64_t seed = 2; seed <= last_seed; seed++) {
        core::Engine candidate = buildAt(seed);
        deploy::DriftVerdict v = gate.evaluate(incumbent, candidate);
        GatePoint p;
        p.seed = seed;
        p.fingerprint = candidate.fingerprint();
        p.accepted = v.accepted;
        p.disagreements = v.disagreements;
        p.disagreement_pct = v.disagreement_pct;
        p.kernel_remap_pct = v.kernel_remap_pct;
        p.reason = v.reason;
        if (!v.accepted) {
            study.rejected++;
            if (v.disagreement_pct >= 0.1 &&
                v.disagreement_pct <= 0.8)
                study.rejected_in_band++;
        }
        study.points.push_back(std::move(p));
    }

    TextTable t({"rebuild seed", "disagreement", "drift (%)",
                 "kernel remap (%)", "verdict"});
    for (const GatePoint &p : study.points)
        t.addRow({std::to_string(p.seed),
                  std::to_string(p.disagreements) + "/6000",
                  formatDouble(p.disagreement_pct, 3),
                  formatDouble(p.kernel_remap_pct, 1),
                  p.accepted ? "promote"
                             : "quarantine (" + p.reason + ")"});
    std::printf("\n=== Drift gate: %s rebuilds vs incumbent seed "
                "%llu, 6000-image canary, 0.4%% gate (Finding 2 "
                "band: 0.1-0.8%%) ===\n",
                kModel,
                static_cast<unsigned long long>(kIncumbentSeed));
    t.render(std::cout);
    std::printf("%d/%zu rebuilds rejected (%d with drift inside "
                "the paper band)\n",
                study.rejected, study.points.size(),
                study.rejected_in_band);
    return study;
}

// ---------- Part B: hot-swap into live serving ----------

struct SwapStudy
{
    serve::ModelStats clean;    //!< committed swap
    serve::ModelStats faulted;  //!< swap-load faults → rollback
    bool clean_promoted = false;
    double rollback_counter = 0.0;
    int lineage_live_after_clean = -1;
    int lineage_live_after_fault = -1;
    watch::WatchSummary clean_watch;   //!< no incidents expected
    watch::WatchSummary faulted_watch; //!< rollback => incident
};

serve::ServeConfig
swapServeConfig()
{
    serve::ServeConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = g_smoke ? 2.0 : 4.0;
    cfg.seed = 7;
    serve::ModelConfig mc;
    mc.model = kModel;
    mc.slo_ms = 25.0;
    mc.arrivals.qps = 300.0;
    cfg.models.push_back(mc);
    return cfg;
}

SwapStudy
swapStudy()
{
    SwapStudy out;
    auto &reg = obs::MetricRegistry::global();
    serve::ServeConfig cfg = swapServeConfig();
    // EdgeWatch rides along on both runs: the committed swap must
    // leave the flight recorder quiet, the faulted one must dump a
    // swap_rollback incident next to the bench report.
    cfg.watch.enabled = true;
    cfg.watch.incident_prefix = "BENCH_deploy_watch.";
    double t_swap = cfg.duration_s / 2.0;

    auto liveVersion = [&](deploy::EngineRepository &repo) {
        deploy::ModelKey key{kModel, cfg.devices.front().name,
                             nn::Precision::kFp16};
        auto m = repo.manifest(key);
        return m.ok() ? m->live_version : -1;
    };

    // Clean swap: the gate promotes the rebuild (threshold above
    // seed 2's drift), the server commits it mid-run.
    {
        std::filesystem::remove_all(kRepoDir);
        deploy::EngineRepository repo(kRepoDir);
        deploy::DriftGateConfig gate_cfg;
        gate_cfg.max_disagreement_pct = 0.5;
        deploy::HotSwapper swapper(repo, gate_cfg);
        deploy::HotSwapPlan plan =
            swapper.planSwaps(cfg, t_swap, kIncumbentSeed + 1);
        out.clean_promoted = !plan.swaps.empty();
        serve::ServeReport rep = swapper.runWithSwaps(cfg, plan);
        out.clean = rep.models.front();
        out.clean_watch = rep.watch;
        out.lineage_live_after_clean = liveVersion(repo);
    }

    // Faulted swap: every swap-time candidate load fails, the swap
    // rolls back, the incumbent keeps serving, and the repository
    // lineage reverts.
    {
        std::filesystem::remove_all(kRepoDir);
        deploy::EngineRepository repo(kRepoDir);
        deploy::DriftGateConfig gate_cfg;
        gate_cfg.max_disagreement_pct = 0.5;
        deploy::HotSwapper swapper(repo, gate_cfg);
        serve::ServeConfig fcfg = cfg;
        fcfg.faults.swap_load_failures[kModel] =
            fcfg.faults.max_load_attempts;
        deploy::HotSwapPlan plan =
            swapper.planSwaps(fcfg, t_swap, kIncumbentSeed + 1);
        serve::ServeReport rep = swapper.runWithSwaps(fcfg, plan);
        out.faulted = rep.models.front();
        out.faulted_watch = rep.watch;
        out.lineage_live_after_fault = liveVersion(repo);
        out.rollback_counter =
            reg.counter("deploy.swap.rolled_back",
                        {{"model", kModel},
                         {"reason", "load_failure"}})
                .value();
    }
    std::filesystem::remove_all(kRepoDir);

    auto line = [](const char *tag, const serve::ModelStats &m,
                   int live) {
        std::printf("%-9s offered %lld = completed %lld + shed "
                    "%lld (dropped %lld) | swaps %lld, rolled back "
                    "%lld%s%s | active build %llu | pause %.2f ms "
                    "| p99 in-swap %.2f ms vs steady %.2f ms | "
                    "lineage live v%d\n",
                    tag, static_cast<long long>(m.offered),
                    static_cast<long long>(m.completed),
                    static_cast<long long>(m.shed),
                    static_cast<long long>(m.offered - m.completed -
                                           m.shed),
                    static_cast<long long>(m.swaps),
                    static_cast<long long>(m.swaps_rolled_back),
                    m.swap_rollback_reason.empty() ? "" : ": ",
                    m.swap_rollback_reason.c_str(),
                    static_cast<unsigned long long>(
                        m.active_build_id),
                    m.swap_downtime_ms, m.p99_swap_ms,
                    m.p99_steady_ms, live);
    };
    std::printf("\n=== Hot-swap into live serving: %s at %.0f qps, "
                "swap at %.1f s of %.1f s ===\n",
                kModel, cfg.models.front().arrivals.qps, t_swap,
                cfg.duration_s);
    line("clean:", out.clean, out.lineage_live_after_clean);
    line("faulted:", out.faulted, out.lineage_live_after_fault);
    std::printf("watch:    clean %lld incident(s), faulted %lld "
                "incident(s) (BENCH_deploy_watch.*)\n",
                static_cast<long long>(out.clean_watch.incidents),
                static_cast<long long>(
                    out.faulted_watch.incidents));
    return out;
}

// ---------- Report ----------

void
fillReport(bench::JsonWriter &w, const GateStudy &gate,
           const SwapStudy &swap)
{
    w.field("model", kModel);
    w.field("smoke", g_smoke);
    w.field("incumbent_seed", kIncumbentSeed);
    w.key("drift_gate").beginObject();
    w.field("gate_pct", 0.4);
    w.field("canary_size", 6000);
    w.field("rejected", gate.rejected);
    w.field("rejected_in_paper_band", gate.rejected_in_band);
    w.key("rebuilds").beginArray();
    for (const GatePoint &p : gate.points) {
        w.beginObject();
        w.field("seed", p.seed);
        w.field("accepted", p.accepted);
        w.field("disagreements", p.disagreements);
        w.field("disagreement_pct", p.disagreement_pct);
        w.field("kernel_remap_pct", p.kernel_remap_pct);
        w.field("reason", p.reason);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    auto stats = [&](const char *k, const serve::ModelStats &m,
                     int live) {
        w.key(k).beginObject();
        w.field("offered", m.offered);
        w.field("completed", m.completed);
        w.field("shed", m.shed);
        w.field("dropped", m.offered - m.completed - m.shed);
        w.field("swaps", m.swaps);
        w.field("swaps_rolled_back", m.swaps_rolled_back);
        w.field("swap_rollback_reason", m.swap_rollback_reason);
        w.field("active_build_id", m.active_build_id);
        w.field("swap_downtime_ms", m.swap_downtime_ms);
        w.field("p99_swap_ms", m.p99_swap_ms);
        w.field("p99_steady_ms", m.p99_steady_ms);
        w.field("lineage_live_version", live);
        w.key("versions").beginArray();
        for (const auto &v : m.versions) {
            w.beginObject();
            w.field("build_id", v.build_id);
            w.field("batches", v.batches);
            w.field("completed", v.completed);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    };
    w.key("hot_swap").beginObject();
    w.field("candidate_promoted", swap.clean_promoted);
    stats("clean", swap.clean, swap.lineage_live_after_clean);
    stats("faulted", swap.faulted, swap.lineage_live_after_fault);
    w.field("rollback_counter", swap.rollback_counter);
    w.key("watch").beginObject();
    w.field("clean_incidents", swap.clean_watch.incidents);
    w.field("faulted_incidents", swap.faulted_watch.incidents);
    w.field("faulted_page_alerts", swap.faulted_watch.page_alerts);
    w.endObject();
    w.endObject();

    bool zero_dropped =
        swap.clean.offered ==
            swap.clean.completed + swap.clean.shed &&
        swap.faulted.offered ==
            swap.faulted.completed + swap.faulted.shed;
    w.field("zero_dropped_across_swap", zero_dropped);
}

/** One full study pass, rendered to the final report document. */
std::string
renderReport()
{
    obs::MetricRegistry::global().reset();
    GateStudy gate = gateSweep();
    SwapStudy swap = swapStudy();

    bench::JsonWriter w;
    w.beginObject();
    w.field("bench", "bench_deploy");
    fillReport(w, gate, swap);
    // Embed only the simulation-deterministic metric families:
    // builder pass timings are wall-clock and would break the
    // byte-determinism check below.
    w.key("metrics").raw(
        obs::MetricRegistry::global().toJson({"deploy.", "serve."}));
    w.endObject();
    return w.str();
}

void
runStudy()
{
    std::string doc = renderReport();

    // Byte determinism: the exact same study again must render the
    // exact same document (repository rebuilt from scratch, metric
    // registry reset — nothing may depend on wall-clock, thread
    // schedule or leftover disk state).
    std::printf("\nre-running the full study for the byte-"
                "determinism check...\n");
    std::string again = renderReport();
    bool identical = doc == again;
    std::printf("same-seed report byte-identical: %s\n",
                identical ? "yes" : "NO");
    if (!identical) {
        // Leave both documents behind for diffing.
        std::ofstream("BENCH_deploy.run1.json") << doc;
        std::ofstream("BENCH_deploy.run2.json") << again;
        fatal("bench_deploy: same-seed runs rendered different "
              "reports (see BENCH_deploy.run{1,2}.json)");
    }

    std::ofstream f("BENCH_deploy.json");
    if (!f)
        fatal("cannot write BENCH_deploy.json");
    f << doc << "\n";
    std::printf("machine-readable results written to "
                "BENCH_deploy.json\n");
}

/** Wall time of one gate evaluation (6000-image canary). */
void
BM_DriftGateEvaluate(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel(kModel, 1);
    core::BuilderConfig c1, c2;
    c1.build_id = 1;
    c2.build_id = 2;
    core::Engine a = core::Builder(nx, c1).build(net);
    core::Engine b = core::Builder(nx, c2).build(net);
    deploy::DriftGate gate;
    for (auto _ : state) {
        auto v = gate.evaluate(a, b);
        benchmark::DoNotOptimize(v.disagreements);
    }
}

} // namespace

BENCHMARK(BM_DriftGateEvaluate)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Strip --smoke before the benchmark library sees argv.
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    runStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
