/**
 * @file
 * EdgeQuant study: the calibrated INT8 / mixed-precision ladder.
 *
 * Part A — throughput/accuracy frontier: build each model at fp16,
 * mixed and int8 on the Xavier NX, predict batch-1 service time with
 * the BSP LatencyPredictor and score top-1 error with the surrogate
 * classifier. The accuracy axis isolates the quantization *bias*:
 * all three classifiers share the fp16 incumbent's fingerprint
 * (zero-mean Finding-2 rebuild noise is orthogonal to precision and
 * studied in bench_engine_variance) while the quantization posture —
 * INT8 flops share and calibration table — varies per engine.
 * Expected shape — and a hard gate: `@mixed` lands *strictly
 * between* `@fp16` and `@int8` on both axes. INT8 buys throughput
 * and pays margin; the per-layer selector's FP16 fallbacks claw back
 * part of the accuracy cost at part of the speedup.
 *
 * Part B — calibration-seed variance: rebuild the mixed engine at a
 * ladder of calibration seeds. Same-seed rebuilds must be
 * byte-identical plans (hard gate); different seeds shift the scale
 * tables, occasionally flip a borderline layer's fallback decision,
 * and move top-1 error inside a narrow band — the F2-style
 * nondeterminism the cross-precision drift gate budgets for.
 *
 * Part C — cross-precision hot-swap: serve an @fp16 incumbent live,
 * rebuild an @int8 candidate from the same lineage, push it through
 * the cross-precision DriftGate and hot-swap it mid-run. Hard gates:
 * the candidate promotes, the swap commits, and not one request is
 * dropped across the precision change.
 *
 * The whole study renders twice and aborts unless the two documents
 * are byte-identical (determinism contract), mirroring bench_deploy.
 * `--smoke` shrinks the model list, seed ladder and serving window
 * for CI.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "report.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "core/precision.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "deploy/hotswap.hh"
#include "deploy/repository.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "serve/predictor.hh"
#include "serve/server.hh"

namespace {

using namespace edgert;

bool g_smoke = false;

/** Scratch repository root, recreated per study run. */
const char *kRepoDir = "bench_quantization_repo.tmp";

constexpr std::uint64_t kCalibSeed = 1;

std::vector<std::string>
studyModels()
{
    if (g_smoke)
        return {"resnet-18"};
    return {"resnet-18", "alexnet", "vgg-16"};
}

core::Engine
buildAt(const std::string &model, nn::Precision precision,
        std::uint64_t calibration_seed,
        core::BuildReport *report = nullptr)
{
    nn::Network net = nn::buildZooModel(model, 1);
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.precision = precision;
    cfg.calibration_seed = calibration_seed;
    if (precision == nn::Precision::kMixed) {
        // Pin the total budget to 60% of this model's *own* all-INT8
        // margin loss so every study model genuinely mixes. Under
        // the absolute default a small model (vgg-16's mild range
        // ratios) can fit entirely in INT8 — correct behaviour, but
        // then @mixed == @int8 and there is no frontier to trace.
        auto graph = core::optimize(net, nn::Precision::kInt8);
        core::Int8Calibrator calib(net, calibration_seed);
        core::PrecisionPlanConfig unbounded;
        unbounded.layer_margin_budget = 1e9;
        unbounded.total_margin_budget = 1e9;
        auto all = core::selectPrecisions(graph, calib, unbounded);
        cfg.precision_plan.total_margin_budget =
            0.6 * all.quantized_loss;
    }
    return core::Builder(gpusim::DeviceSpec::xavierNX(), cfg)
        .build(net, report);
}

double
topOneErrorPct(const data::SurrogateClassifier &clf,
               const data::BenignDataset &ds)
{
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        data::ImageRef img = ds.at(i);
        if (clf.predict(img) != img.class_id)
            wrong++;
    }
    return 100.0 * static_cast<double>(wrong) /
           static_cast<double>(ds.size());
}

// ---------- Part A: throughput/accuracy frontier ----------

struct FrontierPoint
{
    std::string model;
    nn::Precision precision = nn::Precision::kFp16;
    double svc_ms = 0.0;
    double qps = 0.0;
    double err_pct = 0.0;
    double int8_fraction = 0.0;
    int int8_nodes = 0;
    int fp16_fallbacks = 0;
    std::uint64_t fingerprint = 0;
};

struct FrontierStudy
{
    std::vector<FrontierPoint> points; //!< model-major, fp16→int8
    int images = 0;
};

FrontierStudy
frontierStudy()
{
    // A large benign sample keeps the accuracy axis resolvable: the
    // mixed/int8 margin-penalty gap is a few thousandths, so the
    // strict-ordering gate needs enough borderline images to flip.
    data::BenignDataset ds(/*classes=*/200, /*per_class=*/100);
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();

    FrontierStudy study;
    study.images = static_cast<int>(ds.size());
    const nn::Precision ladder[] = {nn::Precision::kFp16,
                                    nn::Precision::kMixed,
                                    nn::Precision::kInt8};
    for (const std::string &model : studyModels()) {
        // One shared noise fingerprint per model (see file comment):
        // the accuracy column then moves only with the quantization
        // posture, never with tactic-reshuffle noise.
        std::uint64_t noise_fp = 0;
        for (nn::Precision p : ladder) {
            core::BuildReport report;
            core::Engine e = buildAt(model, p, kCalibSeed, &report);
            if (p == nn::Precision::kFp16)
                noise_fp = e.fingerprint();
            serve::LatencyPredictor pred(nx);
            pred.calibrate(e);
            FrontierPoint pt;
            pt.model = model;
            pt.precision = p;
            pt.svc_ms = pred.predictServiceSeconds(e) * 1e3;
            pt.qps = 1e3 / pt.svc_ms;
            pt.int8_fraction = e.int8ComputeFraction();
            pt.int8_nodes = report.precision_plan.int8_nodes;
            pt.fp16_fallbacks = report.precision_plan.fp16_fallbacks;
            pt.fingerprint = e.fingerprint();
            auto clf = data::SurrogateClassifier::forEngine(
                model, noise_fp,
                data::QuantSpec{e.int8ComputeFraction(),
                                e.calibrationFingerprint()});
            pt.err_pct = topOneErrorPct(clf, ds);
            study.points.push_back(std::move(pt));
        }
    }

    TextTable t({"model", "precision", "svc (ms)", "qps",
                 "top-1 err (%)", "int8 flops", "fallbacks"});
    for (const FrontierPoint &p : study.points)
        t.addRow({p.model, nn::precisionName(p.precision),
                  formatDouble(p.svc_ms, 3), formatDouble(p.qps, 0),
                  formatDouble(p.err_pct, 3),
                  formatDouble(100.0 * p.int8_fraction, 1) + "%",
                  p.precision == nn::Precision::kMixed
                      ? std::to_string(p.fp16_fallbacks) + "/" +
                            std::to_string(p.fp16_fallbacks +
                                           p.int8_nodes)
                      : "-"});
    std::printf("\n=== Throughput/accuracy frontier on NX (%d "
                "benign images, calibration seed %llu) ===\n",
                study.images,
                static_cast<unsigned long long>(kCalibSeed));
    t.render(std::cout);

    // Hard gate: mixed strictly between the poles on both axes.
    for (std::size_t m = 0; m < study.points.size(); m += 3) {
        const FrontierPoint &f16 = study.points[m];
        const FrontierPoint &mix = study.points[m + 1];
        const FrontierPoint &i8 = study.points[m + 2];
        if (!(f16.qps < mix.qps && mix.qps < i8.qps))
            fatal("bench_quantization: ", f16.model,
                  " throughput not strictly ordered fp16 < mixed < "
                  "int8 (",
                  f16.qps, " / ", mix.qps, " / ", i8.qps, " qps)");
        if (!(f16.err_pct < mix.err_pct && mix.err_pct < i8.err_pct))
            fatal("bench_quantization: ", f16.model,
                  " top-1 error not strictly ordered fp16 < mixed < "
                  "int8 (",
                  f16.err_pct, " / ", mix.err_pct, " / ", i8.err_pct,
                  " %)");
        if (mix.fp16_fallbacks <= 0 || mix.int8_nodes <= 0)
            fatal("bench_quantization: ", f16.model,
                  " mixed build is not genuinely mixed (",
                  mix.int8_nodes, " int8 nodes, ",
                  mix.fp16_fallbacks, " fallbacks)");
    }
    std::printf("frontier gate: @mixed strictly between @fp16 and "
                "@int8 on both axes for every model\n");
    return study;
}

// ---------- Part B: calibration-seed variance ----------

struct SeedPoint
{
    std::uint64_t calibration_seed = 0;
    std::uint64_t calibration_fingerprint = 0;
    std::uint64_t plan_fingerprint = 0; //!< engine fingerprint
    int fp16_fallbacks = 0;
    double err_pct = 0.0;
};

struct SeedStudy
{
    std::string model = "resnet-18";
    std::vector<SeedPoint> points;
    bool same_seed_byte_identical = false;
    int distinct_plans = 0;
    double err_min_pct = 0.0;
    double err_max_pct = 0.0;
};

SeedStudy
seedStudy()
{
    SeedStudy study;
    data::BenignDataset ds(200, 100);

    // Same calibration seed twice: the plan bytes must match
    // exactly — calibration is a pure function of (model, seed).
    study.same_seed_byte_identical =
        buildAt(study.model, nn::Precision::kMixed, kCalibSeed)
            .serialize() ==
        buildAt(study.model, nn::Precision::kMixed, kCalibSeed)
            .serialize();
    if (!study.same_seed_byte_identical)
        fatal("bench_quantization: same-calibration-seed rebuilds "
              "are not byte-identical");

    std::uint64_t seeds = g_smoke ? 3 : 8;
    for (std::uint64_t s = 1; s <= seeds; s++) {
        core::BuildReport report;
        core::Engine e =
            buildAt(study.model, nn::Precision::kMixed, s, &report);
        SeedPoint pt;
        pt.calibration_seed = s;
        pt.calibration_fingerprint = e.calibrationFingerprint();
        pt.plan_fingerprint = e.fingerprint();
        pt.fp16_fallbacks = report.precision_plan.fp16_fallbacks;
        auto clf = data::SurrogateClassifier::forEngine(
            study.model, e.fingerprint(),
            data::QuantSpec{e.int8ComputeFraction(),
                            e.calibrationFingerprint()});
        pt.err_pct = topOneErrorPct(clf, ds);
        study.points.push_back(pt);
    }
    for (std::size_t i = 0; i < study.points.size(); i++) {
        bool fresh = true;
        for (std::size_t j = 0; j < i; j++)
            if (study.points[j].plan_fingerprint ==
                study.points[i].plan_fingerprint)
                fresh = false;
        study.distinct_plans += fresh;
        double err = study.points[i].err_pct;
        if (i == 0)
            study.err_min_pct = study.err_max_pct = err;
        study.err_min_pct = std::min(study.err_min_pct, err);
        study.err_max_pct = std::max(study.err_max_pct, err);
    }

    TextTable t({"calib seed", "table fingerprint",
                 "engine fingerprint", "fallbacks", "top-1 err (%)"});
    for (const SeedPoint &p : study.points) {
        char fp[2][32];
        std::snprintf(fp[0], sizeof fp[0], "%016llx",
                      static_cast<unsigned long long>(
                          p.calibration_fingerprint));
        std::snprintf(fp[1], sizeof fp[1], "%016llx",
                      static_cast<unsigned long long>(
                          p.plan_fingerprint));
        t.addRow({std::to_string(p.calibration_seed), fp[0], fp[1],
                  std::to_string(p.fp16_fallbacks),
                  formatDouble(p.err_pct, 3)});
    }
    std::printf("\n=== Calibration-seed variance: %s @mixed, %llu "
                "seeds (same-seed rebuild byte-identical: yes) "
                "===\n",
                study.model.c_str(),
                static_cast<unsigned long long>(seeds));
    t.render(std::cout);
    std::printf("%d distinct engines; top-1 error band %.3f%% - "
                "%.3f%%\n",
                study.distinct_plans, study.err_min_pct,
                study.err_max_pct);
    return study;
}

// ---------- Part C: cross-precision hot-swap ----------

struct SwapStudy
{
    bool promoted = false;
    bool cross_precision = false;
    double disagreement_pct = 0.0;
    double applied_disagreement_pct = 0.0;
    serve::ModelStats stats;
};

SwapStudy
crossPrecisionSwap()
{
    serve::ServeConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = g_smoke ? 2.0 : 4.0;
    cfg.seed = 7;
    serve::ModelConfig mc;
    mc.model = "resnet-18";
    mc.precision = nn::Precision::kFp16;
    mc.slo_ms = 25.0;
    mc.arrivals.qps = 300.0;
    cfg.models.push_back(mc);
    double t_swap = cfg.duration_s / 2.0;

    std::filesystem::remove_all(kRepoDir);
    SwapStudy out;
    {
        deploy::EngineRepository repo(kRepoDir);
        deploy::HotSwapper swapper(repo); // default cross band
        deploy::HotSwapPlan plan = swapper.planSwaps(
            cfg, t_swap, /*rebuild_build_id=*/2, /*workers=*/1,
            nn::Precision::kInt8, kCalibSeed);
        out.promoted = plan.outcomes.front().promoted;
        out.cross_precision =
            plan.outcomes.front().verdict.cross_precision;
        out.disagreement_pct =
            plan.outcomes.front().verdict.disagreement_pct;
        out.applied_disagreement_pct =
            plan.outcomes.front().verdict.applied_disagreement_pct;
        if (!out.promoted)
            fatal("bench_quantization: the int8 candidate did not "
                  "pass the cross-precision drift gate (",
                  plan.outcomes.front().verdict.reason, ", ",
                  out.disagreement_pct, "% vs ",
                  out.applied_disagreement_pct, "% band)");
        serve::ServeReport rep = swapper.runWithSwaps(cfg, plan);
        out.stats = rep.models.front();
    }
    std::filesystem::remove_all(kRepoDir);

    const serve::ModelStats &m = out.stats;
    std::int64_t dropped = m.offered - m.completed - m.shed;
    std::printf("\n=== Cross-precision hot-swap: resnet-18 @fp16 -> "
                "@int8 at %.1f s of %.1f s ===\n",
                t_swap, cfg.duration_s);
    std::printf("gate: promoted, cross_precision=%s, drift %.3f%% "
                "vs %.1f%% band\n",
                out.cross_precision ? "true" : "false",
                out.disagreement_pct, out.applied_disagreement_pct);
    std::printf("serve: offered %lld = completed %lld + shed %lld "
                "(dropped %lld) | swaps %lld, rolled back %lld | "
                "active build %llu | pause %.2f ms\n",
                static_cast<long long>(m.offered),
                static_cast<long long>(m.completed),
                static_cast<long long>(m.shed),
                static_cast<long long>(dropped),
                static_cast<long long>(m.swaps),
                static_cast<long long>(m.swaps_rolled_back),
                static_cast<unsigned long long>(m.active_build_id),
                m.swap_downtime_ms);

    if (!out.cross_precision)
        fatal("bench_quantization: the gate did not apply the "
              "cross-precision band");
    if (dropped != 0)
        fatal("bench_quantization: ", dropped,
              " request(s) dropped across the cross-precision swap");
    if (m.swaps != 1 || m.swaps_rolled_back != 0 ||
        m.active_build_id != 2)
        fatal("bench_quantization: the int8 candidate is not "
              "serving after the swap (swaps ",
              m.swaps, ", rolled back ", m.swaps_rolled_back,
              ", active build ", m.active_build_id, ")");
    return out;
}

// ---------- Report ----------

void
fillReport(bench::JsonWriter &w, const FrontierStudy &frontier,
           const SeedStudy &seeds, const SwapStudy &swap)
{
    w.field("smoke", g_smoke);
    w.field("device", "xavier-nx");
    w.field("calibration_seed", kCalibSeed);

    w.key("frontier").beginObject();
    w.field("images", frontier.images);
    w.field("mixed_strictly_between", true); // gated above
    w.key("points").beginArray();
    for (const FrontierPoint &p : frontier.points) {
        w.beginObject();
        w.field("model", p.model);
        w.field("precision", nn::precisionName(p.precision));
        w.field("svc_ms", p.svc_ms);
        w.field("qps", p.qps);
        w.field("top1_err_pct", p.err_pct);
        w.field("int8_flops_fraction", p.int8_fraction);
        w.field("int8_nodes", p.int8_nodes);
        w.field("fp16_fallbacks", p.fp16_fallbacks);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("calibration_variance").beginObject();
    w.field("model", seeds.model);
    w.field("same_seed_byte_identical",
            seeds.same_seed_byte_identical);
    w.field("distinct_plans", seeds.distinct_plans);
    w.field("top1_err_min_pct", seeds.err_min_pct);
    w.field("top1_err_max_pct", seeds.err_max_pct);
    w.key("seeds").beginArray();
    for (const SeedPoint &p : seeds.points) {
        w.beginObject();
        w.field("calibration_seed", p.calibration_seed);
        w.field("calibration_fingerprint",
                p.calibration_fingerprint);
        w.field("engine_fingerprint", p.plan_fingerprint);
        w.field("fp16_fallbacks", p.fp16_fallbacks);
        w.field("top1_err_pct", p.err_pct);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    const serve::ModelStats &m = swap.stats;
    w.key("cross_precision_swap").beginObject();
    w.field("from", "fp16");
    w.field("to", "int8");
    w.field("promoted", swap.promoted);
    w.field("cross_precision_gate", swap.cross_precision);
    w.field("disagreement_pct", swap.disagreement_pct);
    w.field("applied_disagreement_pct",
            swap.applied_disagreement_pct);
    w.field("offered", m.offered);
    w.field("completed", m.completed);
    w.field("shed", m.shed);
    w.field("dropped", m.offered - m.completed - m.shed);
    w.field("swaps", m.swaps);
    w.field("swaps_rolled_back", m.swaps_rolled_back);
    w.field("active_build_id", m.active_build_id);
    w.field("swap_downtime_ms", m.swap_downtime_ms);
    w.endObject();
}

/** One full study pass, rendered to the final report document. */
std::string
renderReport()
{
    obs::MetricRegistry::global().reset();
    FrontierStudy frontier = frontierStudy();
    SeedStudy seeds = seedStudy();
    SwapStudy swap = crossPrecisionSwap();

    bench::JsonWriter w;
    w.beginObject();
    w.field("bench", "bench_quantization");
    fillReport(w, frontier, seeds, swap);
    w.key("metrics").raw(
        obs::MetricRegistry::global().toJson({"deploy.", "serve."}));
    w.endObject();
    return w.str();
}

void
runStudy()
{
    std::string doc = renderReport();

    // Byte determinism: the exact same study again must render the
    // exact same document.
    std::printf("\nre-running the full study for the byte-"
                "determinism check...\n");
    std::string again = renderReport();
    bool identical = doc == again;
    std::printf("same-seed report byte-identical: %s\n",
                identical ? "yes" : "NO");
    if (!identical) {
        std::ofstream("BENCH_quantization.run1.json") << doc;
        std::ofstream("BENCH_quantization.run2.json") << again;
        fatal("bench_quantization: same-seed runs rendered "
              "different reports (see "
              "BENCH_quantization.run{1,2}.json)");
    }

    std::ofstream f("BENCH_quantization.json");
    if (!f)
        fatal("cannot write BENCH_quantization.json");
    f << doc << "\n";
    std::printf("machine-readable results written to "
                "BENCH_quantization.json\n");
}

/** Wall time of one mixed-precision build (selector included). */
void
BM_MixedBuild(benchmark::State &state)
{
    nn::Network net = nn::buildZooModel("resnet-18", 1);
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.precision = nn::Precision::kMixed;
    for (auto _ : state) {
        core::Engine e = core::Builder(nx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

/** Wall time of one precision-plan selection alone. */
void
BM_SelectPrecisions(benchmark::State &state)
{
    nn::Network net = nn::buildZooModel("resnet-18", 1);
    auto graph = core::optimize(net, nn::Precision::kInt8);
    core::Int8Calibrator calib(net, 1);
    for (auto _ : state) {
        auto plan = core::selectPrecisions(graph, calib);
        benchmark::DoNotOptimize(plan.int8_nodes);
    }
}

} // namespace

BENCHMARK(BM_MixedBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectPrecisions)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    // Strip --smoke before the benchmark library sees argv.
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    runStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
