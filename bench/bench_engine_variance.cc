/**
 * @file
 * Reproduces Table XII: run time of three independently built
 * TensorRT-style engines per model, all built *and* run on AGX.
 *
 * Expected shape: several models show run-time differences across
 * their three engines (paper highlights ResNet-18, vgg-16,
 * inception-v4, Mobilenetv1, fcn-resnet18) because each build's
 * noisy autotuning selects a different kernel mix; others land on
 * the same tactics and match.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
printTable12()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "Engine1", "Engine2", "Engine3",
                     "max spread (%)"});

    for (const auto &model : nn::zooModelNames()) {
        nn::Network net = nn::buildZooModel(model);
        double means[3];
        std::vector<std::string> row{model};
        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 300 + static_cast<std::uint64_t>(i);
            core::Engine e = core::Builder(agx, cfg).build(net);
            runtime::LatencyOptions opts;
            opts.noise_seed = static_cast<std::uint64_t>(i);
            auto lat = runtime::measureLatency(e, agx, opts);
            means[i] = lat.mean_ms;
            row.push_back(meanStdCell(lat.mean_ms, lat.std_ms));
        }
        double mn = std::min({means[0], means[1], means[2]});
        double mx = std::max({means[0], means[1], means[2]});
        row.push_back(formatDouble(100.0 * (mx - mn) / mn, 1));
        table.addRow(std::move(row));
    }
    std::printf("\n=== Table XII: run time (ms) of three engines of "
                "the same model, built and run on AGX (paper: "
                "spreads up to ~50%% for ResNet-18, ~17%% for "
                "inception-v4/vgg-16/mobilenet) ===\n");
    table.render(std::cout);
}

void
BM_RebuildVariance(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    std::uint64_t id = 0;
    for (auto _ : state) {
        core::BuilderConfig cfg;
        cfg.build_id = id++;
        core::Engine e = core::Builder(agx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

} // namespace

BENCHMARK(BM_RebuildVariance)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable12();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
