/**
 * @file
 * Reproduces Table XII: run time of three independently built
 * TensorRT-style engines per model, all built *and* run on AGX.
 *
 * Expected shape: several models show run-time differences across
 * their three engines (paper highlights ResNet-18, vgg-16,
 * inception-v4, Mobilenetv1, fcn-resnet18) because each build's
 * noisy autotuning selects a different kernel mix; others land on
 * the same tactics and match.
 *
 * A second table shows the mitigation: rebuilding through a shared
 * TimingCache freezes the tactic choices, so the three engines
 * become bit-identical and the remaining spread is pure run-to-run
 * measurement noise.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <set>

#include "report.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

/** One model's three-rebuild latency outcome (Table XII row). */
struct VarianceRow
{
    std::string model;
    double mean_ms[3];
    double std_ms[3];
    double spread_pct = 0.0;
};

/** One model's timing-cache mitigation outcome. */
struct MitigationRow
{
    std::string model;
    std::size_t distinct_uncached = 0;
    std::size_t distinct_cached = 0;
    double cached_spread_pct = 0.0;
};

std::vector<VarianceRow>
printTable12()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "Engine1", "Engine2", "Engine3",
                     "max spread (%)"});
    std::vector<VarianceRow> rows;

    for (const auto &model : nn::zooModelNames()) {
        nn::Network net = nn::buildZooModel(model);
        VarianceRow vr;
        vr.model = model;
        std::vector<std::string> row{model};
        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 300 + static_cast<std::uint64_t>(i);
            core::Engine e = core::Builder(agx, cfg).build(net);
            runtime::LatencyOptions opts;
            opts.noise_seed = static_cast<std::uint64_t>(i);
            auto lat = runtime::measureLatency(e, agx, opts);
            vr.mean_ms[i] = lat.mean_ms;
            vr.std_ms[i] = lat.std_ms;
            row.push_back(meanStdCell(lat.mean_ms, lat.std_ms));
        }
        double mn =
            std::min({vr.mean_ms[0], vr.mean_ms[1], vr.mean_ms[2]});
        double mx =
            std::max({vr.mean_ms[0], vr.mean_ms[1], vr.mean_ms[2]});
        vr.spread_pct = 100.0 * (mx - mn) / mn;
        row.push_back(formatDouble(vr.spread_pct, 1));
        table.addRow(std::move(row));
        rows.push_back(std::move(vr));
    }
    std::printf("\n=== Table XII: run time (ms) of three engines of "
                "the same model, built and run on AGX (paper: "
                "spreads up to ~50%% for ResNet-18, ~17%% for "
                "inception-v4/vgg-16/mobilenet) ===\n");
    table.render(std::cout);
    return rows;
}

std::vector<MitigationRow>
printTable12Mitigated()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "distinct engines (uncached)",
                     "distinct engines (cached)",
                     "cached spread (%)"});
    std::vector<MitigationRow> rows;
    int frozen = 0, total = 0;
    for (const auto &model : nn::zooModelNames()) {
        nn::Network net = nn::buildZooModel(model);
        core::TimingCache cache;
        std::set<std::uint64_t> plain_fps, cached_fps;
        double means[3];
        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 300 + static_cast<std::uint64_t>(i);
            plain_fps.insert(
                core::Builder(agx, cfg).build(net).fingerprint());
            cfg.timing_cache = &cache;
            core::Engine e = core::Builder(agx, cfg).build(net);
            cached_fps.insert(e.fingerprint());
            runtime::LatencyOptions opts;
            opts.noise_seed = static_cast<std::uint64_t>(i);
            means[i] = runtime::measureLatency(e, agx, opts).mean_ms;
        }
        double mn = std::min({means[0], means[1], means[2]});
        double mx = std::max({means[0], means[1], means[2]});
        MitigationRow mr;
        mr.model = model;
        mr.distinct_uncached = plain_fps.size();
        mr.distinct_cached = cached_fps.size();
        mr.cached_spread_pct = 100.0 * (mx - mn) / mn;
        table.addRow({model, std::to_string(plain_fps.size()),
                      std::to_string(cached_fps.size()),
                      formatDouble(mr.cached_spread_pct, 1)});
        rows.push_back(std::move(mr));
        total++;
        if (cached_fps.size() == 1)
            frozen++;
    }
    std::printf("\n=== Finding 6 mitigation: the same three builds "
                "through one shared TimingCache (first build warms "
                "it, the rest hit) ===\n");
    table.render(std::cout);
    std::printf("tactics frozen for %d/%d models — any remaining "
                "cached spread is run-to-run measurement noise, not "
                "engine variance\n",
                frozen, total);
    return rows;
}

void
writeJsonReport(const std::vector<VarianceRow> &variance,
                const std::vector<MitigationRow> &mitigation)
{
    bench::saveBenchReport(
        "BENCH_engine_variance.json", "bench_engine_variance",
        [&](bench::JsonWriter &w) {
            w.field("device", "xavier-agx");
            w.field("builds_per_model", 3);
            w.key("variance").beginArray();
            for (const VarianceRow &r : variance) {
                w.beginObject();
                w.field("model", r.model);
                w.key("mean_ms").beginArray();
                for (double v : r.mean_ms)
                    w.value(v);
                w.endArray();
                w.key("std_ms").beginArray();
                for (double v : r.std_ms)
                    w.value(v);
                w.endArray();
                w.field("spread_pct", r.spread_pct);
                w.endObject();
            }
            w.endArray();
            w.key("timing_cache_mitigation").beginArray();
            for (const MitigationRow &r : mitigation) {
                w.beginObject();
                w.field("model", r.model);
                w.field("distinct_engines_uncached",
                        r.distinct_uncached);
                w.field("distinct_engines_cached",
                        r.distinct_cached);
                w.field("cached_spread_pct", r.cached_spread_pct);
                w.endObject();
            }
            w.endArray();
        },
        /*with_metrics=*/false);
}

void
BM_RebuildVariance(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    std::uint64_t id = 0;
    for (auto _ : state) {
        core::BuilderConfig cfg;
        cfg.build_id = id++;
        core::Engine e = core::Builder(agx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

void
BM_RebuildVarianceCached(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::TimingCache cache;
    std::uint64_t id = 0;
    for (auto _ : state) {
        core::BuilderConfig cfg;
        cfg.build_id = id++;
        cfg.timing_cache = &cache;
        core::Engine e = core::Builder(agx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

} // namespace

BENCHMARK(BM_RebuildVariance)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebuildVarianceCached)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    auto variance = printTable12();
    auto mitigation = printTable12Mitigated();
    writeJsonReport(variance, mitigation);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
