/**
 * @file
 * Reproduces Table XII: run time of three independently built
 * TensorRT-style engines per model, all built *and* run on AGX.
 *
 * Expected shape: several models show run-time differences across
 * their three engines (paper highlights ResNet-18, vgg-16,
 * inception-v4, Mobilenetv1, fcn-resnet18) because each build's
 * noisy autotuning selects a different kernel mix; others land on
 * the same tactics and match.
 *
 * A second table shows the mitigation: rebuilding through a shared
 * TimingCache freezes the tactic choices, so the three engines
 * become bit-identical and the remaining spread is pure run-to-run
 * measurement noise.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <set>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
printTable12()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "Engine1", "Engine2", "Engine3",
                     "max spread (%)"});

    for (const auto &model : nn::zooModelNames()) {
        nn::Network net = nn::buildZooModel(model);
        double means[3];
        std::vector<std::string> row{model};
        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 300 + static_cast<std::uint64_t>(i);
            core::Engine e = core::Builder(agx, cfg).build(net);
            runtime::LatencyOptions opts;
            opts.noise_seed = static_cast<std::uint64_t>(i);
            auto lat = runtime::measureLatency(e, agx, opts);
            means[i] = lat.mean_ms;
            row.push_back(meanStdCell(lat.mean_ms, lat.std_ms));
        }
        double mn = std::min({means[0], means[1], means[2]});
        double mx = std::max({means[0], means[1], means[2]});
        row.push_back(formatDouble(100.0 * (mx - mn) / mn, 1));
        table.addRow(std::move(row));
    }
    std::printf("\n=== Table XII: run time (ms) of three engines of "
                "the same model, built and run on AGX (paper: "
                "spreads up to ~50%% for ResNet-18, ~17%% for "
                "inception-v4/vgg-16/mobilenet) ===\n");
    table.render(std::cout);
}

void
printTable12Mitigated()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "distinct engines (uncached)",
                     "distinct engines (cached)",
                     "cached spread (%)"});
    int frozen = 0, total = 0;
    for (const auto &model : nn::zooModelNames()) {
        nn::Network net = nn::buildZooModel(model);
        core::TimingCache cache;
        std::set<std::uint64_t> plain_fps, cached_fps;
        double means[3];
        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 300 + static_cast<std::uint64_t>(i);
            plain_fps.insert(
                core::Builder(agx, cfg).build(net).fingerprint());
            cfg.timing_cache = &cache;
            core::Engine e = core::Builder(agx, cfg).build(net);
            cached_fps.insert(e.fingerprint());
            runtime::LatencyOptions opts;
            opts.noise_seed = static_cast<std::uint64_t>(i);
            means[i] = runtime::measureLatency(e, agx, opts).mean_ms;
        }
        double mn = std::min({means[0], means[1], means[2]});
        double mx = std::max({means[0], means[1], means[2]});
        table.addRow({model, std::to_string(plain_fps.size()),
                      std::to_string(cached_fps.size()),
                      formatDouble(100.0 * (mx - mn) / mn, 1)});
        total++;
        if (cached_fps.size() == 1)
            frozen++;
    }
    std::printf("\n=== Finding 6 mitigation: the same three builds "
                "through one shared TimingCache (first build warms "
                "it, the rest hit) ===\n");
    table.render(std::cout);
    std::printf("tactics frozen for %d/%d models — any remaining "
                "cached spread is run-to-run measurement noise, not "
                "engine variance\n",
                frozen, total);
}

void
BM_RebuildVariance(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    std::uint64_t id = 0;
    for (auto _ : state) {
        core::BuilderConfig cfg;
        cfg.build_id = id++;
        core::Engine e = core::Builder(agx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

void
BM_RebuildVarianceCached(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::TimingCache cache;
    std::uint64_t id = 0;
    for (auto _ : state) {
        core::BuilderConfig cfg;
        cfg.build_id = id++;
        cfg.timing_cache = &cache;
        core::Engine e = core::Builder(agx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

} // namespace

BENCHMARK(BM_RebuildVariance)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebuildVarianceCached)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable12();
    printTable12Mitigated();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
