/**
 * @file
 * Reproduces Table X: average run time with the CUDA memcpy time
 * included vs excluded, for the NX-built engines run on both
 * platforms. This dissects the cross-platform latency anomaly into
 * its memcpy component (paper Finding 5: the engine H2D copy can be
 * slower on AGX despite the bigger memory system, because of
 * per-transfer driver overheads).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "gpusim/timing.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
printTable10()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "cNX_rNX incl", "cNX_rNX excl",
                     "cNX_rAGX incl", "cNX_rAGX excl",
                     "Paper incl (NX/AGX)"});

    struct Row { const char *m; const char *ref; };
    const Row rows[] = {
        {"resnet-18", "12.65 / 12.15"},
        {"inception-v4", "59.89 / 63.02"},
        {"pednet", "33.43 / 38.15"},
        {"facenet", "18.29 / 22.92"},
        {"mobilenetv1", "11.97 / 13.99"},
    };

    for (const auto &row : rows) {
        nn::Network net = nn::buildZooModel(row.m);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e = core::Builder(nx, cfg).build(net);

        runtime::LatencyOptions opts; // profiler attached, as in VIII
        auto on_nx = runtime::measureLatency(e, nx, opts);
        auto on_agx = runtime::measureLatency(e, agx, opts);

        table.addRow(
            {row.m,
             meanStdCell(on_nx.mean_ms, on_nx.std_ms, 3),
             meanStdCell(on_nx.mean_ms - on_nx.memcpy_mean_ms,
                         on_nx.std_ms, 3),
             meanStdCell(on_agx.mean_ms, on_agx.std_ms, 3),
             meanStdCell(on_agx.mean_ms - on_agx.memcpy_mean_ms,
                         on_agx.std_ms, 3),
             row.ref});
    }
    std::printf("\n=== Table X: run time (ms) with CUDA memcpy "
                "included / excluded (engines built on NX) ===\n");
    table.render(std::cout);
}

void
BM_EngineUpload(benchmark::State &state)
{
    gpusim::DeviceSpec dev = state.range(0) == 0
                                 ? gpusim::DeviceSpec::xavierNX()
                                 : gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e =
        core::Builder(gpusim::DeviceSpec::xavierNX(), cfg).build(net);
    state.SetLabel(dev.name);
    state.counters["sim_upload_ms"] =
        gpusim::memcpySeconds(
            dev, static_cast<std::uint64_t>(e.weightBytes()),
            e.weightTransfers()) *
        1e3;
    for (auto _ : state) {
        double ms = gpusim::memcpySeconds(
                        dev,
                        static_cast<std::uint64_t>(e.weightBytes()),
                        e.weightTransfers()) *
                    1e3;
        benchmark::DoNotOptimize(ms);
    }
}

} // namespace

BENCHMARK(BM_EngineUpload)->Arg(0)->Arg(1);

int
main(int argc, char **argv)
{
    printTable10();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
