/**
 * @file
 * Reproduces Tables V and VI: the number of differing predictions
 * (out of 60,000 adversarial-dataset inferences) between pairs of
 * TensorRT-style engines built from the *same frozen model*.
 *
 *  - Table V: cross-platform pairs — 3 engines built on NX vs 3 on
 *    AGX (9 pairs per model).
 *  - Table VI: same-platform pairs (engines 1-2, 2-3, 1-3).
 *
 * Expected shape: pairwise mismatches of roughly 0.1-0.8% of the
 * 60k predictions (paper: 100-500), with occasional zero rows when
 * two builds happen to choose identical tactics (bit-identical
 * engines), as the paper's NX ResNet-18 engines 1-3 did.
 *
 * A final table shows the mitigation: rebuilding through a shared
 * per-platform TimingCache makes same-platform engines
 * bit-identical, collapsing their mismatch counts to exactly zero.
 * Cross-platform pairs stay inconsistent — the cache is keyed by
 * device, so it cannot (and must not) align NX and AGX tactics.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <tuple>
#include <vector>

#include "report.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace edgert;

const char *kModels[] = {"resnet-18", "vgg-16", "inception-v4",
                         "alexnet"};

std::size_t
mismatches(const data::SurrogateClassifier &a,
           const data::SurrogateClassifier &b,
           const data::AdversarialDataset &ds)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        data::CorruptImageRef img = ds.at(i);
        if (a.predict(img) != b.predict(img))
            n++;
    }
    return n;
}

std::vector<data::SurrogateClassifier>
buildEngines(const std::string &model, const gpusim::DeviceSpec &dev,
             int count, std::uint64_t base_id,
             core::TimingCache *cache = nullptr)
{
    nn::Network net = nn::buildZooModel(model);
    std::vector<data::SurrogateClassifier> out;
    for (int i = 0; i < count; i++) {
        core::BuilderConfig cfg;
        cfg.build_id = base_id + static_cast<std::uint64_t>(i);
        cfg.timing_cache = cache;
        core::Engine e = core::Builder(dev, cfg).build(net);
        out.push_back(data::SurrogateClassifier::forEngine(
            model, e.fingerprint()));
    }
    return out;
}

/** One model's mismatch counts, for the JSON report. */
struct ConsistencyRow
{
    std::string model;
    std::vector<std::size_t> cross;     //!< NXi-AGXj, row-major
    std::vector<std::size_t> nx_pairs;  //!< 1-2, 2-3, 1-3
    std::vector<std::size_t> agx_pairs; //!< 1-2, 2-3, 1-3
    std::size_t cached_nx_max = 0;
    std::size_t cached_agx_max = 0;
    std::size_t cached_cross = 0;
};

void
writeJsonReport(const std::vector<ConsistencyRow> &rows,
                std::size_t dataset_size)
{
    bench::saveBenchReport(
        "BENCH_output_consistency.json", "bench_output_consistency",
        [&](bench::JsonWriter &w) {
            w.field("dataset_size", dataset_size);
            w.field("engines_per_platform", 3);
            w.key("models").beginArray();
            for (const ConsistencyRow &r : rows) {
                w.beginObject();
                w.field("model", r.model);
                auto list = [&](const char *k,
                                const std::vector<std::size_t> &v) {
                    w.key(k).beginArray();
                    for (std::size_t n : v)
                        w.value(n);
                    w.endArray();
                };
                list("cross_platform_mismatches", r.cross);
                list("nx_pair_mismatches", r.nx_pairs);
                list("agx_pair_mismatches", r.agx_pairs);
                w.field("cached_nx_pairs_max", r.cached_nx_max);
                w.field("cached_agx_pairs_max", r.cached_agx_max);
                w.field("cached_cross_mismatches", r.cached_cross);
                w.endObject();
            }
            w.endArray();
        },
        /*with_metrics=*/false);
}

std::vector<ConsistencyRow>
printTables()
{
    data::AdversarialDataset ds(/*classes=*/100, /*per_class=*/20,
                                {1, 5}); // 60,000 images
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    // --- Table V: cross-platform engine pairs ---
    TextTable t5({"NN Model", "NX1-AGX1", "NX1-AGX2", "NX1-AGX3",
                  "NX2-AGX1", "NX2-AGX2", "NX2-AGX3", "NX3-AGX1",
                  "NX3-AGX2", "NX3-AGX3"});
    // --- Table VI: same-platform engine pairs ---
    TextTable t6({"Platform", "NN Model", "Engines 1-2",
                  "Engines 2-3", "Engines 1-3"});

    std::vector<ConsistencyRow> rows;
    for (const char *model : kModels) {
        auto nx_clfs = buildEngines(model, nx, 3, /*base_id=*/100);
        auto agx_clfs = buildEngines(model, agx, 3, /*base_id=*/200);
        ConsistencyRow cr;
        cr.model = model;

        std::vector<std::string> row{model};
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 3; j++) {
                std::size_t n = mismatches(
                    nx_clfs[static_cast<std::size_t>(i)],
                    agx_clfs[static_cast<std::size_t>(j)], ds);
                cr.cross.push_back(n);
                row.push_back(std::to_string(n));
            }
        t5.addRow(std::move(row));

        for (const auto &[platform, clfs, pairs] :
             {std::tuple<const char *,
                         std::vector<data::SurrogateClassifier> *,
                         std::vector<std::size_t> *>{
                  "NX", &nx_clfs, &cr.nx_pairs},
              {"AGX", &agx_clfs, &cr.agx_pairs}}) {
            *pairs = {mismatches((*clfs)[0], (*clfs)[1], ds),
                      mismatches((*clfs)[1], (*clfs)[2], ds),
                      mismatches((*clfs)[0], (*clfs)[2], ds)};
            t6.addRow({platform, model,
                       std::to_string((*pairs)[0]),
                       std::to_string((*pairs)[1]),
                       std::to_string((*pairs)[2])});
        }
        rows.push_back(std::move(cr));
    }

    std::printf("\n=== Table V: differing predictions across "
                "cross-platform engine pairs (out of 60,000; paper "
                "range 288-497) ===\n");
    t5.render(std::cout);
    std::printf("\n=== Table VI: differing predictions across "
                "same-platform engine pairs (paper: 0-497, with "
                "exact-zero rows for bit-identical builds) ===\n");
    t6.render(std::cout);

    // --- Mitigation: same builds through shared per-platform
    // timing caches. Same-platform pairs must collapse to zero;
    // the cross-platform pair stays nonzero.
    TextTable tm({"NN Model", "NX pairs max", "AGX pairs max",
                  "NX1-AGX1"});
    for (std::size_t mi = 0; mi < rows.size(); mi++) {
        const char *model = kModels[mi];
        core::TimingCache nx_cache, agx_cache;
        auto nx_clfs = buildEngines(model, nx, 3, 100, &nx_cache);
        auto agx_clfs = buildEngines(model, agx, 3, 200, &agx_cache);
        std::size_t nx_max = 0, agx_max = 0;
        for (int i = 0; i < 3; i++)
            for (int j = i + 1; j < 3; j++) {
                auto si = static_cast<std::size_t>(i);
                auto sj = static_cast<std::size_t>(j);
                nx_max = std::max(
                    nx_max, mismatches(nx_clfs[si], nx_clfs[sj], ds));
                agx_max = std::max(
                    agx_max,
                    mismatches(agx_clfs[si], agx_clfs[sj], ds));
            }
        rows[mi].cached_nx_max = nx_max;
        rows[mi].cached_agx_max = agx_max;
        rows[mi].cached_cross =
            mismatches(nx_clfs[0], agx_clfs[0], ds);
        tm.addRow({model, std::to_string(nx_max),
                   std::to_string(agx_max),
                   std::to_string(rows[mi].cached_cross)});
    }
    std::printf("\n=== Mitigation: the same engine pairs rebuilt "
                "through a shared per-platform TimingCache "
                "(same-platform mismatches collapse to 0; "
                "cross-platform inconsistency remains) ===\n");
    tm.render(std::cout);
    return rows;
}

void
BM_MismatchCount(benchmark::State &state)
{
    data::AdversarialDataset ds(100, 20, {1, 5});
    auto a = data::SurrogateClassifier::forEngine("resnet-18", 111);
    auto b = data::SurrogateClassifier::forEngine("resnet-18", 222);
    for (auto _ : state) {
        auto n = mismatches(a, b, ds);
        benchmark::DoNotOptimize(n);
    }
}

} // namespace

BENCHMARK(BM_MismatchCount)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    auto rows = printTables();
    writeJsonReport(rows, 60000);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
