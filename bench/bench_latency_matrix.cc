/**
 * @file
 * Reproduces Table VIII (inference latency of every model for the
 * four compile/run combinations, nvprof attached) and Table IX (the
 * same protocol without the profiler, representative models).
 *
 * Anomaly cases, as in the paper:
 *   case 1: cAGX_rAGX slower than cNX_rNX  (platform-native engines)
 *   case 2: cNX_rAGX slower than cNX_rNX   (same NX-built engine)
 *   case 3: cAGX_rAGX slower than cAGX_rNX (same AGX-built engine)
 *
 * Expected shape: several networks run *slower* on the bigger AGX —
 * driven by slower engine H2D copies (per-transfer driver overhead)
 * and by kernels whose concurrent tile footprint thrashes the
 * shared 512 KB L2 harder with 8 SMs.
 *
 * Engine builds go through one per-platform TimingCache shared by
 * the whole bench, so the Table IX protocol (and repeated models
 * anywhere) rebuilds warm instead of re-timing every tactic.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "report.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

struct Cells
{
    runtime::LatencyStats cnx_rnx, cnx_ragx, cagx_ragx, cagx_rnx;
};

core::TimingCache &
platformCache(const gpusim::DeviceSpec &dev)
{
    static core::TimingCache nx_cache, agx_cache;
    return dev.name == "xavier-agx" ? agx_cache : nx_cache;
}

Cells
measureModel(const std::string &model, bool with_profiler)
{
    nn::Network net = nn::buildZooModel(model);
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    core::BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.timing_cache = &platformCache(nx);
    core::Engine e_nx = core::Builder(nx, cfg).build(net);
    cfg.timing_cache = &platformCache(agx);
    core::Engine e_agx = core::Builder(agx, cfg).build(net);

    runtime::LatencyOptions opts;
    opts.with_profiler = with_profiler;

    Cells c;
    c.cnx_rnx = runtime::measureLatency(e_nx, nx, opts);
    c.cnx_ragx = runtime::measureLatency(e_nx, agx, opts);
    c.cagx_ragx = runtime::measureLatency(e_agx, agx, opts);
    c.cagx_rnx = runtime::measureLatency(e_agx, nx, opts);
    return c;
}

struct MatrixRow
{
    std::string model;
    Cells cells;
    std::string anomalies;
};

std::vector<MatrixRow> g_table8;
std::vector<MatrixRow> g_table9;
int g_case1 = 0, g_case2 = 0, g_case3 = 0;

std::string
anomalies(const Cells &c)
{
    std::string out;
    if (c.cagx_ragx.mean_ms > c.cnx_rnx.mean_ms)
        out += "case1 ";
    if (c.cnx_ragx.mean_ms > c.cnx_rnx.mean_ms)
        out += "case2 ";
    if (c.cagx_ragx.mean_ms > c.cagx_rnx.mean_ms)
        out += "case3 ";
    return out.empty() ? "none" : out;
}

void
printTable8()
{
    TextTable table({"NN Model", "cNX_rNX", "cNX_rAGX", "cAGX_rAGX",
                     "cAGX_rNX", "Detected Anomalies"});
    int case1 = 0, case2 = 0, case3 = 0;
    for (const auto &model : nn::zooModelNames()) {
        Cells c = measureModel(model, /*with_profiler=*/true);
        std::string a = anomalies(c);
        if (a.find("case1") != std::string::npos)
            case1++;
        if (a.find("case2") != std::string::npos)
            case2++;
        if (a.find("case3") != std::string::npos)
            case3++;
        table.addRow({model,
                      meanStdCell(c.cnx_rnx.mean_ms,
                                  c.cnx_rnx.std_ms),
                      meanStdCell(c.cnx_ragx.mean_ms,
                                  c.cnx_ragx.std_ms),
                      meanStdCell(c.cagx_ragx.mean_ms,
                                  c.cagx_ragx.std_ms),
                      meanStdCell(c.cagx_rnx.mean_ms,
                                  c.cagx_rnx.std_ms),
                      a});
        g_table8.push_back({model, c, a});
    }
    g_case1 = case1;
    g_case2 = case2;
    g_case3 = case3;
    std::printf("\n=== Table VIII: inference latency (ms) with "
                "nvprof attached; GPU clocks 599 MHz (NX) / 624 MHz "
                "(AGX) ===\n");
    table.render(std::cout);
    std::printf("anomaly counts: case1=%d case2=%d case3=%d (paper: "
                "7, 7, 4 of 13)\n",
                case1, case2, case3);
}

void
printTable9()
{
    TextTable table({"NN Model", "cNX_rNX", "cNX_rAGX", "cAGX_rAGX",
                     "cAGX_rNX"});
    for (const std::string model : {"inception-v4", "pednet"}) {
        Cells c = measureModel(model, /*with_profiler=*/false);
        table.addRow({model,
                      meanStdCell(c.cnx_rnx.mean_ms,
                                  c.cnx_rnx.std_ms),
                      meanStdCell(c.cnx_ragx.mean_ms,
                                  c.cnx_ragx.std_ms),
                      meanStdCell(c.cagx_ragx.mean_ms,
                                  c.cagx_ragx.std_ms),
                      meanStdCell(c.cagx_rnx.mean_ms,
                                  c.cagx_rnx.std_ms)});
        g_table9.push_back({model, c, anomalies(c)});
    }
    std::printf("\n=== Table IX: inference latency (ms) without "
                "nvprof ===\n");
    table.render(std::cout);

    for (const auto &dev : {gpusim::DeviceSpec::xavierNX(),
                            gpusim::DeviceSpec::xavierAGX()}) {
        auto st = platformCache(dev).stats();
        std::printf("%s timing cache: %zu entries, %lld hits / %lld "
                    "misses across the bench's builds\n",
                    dev.name.c_str(), platformCache(dev).size(),
                    static_cast<long long>(st.hits),
                    static_cast<long long>(st.misses));
    }
}

void
writeReport()
{
    auto writeCell = [](bench::JsonWriter &w, const char *name,
                        const runtime::LatencyStats &s) {
        w.key(name).beginObject();
        w.field("mean_ms", s.mean_ms);
        w.field("std_ms", s.std_ms);
        w.endObject();
    };
    auto writeRows = [&](bench::JsonWriter &w,
                         const std::vector<MatrixRow> &rows) {
        w.beginArray();
        for (const MatrixRow &r : rows) {
            w.beginObject();
            w.field("model", r.model);
            writeCell(w, "cnx_rnx", r.cells.cnx_rnx);
            writeCell(w, "cnx_ragx", r.cells.cnx_ragx);
            writeCell(w, "cagx_ragx", r.cells.cagx_ragx);
            writeCell(w, "cagx_rnx", r.cells.cagx_rnx);
            w.field("anomalies", r.anomalies);
            w.endObject();
        }
        w.endArray();
    };
    bench::saveBenchReport(
        "BENCH_latency_matrix.json", "bench_latency_matrix",
        [&](bench::JsonWriter &w) {
            w.key("table8").beginObject();
            w.field("with_profiler", true);
            w.key("rows");
            writeRows(w, g_table8);
            w.key("anomaly_counts").beginObject();
            w.field("case1", g_case1);
            w.field("case2", g_case2);
            w.field("case3", g_case3);
            w.endObject();
            w.endObject();
            w.key("table9").beginObject();
            w.field("with_profiler", false);
            w.key("rows");
            writeRows(w, g_table9);
            w.endObject();
        });
}

void
BM_Latency(benchmark::State &state)
{
    const auto &name =
        nn::zooModelNames()[static_cast<std::size_t>(state.range(0))];
    nn::Network net = nn::buildZooModel(name);
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    runtime::LatencyOptions opts;
    opts.runs = 3;
    state.SetLabel(name);
    state.counters["sim_latency_ms"] =
        runtime::measureLatency(e, nx, opts).mean_ms;
    for (auto _ : state) {
        auto lat = runtime::measureLatency(e, nx, opts);
        benchmark::DoNotOptimize(lat.mean_ms);
    }
}

} // namespace

BENCHMARK(BM_Latency)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable8();
    printTable9();
    writeReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
