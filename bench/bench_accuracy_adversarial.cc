/**
 * @file
 * Reproduces Table IV: top-1 error (%) on the adversarial
 * (corrupted) dataset — 15 noise types x severities {1, 5} x 100
 * classes x 20 images = 60,000 predictions per configuration.
 *
 * Expected shape: error grows steeply from severity 1 to 5, and the
 * optimized engines beat the un-optimized models by a larger margin
 * than on benign data (quantization-as-regularization, Finding 1).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace edgert;

double
errorPct(const data::SurrogateClassifier &clf,
         const data::AdversarialDataset &ds)
{
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        data::CorruptImageRef img = ds.at(i);
        if (clf.predict(img) != img.base.class_id)
            wrong++;
    }
    return 100.0 * static_cast<double>(wrong) /
           static_cast<double>(ds.size());
}

void
printTable4()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "Severity", "AGX Err(%) TRT",
                     "NX Err(%) TRT", "Err(%) Unopt",
                     "Paper (AGX/NX/unopt)"});

    struct PaperRow
    {
        const char *m;
        int sev;
        const char *ref;
    };
    const PaperRow rows[] = {
        {"alexnet", 1, "64.36 / 64.33 / 74.90"},
        {"alexnet", 5, "90.28 / 90.28 / 94.12"},
        {"resnet-18", 1, "46.70 / 46.70 / 75.31"},
        {"resnet-18", 5, "87.10 / 87.14 / 97.90"},
        {"vgg-16", 1, "40.65 / 40.67 / 51.36"},
        {"vgg-16", 5, "86.01 / 86.02 / 90.82"},
    };

    for (const auto &row : rows) {
        data::AdversarialDataset ds(/*classes=*/100,
                                    /*per_class=*/20, {row.sev});
        nn::Network net = nn::buildZooModel(row.m);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e_nx = core::Builder(nx, cfg).build(net);
        core::Engine e_agx = core::Builder(agx, cfg).build(net);

        auto clf_nx = data::SurrogateClassifier::forEngine(
            row.m, e_nx.fingerprint());
        auto clf_agx = data::SurrogateClassifier::forEngine(
            row.m, e_agx.fingerprint());
        auto clf_raw = data::SurrogateClassifier::unoptimized(row.m);

        table.addRow({row.m, std::to_string(row.sev),
                      formatDouble(errorPct(clf_agx, ds), 2),
                      formatDouble(errorPct(clf_nx, ds), 2),
                      formatDouble(errorPct(clf_raw, ds), 2),
                      row.ref});
    }
    std::printf("\n=== Table IV: top-1 error (%%) on the adversarial "
                "dataset (15 noises x 100 classes x 20 images per "
                "severity) ===\n");
    table.render(std::cout);
}

void
printSeveritySweep()
{
    // Extension beyond the paper's {1, 5} rows: the full severity
    // curve, showing the monotone degradation between the published
    // endpoints.
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("resnet-18");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    auto clf = data::SurrogateClassifier::forEngine(
        "resnet-18", e.fingerprint());

    TextTable table({"Severity", "resnet-18 NX err (%)"});
    for (int sev = 1; sev <= 5; sev++) {
        data::AdversarialDataset ds(100, 20, {sev});
        table.addRow({std::to_string(sev),
                      formatDouble(errorPct(clf, ds), 2)});
    }
    std::printf("\n=== Extension: full severity sweep (paper "
                "reports severities 1 and 5 only) ===\n");
    table.render(std::cout);
}

void
BM_AdversarialEval(benchmark::State &state)
{
    data::AdversarialDataset ds(100, 20,
                                {static_cast<int>(state.range(0))});
    auto clf =
        data::SurrogateClassifier::forEngine("vgg-16", 0xbeef);
    for (auto _ : state) {
        double err = errorPct(clf, ds);
        benchmark::DoNotOptimize(err);
    }
    state.counters["images"] = static_cast<double>(ds.size());
}

} // namespace

BENCHMARK(BM_AdversarialEval)->Arg(1)->Arg(5)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable4();
    printSeveritySweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
