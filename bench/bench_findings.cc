/**
 * @file
 * The findings scorecard (paper Table XIV): re-derives each of the
 * paper's four summarized findings from live (fast) runs of the
 * underlying experiments and prints whether this build of EdgeRT
 * still reproduces them. Doubles as an end-to-end smoke test of the
 * whole stack.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/builder.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "report.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

core::Engine
build(const std::string &model, const gpusim::DeviceSpec &dev,
      std::uint64_t id)
{
    nn::Network net = nn::buildZooModel(model);
    core::BuilderConfig cfg;
    cfg.build_id = id;
    return core::Builder(dev, cfg).build(net);
}

struct Finding
{
    std::string id;
    std::string title;
    std::string evidence;
    bool reproduced = false;
};

void
printScorecard()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    std::vector<Finding> findings;

    // --- F1: accuracy maintained ---
    {
        data::BenignDataset ds(50, 20);
        core::Engine e = build("resnet-18", nx, 1);
        auto opt = data::SurrogateClassifier::forEngine(
            "resnet-18", e.fingerprint());
        auto raw = data::SurrogateClassifier::unoptimized(
            "resnet-18");
        std::size_t we = 0, wr = 0;
        for (std::size_t i = 0; i < ds.size(); i++) {
            if (opt.predict(ds.at(i)) != ds.at(i).class_id)
                we++;
            if (raw.predict(ds.at(i)) != ds.at(i).class_id)
                wr++;
        }
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "top-1 err TRT %.1f%% vs unopt %.1f%%",
                      100.0 * we / ds.size(), 100.0 * wr / ds.size());
        findings.push_back(
            {"F1", "accuracy maintained", buf, we <= wr});
    }

    // --- F2: non-deterministic outputs ---
    {
        core::Engine a = build("inception-v4", nx, 11);
        core::Engine b = build("inception-v4", agx, 12);
        auto ca = data::SurrogateClassifier::forEngine(
            "inception-v4", a.fingerprint());
        auto cb = data::SurrogateClassifier::forEngine(
            "inception-v4", b.fingerprint());
        data::AdversarialDataset ds(50, 10, {1, 5});
        std::size_t diff = 0;
        for (std::size_t i = 0; i < ds.size(); i++)
            if (ca.predict(ds.at(i)) != cb.predict(ds.at(i)))
                diff++;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%zu of %zu predictions differ across engines",
                      diff, ds.size());
        findings.push_back(
            {"F2", "output nondeterminism", buf, diff > 0});
    }

    // --- F3: throughput gain & concurrency ---
    {
        nn::Network net = nn::buildZooModel("resnet-18");
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine opt = core::Builder(nx, cfg).build(net);
        core::Engine raw =
            core::Builder(nx, cfg).buildUnoptimized(net);
        runtime::ThroughputOptions topt;
        topt.frames_per_thread = 6;
        double f_opt =
            runtime::measureThroughput(opt, nx, topt).aggregate_fps;
        double f_raw =
            runtime::measureThroughput(raw, nx, topt).aggregate_fps;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%.0fx FPS gain over "
                      "un-optimized", f_opt / f_raw);
        findings.push_back(
            {"F3", "throughput gain", buf, f_opt / f_raw > 10.0});
    }

    // --- F4: slower on the bigger platform ---
    {
        core::Engine e_nx = build("resnet-18", nx, 1);
        core::Engine e_agx = build("resnet-18", agx, 1);
        auto l_nx = runtime::measureLatency(e_nx, nx);
        auto l_agx = runtime::measureLatency(e_agx, agx);
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "resnet-18: NX %.1f ms vs AGX %.1f ms",
                      l_nx.mean_ms, l_agx.mean_ms);
        findings.push_back({"F4", "slower on bigger platform",
                            buf, l_agx.mean_ms > l_nx.mean_ms});
    }

    // --- F6: non-deterministic engine generation ---
    {
        std::set<std::uint64_t> prints;
        for (std::uint64_t id = 0; id < 6; id++)
            prints.insert(
                build("inception-v4", agx, 100 + id).fingerprint());
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%zu distinct engines from 6 rebuilds",
                      prints.size());
        findings.push_back({"F6", "engine nondeterminism", buf,
                            prints.size() > 1});
    }

    TextTable table({"Finding", "Evidence (this run)", "Status"});
    for (const Finding &f : findings)
        table.addRow({f.id + " " + f.title, f.evidence,
                      f.reproduced ? "REPRODUCED"
                                   : "NOT reproduced"});
    std::printf("\n=== Findings scorecard (paper Table XIV) ===\n");
    table.render(std::cout);

    bench::saveBenchReport(
        "BENCH_findings.json", "bench_findings",
        [&](bench::JsonWriter &w) {
            w.key("findings").beginArray();
            for (const Finding &f : findings) {
                w.beginObject();
                w.field("id", f.id);
                w.field("title", f.title);
                w.field("evidence", f.evidence);
                w.field("reproduced", f.reproduced);
                w.endObject();
            }
            w.endArray();
        });
}

void
BM_Scorecard(benchmark::State &state)
{
    for (auto _ : state) {
        core::Engine e =
            build("resnet-18", gpusim::DeviceSpec::xavierNX(), 1);
        benchmark::DoNotOptimize(e.fingerprint());
    }
}

} // namespace

BENCHMARK(BM_Scorecard)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printScorecard();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
