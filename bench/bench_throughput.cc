/**
 * @file
 * Reproduces Table VII: frames-per-second of the classification
 * networks for TensorRT-style engines vs un-optimized (framework
 * FP32) execution, on both platforms at maximum clocks.
 *
 * Expected shape: a 20-60x speedup from the optimized engines
 * (paper: ~23-27x average across models; e.g. ResNet-18 4.6 -> 227
 * on NX).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "report.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

struct FpsRow
{
    std::string model;
    std::string paper_ref;
    double nx_raw, nx_trt, agx_raw, agx_trt;
};

void
printTable7()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    std::vector<FpsRow> results;

    TextTable table({"NN Model", "NX-Unopt", "NX-TensorRT",
                     "AGX-Unopt", "AGX-TensorRT", "NX gain",
                     "Paper (NX-u/NX-t/AGX-u/AGX-t)"});

    struct PaperRow { const char *m; const char *ref; };
    const PaperRow rows[] = {
        {"alexnet", "12.1 / 190.4 / 14.2 / 192.5"},
        {"resnet-18", "4.6 / 227.0 / 5.6 / 232.4"},
        {"vgg-16", "0.66 / 49.1 / 0.8 / 43.6"},
    };

    for (const auto &row : rows) {
        nn::Network net = nn::buildZooModel(row.m);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e_nx = core::Builder(nx, cfg).build(net);
        core::Engine e_agx = core::Builder(agx, cfg).build(net);
        core::Engine raw_nx =
            core::Builder(nx, cfg).buildUnoptimized(net);
        core::Engine raw_agx =
            core::Builder(agx, cfg).buildUnoptimized(net);

        runtime::ThroughputOptions topt;
        topt.threads = 1;
        topt.frames_per_thread = 20;

        double nx_trt =
            runtime::measureThroughput(e_nx, nx, topt).aggregate_fps;
        double agx_trt =
            runtime::measureThroughput(e_agx, agx, topt)
                .aggregate_fps;
        runtime::ThroughputOptions ropt = topt;
        ropt.frames_per_thread = 5; // FP32 frames are slow
        double nx_raw =
            runtime::measureThroughput(raw_nx, nx, ropt)
                .aggregate_fps;
        double agx_raw =
            runtime::measureThroughput(raw_agx, agx, ropt)
                .aggregate_fps;

        char gain[16];
        std::snprintf(gain, sizeof(gain), "%.1fx",
                      nx_trt / std::max(1e-9, nx_raw));
        table.addRow({row.m, formatDouble(nx_raw, 2),
                      formatDouble(nx_trt, 1),
                      formatDouble(agx_raw, 2),
                      formatDouble(agx_trt, 1), gain, row.ref});
        results.push_back({row.m, row.ref, nx_raw, nx_trt, agx_raw,
                           agx_trt});
    }
    std::printf("\n=== Table VII: FPS, TensorRT-style engines vs "
                "un-optimized models (max clocks) ===\n");
    table.render(std::cout);

    bench::saveBenchReport(
        "BENCH_throughput.json", "bench_throughput",
        [&](bench::JsonWriter &w) {
            w.key("models").beginArray();
            for (const FpsRow &r : results) {
                w.beginObject();
                w.field("model", r.model);
                w.field("nx_unopt_fps", r.nx_raw);
                w.field("nx_tensorrt_fps", r.nx_trt);
                w.field("agx_unopt_fps", r.agx_raw);
                w.field("agx_tensorrt_fps", r.agx_trt);
                w.field("nx_gain",
                        r.nx_trt / std::max(1e-9, r.nx_raw));
                w.field("paper_reference", r.paper_ref);
                w.endObject();
            }
            w.endArray();
        });
}

void
BM_Throughput(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("resnet-18");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    runtime::ThroughputOptions topt;
    topt.threads = static_cast<int>(state.range(0));
    topt.frames_per_thread = 10;
    state.counters["sim_fps"] =
        runtime::measureThroughput(e, nx, topt).aggregate_fps;
    for (auto _ : state) {
        double fps =
            runtime::measureThroughput(e, nx, topt).aggregate_fps;
        benchmark::DoNotOptimize(fps);
    }
}

} // namespace

BENCHMARK(BM_Throughput)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable7();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
