/**
 * @file
 * Reproduces Table XIII: for inception-v4 on AGX, the number of
 * invocations and the per-invocation run time of one representative
 * CUDA kernel across three independently built engines.
 *
 * Expected shape (paper): the same kernel is invoked a *different
 * number of times* per engine (9 / 8 / 6 in the paper) and the
 * per-invocation times cannot be matched across engines — the
 * mapping from layers to kernels changes with every build.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <map>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "profile/nvprof.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
printTable13()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");

    // Collect per-kernel invocation counts for three engines.
    std::vector<std::map<std::string, std::vector<double>>> inv(3);
    for (int i = 0; i < 3; i++) {
        core::BuilderConfig cfg;
        cfg.build_id = 500 + static_cast<std::uint64_t>(i);
        core::Engine e = core::Builder(agx, cfg).build(net);
        // One profiled inference run; gather the trace directly.
        std::vector<runtime::KernelProfile> prof;
        runtime::LatencyOptions opts;
        opts.runs = 1;
        runtime::profileLatency(e, agx, prof, opts);
        for (const auto &k : prof)
            inv[static_cast<std::size_t>(i)][k.name] =
                std::vector<double>(
                    static_cast<std::size_t>(k.calls), k.mean_ms);
    }

    // Pick the conv kernel whose invocation count differs the most
    // across the three engines (the paper picks
    // trt_volta_h884cudnn_128x128_..._interior by hand).
    std::string pick;
    std::size_t best_spread = 0;
    for (const auto &[name, times] : inv[0]) {
        if (name.find("h884cudnn") == std::string::npos)
            continue;
        std::size_t c0 = times.size();
        std::size_t c1 = inv[1].count(name) ? inv[1][name].size() : 0;
        std::size_t c2 = inv[2].count(name) ? inv[2][name].size() : 0;
        std::size_t mx = std::max({c0, c1, c2});
        std::size_t mn = std::min({c0, c1, c2});
        // Prefer a moderately used kernel (the paper's example has
        // 6-9 calls), not the ubiquitous default tile.
        if (mx > 1 && mx <= 24 && mx - mn >= best_spread) {
            best_spread = mx - mn;
            pick = name;
        }
    }
    if (pick.empty())
        pick = inv[0].begin()->first;

    std::printf("\n=== Table XIII: invocations of kernel\n  %s\n"
                "in inception-v4 across three AGX-built engines "
                "(paper: 9 / 8 / 6 calls) ===\n",
                pick.c_str());
    TextTable table({"Engine", "# calls", "avg per-call (ms)"});
    for (int i = 0; i < 3; i++) {
        auto it = inv[static_cast<std::size_t>(i)].find(pick);
        std::size_t calls =
            it == inv[static_cast<std::size_t>(i)].end()
                ? 0
                : it->second.size();
        double avg = calls ? it->second.front() : 0.0;
        table.addRow({"engine" + std::to_string(i + 1),
                      std::to_string(calls),
                      formatDouble(avg, 4)});
    }
    table.render(std::cout);

    // Also show the total distinct-kernel counts per engine.
    std::printf("distinct kernels per engine: %zu / %zu / %zu\n",
                inv[0].size(), inv[1].size(), inv[2].size());
}

void
BM_TraceInference(benchmark::State &state)
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(agx, cfg).build(net);
    for (auto _ : state) {
        std::vector<runtime::KernelProfile> prof;
        runtime::LatencyOptions opts;
        opts.runs = 1;
        runtime::profileLatency(e, agx, prof, opts);
        benchmark::DoNotOptimize(prof.size());
    }
}

} // namespace

BENCHMARK(BM_TraceInference)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable13();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
