/**
 * @file
 * Extension study (beyond the paper's evaluation): batch-size
 * scaling of TensorRT-style engines on the edge platforms.
 *
 * The paper measures batch-1 inference only — the latency-critical
 * edge case — but its §VI discussion (many cameras feeding one
 * device) raises the obvious alternative: batch frames instead of
 * running concurrent streams. This bench quantifies that trade:
 * larger batches amortize weight traffic and fill tail waves
 * (higher FPS), at the price of per-frame latency — and shows where
 * stream concurrency (Figures 3/4) remains the better strategy.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
sweepBatches(const std::string &model)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    std::printf("\n--- %s on %s (max clock) ---\n", model.c_str(),
                nx.name.c_str());
    TextTable table({"batch", "latency/batch (ms)",
                     "latency/frame (ms)", "frames/s",
                     "engine MiB"});

    double fps1 = 0.0, fps_last = 0.0;
    for (std::int64_t batch : {1, 2, 4, 8, 16}) {
        nn::Network net = nn::buildZooModel(model, batch);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e = core::Builder(nx, cfg).build(net);

        runtime::LatencyOptions lopt;
        lopt.with_profiler = false;
        lopt.upload_weights_per_run = false; // steady state
        auto lat = runtime::measureLatency(e, nx.atMaxClock(), lopt);
        double per_frame = lat.mean_ms / static_cast<double>(batch);
        double fps = 1000.0 / per_frame;
        if (batch == 1)
            fps1 = fps;
        fps_last = fps;
        table.addRow({std::to_string(batch),
                      formatDouble(lat.mean_ms, 2),
                      formatDouble(per_frame, 2),
                      formatDouble(fps, 1),
                      formatDouble(static_cast<double>(
                                       e.planSizeBytes()) /
                                       (1024.0 * 1024.0),
                                   2)});
    }
    table.render(std::cout);
    std::printf("batch-16 throughput gain over batch-1: %.2fx\n",
                fps1 > 0.0 ? fps_last / fps1 : 0.0);
}

void
printStudy()
{
    std::printf("\n=== Extension: batch-size scaling (not in the "
                "paper; complements Figures 3/4) ===\n");
    sweepBatches("resnet-18");
    sweepBatches("tiny-yolov3");
}

void
BM_BatchLatency(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net =
        nn::buildZooModel("resnet-18", state.range(0));
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    runtime::LatencyOptions lopt;
    lopt.runs = 3;
    lopt.with_profiler = false;
    state.counters["sim_ms_per_batch"] =
        runtime::measureLatency(e, nx, lopt).mean_ms;
    for (auto _ : state) {
        double ms = runtime::measureLatency(e, nx, lopt).mean_ms;
        benchmark::DoNotOptimize(ms);
    }
}

} // namespace

BENCHMARK(BM_BatchLatency)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
