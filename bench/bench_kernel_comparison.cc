/**
 * @file
 * Reproduces Table XI: per-kernel run times of the NX-built engines
 * on NX vs AGX, for the networks whose anomaly persists after the
 * memcpy time is excluded (pednet, facenet, mobilenetv1). Shows the
 * individual CUDA kernels that run *slower* on the 8-SM AGX — in
 * this model because their concurrent tile footprint overflows the
 * shared 512 KB L2 harder with more resident blocks.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "profile/nvprof.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

void
printTable11()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    TextTable table({"NN Model", "Kernel", "cNX_rNX (ms)",
                     "cNX_rAGX (ms)", "slower on AGX?"});

    for (const char *model :
         {"pednet", "facenet", "mobilenetv1"}) {
        nn::Network net = nn::buildZooModel(model);
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e = core::Builder(nx, cfg).build(net);

        std::vector<runtime::KernelProfile> prof_nx, prof_agx;
        runtime::LatencyOptions opts;
        runtime::profileLatency(e, nx, prof_nx, opts);
        runtime::profileLatency(e, agx, prof_agx, opts);

        // Index AGX rows by kernel name.
        auto agx_total = [&](const std::string &name) {
            for (const auto &k : prof_agx)
                if (k.name == name)
                    return k.total_ms;
            return 0.0;
        };

        int shown = 0;
        for (const auto &k : prof_nx) {
            if (shown >= 4)
                break;
            double a = agx_total(k.name);
            if (a <= 0.0)
                continue;
            table.addRow({shown == 0 ? model : "", k.name,
                          formatDouble(k.total_ms, 3),
                          formatDouble(a, 3),
                          a > k.total_ms ? "YES" : "no"});
            shown++;
        }
    }
    std::printf("\n=== Table XI: per-kernel run time of the same "
                "NX-built engine on NX vs AGX (top kernels by time; "
                "paper shows e.g. pednet's "
                "trt_volta_h884cudnn_256x64... at 8.96 ms NX vs "
                "11.76 ms AGX) ===\n");
    table.render(std::cout);
}

void
BM_ProfileKernels(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("pednet");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    for (auto _ : state) {
        std::vector<runtime::KernelProfile> prof;
        runtime::LatencyOptions opts;
        opts.runs = 3;
        runtime::profileLatency(e, nx, prof, opts);
        benchmark::DoNotOptimize(prof.size());
    }
}

} // namespace

BENCHMARK(BM_ProfileKernels)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable11();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
