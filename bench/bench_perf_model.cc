/**
 * @file
 * Reproduces the §VI-B micro-architecture performance-modeling
 * study (Tables XVII/XVIII): a BSP-inspired predictor calibrates
 * per-kernel lambdas on NX (engine built on NX) and predicts the
 * same engine's execution time on AGX; repeating this with three
 * independently built engines shows the prediction error swinging
 * by several percentage points because every rebuild changes the
 * kernel mix and invocation counts.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "nn/model_zoo.hh"
#include "perfmodel/bsp.hh"
#include "runtime/context.hh"

namespace {

using namespace edgert;

/** Run one profiled inference and return the op trace. */
std::vector<gpusim::OpRecord>
traceInference(const core::Engine &engine,
               const gpusim::DeviceSpec &device, std::uint64_t seed)
{
    gpusim::GpuSim sim(device);
    sim.setTimingJitter(0.02, seed);
    runtime::ExecutionContext ctx(engine, sim, 0);
    ctx.enqueueWeightUpload();
    ctx.enqueueInference(true, true);
    sim.run();
    return sim.trace();
}

void
printTables17And18()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    for (const char *model : {"inception-v4", "mobilenetv1"}) {
        nn::Network net = nn::buildZooModel(model);

        std::printf("\n=== BSP prediction, NX-calibrated lambdas -> "
                    "AGX (%s; paper Tables XVII/XVIII report 2-13%% "
                    "error swings across engines) ===\n",
                    model);
        TextTable table({"Engine", "kernels", "distinct lambdas",
                         "measured AGX (ms)", "predicted (ms)",
                         "error (%)"});

        for (int i = 0; i < 3; i++) {
            core::BuilderConfig cfg;
            cfg.build_id = 700 + static_cast<std::uint64_t>(i);
            core::Engine e = core::Builder(nx, cfg).build(net);

            perfmodel::BspModel bsp(nx);
            bsp.calibrate(traceInference(e, nx, 11));
            auto pred = bsp.predict(traceInference(e, agx, 22), agx);

            table.addRow(
                {"engine" + std::to_string(i + 1),
                 std::to_string(pred.kernels_total),
                 std::to_string(bsp.lambdas().size()),
                 formatDouble(pred.measured_ms, 2),
                 formatDouble(pred.predicted_ms, 2),
                 formatDouble(pred.error_pct, 2)});
        }
        table.render(std::cout);
    }
    std::printf("\nNote: lambdas absorb NX-specific behaviour; the "
                "cross-engine error spread is the paper's point — "
                "rebuilding the engine invalidates the "
                "calibration.\n");
}

void
BM_BspCalibrate(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Engine e = core::Builder(nx, cfg).build(net);
    auto trace = traceInference(e, nx, 1);
    for (auto _ : state) {
        perfmodel::BspModel bsp(nx);
        bsp.calibrate(trace);
        benchmark::DoNotOptimize(bsp.lambdas().size());
    }
}

} // namespace

BENCHMARK(BM_BspCalibrate)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTables17And18();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
