/**
 * @file
 * Engine build-time characterization — the offline cost the paper's
 * model-zoo sweeps pay on every run, and the dimension the parallel
 * cache-backed autotuner attacks.
 *
 * What dominates a real TensorRT build is not graph surgery but the
 * timing sweep: every candidate tactic occupies the device for its
 * own duration × avgTimingIterations, which is why cold builds take
 * minutes on a Jetson while the host-side work takes milliseconds.
 * The simulator evaluates measurements analytically, so this bench
 * reports build time the same way the rest of the repo reports
 * inference latency: *modeled* device time (from the builder's
 * TimingWorkload — serial sum or makespan across jobs workers) plus
 * the measured host wall time of the build call.
 *
 * Three full-zoo build passes on the NX preset:
 *   1. cold serial      — jobs=1, no timing cache: the classic
 *                         builder, re-timing every (node, tactic);
 *   2. parallel+cache   — one worker per Carmel CPU core of the
 *                         modeled platform (the builder runs on the
 *                         Jetson itself), one shared TimingCache
 *                         warmed as the sweep proceeds:
 *                         repeated blocks inside a model and shared
 *                         shapes across the zoo are timed once, and
 *                         the remaining sweeps overlap across jobs;
 *   3. warm rebuild     — the same cache again: every tuple hits,
 *                         measureTactic never runs and the device
 *                         is never occupied.
 *
 * Besides the human-readable table the bench writes
 * BENCH_build.json, so the build-time trajectory of this repo is
 * machine-readable across commits.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "report.hh"

namespace {

using namespace edgert;
using Clock = std::chrono::steady_clock;

// NVIDIA's recommended averaging on jittery edge clocks; the
// speedup ratios are iteration-independent (device time scales all
// sweeps alike) but the absolute build times are realistic here.
constexpr int kTimingIterations = 8;
constexpr std::uint64_t kBuildId = 1;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

struct ModelTimes
{
    std::string model;
    // Host wall time of the build() call itself.
    double cold_host_ms = 0.0;
    double par_host_ms = 0.0;
    double warm_host_ms = 0.0;
    // Modeled device occupancy of the timing sweep.
    double cold_dev_ms = 0.0;
    double par_dev_ms = 0.0;
    double warm_dev_ms = 0.0;
    core::TimingWorkload par_workload; //!< for jobs scaling

    double coldMs() const { return cold_host_ms + cold_dev_ms; }
    double parMs() const { return par_host_ms + par_dev_ms; }
    double warmMs() const { return warm_host_ms + warm_dev_ms; }
};

double
buildOnce(const nn::Network &net, const gpusim::DeviceSpec &dev,
          int jobs, core::TimingCache *cache,
          core::BuildReport &report)
{
    core::BuilderConfig cfg;
    cfg.build_id = kBuildId;
    cfg.avg_timing_iterations = kTimingIterations;
    cfg.jobs = jobs;
    cfg.timing_cache = cache;
    auto t0 = Clock::now();
    core::Engine e = core::Builder(dev, cfg).build(net, &report);
    benchmark::DoNotOptimize(e.fingerprint());
    return millisSince(t0);
}

void
runBuildTimeStudy()
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    // The engine is built *on* the Jetson, so the sweep parallelism
    // available to the modeled build is the NX's own CPU.
    int hw_jobs = nx.cpu_cores;

    // The snapshot embedded below should cover this study only.
    obs::MetricRegistry::global().reset();

    std::vector<nn::Network> nets;
    for (const auto &m : nn::zooModelNames())
        nets.push_back(nn::buildZooModel(m));

    std::vector<ModelTimes> rows(nets.size());
    core::TimingCache cache;

    // Pass 1: cold serial, no cache (the pre-cache builder).
    for (std::size_t i = 0; i < nets.size(); i++) {
        rows[i].model = nets[i].name();
        core::BuildReport rep;
        rows[i].cold_host_ms =
            buildOnce(nets[i], nx, /*jobs=*/1, nullptr, rep);
        rows[i].cold_dev_ms = rep.workload.serialSeconds() * 1e3;
    }
    // Pass 2: parallel, shared cache warming up across the zoo.
    for (std::size_t i = 0; i < nets.size(); i++) {
        core::BuildReport rep;
        rows[i].par_host_ms =
            buildOnce(nets[i], nx, hw_jobs, &cache, rep);
        rows[i].par_dev_ms =
            rep.workload.makespanSeconds(hw_jobs) * 1e3;
        rows[i].par_workload = std::move(rep.workload);
    }
    auto cold_stats = cache.stats();
    cache.resetStats();
    // Pass 3: warm rebuild through the now-full cache.
    for (std::size_t i = 0; i < nets.size(); i++) {
        core::BuildReport rep;
        rows[i].warm_host_ms =
            buildOnce(nets[i], nx, hw_jobs, &cache, rep);
        rows[i].warm_dev_ms = rep.workload.serialSeconds() * 1e3;
    }
    auto warm_stats = cache.stats();

    double cold_total = 0, par_total = 0, warm_total = 0;
    double cold_host = 0, par_host = 0, warm_host = 0;
    TextTable table({"NN Model", "cold serial (ms)",
                     "parallel+cache (ms)", "warm cache (ms)",
                     "warm speedup"});
    for (const auto &r : rows) {
        cold_total += r.coldMs();
        par_total += r.parMs();
        warm_total += r.warmMs();
        cold_host += r.cold_host_ms;
        par_host += r.par_host_ms;
        warm_host += r.warm_host_ms;
        table.addRow({r.model, formatDouble(r.coldMs(), 2),
                      formatDouble(r.parMs(), 2),
                      formatDouble(r.warmMs(), 2),
                      formatDouble(r.coldMs() /
                                       std::max(1e-6, r.warmMs()),
                                   1)});
    }
    table.addRow({"TOTAL", formatDouble(cold_total, 2),
                  formatDouble(par_total, 2),
                  formatDouble(warm_total, 2),
                  formatDouble(cold_total / std::max(1e-6,
                                                     warm_total),
                               1)});

    double par_speedup = cold_total / std::max(1e-6, par_total);
    double warm_speedup = cold_total / std::max(1e-6, warm_total);
    std::printf("\n=== Engine build time across the %zu-model zoo "
                "(NX preset, %d timing iterations, jobs=%d — one "
                "per NX Carmel core; host threads: %d) ===\n",
                rows.size(), kTimingIterations, hw_jobs,
                ThreadPool::defaultThreads());
    std::printf("build time = host wall time + modeled device "
                "occupancy of the timing sweep\n");
    table.render(std::cout);
    std::printf("parallel+cache vs cold serial: %.2fx   "
                "warm cache vs cold serial: %.1fx\n",
                par_speedup, warm_speedup);
    std::printf("host wall time only (ms): cold %.2f, "
                "parallel+cache %.2f, warm %.2f\n",
                cold_host, par_host, warm_host);
    std::printf("cache after cold sweep: %zu entries (%llu "
                "measured, %llu deduped); warm sweep: %llu hits, "
                "%llu misses\n",
                cache.size(),
                static_cast<unsigned long long>(cold_stats.inserts),
                static_cast<unsigned long long>(cold_stats.hits),
                static_cast<unsigned long long>(warm_stats.hits),
                static_cast<unsigned long long>(warm_stats.misses));

    // Sweep-parallelism scaling: the makespan is a deterministic
    // function of the recorded per-task device times, so the cold
    // cache-backed build can be replayed for any worker count.
    const int kScalingJobs[] = {1, 2, 4, 6, 8, 16};
    std::printf("modeled parallel+cache speedup vs cold serial by "
                "jobs:");
    std::vector<double> scaling;
    for (int j : kScalingJobs) {
        double total = par_host;
        for (const auto &r : rows)
            total += r.par_workload.makespanSeconds(j) * 1e3;
        scaling.push_back(cold_total / std::max(1e-6, total));
        std::printf("  %d:%.2fx", j, scaling.back());
    }
    std::printf("\n");

    // Builder metrics from the observability registry: all three
    // passes instrumented themselves while building.
    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    const obs::Labels dev_label = {{"device", nx.name}};
    double measured = static_cast<double>(
        reg.counter("builder.tactic.measured", dev_label).value());
    double served = static_cast<double>(
        reg.counter("builder.tactic.cache_served", dev_label)
            .value());
    double hit_rate_pct =
        measured + served > 0.0
            ? 100.0 * served / (measured + served)
            : 0.0;
    double par_dev_total = 0.0, par_serial_total = 0.0;
    for (const auto &r : rows) {
        par_serial_total += r.par_workload.serialSeconds();
        par_dev_total += r.par_workload.makespanSeconds(hw_jobs);
    }
    double sweep_parallelism =
        par_dev_total > 0.0 ? par_serial_total / par_dev_total
                            : 1.0;

    bench::saveBenchReport(
        "BENCH_build.json", "bench_build_time",
        [&](bench::JsonWriter &w) {
            w.field("device", nx.name);
            w.field("models", rows.size());
            w.field("jobs", hw_jobs);
            w.field("avg_timing_iterations", kTimingIterations);
            w.key("per_model").beginArray();
            for (const auto &r : rows) {
                w.beginObject();
                w.field("model", r.model);
                w.field("cold_serial_ms", r.coldMs());
                w.field("parallel_cached_ms", r.parMs());
                w.field("warm_ms", r.warmMs());
                w.field("cold_host_ms", r.cold_host_ms);
                w.field("warm_host_ms", r.warm_host_ms);
                w.endObject();
            }
            w.endArray();
            w.key("totals").beginObject();
            w.field("cold_serial_ms", cold_total);
            w.field("parallel_cached_ms", par_total);
            w.field("warm_ms", warm_total);
            w.field("cold_host_ms", cold_host);
            w.field("parallel_cached_host_ms", par_host);
            w.field("warm_host_ms", warm_host);
            w.endObject();
            w.key("speedups").beginObject();
            w.field("parallel_cached_vs_cold", par_speedup);
            w.field("warm_vs_cold", warm_speedup);
            w.endObject();
            w.key("scaling_by_jobs").beginObject();
            for (std::size_t i = 0; i < scaling.size(); i++)
                w.field(std::to_string(kScalingJobs[i]),
                        scaling[i]);
            w.endObject();
            w.key("cache").beginObject();
            w.field("entries", cache.size());
            w.field("cold_inserts", cold_stats.inserts);
            w.field("cold_hits", cold_stats.hits);
            w.field("warm_hits", warm_stats.hits);
            w.field("warm_misses", warm_stats.misses);
            w.endObject();
            w.key("builder_metrics").beginObject();
            w.field("cache_hit_rate_pct", hit_rate_pct);
            w.field("sweep_parallelism", sweep_parallelism);
            w.field("tactics_measured", measured);
            w.field("tactics_cache_served", served);
            w.endObject();
        });
}

void
BM_BuildColdSerial(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("inception-v4");
    for (auto _ : state) {
        core::BuildReport rep;
        benchmark::DoNotOptimize(
            buildOnce(net, nx, /*jobs=*/1, nullptr, rep));
    }
}

void
BM_BuildWarmCache(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("inception-v4");
    core::TimingCache cache;
    core::BuildReport warmup;
    buildOnce(net, nx, 1, &cache, warmup);
    for (auto _ : state) {
        core::BuildReport rep;
        benchmark::DoNotOptimize(buildOnce(net, nx, 1, &cache, rep));
    }
}

} // namespace

BENCHMARK(BM_BuildColdSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildWarmCache)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    runBuildTimeStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
