/**
 * @file
 * Reproduces Table II: the 13 evaluated NN models with their
 * un-optimized (FP32) model sizes and the TensorRT-style engine plan
 * sizes built on Xavier NX and Xavier AGX.
 *
 * Expected shape (paper): engines are roughly half the FP32 model
 * (FP16 weights); a handful of models (ResNet-18, GoogLeNet,
 * fcn-resnet18, MTCNN) produce substantially *larger* engines on
 * AGX because the 8-SM tactic set includes Winograd kernels whose
 * plans store transformed filters plus a fallback copy.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace edgert;

double
mib(std::int64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void
BM_BuildEngine(benchmark::State &state)
{
    const auto &name =
        nn::zooModelNames()[static_cast<std::size_t>(state.range(0))];
    nn::Network net = nn::buildZooModel(name);
    gpusim::DeviceSpec dev = state.range(1) == 0
                                 ? gpusim::DeviceSpec::xavierNX()
                                 : gpusim::DeviceSpec::xavierAGX();
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    core::Builder builder(dev, cfg);
    state.SetLabel(name + " on " + dev.name);
    state.counters["plan_MiB"] =
        mib(builder.build(net).planSizeBytes());
    for (auto _ : state) {
        core::Engine e = builder.build(net);
        benchmark::DoNotOptimize(e.planSizeBytes());
    }
}

void
printTable2()
{
    TextTable table({"NN Model", "Task", "Framework", "Layers",
                     "Un-optimized (MiB)", "Paper (MB)",
                     "Engine NX (MiB)", "Paper NX",
                     "Engine AGX (MiB)", "Paper AGX"});

    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    // Paper Table II engine sizes for reference columns.
    struct PaperRow { double nx, agx; };
    auto paperEngine = [](const std::string &m) -> PaperRow {
        if (m == "alexnet") return {120.11, 120.11};
        if (m == "resnet-18") return {22.5, 52.49};
        if (m == "vgg-16") return {264.7, 264.7};
        if (m == "inception-v4") return {82.68, 82.68};
        if (m == "googlenet") return {13.62, 21.08};
        if (m == "ssd-inception-v2") return {48.9, 48.9};
        if (m == "detectnet-coco-dog") return {12.45, 12.45};
        if (m == "pednet") return {12.72, 12.73};
        if (m == "tiny-yolov3") return {17.83, 17.83};
        if (m == "facenet") return {12.03, 12.05};
        if (m == "mobilenetv1") return {13.50, 13.53};
        if (m == "mtcnn") return {3.8, 4.78};
        return {24.7, 48.78}; // fcn-resnet18-cityscapes
    };

    for (const auto &name : nn::zooModelNames()) {
        const auto &info = nn::zooModelInfo(name);
        nn::Network net = nn::buildZooModel(name);

        core::BuilderConfig cfg;
        cfg.build_id = 1;
        core::Engine e_nx = core::Builder(nx, cfg).build(net);
        core::Engine e_agx = core::Builder(agx, cfg).build(net);

        char layers[48];
        std::snprintf(layers, sizeof(layers), "%lld conv, %lld mp",
                      static_cast<long long>(net.convCount()),
                      static_cast<long long>(net.maxPoolCount()));
        PaperRow p = paperEngine(name);
        char b1[16], b2[16], b3[16], b4[16], b5[16], b6[16];
        std::snprintf(b1, sizeof(b1), "%.2f",
                      mib(net.modelSizeBytes()));
        std::snprintf(b2, sizeof(b2), "%.2f", info.paper_size_mb);
        std::snprintf(b3, sizeof(b3), "%.2f",
                      mib(e_nx.planSizeBytes()));
        std::snprintf(b4, sizeof(b4), "%.2f", p.nx);
        std::snprintf(b5, sizeof(b5), "%.2f",
                      mib(e_agx.planSizeBytes()));
        std::snprintf(b6, sizeof(b6), "%.2f", p.agx);
        table.addRow({name, visionTaskName(info.task),
                      info.framework, layers, b1, b2, b3, b4, b5,
                      b6});
    }
    std::printf("\n=== Table II: NN models, un-optimized sizes and "
                "TensorRT engine sizes ===\n");
    table.render(std::cout);
}

} // namespace

BENCHMARK(BM_BuildEngine)
    ->ArgsProduct({{0, 1, 2, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
