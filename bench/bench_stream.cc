/**
 * @file
 * EdgeStream benchmark: the traffic-intersection study — N detection
 * camera streams through the staged decode → preprocess → infer →
 * postprocess pipeline on one simulated Xavier NX.
 *
 * Three studies on tiny-yolov3 at 30 fps per stream:
 *
 *  - capacity: sweep the stream count per precision
 *    (fp16 / mixed / int8) under skip_to_latest until the
 *    stale-frame rate breaks the budget — how many concurrent
 *    cameras one device sustains, and how much headroom
 *    quantization buys. The paper's throughput-ladder result
 *    restated as "cameras per device".
 *  - backpressure: the three policies at the overload point on the
 *    SAME seed. Gates: conservation (produced == completed +
 *    dropped + in_flight) must hold for every policy, and
 *    skip_to_latest must hold its stale-frame rate strictly below
 *    block — the whole point of dropping stale work instead of
 *    queueing it.
 *  - determinism: a same-seed double run must produce
 *    byte-identical reports, and a two-device run must be
 *    byte-identical between serial replay and --sim-threads=4.
 *
 * `--smoke` shrinks durations for CI; the JSON shape is identical.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "report.hh"
#include "serve/server.hh"
#include "stream/stream.hh"

namespace {

using namespace edgert;

constexpr const char *kModel = "tiny-yolov3";
constexpr double kFps = 30.0;
constexpr double kStaleMs = 100.0;

/** Stale-frame rate above this is "broken" in the capacity sweep. */
constexpr double kBreakPct = 1.0;

/** Stream count used for the backpressure face-off. */
constexpr int kOverloadStreams = 24;

bool g_smoke = false;

stream::StreamConfig
scenario(nn::Precision precision, int streams,
         stream::BackpressurePolicy policy)
{
    stream::StreamConfig cfg;
    cfg.devices.push_back(serve::parseDevice("nx"));
    cfg.duration_s = g_smoke ? 2.0 : 4.0;
    cfg.seed = 1;
    stream::StreamModelConfig mc;
    mc.model = kModel;
    mc.precision = precision;
    mc.streams = streams;
    mc.fps = kFps;
    mc.stale_ms = kStaleMs;
    mc.policy = policy;
    cfg.models.push_back(mc);
    return cfg;
}

struct PolicyOutcome
{
    std::string policy;
    stream::FreshnessStats freshness;
    bool conserved = false;
    double age_p99_ms = 0.0;
    std::int64_t pages = 0;
};

void
writePolicy(bench::JsonWriter &w, const PolicyOutcome &o)
{
    w.beginObject();
    w.field("policy", o.policy);
    w.field("produced", o.freshness.produced);
    w.field("completed", o.freshness.completed);
    w.field("dropped", o.freshness.dropped);
    w.field("in_flight", o.freshness.in_flight);
    w.field("stale_rate_pct", o.freshness.stale_rate_pct);
    w.field("age_p99_ms", o.age_p99_ms);
    w.field("conserved", o.conserved);
    w.field("freshness_pages", o.pages);
    w.endObject();
}

int
runFigures()
{
    obs::MetricRegistry::global().reset();
    std::printf("=== EdgeStream: the traffic intersection — %s, "
                "%.0f fps/stream, %.0f ms stale budget%s ===\n",
                kModel, kFps, kStaleMs, g_smoke ? " (smoke)" : "");

    // Capacity: cameras per device, per precision.
    struct Rung
    {
        const char *name;
        nn::Precision precision;
        int sustained = 0;        //!< last count under budget
        int broke_at = 0;         //!< first count over (0: never)
        double broke_stale = 0.0; //!< stale rate at the break
    };
    Rung ladder[] = {
        {"fp16", nn::Precision::kFp16, 0, 0, 0.0},
        {"mixed", nn::Precision::kMixed, 0, 0, 0.0},
        {"int8", nn::Precision::kInt8, 0, 0, 0.0},
    };
    const std::vector<int> counts = {4, 8, 12, 16, 20, 24};
    bench::JsonWriter sweep;
    sweep.beginArray();
    for (Rung &r : ladder) {
        for (int n : counts) {
            stream::StreamReport rep = stream::runStreams(
                scenario(r.precision, n,
                         stream::BackpressurePolicy::
                             kSkipToLatest));
            const auto &m = rep.models.front();
            std::printf("capacity %-5s %2d stream(s): stale %5.1f%% "
                        "| age p99 %7.2f ms | mean batch %.2f\n",
                        r.name, n, m.freshness.stale_rate_pct,
                        m.freshness.age_p99_ms, m.mean_batch);
            sweep.beginObject();
            sweep.field("precision", r.name);
            sweep.field("streams", n);
            sweep.field("stale_rate_pct",
                        m.freshness.stale_rate_pct);
            sweep.field("age_p99_ms", m.freshness.age_p99_ms);
            sweep.field("mean_batch", m.mean_batch);
            sweep.field("conserved", m.conserved);
            sweep.endObject();
            if (m.freshness.stale_rate_pct > kBreakPct) {
                r.broke_at = n;
                r.broke_stale = m.freshness.stale_rate_pct;
                break;
            }
            r.sustained = n;
        }
        if (r.broke_at > 0)
            std::printf("capacity %-5s sustains %d stream(s); "
                        "breaks at %d (stale %.1f%%)\n",
                        r.name, r.sustained, r.broke_at,
                        r.broke_stale);
        else
            std::printf("capacity %-5s sustains %d stream(s) "
                        "(never broke in the sweep)\n",
                        r.name, r.sustained);
    }
    sweep.endArray();

    // Backpressure: same seed, overload, three policies.
    const stream::BackpressurePolicy policies[] = {
        stream::BackpressurePolicy::kDropOldest,
        stream::BackpressurePolicy::kSkipToLatest,
        stream::BackpressurePolicy::kBlock,
    };
    std::vector<PolicyOutcome> outcomes;
    for (auto policy : policies) {
        stream::StreamReport rep = stream::runStreams(scenario(
            nn::Precision::kFp16, kOverloadStreams, policy));
        const auto &m = rep.models.front();
        PolicyOutcome o;
        o.policy = m.policy;
        o.freshness = m.freshness;
        o.conserved = m.conserved;
        o.age_p99_ms = m.freshness.age_p99_ms;
        o.pages = rep.freshness_pages;
        std::printf("backpressure %-14s @ %d streams: stale %5.1f%% "
                    "| dropped %5lld | in flight %5lld | age p99 "
                    "%8.2f ms | conservation %s\n",
                    o.policy.c_str(), kOverloadStreams,
                    o.freshness.stale_rate_pct,
                    static_cast<long long>(o.freshness.dropped),
                    static_cast<long long>(o.freshness.in_flight),
                    o.age_p99_ms, o.conserved ? "ok" : "VIOLATED");
        outcomes.push_back(std::move(o));
    }
    const PolicyOutcome &skip = outcomes[1];
    const PolicyOutcome &block = outcomes[2];

    // Determinism: same seed twice, then serial vs threaded on a
    // two-device fleet.
    stream::StreamConfig det =
        scenario(nn::Precision::kFp16, kOverloadStreams,
                 stream::BackpressurePolicy::kSkipToLatest);
    bool same_seed = stream::runStreams(det).toJson() ==
                     stream::runStreams(det).toJson();
    std::printf("same-seed determinism: reports %s\n",
                same_seed ? "byte-identical" : "DIFFER");
    stream::StreamConfig two =
        scenario(nn::Precision::kFp16, 8,
                 stream::BackpressurePolicy::kDropOldest);
    two.devices.push_back(serve::parseDevice("agx"));
    std::string serial = stream::runStreams(two).toJson();
    two.sim_threads = 4;
    bool threads_same = serial == stream::runStreams(two).toJson();
    std::printf("serial vs --sim-threads=4: reports %s\n",
                threads_same ? "byte-identical" : "DIFFER");

    bench::saveBenchReport(
        "BENCH_stream.json", "bench_stream",
        [&](bench::JsonWriter &w) {
            w.field("model", kModel);
            w.field("fps", kFps);
            w.field("stale_ms", kStaleMs);
            w.field("smoke", g_smoke);
            w.field("break_pct", kBreakPct);
            w.key("capacity_sweep").raw(sweep.str());
            w.key("sustained_streams").beginObject();
            for (const Rung &r : ladder)
                w.field(r.name, r.sustained);
            w.endObject();
            w.field("overload_streams", kOverloadStreams);
            w.key("backpressure").beginArray();
            for (const PolicyOutcome &o : outcomes)
                writePolicy(w, o);
            w.endArray();
            w.field("same_seed_identical", same_seed);
            w.field("threads_identical", threads_same);
        });

    int rc = 0;
    for (const PolicyOutcome &o : outcomes)
        if (!o.conserved) {
            std::fprintf(stderr,
                         "FAIL: policy %s violated frame "
                         "conservation\n",
                         o.policy.c_str());
            rc = 1;
        }
    if (skip.freshness.stale_rate_pct >=
        block.freshness.stale_rate_pct) {
        std::fprintf(stderr,
                     "FAIL: skip_to_latest stale rate %.2f%% not "
                     "strictly below block's %.2f%% at the "
                     "overload point\n",
                     skip.freshness.stale_rate_pct,
                     block.freshness.stale_rate_pct);
        rc = 1;
    }
    if (!same_seed) {
        std::fprintf(stderr,
                     "FAIL: same-seed stream runs differ\n");
        rc = 1;
    }
    if (!threads_same) {
        std::fprintf(stderr, "FAIL: serial and threaded replay "
                             "reports differ\n");
        rc = 1;
    }
    return rc;
}

/** Wall time of one overloaded streaming scenario end to end. */
void
BM_StreamScenario(benchmark::State &state)
{
    for (auto _ : state) {
        stream::StreamReport rep = stream::runStreams(
            scenario(nn::Precision::kFp16, kOverloadStreams,
                     stream::BackpressurePolicy::kSkipToLatest));
        benchmark::DoNotOptimize(
            rep.models.front().freshness.completed);
    }
}

} // namespace

BENCHMARK(BM_StreamScenario)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    int rc = runFigures();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return rc;
}
