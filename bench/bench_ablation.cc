/**
 * @file
 * Ablation of the engine builder's optimization steps (the paper's
 * Figure 2 pipeline): starting from framework FP32 execution, each
 * row adds or removes one ingredient and reports its contribution
 * to latency, plan size and kernel count. This quantifies *which*
 * of TensorRT's optimizations buys the 23-27x of Table VII, a
 * question the paper raises but cannot answer for the proprietary
 * engine.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

namespace {

using namespace edgert;

struct Variant
{
    const char *name;
    nn::Precision precision;
    core::OptimizerOptions opts;
};

void
ablate(const std::string &model)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel(model);

    core::OptimizerOptions all_on;
    core::OptimizerOptions no_fusion = all_on;
    no_fusion.vertical_fusion = false;
    core::OptimizerOptions no_merge = all_on;
    no_merge.horizontal_merge = false;
    core::OptimizerOptions no_dead = all_on;
    no_dead.dead_layer_removal = false;
    no_dead.noop_elision = false;

    const Variant variants[] = {
        {"full FP16 (TensorRT default)", nn::Precision::kFp16,
         all_on},
        {"  - vertical fusion", nn::Precision::kFp16, no_fusion},
        {"  - horizontal merge", nn::Precision::kFp16, no_merge},
        {"  - dead-layer removal", nn::Precision::kFp16, no_dead},
        {"FP32 (mapping only, no quant)", nn::Precision::kFp32,
         all_on},
        {"INT8 (entropy-calibrated)", nn::Precision::kInt8, all_on},
    };

    std::printf("\n--- %s on %s ---\n", model.c_str(),
                nx.name.c_str());
    TextTable table({"variant", "nodes", "kernels", "plan MiB",
                     "latency ms", "steady FPS"});

    // Framework baseline row.
    core::BuilderConfig base_cfg;
    base_cfg.build_id = 1;
    core::Engine raw =
        core::Builder(nx, base_cfg).buildUnoptimized(net);
    runtime::LatencyOptions lopt;
    lopt.with_profiler = false;
    runtime::ThroughputOptions topt;
    topt.frames_per_thread = 8;
    {
        auto lat = runtime::measureLatency(raw, nx, lopt);
        auto fps = runtime::measureThroughput(raw, nx, topt);
        table.addRow({"framework FP32 (un-optimized)",
                      std::to_string(raw.steps().size()),
                      std::to_string(raw.kernelCount()),
                      formatDouble(static_cast<double>(
                                       raw.planSizeBytes()) /
                                       (1024.0 * 1024.0),
                                   2),
                      formatDouble(lat.mean_ms, 2),
                      formatDouble(fps.aggregate_fps, 1)});
    }

    for (const auto &v : variants) {
        core::BuilderConfig cfg;
        cfg.build_id = 1;
        cfg.precision = v.precision;
        cfg.optimizer = v.opts;
        core::Engine e = core::Builder(nx, cfg).build(net);
        auto lat = runtime::measureLatency(e, nx, lopt);
        auto fps = runtime::measureThroughput(e, nx, topt);
        table.addRow({v.name, std::to_string(e.steps().size()),
                      std::to_string(e.kernelCount()),
                      formatDouble(static_cast<double>(
                                       e.planSizeBytes()) /
                                       (1024.0 * 1024.0),
                                   2),
                      formatDouble(lat.mean_ms, 2),
                      formatDouble(fps.aggregate_fps, 1)});
    }
    table.render(std::cout);
}

void
printAblation()
{
    std::printf("\n=== Ablation: contribution of each optimization "
                "step (DESIGN.md §4; extends the paper's Figure 2 / "
                "Table VII) ===\n");
    ablate("googlenet");
    ablate("resnet-18");
}

void
BM_AblationBuild(benchmark::State &state)
{
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("googlenet");
    core::BuilderConfig cfg;
    cfg.build_id = 1;
    cfg.precision = state.range(0) == 0 ? nn::Precision::kFp16
                                        : nn::Precision::kInt8;
    for (auto _ : state) {
        core::Engine e = core::Builder(nx, cfg).build(net);
        benchmark::DoNotOptimize(e.fingerprint());
    }
    state.SetLabel(state.range(0) == 0 ? "fp16" : "int8");
}

} // namespace

BENCHMARK(BM_AblationBuild)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
