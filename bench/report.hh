#ifndef EDGERT_BENCH_REPORT_HH
#define EDGERT_BENCH_REPORT_HH

/**
 * @file
 * Shared BENCH_*.json emission for the bench suite.
 *
 * Every bench writes a machine-readable report so results are
 * comparable across commits; before this helper each bench
 * hand-rolled its own ofstream JSON. JsonWriter is a small
 * streaming writer (comma and indent management, deterministic
 * numbers via common/json's jsonNumber), and saveBenchReport()
 * wraps the standard envelope:
 *
 *   { "bench": "<name>", <body fields...>, "metrics": <registry> }
 *
 * The trailing "metrics" key embeds the obs::MetricRegistry
 * snapshot, so benches that reset the registry before their study
 * ship exactly that study's counters.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace edgert::bench {

/**
 * Streaming JSON writer with comma/indent bookkeeping. Keys print
 * in call order; numbers go through jsonNumber, so two runs that
 * compute the same values emit byte-identical documents.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject()
    {
        prefix();
        os_ += '{';
        stack_.push_back({false, true});
        return *this;
    }

    JsonWriter &endObject() { return close('}'); }

    JsonWriter &beginArray()
    {
        prefix();
        os_ += '[';
        stack_.push_back({true, true});
        return *this;
    }

    JsonWriter &endArray() { return close(']'); }

    /** Start a field inside the current object. */
    JsonWriter &key(const std::string &k)
    {
        prefix();
        os_ += '"';
        os_ += jsonEscape(k);
        os_ += "\": ";
        pending_key_ = true;
        return *this;
    }

    JsonWriter &value(bool v)
    {
        prefix();
        os_ += v ? "true" : "false";
        return *this;
    }

    JsonWriter &value(double v)
    {
        prefix();
        os_ += jsonNumber(v);
        return *this;
    }

    template <typename T,
              typename = std::enable_if_t<
                  std::is_integral_v<T> &&
                  !std::is_same_v<T, bool>>>
    JsonWriter &value(T v)
    {
        prefix();
        os_ += std::to_string(v);
        return *this;
    }

    JsonWriter &value(const std::string &v)
    {
        prefix();
        os_ += '"';
        os_ += jsonEscape(v);
        os_ += '"';
        return *this;
    }

    JsonWriter &value(const char *v)
    {
        return value(std::string(v));
    }

    /** Splice pre-rendered JSON (e.g. a registry snapshot). */
    JsonWriter &raw(const std::string &json)
    {
        prefix();
        os_ += json;
        return *this;
    }

    template <typename T>
    JsonWriter &field(const std::string &k, T v)
    {
        return key(k).value(v);
    }

    const std::string &str() const { return os_; }

  private:
    struct Level
    {
        bool array;
        bool first;
    };

    /** Comma/newline/indent before a value, key or container. */
    void prefix()
    {
        if (pending_key_) {
            pending_key_ = false;
            return; // value follows its key inline
        }
        if (stack_.empty())
            return;
        if (!stack_.back().first)
            os_ += ',';
        stack_.back().first = false;
        os_ += '\n';
        os_.append(2 * stack_.size(), ' ');
    }

    JsonWriter &close(char c)
    {
        bool empty = stack_.back().first;
        stack_.pop_back();
        if (!empty) {
            os_ += '\n';
            os_.append(2 * stack_.size(), ' ');
        }
        os_ += c;
        return *this;
    }

    std::string os_;
    std::vector<Level> stack_;
    bool pending_key_ = false;
};

/**
 * Write the standard bench report envelope to `path`: the `body`
 * callback fills the top-level object after its "bench" field, and
 * the global metric snapshot lands in a trailing "metrics" key.
 */
inline void
saveBenchReport(const std::string &path, const std::string &bench,
                const std::function<void(JsonWriter &)> &body,
                bool with_metrics = true)
{
    JsonWriter w;
    w.beginObject();
    w.field("bench", bench);
    body(w);
    if (with_metrics)
        w.key("metrics").raw(
            obs::MetricRegistry::global().toJson());
    w.endObject();

    std::ofstream f(path);
    if (!f)
        fatal("saveBenchReport: cannot open '", path, "'");
    f << w.str() << "\n";
    std::printf("machine-readable results written to %s\n",
                path.c_str());
}

} // namespace edgert::bench

#endif // EDGERT_BENCH_REPORT_HH
