/**
 * @file
 * Serving-policy benchmark for EdgeServe: sweeps offered load per
 * scheduling policy (FIFO batch-1 vs dynamic batching, single- vs
 * multi-device) and reports the maximum QPS each policy sustains
 * while keeping p99 latency within the SLO and shedding under 1%.
 *
 * The workload model is AlexNet, the zoo network with the steepest
 * batching payoff (its FC-heavy tail is launch/memory-bound at
 * batch 1, so per-request service drops ~4x by batch 8 — the same
 * shape the paper reports for AlexNet throughput vs batch size).
 * Two extra sections demonstrate the control-plane properties the
 * sweep numbers rest on:
 *
 *  - admission ablation: at an offered load far past the knee, the
 *    SLO-aware admission control keeps p99 near the deadline while
 *    the unprotected queue diverges to seconds;
 *  - determinism: the same seeded scenario run twice yields a
 *    byte-identical serve report.
 *
 * `--smoke` (stripped before benchmark::Initialize) shrinks the
 * sweep to a CI-sized spot check that still exercises every policy
 * knob and writes the same BENCH_serving.json shape.
 *
 * `--watch-out=PREFIX` additionally runs the ablation's overload
 * scenario with EdgeWatch enabled, writing the watch report to
 * PREFIXwatch.json and flight-recorder incident dumps under
 * PREFIX. Everything rides sim time, so a same-seed double run
 * must produce byte-identical files — CI diffs them.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "gpusim/device.hh"
#include "obs/metrics.hh"
#include "report.hh"
#include "serve/server.hh"

namespace {

using namespace edgert;

constexpr const char *kModel = "alexnet";
constexpr double kSloMs = 25.0;

bool g_smoke = false;
std::string g_watch_out; //!< --watch-out=PREFIX artifact prefix

/** One measured point of a load sweep. */
struct Point
{
    double target_qps = 0.0;
    double offered_qps = 0.0;
    double goodput_qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double mean_batch = 0.0;
    std::int64_t offered = 0;
    std::int64_t shed = 0;
    std::int64_t violations = 0;

    double shedPct() const
    {
        return offered > 0 ? 100.0 * static_cast<double>(shed) /
                                 static_cast<double>(offered)
                           : 0.0;
    }

    /** The SLO is met when the tail fits and almost nothing sheds. */
    bool meetsSlo() const
    {
        return p99_ms <= kSloMs && shedPct() <= 1.0;
    }
};

/** One policy column of the sweep. */
struct Policy
{
    std::string name;
    std::vector<std::string> devices;
    bool dynamic_batching = false;
    std::vector<double> grid; //!< target QPS levels, ascending
    std::vector<Point> points;
    double max_qps_at_slo = 0.0;
};

serve::ServeConfig
baseConfig(const std::vector<std::string> &devices, bool batching)
{
    serve::ServeConfig cfg;
    for (const auto &d : devices)
        cfg.devices.push_back(serve::parseDevice(d));
    cfg.dynamic_batching = batching;
    cfg.duration_s = g_smoke ? 1.0 : 2.0;
    cfg.seed = 1;
    return cfg;
}

Point
runPoint(const std::vector<std::string> &devices, bool batching,
         double qps)
{
    serve::ServeConfig cfg = baseConfig(devices, batching);
    serve::ModelConfig mc;
    mc.model = kModel;
    mc.slo_ms = kSloMs;
    mc.arrivals.qps = qps;
    cfg.models.push_back(mc);

    serve::ServeReport rep = serve::runServer(cfg);
    const serve::ModelStats &s = rep.models.front();
    Point p;
    p.target_qps = qps;
    p.offered_qps = s.offered_qps;
    p.goodput_qps = s.goodput_qps;
    p.p50_ms = s.p50_ms;
    p.p99_ms = s.p99_ms;
    p.mean_batch = s.mean_batch;
    p.offered = s.offered;
    p.shed = s.shed;
    p.violations = s.slo_violations;
    return p;
}

void
sweepPolicy(Policy &pol)
{
    std::printf("\n--- policy %s (devices:", pol.name.c_str());
    for (const auto &d : pol.devices)
        std::printf(" %s", d.c_str());
    std::printf(", batching %s, SLO %.0f ms) ---\n",
                pol.dynamic_batching ? "on" : "off", kSloMs);
    TextTable table({"Target QPS", "Offered", "Goodput", "p50 (ms)",
                     "p99 (ms)", "Shed (%)", "Mean batch", "SLO"});
    for (double qps : pol.grid) {
        Point p = runPoint(pol.devices, pol.dynamic_batching, qps);
        table.addRow({formatDouble(p.target_qps, 0),
                      formatDouble(p.offered_qps, 1),
                      formatDouble(p.goodput_qps, 1),
                      formatDouble(p.p50_ms, 2),
                      formatDouble(p.p99_ms, 2),
                      formatDouble(p.shedPct(), 1),
                      formatDouble(p.mean_batch, 2),
                      p.meetsSlo() ? "met" : "missed"});
        if (p.meetsSlo())
            pol.max_qps_at_slo =
                std::max(pol.max_qps_at_slo, p.offered_qps);
        pol.points.push_back(p);
    }
    table.render(std::cout);
    std::printf("max QPS at p99 <= %.0f ms: %.1f\n", kSloMs,
                pol.max_qps_at_slo);
}

std::vector<Policy>
makePolicies()
{
    std::vector<Policy> pols;
    if (g_smoke) {
        pols.push_back({"fifo-nx", {"nx"}, false, {150, 400}, {}, 0});
        pols.push_back(
            {"batch-nx", {"nx"}, true, {150, 400}, {}, 0});
        return pols;
    }
    pols.push_back({"fifo-nx",
                    {"nx"},
                    false,
                    {60, 120, 180, 240, 300, 360},
                    {},
                    0});
    pols.push_back({"batch-nx",
                    {"nx"},
                    true,
                    {100, 200, 300, 400, 500, 600},
                    {},
                    0});
    pols.push_back({"fifo-nx-agx",
                    {"nx", "agx"},
                    false,
                    {120, 240, 360, 480, 600, 720},
                    {},
                    0});
    pols.push_back({"batch-nx-agx",
                    {"nx", "agx"},
                    true,
                    {200, 400, 600, 800, 1000, 1200},
                    {},
                    0});
    return pols;
}

/**
 * Past-the-knee overload, admission control on vs off: the
 * protected queue sheds deadline-infeasible work at arrival and
 * keeps p99 near the SLO; the unprotected one grows without bound
 * and the tail diverges.
 */
struct Ablation
{
    double target_qps = 0.0;
    Point with_admission;
    Point without_admission;
};

Ablation
admissionAblation()
{
    Ablation ab;
    ab.target_qps = 900; // past batch-8 capacity (~680 qps on NX)
    std::printf("\n--- admission ablation (%s @ %.0f qps, batching "
                "on, single NX) ---\n",
                kModel, ab.target_qps);
    ab.with_admission = runPoint({"nx"}, true, ab.target_qps);

    serve::ServeConfig cfg = baseConfig({"nx"}, true);
    cfg.admission_control = false;
    serve::ModelConfig mc;
    mc.model = kModel;
    mc.slo_ms = kSloMs;
    mc.arrivals.qps = ab.target_qps;
    cfg.models.push_back(mc);
    serve::ServeReport rep = serve::runServer(cfg);
    const serve::ModelStats &s = rep.models.front();
    ab.without_admission.target_qps = ab.target_qps;
    ab.without_admission.offered_qps = s.offered_qps;
    ab.without_admission.goodput_qps = s.goodput_qps;
    ab.without_admission.p50_ms = s.p50_ms;
    ab.without_admission.p99_ms = s.p99_ms;
    ab.without_admission.mean_batch = s.mean_batch;
    ab.without_admission.offered = s.offered;
    ab.without_admission.shed = s.shed;
    ab.without_admission.violations = s.slo_violations;

    std::printf("admission on : p99 %8.2f ms, goodput %6.1f qps, "
                "shed %lld\n",
                ab.with_admission.p99_ms,
                ab.with_admission.goodput_qps,
                static_cast<long long>(ab.with_admission.shed));
    std::printf("admission off: p99 %8.2f ms, goodput %6.1f qps, "
                "shed %lld\n",
                ab.without_admission.p99_ms,
                ab.without_admission.goodput_qps,
                static_cast<long long>(ab.without_admission.shed));
    return ab;
}

/**
 * --watch-out: rerun the ablation's overload scenario with
 * EdgeWatch enabled and leave the watch report plus incident
 * dumps at the caller-chosen prefix. Deterministic by design —
 * the driver diffs two same-seed invocations byte for byte.
 */
void
watchedArtifactRun()
{
    serve::ServeConfig cfg = baseConfig({"nx"}, true);
    serve::ModelConfig mc;
    mc.model = kModel;
    mc.slo_ms = kSloMs;
    mc.arrivals.qps = 900;
    cfg.models.push_back(mc);
    cfg.watch.enabled = true;
    cfg.watch.out_path = g_watch_out + "watch.json";
    cfg.watch.incident_prefix = g_watch_out;
    serve::ServeReport rep = serve::runServer(cfg);
    std::printf("\nwatch artifacts at %s*: %lld page alert(s), "
                "%lld incident(s)\n",
                g_watch_out.c_str(),
                static_cast<long long>(rep.watch.page_alerts),
                static_cast<long long>(rep.watch.incidents));
}

/** Same seeded scenario twice; reports must be byte-identical. */
bool
determinismCheck()
{
    auto once = [] {
        serve::ServeConfig cfg = baseConfig({"nx"}, true);
        cfg.duration_s = 1.0;
        serve::ModelConfig mc;
        mc.model = kModel;
        mc.slo_ms = kSloMs;
        mc.arrivals.qps = 300;
        cfg.models.push_back(mc);
        return serve::runServer(cfg).toJson();
    };
    std::string a = once();
    std::string b = once();
    bool same = a == b;
    std::printf("\nsame-seed determinism: reports %s\n",
                same ? "byte-identical" : "DIFFER");
    return same;
}

void
writeJsonReport(const std::vector<Policy> &pols, const Ablation &ab,
                bool same_seed)
{
    auto point = [](bench::JsonWriter &w, const Point &p) {
        w.beginObject();
        w.field("target_qps", p.target_qps);
        w.field("offered_qps", p.offered_qps);
        w.field("goodput_qps", p.goodput_qps);
        w.field("p50_ms", p.p50_ms);
        w.field("p99_ms", p.p99_ms);
        w.field("mean_batch", p.mean_batch);
        w.field("offered", p.offered);
        w.field("shed", p.shed);
        w.field("slo_violations", p.violations);
        w.field("meets_slo", p.meetsSlo());
        w.endObject();
    };
    bench::saveBenchReport(
        "BENCH_serving.json", "bench_serving",
        [&](bench::JsonWriter &w) {
            w.field("model", kModel);
            w.field("slo_ms", kSloMs);
            w.field("smoke", g_smoke);
            w.key("policies").beginArray();
            for (const Policy &pol : pols) {
                w.beginObject();
                w.field("policy", pol.name);
                w.key("devices").beginArray();
                for (const auto &d : pol.devices)
                    w.value(d);
                w.endArray();
                w.field("dynamic_batching", pol.dynamic_batching);
                w.field("max_qps_at_slo", pol.max_qps_at_slo);
                w.key("points").beginArray();
                for (const Point &p : pol.points)
                    point(w, p);
                w.endArray();
                w.endObject();
            }
            w.endArray();
            w.key("admission_ablation").beginObject();
            w.field("target_qps", ab.target_qps);
            w.key("with_admission");
            point(w, ab.with_admission);
            w.key("without_admission");
            point(w, ab.without_admission);
            w.endObject();
            w.field("same_seed_identical", same_seed);
        });
}

void
runFigures()
{
    // The embedded metric snapshot should cover this bench only.
    obs::MetricRegistry::global().reset();

    std::printf("=== EdgeServe policy sweep: %s, SLO %.0f ms, "
                "max QPS at p99 <= SLO per policy%s ===\n",
                kModel, kSloMs, g_smoke ? " (smoke)" : "");
    std::vector<Policy> pols = makePolicies();
    for (Policy &pol : pols)
        sweepPolicy(pol);

    std::printf("\n=== batching payoff ===\n");
    for (std::size_t i = 1; i < pols.size(); i += 2)
        std::printf("%-14s %7.1f qps  vs  %-14s %7.1f qps\n",
                    pols[i - 1].name.c_str(),
                    pols[i - 1].max_qps_at_slo,
                    pols[i].name.c_str(), pols[i].max_qps_at_slo);

    Ablation ab = admissionAblation();
    bool same_seed = determinismCheck();
    writeJsonReport(pols, ab, same_seed);
    if (!g_watch_out.empty())
        watchedArtifactRun();
}

/** Wall time of one small end-to-end serve scenario. */
void
BM_ServeScenario(benchmark::State &state)
{
    for (auto _ : state) {
        serve::ServeConfig cfg;
        cfg.devices.push_back(serve::parseDevice("nx"));
        cfg.duration_s = 0.5;
        serve::ModelConfig mc;
        mc.model = kModel;
        mc.slo_ms = kSloMs;
        mc.arrivals.qps = 200;
        cfg.models.push_back(mc);
        serve::ServeReport rep = serve::runServer(cfg);
        benchmark::DoNotOptimize(rep.models.front().p99_ms);
    }
}

} // namespace

BENCHMARK(BM_ServeScenario)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Strip our own flags before the benchmark library sees argv.
    int out = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strcmp(argv[i], "--watch-out") == 0)
            g_watch_out = "BENCH_serving_watch.";
        else if (std::strncmp(argv[i], "--watch-out=", 12) == 0)
            g_watch_out = argv[i] + 12;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    runFigures();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
