/**
 * @file
 * Simulation-throughput benchmark for the GpuSim hot path.
 *
 * The serving/fleet roadmap multiplies simulated work by orders of
 * magnitude, so the simulator's own speed — simulated device-seconds
 * per wall-clock second — is a first-class metric. This bench
 * replays two workload shapes straight against the GpuSim API and
 * times only the run() calls, so the numbers isolate the
 * discrete-event core from engine building and report assembly:
 *
 *  - "serving": the bench_serving shape — a few deeply saturated
 *    streams per device (AlexNet batch ladder, Poisson arrivals
 *    released with delayUntil(), NX + AGX). Stresses per-event
 *    arithmetic: share recomputation, water-fill, trace append.
 *  - "fleet": the EdgeFleet shape — many mostly-idle streams per
 *    device (one camera each at modest fps). Stresses the event
 *    calendar: most streams hold a pending release-time delay, so
 *    per-event cost is dominated by how fast the simulator can find
 *    the next event among hundreds of sleepers.
 *
 * The committed `bench/sim_speed_baseline.json` pins, per workload,
 * two reference points measured on the same replay: the pre-overhaul
 * event loop and the current one. The report carries speedup_vs_pre
 * per workload (the tentpole's >=10x target, measured on the fleet
 * shape that motivated the overhaul) and, under --check-baseline,
 * the process exits non-zero when any measured speed regresses more
 * than 20% against its committed post number — that is the CI gate.
 *
 * `--smoke` shrinks the replays for CI; the JSON shape is identical.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/builder.hh"
#include "core/engine.hh"
#include "core/timing_cache.hh"
#include "gpusim/sim.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "report.hh"
#include "runtime/context.hh"
#include "serve/workload.hh"

namespace {

using namespace edgert;

bool g_smoke = false;

constexpr const char *kModel = "alexnet";

/** Workload knobs; must stay fixed so baseline numbers compare. */
struct Workload
{
    std::string name;
    std::vector<gpusim::DeviceSpec> devices;
    int streams_per_device = 4;
    double qps_per_stream = 300.0;
    double duration_s = 4.0;
    int reps = 2;
};

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> ws;
    {
        Workload w;
        w.name = "serving";
        w.devices.push_back(gpusim::DeviceSpec::xavierNX());
        w.devices.push_back(gpusim::DeviceSpec::xavierAGX());
        w.streams_per_device = 4;
        w.qps_per_stream = 300.0; // deep saturation
        ws.push_back(w);
    }
    {
        Workload w;
        w.name = "fleet";
        w.devices.push_back(gpusim::DeviceSpec::xavierNX());
        w.devices.push_back(gpusim::DeviceSpec::xavierAGX());
        w.streams_per_device = 256; // one camera per stream
        w.qps_per_stream = 0.5;     // sparse per-camera triggers
        ws.push_back(w);
    }
    for (Workload &w : ws) {
        if (g_smoke) {
            // Fleet keeps a longer smoke window: its wall time is
            // tiny post-overhaul and the CI gate needs signal.
            w.duration_s = w.name == "fleet" ? 1.0 : 0.5;
            w.reps = 1;
        }
    }
    return ws;
}

/** AlexNet power-of-two engine ladder for one device. */
std::vector<core::Engine>
buildLadder(const gpusim::DeviceSpec &spec,
            core::TimingCache &cache)
{
    core::BuilderConfig bcfg;
    bcfg.build_id = 1;
    bcfg.jobs = 1;
    bcfg.timing_cache = &cache;
    core::Builder builder(spec, bcfg);
    std::vector<core::Engine> ladder;
    for (int b : {1, 2, 4, 8})
        ladder.push_back(builder.build(nn::buildZooModel(kModel, b)));
    return ladder;
}

struct ReplayResult
{
    double simulated_s = 0.0; //!< summed device makespans
    double wall_s = 0.0;      //!< run() time only
    std::int64_t inferences = 0;
    std::uint64_t trace_records = 0;
    double speed() const
    {
        return wall_s > 0.0 ? simulated_s / wall_s : 0.0;
    }
};

/**
 * Enqueue the workload's replay into fresh sims and time only the
 * run() calls. Engine choice cycles the ladder per arrival so every
 * batch size stays resident, like a mixed dispatch plan.
 * @param mode    Trace policy; baseline-compared rows use kFull so
 *                numbers stay comparable across releases.
 * @param publish Publish each device's sim.* gauges (last rep) into
 *                the registry the bench report embeds.
 */
ReplayResult
runReplay(const Workload &w,
          const std::vector<std::vector<core::Engine>> &ladders,
          gpusim::TraceMode mode = gpusim::TraceMode::kFull,
          bool publish = false)
{
    ReplayResult res;
    for (int rep = 0; rep < w.reps; rep++) {
        std::vector<std::unique_ptr<gpusim::GpuSim>> sims;
        std::vector<
            std::vector<std::unique_ptr<runtime::ExecutionContext>>>
            ctxs; // [device * stream][engine]

        Rng root(42 + static_cast<std::uint64_t>(rep));
        for (std::size_t d = 0; d < w.devices.size(); d++) {
            auto sim =
                std::make_unique<gpusim::GpuSim>(w.devices[d]);
            sim->setTraceMode(mode);
            for (int s = 0; s < w.streams_per_device; s++) {
                int stream = s == 0 ? 0 : sim->createStream();
                ctxs.emplace_back();
                for (const auto &eng : ladders[d])
                    ctxs.back().push_back(
                        std::make_unique<runtime::ExecutionContext>(
                            eng, *sim, stream));
                serve::ArrivalConfig ac;
                ac.qps = w.qps_per_stream;
                Rng rng = root.fork(
                    static_cast<std::uint64_t>(d * 1000 + s));
                std::vector<double> arrivals =
                    serve::generateArrivals(ac, w.duration_s, rng);
                std::size_t i = 0;
                for (double t : arrivals) {
                    sim->delayUntil(stream, t);
                    ctxs.back()[i % ladders[d].size()]
                        ->enqueueInference(true, true);
                    res.inferences++;
                    i++;
                }
            }
            sims.push_back(std::move(sim));
        }

        std::vector<double> dev_wall_s(sims.size(), 0.0);
        for (std::size_t d = 0; d < sims.size(); d++) {
            auto t0 = std::chrono::steady_clock::now();
            sims[d]->run();
            auto t1 = std::chrono::steady_clock::now();
            dev_wall_s[d] =
                std::chrono::duration<double>(t1 - t0).count();
            res.wall_s += dev_wall_s[d];
        }
        for (auto &sim : sims) {
            res.simulated_s += sim->nowSeconds();
            res.trace_records += sim->trace().size();
        }
        if (publish && rep == w.reps - 1)
            for (std::size_t d = 0; d < sims.size(); d++)
                gpusim::publishSimMetrics(
                    *sims[d],
                    {{"workload", w.name},
                     {"device", w.devices[d].name},
                     {"index", std::to_string(d)}},
                    dev_wall_s[d]);
    }
    return res;
}

/** Pull `"key": <number>` out of a flat JSON document (no parser in
 *  common/, and the baseline file is trusted repo content). */
bool
extractNumber(const std::string &doc, const std::string &key,
              double *out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    *out = std::strtod(doc.c_str() + pos, nullptr);
    return true;
}

struct Baseline
{
    bool found = false;
    double pre = 0.0;  //!< pre-overhaul sim speed, this workload
    double post = 0.0; //!< committed post-overhaul sim speed
};

Baseline
loadBaseline(const std::string &doc, const std::string &workload)
{
    Baseline b;
    std::string key =
        std::string(g_smoke ? "smoke" : "full") + "_" + workload;
    b.found = extractNumber(doc, key + "_pre_sim_speed", &b.pre) &&
              extractNumber(doc, key + "_post_sim_speed", &b.post);
    return b;
}

std::string
loadBaselineDoc(const std::string &path)
{
    for (const std::string &p :
         {path, "../bench/" + path, "../../bench/" + path,
          "bench/" + path}) {
        std::ifstream f(p);
        if (!f)
            continue;
        std::stringstream ss;
        ss << f.rdbuf();
        return ss.str();
    }
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    bool check_baseline = false;
    std::string baseline_path = "sim_speed_baseline.json";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            g_smoke = true;
        else if (std::strcmp(argv[i], "--check-baseline") == 0)
            check_baseline = true;
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
    }

    obs::MetricRegistry::global().reset();
    std::vector<Workload> workloads = makeWorkloads();

    core::TimingCache cache;
    std::vector<std::vector<core::Engine>> ladders;
    for (const auto &spec : workloads[0].devices)
        ladders.push_back(buildLadder(spec, cache));

    std::string base_doc = loadBaselineDoc(baseline_path);
    if (base_doc.empty())
        std::printf("baseline file not found (looked for %s); "
                    "reporting raw speeds only\n",
                    baseline_path.c_str());

    struct Row
    {
        ReplayResult res;
        Baseline base;
        double speedup_vs_pre = 0.0;
        double vs_committed = 0.0;
        bool pass = true;
        ReplayResult sampled; //!< 1-rep TraceMode::kSampled run
        ReplayResult off;     //!< 1-rep TraceMode::kOff run
    };
    std::vector<Row> rows;
    bool all_pass = true;

    for (const Workload &w : workloads) {
        std::printf("=== %s: %s ladder replay, %d streams/device, "
                    "%.0f qps/stream, %.1fs x %d reps%s ===\n",
                    w.name.c_str(), kModel, w.streams_per_device,
                    w.qps_per_stream, w.duration_s, w.reps,
                    g_smoke ? " (smoke)" : "");
        Row row;
        row.res = runReplay(w, ladders, gpusim::TraceMode::kFull,
                            /*publish=*/true);
        std::printf("replayed %lld inferences (%llu trace "
                    "records)\n",
                    static_cast<long long>(row.res.inferences),
                    static_cast<unsigned long long>(
                        row.res.trace_records));
        std::printf("simulated %.3f device-seconds in %.3f wall "
                    "seconds -> %.1fx realtime\n",
                    row.res.simulated_s, row.res.wall_s,
                    row.res.speed());
        row.base = loadBaseline(base_doc, w.name);
        if (row.base.found) {
            row.speedup_vs_pre =
                row.base.pre > 0.0 ? row.res.speed() / row.base.pre
                                   : 0.0;
            row.vs_committed = row.base.post > 0.0
                                   ? row.res.speed() / row.base.post
                                   : 0.0;
            row.pass = row.vs_committed >= 0.8;
            std::printf("baseline: pre-overhaul %.1fx, committed "
                        "%.1fx -> speedup vs pre %.2fx, vs "
                        "committed %.0f%%%s\n",
                        row.base.pre, row.base.post,
                        row.speedup_vs_pre,
                        row.vs_committed * 100.0,
                        row.pass ? "" : "  ** REGRESSION **");
        }
        all_pass = all_pass && row.pass;
        // Trace-mode reference points (1 rep, outside the baseline
        // comparison): what thinning or dropping the trace buys.
        {
            Workload w1 = w;
            w1.reps = 1;
            row.sampled = runReplay(w1, ladders,
                                    gpusim::TraceMode::kSampled);
            row.off =
                runReplay(w1, ladders, gpusim::TraceMode::kOff);
            std::printf("trace modes: sampled 1/16 %.1fx (%llu "
                        "records), off %.1fx\n",
                        row.sampled.speed(),
                        static_cast<unsigned long long>(
                            row.sampled.trace_records),
                        row.off.speed());
        }
        rows.push_back(row);
    }

    bench::saveBenchReport(
        "BENCH_sim_speed.json", "bench_sim_speed",
        [&](bench::JsonWriter &w2) {
            w2.field("smoke", g_smoke);
            w2.field("model", kModel);
            // Headline: the fleet shape is what the overhaul is
            // for; serving rides along as the arithmetic-bound
            // reference point.
            const Row &fleet = rows.back();
            w2.field("sim_speed", fleet.res.speed());
            w2.field("speedup_vs_pre", fleet.speedup_vs_pre);
            w2.field("pass", all_pass);
            w2.key("workloads").beginArray();
            for (std::size_t i = 0; i < workloads.size(); i++) {
                const Workload &w = workloads[i];
                const Row &row = rows[i];
                w2.beginObject();
                w2.field("name", w.name);
                w2.key("devices").beginArray();
                for (const auto &spec : w.devices)
                    w2.value(spec.name);
                w2.endArray();
                w2.field("streams_per_device",
                         w.streams_per_device);
                w2.field("qps_per_stream", w.qps_per_stream);
                w2.field("duration_s", w.duration_s);
                w2.field("reps", w.reps);
                w2.field("inferences", row.res.inferences);
                w2.field("trace_records", row.res.trace_records);
                w2.field("simulated_seconds", row.res.simulated_s);
                w2.field("wall_seconds", row.res.wall_s);
                w2.field("sim_speed", row.res.speed());
                w2.field("baseline_found", row.base.found);
                w2.field("pre_overhaul_sim_speed", row.base.pre);
                w2.field("committed_sim_speed", row.base.post);
                w2.field("speedup_vs_pre", row.speedup_vs_pre);
                w2.field("vs_committed", row.vs_committed);
                w2.field("pass", row.pass);
                w2.field("trace_sampled_sim_speed",
                         row.sampled.speed());
                w2.field("trace_sampled_records",
                         row.sampled.trace_records);
                w2.field("trace_off_sim_speed", row.off.speed());
                w2.endObject();
            }
            w2.endArray();
        });

    if (check_baseline && !all_pass) {
        std::fprintf(stderr,
                     "sim-speed regression: a workload is below "
                     "80%% of its committed baseline\n");
        return 1;
    }
    return 0;
}
