#include "data/detection.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::data {

const char *
vehicleClassName(VehicleClass c)
{
    switch (c) {
      case VehicleClass::kCar: return "car";
      case VehicleClass::kBus: return "bus";
      case VehicleClass::kTruck: return "truck";
      case VehicleClass::kMotorbike: return "motorbike";
      case VehicleClass::kAutoRickshaw: return "auto-rickshaw";
    }
    panic("unknown VehicleClass");
}

double
iou(const Box &a, const Box &b)
{
    double ix1 = std::max(a.x1, b.x1);
    double iy1 = std::max(a.y1, b.y1);
    double ix2 = std::min(a.x2, b.x2);
    double iy2 = std::min(a.y2, b.y2);
    double inter = std::max(0.0, ix2 - ix1) * std::max(0.0, iy2 - iy1);
    double uni = a.area() + b.area() - inter;
    return uni > 0.0 ? inter / uni : 0.0;
}

std::uint64_t
TrafficScene::seed() const
{
    return mix64(static_cast<std::uint64_t>(id) +
                 0x2545f4914f6cdd1dull);
}

TrafficDataset::TrafficDataset(int scenes, std::uint64_t seed)
{
    if (scenes <= 0)
        fatal("TrafficDataset: scene count must be positive");
    Rng master(seed);
    scenes_.reserve(static_cast<std::size_t>(scenes));
    for (int i = 0; i < scenes; i++) {
        TrafficScene scene;
        scene.id = i;
        Rng rng = master.fork(static_cast<std::uint64_t>(i));
        int vehicles = static_cast<int>(rng.range(1, 8));
        for (int v = 0; v < vehicles; v++) {
            Detection d;
            double w = rng.uniform(0.06, 0.30);
            double h = rng.uniform(0.06, 0.25);
            double x = rng.uniform(0.0, 1.0 - w);
            double y = rng.uniform(0.3, 1.0 - h); // road region
            d.box = {x, y, x + w, y + h};
            d.cls = static_cast<VehicleClass>(
                rng.below(kNumVehicleClasses));
            // Plate: two letters + four digits.
            std::string plate;
            plate += static_cast<char>('A' + rng.below(26));
            plate += static_cast<char>('A' + rng.below(26));
            for (int k = 0; k < 4; k++)
                plate += static_cast<char>('0' + rng.below(10));
            d.plate = plate;
            scene.ground_truth.push_back(std::move(d));
        }
        scenes_.push_back(std::move(scene));
    }
}

const TrafficScene &
TrafficDataset::at(std::size_t i) const
{
    if (i >= scenes_.size())
        fatal("TrafficDataset: index out of range");
    return scenes_[i];
}

SurrogateDetector::SurrogateDetector(std::string model,
                                     std::uint64_t fingerprint,
                                     bool optimized)
    : model_(std::move(model)), fingerprint_(fingerprint),
      optimized_(optimized)
{}

std::vector<Detection>
SurrogateDetector::detect(const TrafficScene &scene) const
{
    // Calibrated operating point near the paper's IOU-0.75 regime.
    const double recall_base = optimized_ ? 0.86 : 0.84;
    const double fp_rate = 0.35; // expected false positives / image
    const double loc_jitter = optimized_ ? 0.012 : 0.013;
    const double engine_sigma = optimized_ ? 0.04 : 0.0;

    std::vector<Detection> out;
    std::uint64_t model_seed =
        hashCombine(scene.seed(), hashString(model_));
    Rng rng(model_seed);

    for (std::size_t g = 0; g < scene.ground_truth.size(); g++) {
        const Detection &gt = scene.ground_truth[g];
        // Small objects are harder to detect.
        double size_penalty =
            gt.box.area() < 0.012 ? 0.18 : 0.0;
        double score = recall_base - size_penalty +
                       rng.gaussian(0.0, 0.08);
        if (engine_sigma > 0.0) {
            Rng engine_rng(hashCombine(
                fingerprint_, hashCombine(model_seed, g)));
            score += engine_rng.gaussian(0.0, engine_sigma);
        }
        if (score < 0.5)
            continue; // miss
        Detection d;
        d.cls = gt.cls;
        d.score = std::min(0.99, std::max(0.5, score));
        d.box.x1 = gt.box.x1 + rng.gaussian(0.0, loc_jitter);
        d.box.y1 = gt.box.y1 + rng.gaussian(0.0, loc_jitter);
        d.box.x2 = gt.box.x2 + rng.gaussian(0.0, loc_jitter);
        d.box.y2 = gt.box.y2 + rng.gaussian(0.0, loc_jitter);
        out.push_back(std::move(d));
    }

    // False positives (shadows, signboards, rickshaw parts...).
    int fps = rng.chance(fp_rate) ? 1 : 0;
    if (rng.chance(fp_rate * 0.3))
        fps++;
    for (int f = 0; f < fps; f++) {
        Detection d;
        double w = rng.uniform(0.04, 0.15);
        double h = rng.uniform(0.04, 0.12);
        double x = rng.uniform(0.0, 1.0 - w);
        double y = rng.uniform(0.3, 1.0 - h);
        d.box = {x, y, x + w, y + h};
        d.cls = static_cast<VehicleClass>(
            rng.below(kNumVehicleClasses));
        d.score = rng.uniform(0.5, 0.8);
        out.push_back(std::move(d));
    }

    std::sort(out.begin(), out.end(),
              [](const Detection &a, const Detection &b) {
                  return a.score > b.score;
              });
    return out;
}

SurrogatePlateReader::SurrogatePlateReader(
    std::uint64_t engine_fingerprint, double borderline_rate)
    : fingerprint_(engine_fingerprint),
      borderline_rate_(borderline_rate)
{}

std::string
SurrogatePlateReader::read(const std::string &truth,
                           std::uint64_t scene_seed) const
{
    std::string out = truth;
    for (std::size_t i = 0; i < out.size(); i++) {
        // Whether this character is borderline is a property of the
        // observation, not of the engine.
        Rng obs(hashCombine(scene_seed, i));
        if (obs.uniform() >= borderline_rate_)
            continue;
        // Which way it resolves depends on the engine's rounding.
        Rng engine(hashCombine(fingerprint_,
                               hashCombine(scene_seed, i)));
        if (!engine.chance(0.5))
            continue;
        char c = out[i];
        if (c == '8')
            out[i] = 'B';
        else if (c == 'B')
            out[i] = '8';
        else if (c == '0')
            out[i] = 'O';
        else if (c == 'O')
            out[i] = '0';
        else if (c >= '1' && c <= '7')
            out[i] = static_cast<char>(c + 1);
        else if (c == 'I')
            out[i] = '1';
    }
    return out;
}

PrMetrics
evaluateDetections(
    const std::vector<TrafficScene> &scenes,
    const std::vector<std::vector<Detection>> &predictions,
    double iou_threshold)
{
    if (scenes.size() != predictions.size())
        fatal("evaluateDetections: scene/prediction count mismatch");

    PrMetrics m;
    for (std::size_t s = 0; s < scenes.size(); s++) {
        const auto &gt = scenes[s].ground_truth;
        const auto &preds = predictions[s];
        std::vector<bool> matched(gt.size(), false);

        // Predictions are pre-sorted by score; greedily claim the
        // best remaining ground-truth box.
        for (const auto &p : preds) {
            double best_iou = 0.0;
            std::size_t best = gt.size();
            for (std::size_t g = 0; g < gt.size(); g++) {
                if (matched[g] || gt[g].cls != p.cls)
                    continue;
                double v = iou(p.box, gt[g].box);
                if (v > best_iou) {
                    best_iou = v;
                    best = g;
                }
            }
            if (best < gt.size() && best_iou >= iou_threshold) {
                matched[best] = true;
                m.true_positives++;
            } else {
                m.false_positives++;
            }
        }
        for (bool b : matched)
            if (!b)
                m.false_negatives++;
    }
    int denom_p = m.true_positives + m.false_positives;
    int denom_r = m.true_positives + m.false_negatives;
    m.precision = denom_p > 0 ? static_cast<double>(m.true_positives) /
                                    denom_p
                              : 0.0;
    m.recall = denom_r > 0 ? static_cast<double>(m.true_positives) /
                                 denom_r
                           : 0.0;
    return m;
}

} // namespace edgert::data
