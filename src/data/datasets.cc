#include "data/datasets.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::data {

std::uint64_t
ImageRef::seed() const
{
    return hashCombine(mix64(static_cast<std::uint64_t>(class_id)),
                       mix64(static_cast<std::uint64_t>(index) +
                             0x517cc1b727220a95ull));
}

const char *
noiseTypeName(NoiseType t)
{
    switch (t) {
      case NoiseType::kGaussian: return "gaussian_noise";
      case NoiseType::kShot: return "shot_noise";
      case NoiseType::kImpulse: return "impulse_noise";
      case NoiseType::kDefocus: return "defocus_blur";
      case NoiseType::kGlass: return "glass_blur";
      case NoiseType::kMotion: return "motion_blur";
      case NoiseType::kZoom: return "zoom_blur";
      case NoiseType::kSnow: return "snow";
      case NoiseType::kFrost: return "frost";
      case NoiseType::kFog: return "fog";
      case NoiseType::kBrightness: return "brightness";
      case NoiseType::kContrast: return "contrast";
      case NoiseType::kElastic: return "elastic_transform";
      case NoiseType::kPixelate: return "pixelate";
      case NoiseType::kJpeg: return "jpeg_compression";
    }
    panic("unknown NoiseType");
}

BenignDataset::BenignDataset(int classes, int per_class)
    : classes_(classes), per_class_(per_class)
{
    if (classes <= 0 || per_class <= 0)
        fatal("BenignDataset: classes and per_class must be positive");
}

std::size_t
BenignDataset::size() const
{
    return static_cast<std::size_t>(classes_) *
           static_cast<std::size_t>(per_class_);
}

ImageRef
BenignDataset::at(std::size_t i) const
{
    if (i >= size())
        fatal("BenignDataset: index ", i, " out of range");
    ImageRef r;
    r.class_id = static_cast<std::int32_t>(
        i / static_cast<std::size_t>(per_class_));
    r.index = static_cast<std::int32_t>(
        i % static_cast<std::size_t>(per_class_));
    return r;
}

AdversarialDataset::AdversarialDataset(int classes, int per_class,
                                       std::vector<int> severities)
    : classes_(classes), per_class_(per_class),
      severities_(std::move(severities))
{
    if (classes <= 0 || per_class <= 0 || severities_.empty())
        fatal("AdversarialDataset: invalid shape");
    for (int s : severities_)
        if (s < 1 || s > 5)
            fatal("AdversarialDataset: severity ", s,
                  " out of range 1..5");
}

std::size_t
AdversarialDataset::size() const
{
    return static_cast<std::size_t>(kNumNoiseTypes) *
           severities_.size() * static_cast<std::size_t>(classes_) *
           static_cast<std::size_t>(per_class_);
}

CorruptImageRef
AdversarialDataset::at(std::size_t i) const
{
    if (i >= size())
        fatal("AdversarialDataset: index ", i, " out of range");
    std::size_t per_noise = severities_.size() *
                            static_cast<std::size_t>(classes_) *
                            static_cast<std::size_t>(per_class_);
    std::size_t noise_idx = i / per_noise;
    std::size_t rem = i % per_noise;
    std::size_t per_sev = static_cast<std::size_t>(classes_) *
                          static_cast<std::size_t>(per_class_);
    std::size_t sev_idx = rem / per_sev;
    std::size_t img_idx = rem % per_sev;

    CorruptImageRef c;
    c.noise = static_cast<NoiseType>(noise_idx);
    c.severity = severities_[sev_idx];
    c.base.class_id = static_cast<std::int32_t>(
        img_idx / static_cast<std::size_t>(per_class_));
    c.base.index = static_cast<std::int32_t>(
        img_idx % static_cast<std::size_t>(per_class_));
    return c;
}

} // namespace edgert::data
