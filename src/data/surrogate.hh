#ifndef EDGERT_DATA_SURROGATE_HH
#define EDGERT_DATA_SURROGATE_HH

/**
 * @file
 * Surrogate classification model.
 *
 * Running 65k real ImageNet inferences through VGG-16 is out of
 * scope for this reproduction (DESIGN.md §2), so accuracy
 * experiments use a calibrated margin model instead:
 *
 *   - each (model, image) pair has a deterministic standard-normal
 *     difficulty d;
 *   - a model/configuration has a competence threshold theta chosen
 *     so that P(d > theta) equals the paper-reported top-1 error
 *     (Tables III/IV calibrate benign, severity-1 and severity-5
 *     rows for the optimized and un-optimized configurations);
 *   - an engine perturbs the margin (theta - d) with FP16
 *     rounding noise whose seed is the engine *fingerprint*:
 *     bit-identical engines agree everywhere, different engines
 *     flip labels on borderline images — mechanically reproducing
 *     the paper's Finding 2 mismatch counts (Tables V/VI).
 *
 * The underlying mechanism (accumulation-order-dependent FP16
 * rounding flipping argmax decisions) is demonstrated for real in
 * the functional executor tests.
 */

#include <cstdint>
#include <string>

#include "data/datasets.hh"

namespace edgert::data {

/** Paper-calibrated error rates (%) for one model. */
struct AccuracyProfile
{
    double benign_err_opt;    //!< TensorRT engines, clean data
    double benign_err_unopt;  //!< framework FP32, clean data
    double adv1_err_opt;      //!< severity-1 corruptions
    double adv1_err_unopt;
    double adv5_err_opt;      //!< severity-5 corruptions
    double adv5_err_unopt;
};

/** Calibration lookup; falls back to a generic profile. */
const AccuracyProfile &accuracyProfile(const std::string &model);

/**
 * Quantization posture of an engine, for the margin model. INT8
 * rounding erodes every decision margin a little — unlike the
 * zero-mean FP16 kernel noise it is a *bias*, so quantized engines
 * trade accuracy for throughput. The erosion scales with the share
 * of compute actually executed at INT8 (a mixed engine pays only
 * for the layers it kept quantized) and shifts slightly with the
 * calibration table (refreshed calibration data yields different
 * scales — the Finding-2-style variance the cross-precision drift
 * gate must tolerate).
 */
struct QuantSpec
{
    /** Flops-weighted share of INT8 compute
     *  (Engine::int8ComputeFraction()); 0 disables the penalty. */
    double int8_fraction = 0.0;

    /** Calibration-table hash (Engine::calibrationFingerprint());
     *  seeds the calibration-dependent penalty component. */
    std::uint64_t calibration_fingerprint = 0;
};

/**
 * Deterministic surrogate classifier for one built engine (or the
 * un-optimized model).
 */
class SurrogateClassifier
{
  public:
    /** Classifier behaviour of a specific built engine. */
    static SurrogateClassifier forEngine(const std::string &model,
                                         std::uint64_t fingerprint,
                                         int num_classes = 1000);

    /** Classifier behaviour of a (possibly) quantized engine; with
     *  a default QuantSpec this is exactly the overload above. */
    static SurrogateClassifier forEngine(const std::string &model,
                                         std::uint64_t fingerprint,
                                         const QuantSpec &quant,
                                         int num_classes = 1000);

    /** Classifier behaviour of the un-optimized FP32 model. */
    static SurrogateClassifier unoptimized(const std::string &model,
                                           int num_classes = 1000);

    /** Top-1 prediction on a clean image. */
    int predict(const ImageRef &img) const;

    /** Top-1 prediction on a corrupted image. */
    int predict(const CorruptImageRef &img) const;

    const std::string &model() const { return model_; }
    bool optimized() const { return optimized_; }

  private:
    SurrogateClassifier(std::string model, bool optimized,
                        std::uint64_t fingerprint, int num_classes,
                        const QuantSpec &quant = {});

    double difficulty(const ImageRef &img) const;
    double engineNoise(std::uint64_t image_seed) const;
    int decide(double margin, const ImageRef &img) const;

    std::string model_;
    bool optimized_;
    std::uint64_t fingerprint_;
    int num_classes_;
    double noise_sigma_; //!< per-engine FP16 rounding noise scale
    double quant_penalty_ = 0.0; //!< INT8 margin erosion (a bias)
};

} // namespace edgert::data

#endif // EDGERT_DATA_SURROGATE_HH
