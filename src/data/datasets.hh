#ifndef EDGERT_DATA_DATASETS_HH
#define EDGERT_DATA_DATASETS_HH

/**
 * @file
 * Synthetic evaluation datasets.
 *
 * The paper evaluates on an ImageNet subset ("benign": 100 classes x
 * 50 images) and on the common-corruptions variant ("adversarial":
 * 15 noise types x severity levels 1..5). We have neither dataset
 * nor the compute to push 65k images through VGG-16 on one CPU core,
 * so images are procedural *descriptors*: a (class, index) pair with
 * a deterministic seed. The surrogate accuracy model (surrogate.hh)
 * maps descriptors to predictions with margin distributions
 * calibrated to the paper's Tables III/IV; the real numeric
 * precision mechanics are exercised by nn::Executor on small models
 * instead (see tests/nn_executor_test.cc).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace edgert::data {

/** A benign (clean) image descriptor. */
struct ImageRef
{
    std::int32_t class_id = 0; //!< ground-truth label
    std::int32_t index = 0;    //!< index within the class

    /** Deterministic identity seed of this image. */
    std::uint64_t seed() const;
};

/** The 15 corruption families of the adversarial dataset. */
enum class NoiseType
{
    kGaussian,
    kShot,
    kImpulse,
    kDefocus,
    kGlass,
    kMotion,
    kZoom,
    kSnow,
    kFrost,
    kFog,
    kBrightness,
    kContrast,
    kElastic,
    kPixelate,
    kJpeg,
};

constexpr int kNumNoiseTypes = 15;

/** Printable noise name. */
const char *noiseTypeName(NoiseType t);

/** A corrupted image: a benign image plus a noise and severity. */
struct CorruptImageRef
{
    ImageRef base;
    NoiseType noise = NoiseType::kGaussian;
    int severity = 1; //!< 1 (mild) .. 5 (severe)
};

/**
 * Benign dataset: `classes` x `per_class` clean images.
 */
class BenignDataset
{
  public:
    BenignDataset(int classes, int per_class);

    std::size_t size() const;
    ImageRef at(std::size_t i) const;
    int classes() const { return classes_; }

  private:
    int classes_;
    int per_class_;
};

/**
 * Adversarial dataset: every benign image of a class subset, under
 * each requested noise type and severity (paper: 15 noises x
 * severities {1,5} x 100 classes x 20 images = 60,000).
 */
class AdversarialDataset
{
  public:
    AdversarialDataset(int classes, int per_class,
                       std::vector<int> severities);

    std::size_t size() const;
    CorruptImageRef at(std::size_t i) const;

  private:
    int classes_;
    int per_class_;
    std::vector<int> severities_;
};

} // namespace edgert::data

#endif // EDGERT_DATA_DATASETS_HH
