#include "data/surrogate.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace edgert::data {

const AccuracyProfile &
accuracyProfile(const std::string &model)
{
    // Benign rows from Table III, adversarial rows from Table IV.
    // Models the paper does not report use plausible defaults from
    // their published ImageNet accuracies.
    static const std::unordered_map<std::string, AccuracyProfile>
        profiles = {
            {"alexnet", {45.13, 47.72, 64.35, 74.90, 90.28, 94.12}},
            {"resnet-18", {35.83, 55.18, 46.70, 75.31, 87.12, 97.90}},
            {"vgg-16", {33.77, 38.46, 40.66, 51.36, 86.01, 90.82}},
            {"inception-v4",
             {29.50, 36.20, 42.80, 63.50, 84.50, 93.00}},
            {"googlenet", {37.50, 44.80, 52.30, 68.40, 88.20, 95.10}},
        };
    static const AccuracyProfile generic = {38.0, 47.0, 52.0, 68.0,
                                            88.0, 95.0};
    auto it = profiles.find(model);
    return it == profiles.end() ? generic : it->second;
}

SurrogateClassifier::SurrogateClassifier(std::string model,
                                         bool optimized,
                                         std::uint64_t fingerprint,
                                         int num_classes,
                                         const QuantSpec &quant)
    : model_(std::move(model)), optimized_(optimized),
      fingerprint_(fingerprint), num_classes_(num_classes)
{
    if (num_classes_ < 2)
        fatal("SurrogateClassifier: need at least 2 classes");
    if (optimized_) {
        // FP16 engines perturb borderline margins; the noise scale
        // is an intrinsic property of the chosen kernel set.
        Rng rng(hashCombine(fingerprint_, hashString("noise-scale")));
        noise_sigma_ = 0.006 + 0.014 * rng.uniform();
    } else {
        // The FP32 framework binary is one fixed executable: its
        // outputs are deterministic, so no engine noise.
        noise_sigma_ = 0.0;
    }
    if (optimized_ && quant.int8_fraction > 0.0) {
        // Rounding every INT8 layer's activations erodes the mean
        // decision margin in proportion to the share of quantized
        // compute; the calibration table shifts the erosion a
        // little (keyed by the table hash, shared between engines
        // calibrated on the same data).
        Rng qrng(hashCombine(quant.calibration_fingerprint,
                             hashString("quant-margin")));
        quant_penalty_ = quant.int8_fraction *
                         (0.020 + qrng.gaussian(0.0, 0.0015));
    }
}

SurrogateClassifier
SurrogateClassifier::forEngine(const std::string &model,
                               std::uint64_t fingerprint,
                               int num_classes)
{
    return SurrogateClassifier(model, true, fingerprint, num_classes);
}

SurrogateClassifier
SurrogateClassifier::forEngine(const std::string &model,
                               std::uint64_t fingerprint,
                               const QuantSpec &quant,
                               int num_classes)
{
    return SurrogateClassifier(model, true, fingerprint, num_classes,
                               quant);
}

SurrogateClassifier
SurrogateClassifier::unoptimized(const std::string &model,
                                 int num_classes)
{
    return SurrogateClassifier(model, false, 0, num_classes);
}

double
SurrogateClassifier::difficulty(const ImageRef &img) const
{
    // Per-(model, image) standard-normal difficulty: shared between
    // the optimized and un-optimized variants of the same model
    // (they share weights), independent across models.
    Rng rng(hashCombine(img.seed(), hashString(model_)));
    return rng.gaussian();
}

double
SurrogateClassifier::engineNoise(std::uint64_t image_seed) const
{
    if (noise_sigma_ <= 0.0)
        return 0.0;
    Rng rng(hashCombine(fingerprint_, image_seed));
    return rng.gaussian(0.0, noise_sigma_);
}

int
SurrogateClassifier::decide(double margin, const ImageRef &img) const
{
    if (margin > 0.0)
        return img.class_id;
    // Wrong prediction: a deterministic confusion class per image
    // (engines that both misclassify agree on the confusion).
    Rng rng(hashCombine(img.seed(), hashString("confusion")));
    int wrong = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(num_classes_ - 1)));
    if (wrong >= img.class_id)
        wrong++;
    return wrong;
}

int
SurrogateClassifier::predict(const ImageRef &img) const
{
    const AccuracyProfile &p = accuracyProfile(model_);
    double err =
        (optimized_ ? p.benign_err_opt : p.benign_err_unopt) / 100.0;
    double theta = normalQuantile(1.0 - err);
    double margin = theta - difficulty(img) +
                    engineNoise(img.seed()) - quant_penalty_;
    return decide(margin, img);
}

int
SurrogateClassifier::predict(const CorruptImageRef &img) const
{
    const AccuracyProfile &p = accuracyProfile(model_);
    double err1 =
        (optimized_ ? p.adv1_err_opt : p.adv1_err_unopt) / 100.0;
    double err5 =
        (optimized_ ? p.adv5_err_opt : p.adv5_err_unopt) / 100.0;
    double t1 = normalQuantile(1.0 - err1);
    double t5 = normalQuantile(1.0 - err5);
    double frac = (img.severity - 1) / 4.0;
    double theta = t1 + frac * (t5 - t1);

    // Noise families differ in harshness (deterministic offset with
    // zero mean across the 15 families).
    Rng noise_rng(hashCombine(hashString(noiseTypeName(img.noise)),
                              hashString(model_)));
    theta += noise_rng.gaussian(0.0, 0.10);

    // Corrupted difficulty correlates with the clean image's
    // difficulty but adds a corruption-specific component.
    Rng extra(hashCombine(
        img.base.seed(),
        hashCombine(static_cast<std::uint64_t>(img.noise),
                    static_cast<std::uint64_t>(img.severity))));
    double d = 0.6 * difficulty(img.base) +
               0.8 * extra.gaussian();

    std::uint64_t corrupt_seed = hashCombine(
        img.base.seed(),
        hashCombine(static_cast<std::uint64_t>(img.noise) * 31,
                    static_cast<std::uint64_t>(img.severity)));
    double margin =
        theta - d + engineNoise(corrupt_seed) - quant_penalty_;
    return decide(margin, img.base);
}

} // namespace edgert::data
