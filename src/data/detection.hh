#ifndef EDGERT_DATA_DETECTION_HH
#define EDGERT_DATA_DETECTION_HH

/**
 * @file
 * Object-detection data and metrics: bounding boxes, IOU, the
 * synthetic developing-region traffic dataset (stand-in for the
 * paper's labeled intersection dataset [49]: 3896 train / 1670 test
 * images), a surrogate vehicle detector, and precision/recall
 * evaluation at a configurable IOU threshold (the paper reports
 * IOU 0.75).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace edgert::data {

/** Vehicle classes of the traffic dataset. */
enum class VehicleClass { kCar, kBus, kTruck, kMotorbike, kAutoRickshaw };

constexpr int kNumVehicleClasses = 5;

/** Printable vehicle class name. */
const char *vehicleClassName(VehicleClass c);

/** Axis-aligned box in normalized [0,1] image coordinates. */
struct Box
{
    double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;

    double
    area() const
    {
        return (x2 > x1 && y2 > y1) ? (x2 - x1) * (y2 - y1) : 0.0;
    }
};

/** Intersection-over-union of two boxes. */
double iou(const Box &a, const Box &b);

/** One ground-truth or predicted object. */
struct Detection
{
    Box box;
    VehicleClass cls = VehicleClass::kCar;
    double score = 1.0;     //!< confidence (predictions only)
    std::string plate;      //!< licence plate (ground truth only)
};

/** One traffic-scene image with ground truth. */
struct TrafficScene
{
    std::int32_t id = 0;
    std::vector<Detection> ground_truth;

    /** Deterministic identity seed. */
    std::uint64_t seed() const;
};

/**
 * Synthetic traffic-intersection dataset: seeded scenes with 1-8
 * vehicles each, plus licence plates for the rule-enforcement
 * example.
 */
class TrafficDataset
{
  public:
    explicit TrafficDataset(int scenes, std::uint64_t seed = 42);

    std::size_t size() const { return scenes_.size(); }
    const TrafficScene &at(std::size_t i) const;

  private:
    std::vector<TrafficScene> scenes_;
};

/**
 * Surrogate vehicle detector for a built engine: detects each
 * ground-truth vehicle with a calibrated probability, localizes
 * with IOU-distributed jitter, and emits occasional false
 * positives. Engine fingerprints perturb borderline detections
 * (Finding 2 applied to detection).
 */
class SurrogateDetector
{
  public:
    /**
     * @param model        Detection model name ("tiny-yolov3"...).
     * @param fingerprint  Engine fingerprint (0 = un-optimized).
     * @param optimized    TensorRT-style engine vs framework FP32.
     */
    SurrogateDetector(std::string model, std::uint64_t fingerprint,
                      bool optimized);

    /** Run detection on one scene. */
    std::vector<Detection> detect(const TrafficScene &scene) const;

  private:
    std::string model_;
    std::uint64_t fingerprint_;
    bool optimized_;
};

/**
 * Licence-plate OCR surrogate: reads a plate string from a scene.
 * A small fraction of characters are borderline (blur, glare,
 * perspective); how they resolve depends on the reading engine's
 * FP16 rounding, so two different engine builds can read the same
 * plate differently — the §VI-A enforcement hazard.
 */
class SurrogatePlateReader
{
  public:
    /**
     * @param engine_fingerprint Identity of the classification
     *        engine; bit-identical engines read identically.
     * @param borderline_rate    Fraction of characters near the
     *        decision boundary (default 1.5 %).
     */
    explicit SurrogatePlateReader(std::uint64_t engine_fingerprint,
                                  double borderline_rate = 0.015);

    /**
     * Read a plate.
     * @param truth      Ground-truth plate string.
     * @param scene_seed Identity of the observation (scene +
     *                   vehicle), controlling which characters are
     *                   borderline.
     */
    std::string read(const std::string &truth,
                     std::uint64_t scene_seed) const;

  private:
    std::uint64_t fingerprint_;
    double borderline_rate_;
};

/** Precision/recall of predictions against ground truth. */
struct PrMetrics
{
    double precision = 0.0;
    double recall = 0.0;
    int true_positives = 0;
    int false_positives = 0;
    int false_negatives = 0;
};

/**
 * Greedy matching of predictions (by descending score) to ground
 * truth at the given IOU threshold; class must also match.
 */
PrMetrics evaluateDetections(
    const std::vector<TrafficScene> &scenes,
    const std::vector<std::vector<Detection>> &predictions,
    double iou_threshold = 0.75);

} // namespace edgert::data

#endif // EDGERT_DATA_DETECTION_HH
