#ifndef EDGERT_CORE_TIMING_CACHE_HH
#define EDGERT_CORE_TIMING_CACHE_HH

/**
 * @file
 * Persistent tactic-timing cache (TensorRT ITimingCache analogue).
 *
 * The autotuner's dominant cost is timing every candidate tactic of
 * every fused node, and those measurements are heavily redundant:
 * repeated blocks inside one model, shared backbones across the
 * zoo, and every rebuild of the same model re-time identical
 * (device, node shape, tactic) tuples. The cache memoizes one
 * measured duration per such tuple.
 *
 * Keying. An entry is addressed by
 *   device name × node signature × tactic name,
 * where the node signature hashes everything the timing model can
 * observe: fused-op kind, execution precision, input/output dims,
 * and the full candidate kernel geometry (names, grids, flops,
 * DRAM traffic, occupancy...). Equal signatures therefore imply
 * equal measurement inputs, and a cache hit is exact — not an
 * approximation. The device name is part of the key, so a cache
 * warmed on Xavier NX contributes nothing to an AGX build (and
 * vice versa); timings never leak across device presets.
 *
 * Determinism (Finding 6 mitigation). Cache-backed builds draw
 * their measurement noise per signature rather than per node, so a
 * given cache state freezes the tactic choice: two builds with
 * *different* build ids that share a warm cache select identical
 * tactics and produce engines with equal fingerprints. This is the
 * paper's own mitigation angle for non-deterministic engine
 * generation.
 *
 * The cache is thread-safe (the parallel builder consults it from
 * worker threads) and serializes to a canonical byte stream —
 * entries are kept sorted, so equal contents always produce equal
 * bytes regardless of insertion order.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"

namespace edgert::core {

/** Lookup/insert counters since construction (or resetStats()). */
struct TimingCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
};

/**
 * Thread-safe (device, node signature, tactic) → seconds memo with
 * binary (de)serialization.
 */
class TimingCache
{
  public:
    TimingCache() = default;

    TimingCache(const TimingCache &) = delete;
    TimingCache &operator=(const TimingCache &) = delete;
    TimingCache(TimingCache &&other) noexcept;
    TimingCache &operator=(TimingCache &&other) noexcept;

    /** Compose the canonical entry key. */
    static std::string key(std::string_view device_name,
                           std::uint64_t node_signature,
                           std::string_view tactic_name);

    /**
     * Look up a measured duration. Counts a hit or a miss.
     * @return Seconds, or nullopt on miss.
     */
    std::optional<double> lookup(const std::string &key) const;

    /**
     * Record a measured duration. First writer wins — an existing
     * entry is never overwritten, so a cache only ever *freezes*
     * timings, it never retimes them. Counts an insert only when
     * the entry was actually added.
     */
    void insert(const std::string &key, double seconds);

    /** Number of stored entries. */
    std::size_t size() const;

    TimingCacheStats stats() const;
    void resetStats();

    /**
     * Canonical byte serialization (entries only, sorted by key),
     * wrapped in the common integrity frame (size header + CRC32
     * footer) so on-disk corruption is detected at load time.
     */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Rebuild from serialize() output. Cache files are untrusted
     * input: malformed bytes yield an error Status, never an abort.
     * Version-1 caches (pre-CRC) remain readable.
     */
    static Result<TimingCache>
    deserialize(const std::vector<std::uint8_t> &bytes);

    /** Write serialize() bytes to a file; fatal() on I/O error. */
    void save(const std::string &path) const;

    /**
     * Load a cache file written by save(). A missing file yields an
     * empty cache (first run of a warm-cache workflow). A present
     * but corrupt file also yields an empty cache, after a warn():
     * the cache is a pure accelerator, so a damaged file must cost
     * a cold rebuild, never the process.
     */
    static TimingCache load(const std::string &path);

  private:
    mutable std::mutex mu_;
    std::map<std::string, double> entries_;
    mutable TimingCacheStats stats_;
};

} // namespace edgert::core

#endif // EDGERT_CORE_TIMING_CACHE_HH
