#ifndef EDGERT_CORE_OPTIMIZER_HH
#define EDGERT_CORE_OPTIMIZER_HH

/**
 * @file
 * Model-compression passes of the EdgeRT engine builder — the first
 * functional step of the paper's Figure 2:
 *
 *  1. dead-layer removal  — layers not reaching a marked output are
 *     dropped (e.g. GoogLeNet's auxiliary classifier heads), and
 *     inference no-ops (dropout, flatten, identity) are elided;
 *  2. vertical fusion     — conv/fc + batch-norm + scale +
 *     activation chains collapse into one node;
 *  3. horizontal merging  — sibling convolutions with identical
 *     geometry reading the same tensor become one wider kernel
 *     (inception branch towers);
 *  4. quantization        — nodes are assigned FP16 (or INT8)
 *     execution precision; numerically sensitive heads stay FP32.
 *
 * The result is an OptimizedGraph of fused nodes, each of which the
 * hardware-mapping stage (tactics + autotuner) lowers to concrete
 * CUDA kernels.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "nn/executor.hh"
#include "nn/network.hh"

namespace edgert::core {

/** Kinds of fused execution nodes. */
enum class FusedOpKind
{
    kConv,
    kDeconv,
    kFullyConnected,
    kPooling,
    kLrn,
    kConcat,
    kEltwise,
    kSoftmax,
    kUpsample,
    kRegion,
    kDetection,
};

/** Printable fused-op kind. */
const char *fusedOpKindName(FusedOpKind k);

/**
 * One fused node of the optimized graph.
 */
struct OptNode
{
    int id = -1;
    std::string name; //!< derived from the main layer's name
    FusedOpKind kind = FusedOpKind::kConv;

    /** Original layer ids fused vertically (main layer first). */
    std::vector<std::int32_t> layer_ids;

    /**
     * Main-layer ids of siblings merged horizontally into this node
     * (empty unless pass 3 merged anything).
     */
    std::vector<std::int32_t> merged_main_ids;

    /** Input tensor names (resolved through elided layers). */
    std::vector<std::string> inputs;

    /** Output tensor names (one per merged sibling). */
    std::vector<std::string> outputs;

    bool has_activation = false; //!< an activation was fused in
    nn::Precision precision = nn::Precision::kFp16;
};

/** Statistics reported by the optimizer (build log material). */
struct OptimizerStats
{
    int dead_layers_removed = 0;
    int noops_elided = 0;
    int layers_fused = 0;       //!< layers absorbed by vertical fusion
    int horizontal_merges = 0;  //!< sibling groups merged
    int nodes = 0;              //!< resulting fused node count
};

/**
 * The optimized graph: fused nodes in topological order over the
 * original network's tensors.
 */
class OptimizedGraph
{
  public:
    OptimizedGraph(const nn::Network &net, std::vector<OptNode> nodes,
                   OptimizerStats stats);

    const nn::Network &network() const { return *net_; }
    const std::vector<OptNode> &nodes() const { return nodes_; }

    /** Mutable node access for post-pass precision rewrites (see
     *  core/precision.hh: the mixed-precision selector flips
     *  individual nodes back to FP16 before tactic selection). */
    std::vector<OptNode> &mutableNodes() { return nodes_; }
    const OptimizerStats &stats() const { return stats_; }

    /** Total trainable parameters reachable from the outputs. */
    std::int64_t liveParamCount() const;

  private:
    const nn::Network *net_;
    std::vector<OptNode> nodes_;
    OptimizerStats stats_;
};

/**
 * Pass-enable switches, for ablation studies. All passes are on by
 * default (the TensorRT behaviour the paper characterizes).
 */
struct OptimizerOptions
{
    bool dead_layer_removal = true;
    bool noop_elision = true;
    bool vertical_fusion = true;
    bool horizontal_merge = true;
};

/**
 * Run the compression passes.
 * @param net       Validated source network.
 * @param precision Target execution precision (kFp16 is TensorRT's
 *                  edge default; kInt8 also quantizes activations).
 * @param options   Pass-enable switches (ablation studies).
 */
OptimizedGraph optimize(const nn::Network &net,
                        nn::Precision precision,
                        const OptimizerOptions &options = {});

} // namespace edgert::core

#endif // EDGERT_CORE_OPTIMIZER_HH
