#ifndef EDGERT_CORE_FOLDING_HH
#define EDGERT_CORE_FOLDING_HH

/**
 * @file
 * Weight folding: the numerical half of vertical fusion.
 *
 * When the optimizer fuses conv -> batch-norm -> scale -> relu into
 * one node, the runtime kernel applies the whole chain in a single
 * pass. TensorRT achieves this by *folding* the normalization
 * parameters into the convolution's weights and bias:
 *
 *   sigma_c = sqrt(var_c + eps)
 *   w'_c    = w_c * gamma_c / sigma_c
 *   b'_c    = (b_c - mu_c) * gamma_c / sigma_c + beta_c
 *
 * foldOptimizedGraph() materializes this transformation: it derives
 * a new Network containing one (de)convolution/FC layer per fused
 * node with the folded parameters installed as weight overrides,
 * plus the surviving non-fusable layers. Running the folded network
 * through the reference executor must produce the same outputs as
 * the original (up to float rounding) — the semantic-preservation
 * property the tests assert for every fused model.
 */

#include <memory>

#include "core/optimizer.hh"
#include "nn/weights.hh"

namespace edgert::core {

/** A folded network together with its (override-carrying) weights. */
struct FoldedModel
{
    // unique_ptr: WeightsStore holds a pointer to the network, so
    // the pair must move as a unit without invalidating it.
    std::unique_ptr<nn::Network> network;
    std::unique_ptr<nn::WeightsStore> weights;
};

/**
 * Materialize the fused graph as an executable network with folded
 * parameters.
 *
 * @param graph    Output of optimize() over `weights.network()`.
 * @param weights  Weight store of the *original* network.
 *
 * Horizontally merged nodes are un-merged (executed as separate
 * convolutions — numerically identical); tensor names are preserved
 * so outputs are directly comparable with the original network's.
 */
FoldedModel foldOptimizedGraph(const OptimizedGraph &graph,
                               const nn::WeightsStore &weights);

} // namespace edgert::core

#endif // EDGERT_CORE_FOLDING_HH
