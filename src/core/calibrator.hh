#ifndef EDGERT_CORE_CALIBRATOR_HH
#define EDGERT_CORE_CALIBRATOR_HH

/**
 * @file
 * INT8 calibration (TensorRT IInt8EntropyCalibrator analogue).
 *
 * Quantizing activations to 8 bits needs a per-tensor dynamic
 * range. TensorRT derives these by running a calibration dataset
 * through the FP32 network and minimizing the KL divergence between
 * the FP32 activation histogram and its quantized counterpart.
 *
 * EdgeRT's networks carry He-initialized synthetic weights, for
 * which activation statistics are analytically predictable: He
 * initialization is variance-preserving through conv+relu stacks,
 * so ranges are propagated structurally (fan-in, activation kind,
 * pooling/concat effects) and then refined with a seeded
 * entropy-clipping factor standing in for the histogram search.
 * The result is a deterministic per-tensor scale table with the
 * same API shape real calibration would produce.
 */

#include <cstdint>
#include <string>
#include <unordered_map>

#include "nn/network.hh"

namespace edgert::core {

/** Per-tensor quantization parameters. */
struct TensorRange
{
    float abs_max = 0.0f; //!< calibrated dynamic range
    float scale = 0.0f;   //!< abs_max / 127
};

/**
 * Entropy-style INT8 calibrator over a network.
 */
class Int8Calibrator
{
  public:
    /**
     * @param net             Network to calibrate (must validate()).
     * @param calibration_seed Identity of the calibration batch; two
     *        calibrations with different seeds produce slightly
     *        different clipping (another nondeterminism source in
     *        real deployments).
     * @param batches         Calibration batches "run"; more batches
     *        tighten the clipping factor.
     */
    Int8Calibrator(const nn::Network &net,
                   std::uint64_t calibration_seed = 0,
                   int batches = 10);

    /** Range of one tensor; fatal for unknown tensors. */
    const TensorRange &range(const std::string &tensor) const;

    /** All calibrated ranges. */
    const std::unordered_map<std::string, TensorRange> &
    ranges() const
    {
        return ranges_;
    }

    /** Hash of the calibration table (engine fingerprint input). */
    std::uint64_t tableFingerprint() const;

  private:
    std::unordered_map<std::string, TensorRange> ranges_;
};

} // namespace edgert::core

#endif // EDGERT_CORE_CALIBRATOR_HH
