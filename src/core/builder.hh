#ifndef EDGERT_CORE_BUILDER_HH
#define EDGERT_CORE_BUILDER_HH

/**
 * @file
 * The EdgeRT engine builder (TensorRT IBuilder analogue).
 *
 * Building runs the compression passes (optimizer.hh) and then the
 * hardware-mapping stage: for every fused node the autotuner times
 * each candidate tactic *on the target device* and keeps the fastest
 * measurement. Timing measurements carry realistic jitter, so near-
 * tied candidates flip between builds — engine generation is
 * intentionally non-deterministic unless a build id is pinned,
 * reproducing the paper's Finding 6. Two builds with the same
 * build_id are bit-identical.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/optimizer.hh"
#include "core/tactics.hh"
#include "gpusim/device.hh"
#include "nn/network.hh"

namespace edgert::core {

/** Builder configuration (IBuilderConfig analogue). */
struct BuilderConfig
{
    /** Target execution precision (TensorRT edge default: FP16). */
    nn::Precision precision = nn::Precision::kFp16;

    /**
     * Identity of this build. Successive builds of the same model
     * naturally get different ids (TensorRT's timing-based tactic
     * selection is not seeded); pin it for reproducible engines.
     */
    std::uint64_t build_id = 0;

    /**
     * Timing repetitions per candidate (averaged); TensorRT's
     * avgTimingIterations. More iterations → less tactic flapping.
     */
    int avg_timing_iterations = 2;

    /** Relative std-dev of one kernel timing measurement. */
    double timing_noise = 0.05;

    /** Compression-pass switches (ablation studies). */
    OptimizerOptions optimizer;

    /**
     * Calibration-batch identity for INT8 builds (ignored
     * otherwise). Different calibration data yields different
     * activation ranges and hence different engines.
     */
    std::uint64_t calibration_seed = 0;
};

/** Per-node autotuning outcome, for build logs and tests. */
struct TuningRecord
{
    std::string node_name;
    std::string chosen_tactic;
    int candidates = 0;
    double best_ms = 0.0;
    double runner_up_ms = 0.0;
};

/** Full build report. */
struct BuildReport
{
    OptimizerStats optimizer;
    std::vector<TuningRecord> tuning;
};

/**
 * Engine builder bound to one target device.
 */
class Builder
{
  public:
    /**
     * @param device Device the engine is compiled *on* (and for).
     * @param config Build options.
     */
    Builder(const gpusim::DeviceSpec &device,
            const BuilderConfig &config);

    const gpusim::DeviceSpec &device() const { return device_; }
    const BuilderConfig &config() const { return config_; }

    /**
     * Build an optimized engine from a frozen network.
     * @param net    Source model (must validate()).
     * @param report Optional out-param receiving the build log.
     */
    Engine build(const nn::Network &net,
                 BuildReport *report = nullptr) const;

    /**
     * Map the network for *un-optimized* execution: one FP32 kernel
     * per live layer, no fusion, no quantization. This is the
     * baseline the paper's Tables III/VII compare against.
     */
    Engine buildUnoptimized(const nn::Network &net) const;

  private:
    double measureTactic(const Tactic &tactic,
                         const std::string &node_name,
                         std::uint64_t trial) const;

    gpusim::DeviceSpec device_;
    BuilderConfig config_;
};

} // namespace edgert::core

#endif // EDGERT_CORE_BUILDER_HH
