#ifndef EDGERT_CORE_BUILDER_HH
#define EDGERT_CORE_BUILDER_HH

/**
 * @file
 * The EdgeRT engine builder (TensorRT IBuilder analogue).
 *
 * Building runs the compression passes (optimizer.hh) and then the
 * hardware-mapping stage: for every fused node the autotuner times
 * each candidate tactic *on the target device* and keeps the fastest
 * measurement. Timing measurements carry realistic jitter, so near-
 * tied candidates flip between builds — engine generation is
 * intentionally non-deterministic unless a build id is pinned,
 * reproducing the paper's Finding 6. Two builds with the same
 * build_id are bit-identical.
 *
 * Parallelism. The per-node tactic sweeps are independent, so
 * BuilderConfig::jobs fans them out across a common::ThreadPool.
 * Every measurement draws its jitter from an Rng keyed by
 * (build_id, node identity, tactic, trial) — never from wall-clock
 * or thread schedule — so a parallel build is *bit-identical* to
 * the serial build for a pinned build_id. Tests assert this.
 *
 * Timing cache. Attaching a core::TimingCache switches the
 * autotuner to signature-keyed measurements (see timing_cache.hh):
 * nodes with identical shape share one measurement, cache hits skip
 * measureTactic entirely, and a warm cache freezes tactic choices
 * across rebuilds with different build ids (the Finding 6
 * mitigation). New measurements are committed to the cache in
 * deterministic node order at the end of the build, so lookups only
 * ever see the cache state from before the build — serial and
 * parallel builds observe the same cache, another leg of the
 * bit-identity contract.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/optimizer.hh"
#include "core/precision.hh"
#include "core/tactics.hh"
#include "gpusim/device.hh"
#include "nn/network.hh"

namespace edgert {

class ThreadPool;

} // namespace edgert

namespace edgert::core {

class TimingCache;

/** Builder configuration (IBuilderConfig analogue). */
struct BuilderConfig
{
    /** Target execution precision (TensorRT edge default: FP16). */
    nn::Precision precision = nn::Precision::kFp16;

    /**
     * Identity of this build. Successive builds of the same model
     * naturally get different ids (TensorRT's timing-based tactic
     * selection is not seeded); pin it for reproducible engines.
     */
    std::uint64_t build_id = 0;

    /**
     * Timing repetitions per candidate (averaged); TensorRT's
     * avgTimingIterations. More iterations → less tactic flapping.
     */
    int avg_timing_iterations = 2;

    /** Relative std-dev of one kernel timing measurement. */
    double timing_noise = 0.05;

    /** Compression-pass switches (ablation studies). */
    OptimizerOptions optimizer;

    /**
     * Calibration-batch identity for INT8 and mixed builds (ignored
     * otherwise). Different calibration data yields different
     * activation ranges and hence different engines.
     */
    std::uint64_t calibration_seed = 0;

    /**
     * Margin-loss budgets of the per-layer precision selector,
     * consulted only when precision == kMixed (see core/precision.hh).
     */
    PrecisionPlanConfig precision_plan;

    /**
     * Worker threads for the tactic autotuning sweep. 1 = serial,
     * 0 = one per hardware thread. Any value produces bit-identical
     * engines for a pinned build_id (measurement noise is RNG-keyed,
     * never schedule-dependent).
     */
    int jobs = 1;

    /**
     * Optional tactic-timing cache, consulted before measureTactic
     * and extended with this build's fresh measurements (not
     * owned; must outlive the build). See timing_cache.hh for the
     * determinism contract.
     */
    TimingCache *timing_cache = nullptr;
};

/** Per-node autotuning outcome, for build logs and tests. */
struct TuningRecord
{
    std::string node_name;
    std::string chosen_tactic;
    int candidates = 0;
    double best_ms = 0.0;
    double runner_up_ms = 0.0;
};

/**
 * Device-occupancy summary of the autotuning sweep.
 *
 * Timing a tactic occupies the build device for the tactic's
 * duration × avg_timing_iterations — on real hardware this is what
 * makes engine building take minutes, and it is the cost the
 * timing cache and the parallel sweep attack. The simulator runs
 * the measurements analytically (host-side they cost microseconds),
 * so the builder reports the modeled occupancy instead: one entry
 * per parallel sweep task, from which serial device time and the
 * makespan across N workers follow deterministically.
 */
struct TimingWorkload
{
    int jobs = 1;                  //!< resolved worker count
    std::int64_t measurements = 0; //!< fresh tactic timings run
    std::int64_t cache_hits = 0;   //!< timings served by the cache
    std::int64_t shared = 0;       //!< reused across same-signature nodes

    /** Device-seconds of fresh measurement per sweep task. */
    std::vector<double> task_device_seconds;

    /** Total device time of a serial sweep (jobs = 1). */
    double serialSeconds() const;

    /**
     * Sweep makespan with @p workers workers, modeling the pool's
     * dynamic dispatch: tasks start in order, each on the earliest
     * free worker.
     */
    double makespanSeconds(int workers) const;
};

/**
 * Identity summary of one finished build, exported for the deploy
 * layer's repository manifests: everything a lifecycle system needs
 * to answer "where did this plan come from, and would a rebuild
 * reproduce it" without deserializing the plan itself. The tactic
 * fingerprint is Engine::fingerprint() of the produced engine —
 * equal fingerprints mean bit-identical binaries.
 */
struct BuildProvenance
{
    std::string model;
    std::string device;
    nn::Precision precision = nn::Precision::kFp16;
    std::uint64_t build_id = 0;
    std::uint64_t tactic_fingerprint = 0;
    std::int64_t timing_measurements = 0; //!< fresh tactic timings
    std::int64_t timing_cache_hits = 0;   //!< cache-served timings
    std::int64_t timing_shared = 0;       //!< signature-shared timings
    int jobs = 1;                         //!< resolved sweep workers
};

/** Full build report. */
struct BuildReport
{
    OptimizerStats optimizer;
    std::vector<TuningRecord> tuning;
    TimingWorkload workload;
    BuildProvenance provenance;

    /** Per-layer precision decisions (kMixed builds only; empty
     *  `decisions` otherwise). */
    PrecisionPlan precision_plan;
};

/**
 * Engine builder bound to one target device.
 */
class Builder
{
  public:
    /**
     * @param device Device the engine is compiled *on* (and for).
     * @param config Build options.
     */
    Builder(const gpusim::DeviceSpec &device,
            const BuilderConfig &config);

    const gpusim::DeviceSpec &device() const { return device_; }
    const BuilderConfig &config() const { return config_; }

    /**
     * Build an optimized engine from a frozen network. The network
     * is validate()d first; malformed graphs throw FatalError.
     * @param net    Source model.
     * @param report Optional out-param receiving the build log.
     */
    Engine build(const nn::Network &net,
                 BuildReport *report = nullptr) const;

    /**
     * Map the network for *un-optimized* execution: one FP32 kernel
     * per live layer, no fusion, no quantization. This is the
     * baseline the paper's Tables III/VII compare against.
     */
    Engine buildUnoptimized(const nn::Network &net) const;

  private:
    double measureTactic(const Tactic &tactic,
                         std::uint64_t noise_key) const;

    /**
     * Record this build's outcome into the global MetricRegistry:
     * sweep workload counters and histograms, timing-cache hit/miss
     * gauges, and thread-pool utilization. Runs serially at the end
     * of build(), in deterministic (topological) order.
     */
    void publishMetrics(const BuildReport &report,
                        const TimingCache *cache,
                        const ThreadPool *pool) const;

    gpusim::DeviceSpec device_;
    BuilderConfig config_;
};

} // namespace edgert::core

#endif // EDGERT_CORE_BUILDER_HH
