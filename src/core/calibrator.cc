#include "core/calibrator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::core {

using nn::Layer;
using nn::LayerKind;

Int8Calibrator::Int8Calibrator(const nn::Network &net,
                               std::uint64_t calibration_seed,
                               int batches)
{
    net.validate();
    if (batches < 1)
        fatal("Int8Calibrator: need at least one batch");

    // Structural range propagation: track an estimated activation
    // standard deviation per tensor. He-initialized conv/fc + relu
    // stacks are variance-preserving; other layers adjust it.
    std::unordered_map<std::string, double> sigma;
    for (const auto &in : net.inputs())
        sigma[in] = 1.0; // normalized input images

    Rng master(hashCombine(calibration_seed,
                           hashString(net.name())));
    // More calibration batches tighten the entropy clip toward its
    // asymptote.
    double clip_jitter = 0.08 / std::sqrt(static_cast<double>(
                                    batches));

    for (const auto &l : net.layers()) {
        if (l.kind == LayerKind::kInput)
            continue;
        double in_sigma = 1.0;
        if (!l.inputs.empty()) {
            auto it = sigma.find(l.inputs[0]);
            if (it != sigma.end())
                in_sigma = it->second;
        }
        double out_sigma = in_sigma;
        switch (l.kind) {
          case LayerKind::kConvolution:
          case LayerKind::kDeconvolution:
          case LayerKind::kFullyConnected:
            // He init: variance preserved pre-activation, halved by
            // a following relu (handled there); pre-act spread is
            // sqrt(2) wider.
            out_sigma = in_sigma * std::sqrt(2.0);
            break;
          case LayerKind::kActivation: {
            const auto &p = l.as<nn::ActivationParams>();
            if (p.mode == nn::ActivationParams::Mode::kRelu ||
                p.mode == nn::ActivationParams::Mode::kLeakyRelu ||
                p.mode == nn::ActivationParams::Mode::kPRelu)
                out_sigma = in_sigma / std::sqrt(2.0);
            else
                out_sigma = 0.5; // squashing nonlinearities
            break;
          }
          case LayerKind::kBatchNorm:
            out_sigma = 1.0;
            break;
          case LayerKind::kSoftmax:
            out_sigma = 0.25;
            break;
          case LayerKind::kPooling: {
            const auto &p = l.as<nn::PoolParams>();
            // Max pooling selects tail values; avg pooling shrinks.
            out_sigma = p.mode == nn::PoolParams::Mode::kMax
                            ? in_sigma * 1.2
                            : in_sigma * 0.8;
            break;
          }
          case LayerKind::kEltwise:
            out_sigma = in_sigma * std::sqrt(
                                       static_cast<double>(
                                           l.inputs.size()));
            break;
          case LayerKind::kConcat: {
            double mx = 0.0;
            for (const auto &in : l.inputs) {
                auto it = sigma.find(in);
                mx = std::max(mx,
                              it == sigma.end() ? 1.0 : it->second);
            }
            out_sigma = mx;
            break;
          }
          default:
            break; // pass-through
        }
        sigma[l.output] = out_sigma;

        // Entropy clipping: the KL-optimal range sits below the raw
        // 4-sigma max; the exact clip depends on the calibration
        // batch (seeded jitter).
        Rng rng = master.fork(l.output);
        double clip = 0.82 + rng.gaussian(0.0, clip_jitter);
        clip = std::clamp(clip, 0.6, 1.0);
        TensorRange r;
        r.abs_max = static_cast<float>(4.0 * out_sigma * clip);
        r.scale = r.abs_max / 127.0f;
        ranges_[l.output] = r;
    }
    // Inputs are calibrated too.
    for (const auto &in : net.inputs()) {
        TensorRange r;
        r.abs_max = 4.0f;
        r.scale = r.abs_max / 127.0f;
        ranges_[in] = r;
    }
}

const TensorRange &
Int8Calibrator::range(const std::string &tensor) const
{
    auto it = ranges_.find(tensor);
    if (it == ranges_.end())
        fatal("Int8Calibrator: no range for tensor '", tensor, "'");
    return it->second;
}

std::uint64_t
Int8Calibrator::tableFingerprint() const
{
    std::uint64_t h = 0x1234567890abcdefull;
    // Order-independent combination over the table.
    for (const auto &[name, r] : ranges_) {
        std::uint64_t bits;
        static_assert(sizeof(float) == 4);
        std::uint32_t b;
        std::memcpy(&b, &r.abs_max, 4);
        bits = hashCombine(hashString(name), b);
        h ^= mix64(bits);
    }
    return h;
}

} // namespace edgert::core
