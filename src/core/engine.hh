#ifndef EDGERT_CORE_ENGINE_HH
#define EDGERT_CORE_ENGINE_HH

/**
 * @file
 * The built inference engine — EdgeRT's analogue of a serialized
 * TensorRT plan.
 *
 * An Engine is an immutable sequence of execution steps, each
 * binding one fused node to the CUDA kernels its chosen tactic
 * launches and to the weight bytes the plan stores for it. The
 * engine remembers the device it was built for; running it on a
 * different device is allowed (the paper's cNX_rAGX / cAGX_rNX
 * experiments) but, as the paper shows, not necessarily faster on
 * bigger hardware.
 *
 * The fingerprint hashes the exact tactic selection: two engines
 * with equal fingerprints are bit-identical binaries and produce
 * identical outputs; engines with different fingerprints may
 * disagree on borderline inputs (Finding 2).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "core/optimizer.hh"
#include "gpusim/kernel.hh"
#include "nn/tensor.hh"

namespace edgert::core {

/** One fused node bound to its chosen tactic. */
struct ExecutionStep
{
    std::string node_name;
    FusedOpKind kind = FusedOpKind::kConv;
    std::string tactic_name;
    std::vector<gpusim::KernelDesc> kernels;
    nn::Precision precision = nn::Precision::kFp16;

    /** Weight bytes stored in the plan / uploaded at context init. */
    std::int64_t weight_plan_bytes = 0;

    /** Number of discrete H2D transfers for those weights. */
    int weight_transfers = 0;
};

/** Network-level input/output binding of an engine. */
struct IoDesc
{
    std::string name;
    nn::Dims dims;
    std::int64_t bytes = 0; //!< host-side FP32 payload
};

/**
 * An immutable, serializable inference engine.
 */
class Engine
{
  public:
    Engine() = default;
    Engine(std::string model_name, std::string device_name,
           nn::Precision precision, std::uint64_t build_id,
           std::vector<ExecutionStep> steps, std::vector<IoDesc> inputs,
           std::vector<IoDesc> outputs,
           std::uint64_t calibration_fingerprint = 0);

    const std::string &modelName() const { return model_name_; }

    /** Name of the device the engine was compiled on. */
    const std::string &deviceName() const { return device_name_; }

    nn::Precision precision() const { return precision_; }
    std::uint64_t buildId() const { return build_id_; }

    /** INT8 calibration-table hash; 0 for FP16/FP32 engines. */
    std::uint64_t calibrationFingerprint() const
    {
        return calibration_fingerprint_;
    }

    const std::vector<ExecutionStep> &steps() const { return steps_; }
    const std::vector<IoDesc> &inputs() const { return inputs_; }
    const std::vector<IoDesc> &outputs() const { return outputs_; }

    /** Total kernels launched per inference. */
    std::int64_t kernelCount() const;

    /** Distinct kernel names in the plan (≈ embedded cubins). */
    std::vector<std::string> uniqueKernelNames() const;

    /** Total plan weight payload in bytes. */
    std::int64_t weightBytes() const;

    /** Total discrete weight transfers at context creation. */
    int weightTransfers() const;

    /**
     * Fraction of the engine's compute (kernel FLOPs) executed by
     * INT8 steps, in [0, 1]. 0 for pure FP16/FP32 engines, 1 for
     * fully quantized ones; mixed engines land in between according
     * to how much work the precision selector kept at INT8.
     */
    double int8ComputeFraction() const;

    /**
     * Serialized plan size in bytes: header + one embedded cubin per
     * unique kernel + per-step metadata + weight payload. Matches
     * the "TensorRT engine size" columns of the paper's Table II.
     */
    std::int64_t planSizeBytes() const;

    /**
     * Identity of the built binary. Engines with equal fingerprints
     * compute bit-identical results.
     */
    std::uint64_t fingerprint() const;

    /**
     * Serialize the plan to bytes. The stream is an integrity
     * frame (size header + CRC32 footer, see common/framing.hh)
     * around the plan body, so any corruption or truncation in
     * transit is detected on load.
     */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Reconstruct an engine from serialize() output. Plan files are
     * untrusted input: corrupt, truncated, extended or otherwise
     * malformed bytes yield an error Status (never an abort).
     * Version-1 plans (pre-CRC) remain readable.
     */
    static Result<Engine>
    deserialize(const std::vector<std::uint8_t> &bytes);

  private:
    std::string model_name_;
    std::string device_name_;
    nn::Precision precision_ = nn::Precision::kFp16;
    std::uint64_t build_id_ = 0;
    std::vector<ExecutionStep> steps_;
    std::vector<IoDesc> inputs_;
    std::vector<IoDesc> outputs_;
    std::uint64_t calibration_fingerprint_ = 0;
};

} // namespace edgert::core

#endif // EDGERT_CORE_ENGINE_HH
