#include "core/optimizer.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace edgert::core {

using nn::Layer;
using nn::LayerKind;
using nn::Network;

const char *
fusedOpKindName(FusedOpKind k)
{
    switch (k) {
      case FusedOpKind::kConv: return "conv";
      case FusedOpKind::kDeconv: return "deconv";
      case FusedOpKind::kFullyConnected: return "gemm";
      case FusedOpKind::kPooling: return "pool";
      case FusedOpKind::kLrn: return "lrn";
      case FusedOpKind::kConcat: return "concat";
      case FusedOpKind::kEltwise: return "eltwise";
      case FusedOpKind::kSoftmax: return "softmax";
      case FusedOpKind::kUpsample: return "upsample";
      case FusedOpKind::kRegion: return "region";
      case FusedOpKind::kDetection: return "detection";
    }
    panic("unknown FusedOpKind");
}

OptimizedGraph::OptimizedGraph(const Network &net,
                               std::vector<OptNode> nodes,
                               OptimizerStats stats)
    : net_(&net), nodes_(std::move(nodes)), stats_(stats)
{}

std::int64_t
OptimizedGraph::liveParamCount() const
{
    std::int64_t total = 0;
    for (const auto &node : nodes_)
        for (auto lid : node.layer_ids)
            total += net_->layerParamCount(net_->layer(lid));
    return total;
}

namespace {

/** True for layers that are pure no-ops at inference time. */
bool
isNoOp(const Layer &l)
{
    return l.kind == LayerKind::kDropout ||
           l.kind == LayerKind::kFlatten ||
           l.kind == LayerKind::kIdentity;
}

/** True for layers a conv/fc/deconv node can absorb vertically. */
bool
isAbsorbable(const Layer &l)
{
    return l.kind == LayerKind::kBatchNorm ||
           l.kind == LayerKind::kScale ||
           l.kind == LayerKind::kActivation;
}

FusedOpKind
mainKind(const Layer &l)
{
    switch (l.kind) {
      case LayerKind::kConvolution: return FusedOpKind::kConv;
      case LayerKind::kDeconvolution: return FusedOpKind::kDeconv;
      case LayerKind::kFullyConnected:
        return FusedOpKind::kFullyConnected;
      case LayerKind::kPooling: return FusedOpKind::kPooling;
      case LayerKind::kLRN: return FusedOpKind::kLrn;
      case LayerKind::kConcat: return FusedOpKind::kConcat;
      case LayerKind::kEltwise: return FusedOpKind::kEltwise;
      case LayerKind::kSoftmax: return FusedOpKind::kSoftmax;
      case LayerKind::kUpsample: return FusedOpKind::kUpsample;
      case LayerKind::kRegion: return FusedOpKind::kRegion;
      case LayerKind::kDetectionOutput: return FusedOpKind::kDetection;
      default:
        panic("layer kind ", layerKindName(l.kind),
              " cannot start a fused node");
    }
}

} // namespace

OptimizedGraph
optimize(const Network &net, nn::Precision precision,
         const OptimizerOptions &options)
{
    net.validate();
    OptimizerStats stats;

    // Per-pass observability: one histogram sample and (when the
    // tracer is on) one `pass:<name>` span per compression pass.
    // The pass structure is fixed, so the clock-read count per
    // optimize() call is constant — what keeps FakeClock-driven
    // metric snapshots byte-reproducible.
    std::uint64_t pass_start = obs::clock().nowNanos();
    auto passDone = [&](const char *pass) {
        std::uint64_t now = obs::clock().nowNanos();
        obs::MetricRegistry::global()
            .histogram("builder.pass.duration_us",
                       {{"pass", pass}})
            .record(static_cast<double>(now - pass_start) * 1e-3);
        if (obs::Tracer::global().enabled()) {
            obs::SpanRecord rec;
            rec.name = std::string("pass:") + pass;
            rec.start_ns = pass_start;
            rec.end_ns = now;
            obs::Tracer::global().record(std::move(rec));
        }
        pass_start = now;
    };

    // ------------------------------------------------------------------
    // Pass 1a: dead-layer removal. Walk producers backwards from the
    // marked outputs; anything unreached is dead (GoogLeNet aux heads).
    // ------------------------------------------------------------------
    std::unordered_set<std::int32_t> live;
    if (options.dead_layer_removal) {
        std::deque<std::string> frontier(net.outputs().begin(),
                                         net.outputs().end());
        while (!frontier.empty()) {
            std::string t = frontier.front();
            frontier.pop_front();
            std::int32_t pid = net.producerOf(t);
            if (pid < 0 || live.count(pid))
                continue;
            live.insert(pid);
            for (const auto &in : net.layer(pid).inputs)
                frontier.push_back(in);
        }
    } else {
        for (const auto &l : net.layers())
            live.insert(l.id);
    }
    for (const auto &l : net.layers())
        if (!live.count(l.id) && l.kind != LayerKind::kInput)
            stats.dead_layers_removed++;
    passDone("dead_layer_removal");

    // ------------------------------------------------------------------
    // Pass 1b: no-op elision. Dropout / flatten / identity layers are
    // removed; their outputs alias their inputs.
    // ------------------------------------------------------------------
    std::unordered_map<std::string, std::string> alias;
    auto resolve = [&](const std::string &t) {
        std::string cur = t;
        auto it = alias.find(cur);
        while (it != alias.end()) {
            cur = it->second;
            it = alias.find(cur);
        }
        return cur;
    };

    // ------------------------------------------------------------------
    // Pass 2: vertical fusion. Build fused nodes in topological order.
    // ------------------------------------------------------------------
    std::unordered_set<std::int32_t> consumed; // absorbed layers
    std::vector<OptNode> nodes;

    // Single-consumer map for fusion legality.
    auto soleConsumer = [&](const std::string &tensor) -> std::int32_t {
        std::int32_t found = -1;
        int count = 0;
        for (auto cid : net.consumersOf(tensor)) {
            if (!live.count(cid))
                continue;
            found = cid;
            count++;
        }
        return count == 1 ? found : -1;
    };

    for (const auto &l : net.layers()) {
        if (l.kind == LayerKind::kInput || !live.count(l.id) ||
            consumed.count(l.id))
            continue;
        if (isNoOp(l)) {
            if (options.noop_elision) {
                alias[l.output] = resolve(l.inputs[0]);
                stats.noops_elided++;
                continue;
            }
            // Ablation: keep the no-op as a pointwise copy node.
            OptNode node;
            node.id = static_cast<int>(nodes.size());
            node.name = l.name;
            node.kind = FusedOpKind::kEltwise;
            node.layer_ids = {l.id};
            node.inputs = {resolve(l.inputs[0])};
            node.outputs = {l.output};
            nodes.push_back(std::move(node));
            continue;
        }
        if (isAbsorbable(l)) {
            // An absorbable layer that was not fused into a producer
            // (e.g. activation after concat) becomes its own
            // pointwise node, executed as an eltwise kernel.
            OptNode node;
            node.id = static_cast<int>(nodes.size());
            node.name = l.name;
            node.kind = FusedOpKind::kEltwise;
            node.layer_ids = {l.id};
            node.inputs = {resolve(l.inputs[0])};
            node.outputs = {l.output};
            node.has_activation = l.kind == LayerKind::kActivation;
            nodes.push_back(std::move(node));
            continue;
        }

        OptNode node;
        node.id = static_cast<int>(nodes.size());
        node.name = l.name;
        node.kind = mainKind(l);
        node.layer_ids = {l.id};
        for (const auto &in : l.inputs)
            node.inputs.push_back(resolve(in));

        // Greedy vertical absorption for conv-like and eltwise nodes.
        bool can_absorb =
            options.vertical_fusion &&
            (node.kind == FusedOpKind::kConv ||
             node.kind == FusedOpKind::kDeconv ||
             node.kind == FusedOpKind::kFullyConnected ||
             node.kind == FusedOpKind::kEltwise);
        std::string tail = l.output;
        while (can_absorb) {
            std::int32_t next = soleConsumer(tail);
            if (next < 0)
                break;
            const Layer &nl = net.layer(next);
            if (isNoOp(nl)) {
                if (!options.noop_elision)
                    break;
                // Elide through no-ops inside a fusion chain.
                alias[nl.output] = resolve(nl.inputs[0]);
                consumed.insert(nl.id);
                stats.noops_elided++;
                tail = nl.output;
                continue;
            }
            if (!isAbsorbable(nl))
                break;
            node.layer_ids.push_back(nl.id);
            consumed.insert(nl.id);
            stats.layers_fused++;
            tail = nl.output;
            if (nl.kind == LayerKind::kActivation) {
                // The activation is the terminal op of a fused
                // kernel; a scale/bn *after* it cannot be folded
                // into the pre-activation weights.
                node.has_activation = true;
                break;
            }
        }
        node.outputs = {resolve(tail)};
        nodes.push_back(std::move(node));
    }
    passDone("fusion");

    // ------------------------------------------------------------------
    // Pass 3: horizontal merging of sibling convolutions with the
    // same input tensor and identical geometry.
    // ------------------------------------------------------------------
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < nodes.size(); i++) {
        const OptNode &n = nodes[i];
        if (n.kind != FusedOpKind::kConv || n.inputs.size() != 1)
            continue;
        const auto &p =
            net.layer(n.layer_ids[0]).as<nn::ConvParams>();
        if (p.groups != 1)
            continue;
        std::string key = n.inputs[0] + "|k" +
                          std::to_string(p.kh()) + "x" +
                          std::to_string(p.kw()) + "s" +
                          std::to_string(p.stride) + "p" +
                          std::to_string(p.ph()) + "x" +
                          std::to_string(p.pw()) + "d" +
                          std::to_string(p.dilation) + "a" +
                          std::to_string(n.has_activation ? 1 : 0);
        groups[key].push_back(i);
    }

    if (!options.horizontal_merge)
        groups.clear();

    std::unordered_set<std::size_t> dropped;
    for (auto &[key, members] : groups) {
        if (members.size() < 2)
            continue;
        OptNode &first = nodes[members[0]];
        for (std::size_t j = 1; j < members.size(); j++) {
            OptNode &other = nodes[members[j]];
            first.merged_main_ids.push_back(other.layer_ids[0]);
            first.layer_ids.insert(first.layer_ids.end(),
                                   other.layer_ids.begin(),
                                   other.layer_ids.end());
            first.outputs.insert(first.outputs.end(),
                                 other.outputs.begin(),
                                 other.outputs.end());
            dropped.insert(members[j]);
        }
        stats.horizontal_merges++;
    }

    std::vector<OptNode> merged;
    merged.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); i++) {
        if (dropped.count(i))
            continue;
        nodes[i].id = static_cast<int>(merged.size());
        merged.push_back(std::move(nodes[i]));
    }
    passDone("horizontal_merge");

    // ------------------------------------------------------------------
    // Pass 4: precision assignment. Numerically sensitive heads stay
    // FP32; everything else takes the target precision (INT8 applies
    // to conv/gemm only, the rest falls back to FP16, matching
    // TensorRT's mixed-precision behaviour).
    // ------------------------------------------------------------------
    for (auto &n : merged) {
        switch (n.kind) {
          case FusedOpKind::kSoftmax:
          case FusedOpKind::kRegion:
          case FusedOpKind::kDetection:
            n.precision = nn::Precision::kFp32;
            break;
          case FusedOpKind::kConv:
          case FusedOpKind::kFullyConnected:
            n.precision = precision;
            break;
          default:
            n.precision = precision == nn::Precision::kFp32
                              ? nn::Precision::kFp32
                              : nn::Precision::kFp16;
            break;
        }
    }

    passDone("precision_assignment");

    stats.nodes = static_cast<int>(merged.size());

    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    reg.counter("builder.pass.dead_layers_removed")
        .add(stats.dead_layers_removed);
    reg.counter("builder.pass.noops_elided")
        .add(stats.noops_elided);
    reg.counter("builder.pass.layers_fused")
        .add(stats.layers_fused);
    reg.counter("builder.pass.horizontal_merges")
        .add(stats.horizontal_merges);
    reg.gauge("builder.graph.nodes")
        .set(static_cast<double>(stats.nodes));

    return OptimizedGraph(net, std::move(merged), stats);
}

} // namespace edgert::core
