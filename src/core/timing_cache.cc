#include "core/timing_cache.hh"

#include <cstdio>
#include <fstream>

#include "common/binio.hh"
#include "common/framing.hh"
#include "common/logging.hh"

namespace edgert::core {

namespace {

// Cache file format: "ERTC" magic. v1 was a bare body; v2 wraps the
// same body in the common integrity frame (size header + CRC32).
constexpr std::uint32_t kMagic = 0x43545245; // "ERTC"
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kFramedSince = 2;

// Minimum serialized entry: key length word + f64 seconds.
constexpr std::size_t kMinEntryBytes = 4 + 8;

} // namespace

TimingCache::TimingCache(TimingCache &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mu_);
    entries_ = std::move(other.entries_);
    stats_ = other.stats_;
    other.entries_.clear();
    other.stats_ = {};
}

TimingCache &
TimingCache::operator=(TimingCache &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(mu_, other.mu_);
        entries_ = std::move(other.entries_);
        stats_ = other.stats_;
        other.entries_.clear();
        other.stats_ = {};
    }
    return *this;
}

std::string
TimingCache::key(std::string_view device_name,
                 std::uint64_t node_signature,
                 std::string_view tactic_name)
{
    std::string k;
    k.reserve(device_name.size() + tactic_name.size() + 18);
    k += device_name;
    k += '|';
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(node_signature));
    k += hex;
    k += '|';
    k += tactic_name;
    return k;
}

std::optional<double>
TimingCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        stats_.misses++;
        return std::nullopt;
    }
    stats_.hits++;
    return it->second;
}

void
TimingCache::insert(const std::string &key, double seconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.emplace(key, seconds).second)
        stats_.inserts++;
}

std::size_t
TimingCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

TimingCacheStats
TimingCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
TimingCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
}

std::vector<std::uint8_t>
TimingCache::serialize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    BinWriter w;
    w.u64(entries_.size());
    // std::map iterates in key order: canonical bytes.
    for (const auto &[k, seconds] : entries_) {
        w.str(k);
        w.f64(seconds);
    }
    return frameWrap(kMagic, kVersion, w.bytes());
}

Result<TimingCache>
TimingCache::deserialize(const std::vector<std::uint8_t> &bytes)
{
    auto framed = frameUnwrap(kMagic, kFramedSince, kVersion, bytes,
                              "timing cache");
    if (!framed.ok())
        return framed.status().context("TimingCache::deserialize");

    BinReader r(framed->payload, BinReader::OnError::kStatus);
    std::uint64_t n = r.u64();
    if (r.ok() && n > r.remaining() / kMinEntryBytes)
        return errorStatus(ErrorCode::kDataLoss,
                           "TimingCache::deserialize: entry count ",
                           n, " exceeds the ", r.remaining(),
                           " remaining bytes");
    TimingCache cache;
    for (std::uint64_t i = 0; i < n && r.ok(); i++) {
        std::string k = r.str();
        double seconds = r.f64();
        cache.entries_.emplace(std::move(k), seconds);
    }
    if (!r.ok())
        return r.status().context("TimingCache::deserialize");
    if (!r.atEnd())
        return errorStatus(ErrorCode::kDataLoss,
                           "TimingCache::deserialize: ",
                           r.remaining(), " trailing bytes after ",
                           n, " entries");
    return cache;
}

void
TimingCache::save(const std::string &path) const
{
    auto bytes = serialize();
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("TimingCache: cannot write '", path, "'");
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f)
        fatal("TimingCache: short write to '", path, "'");
}

TimingCache
TimingCache::load(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return TimingCache{}; // cold start
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    auto cache = deserialize(bytes);
    if (!cache.ok()) {
        // The cache only accelerates builds; a damaged file costs a
        // cold re-tune, never the process.
        warn("TimingCache: ignoring corrupt cache file '", path,
             "': ", cache.status().message(),
             " (starting with an empty cache)");
        return TimingCache{};
    }
    return std::move(cache).value();
}

} // namespace edgert::core
