#ifndef EDGERT_CORE_TACTICS_HH
#define EDGERT_CORE_TACTICS_HH

/**
 * @file
 * The tactic library — hardware mapping (step 5 of the paper's
 * Figure 2).
 *
 * A tactic is one concrete way to execute a fused node: a list of
 * simulated CUDA kernels (cudnn-style names matching the ones the
 * paper's nvprof traces show) plus a weight-layout factor that
 * determines how many bytes the engine plan stores per parameter
 * (e.g. Winograd tactics keep pre-transformed filters and an FP16
 * fallback copy, which is why some engines are *larger* on AGX —
 * Table II).
 *
 * Tile geometry determines grid sizes; together with the build
 * device's SM count this drives wave quantization, which is what
 * makes the autotuner prefer different tactics on NX and AGX and
 * what makes a foreign engine run anomalously (Findings 4-6).
 */

#include <string>
#include <vector>

#include "core/optimizer.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel.hh"

namespace edgert::core {

/** One executable mapping of a fused node. */
struct Tactic
{
    std::string name;
    std::vector<gpusim::KernelDesc> kernels;

    /**
     * Plan bytes stored per FP32 parameter, relative to 4 bytes:
     * 0.5 = packed FP16, 1.0 = FP32, 1.39 = Winograd-transformed
     * FP16 + fallback copy, 0.3125 = INT8 + scales.
     */
    double weight_layout_factor = 0.5;

    /** Number of discrete weight uploads this tactic performs. */
    int weight_transfers = 0;
};

/** Static cost summary of a fused node. */
struct NodeCost
{
    std::int64_t flops = 0;
    std::int64_t in_elems = 0;
    std::int64_t out_elems = 0;
    std::int64_t weight_params = 0;
    std::int64_t elem_size = 2; //!< bytes per activation element
    nn::Dims in_dims;
    nn::Dims out_dims;
};

/** Analyze a fused node's aggregate work. */
NodeCost analyzeNode(const OptimizedGraph &graph, const OptNode &node);

/**
 * Enumerate candidate tactics for a node on a device.
 * Always returns at least one candidate.
 */
std::vector<Tactic> tacticCandidates(const OptimizedGraph &graph,
                                     const OptNode &node,
                                     const gpusim::DeviceSpec &device);

/**
 * The single generic FP32 mapping used for *un-optimized* execution
 * (framework runtime without TensorRT): one kernel per original
 * layer, no fusion, no tensor cores, full-precision traffic.
 */
Tactic unoptimizedTactic(const nn::Network &net, const nn::Layer &layer);

} // namespace edgert::core

#endif // EDGERT_CORE_TACTICS_HH
