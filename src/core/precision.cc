#include "core/precision.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::core {

namespace {

// Margin units per relative activation error. One full-INT8 build
// of a ~20-conv network lands near 0.3–0.6 total margin loss, which
// the surrogate maps to the sub-percent top-1 drops the
// quantization literature reports for well-calibrated INT8.
constexpr double kMarginLossPerRelErr = 8.0;

// Mean quantization step error: step/sqrt(12) per element, and the
// He-balanced reduction keeps sqrt(2) of it after accumulation.
constexpr double kStepNoise = 0.40824829046386302; // sqrt(1/6)

} // namespace

double
quantMarginLoss(const OptNode &node, const Int8Calibrator &calib)
{
    const auto &ranges = calib.ranges();
    double ratio = 1.0;
    if (!node.inputs.empty() && !node.outputs.empty()) {
        auto in = ranges.find(node.inputs[0]);
        auto out = ranges.find(node.outputs[0]);
        if (in != ranges.end() && out != ranges.end() &&
            in->second.abs_max > 0.0f && out->second.abs_max > 0.0f)
            ratio = static_cast<double>(in->second.abs_max) /
                    static_cast<double>(out->second.abs_max);
    }
    double rel_err = (1.0 / 127.0) * kStepNoise * ratio;
    return kMarginLossPerRelErr * rel_err;
}

std::uint64_t
PrecisionPlan::fingerprint() const
{
    std::uint64_t h = hashString("precision-plan");
    for (const auto &d : decisions) {
        h = hashCombine(h, hashString(d.node));
        h = hashCombine(h, static_cast<std::uint64_t>(d.int8));
    }
    return h;
}

PrecisionPlan
selectPrecisions(const OptimizedGraph &graph,
                 const Int8Calibrator &calib,
                 const PrecisionPlanConfig &cfg)
{
    PrecisionPlan plan;

    // Pass 1: per-layer budget.
    for (const auto &node : graph.nodes()) {
        if (node.precision != nn::Precision::kInt8)
            continue;
        PrecisionDecision d;
        d.node = node.name;
        d.margin_loss = quantMarginLoss(node, calib);
        d.int8 = d.margin_loss <= cfg.layer_margin_budget;
        plan.decisions.push_back(std::move(d));
    }

    // Pass 2: total budget — fall back the worst surviving nodes
    // (loss-descending, decision-order tie-break) until the sum
    // fits. Sorting an index list keeps `decisions` in node order.
    double total = 0.0;
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < plan.decisions.size(); i++)
        if (plan.decisions[i].int8) {
            total += plan.decisions[i].margin_loss;
            kept.push_back(i);
        }
    std::stable_sort(kept.begin(), kept.end(),
                     [&](std::size_t a, std::size_t b) {
                         return plan.decisions[a].margin_loss >
                                plan.decisions[b].margin_loss;
                     });
    for (std::size_t i : kept) {
        if (total <= cfg.total_margin_budget)
            break;
        plan.decisions[i].int8 = false;
        total -= plan.decisions[i].margin_loss;
    }

    for (const auto &d : plan.decisions) {
        if (d.int8) {
            plan.int8_nodes++;
            plan.quantized_loss += d.margin_loss;
        } else {
            plan.fp16_fallbacks++;
            plan.fallback_loss += d.margin_loss;
        }
    }
    return plan;
}

void
applyPrecisionPlan(OptimizedGraph &graph, const PrecisionPlan &plan)
{
    std::size_t di = 0;
    for (auto &node : graph.mutableNodes()) {
        if (node.precision != nn::Precision::kInt8)
            continue;
        if (di >= plan.decisions.size() ||
            plan.decisions[di].node != node.name)
            fatal("applyPrecisionPlan: plan does not match graph at "
                  "node '",
                  node.name, "'");
        if (!plan.decisions[di].int8)
            node.precision = nn::Precision::kFp16;
        di++;
    }
    if (di != plan.decisions.size())
        fatal("applyPrecisionPlan: plan has ", plan.decisions.size(),
              " decisions but the graph has ", di,
              " quantizable nodes");
}

double
precisionThroughputFactor(const gpusim::DeviceSpec &device,
                          nn::Precision precision)
{
    switch (precision) {
      case nn::Precision::kFp32:
        // CUDA-core FP32 vs tensor-core FP16 peak.
        return device.peakFp16Flops() > 0.0
                   ? device.peakFp32Flops() / device.peakFp16Flops()
                   : 1.0;
      case nn::Precision::kFp16:
        return 1.0;
      case nn::Precision::kInt8:
        return device.int8_speedup;
      case nn::Precision::kMixed:
        return 0.5 * (1.0 + device.int8_speedup);
    }
    return 1.0;
}

} // namespace edgert::core
