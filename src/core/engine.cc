#include "core/engine.hh"

#include <algorithm>
#include <set>

#include "common/binio.hh"
#include "common/framing.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::core {

namespace {

// Plan-size model constants, calibrated against Table II: a fixed
// header, one embedded cubin per distinct kernel, and per-step
// metadata (tensor bindings, tactic parameters).
constexpr std::int64_t kPlanHeaderBytes = 256 * 1024;
constexpr std::int64_t kCubinBytes = 100 * 1024;
constexpr std::int64_t kStepMetaBytes = 2 * 1024;

// Plan file format: "ERTE" magic. v1 was a bare body; v2 wraps the
// same body in the common integrity frame (size header + CRC32).
constexpr std::uint32_t kPlanMagic = 0x45545245; // "ERTE"
constexpr std::uint32_t kPlanVersion = 2;
constexpr std::uint32_t kPlanFramedSince = 2;

// Minimum serialized footprint of each variable-count element, used
// to validate untrusted counts before preallocating.
constexpr std::size_t kMinIoBytes = 4 + 5 * 8;
constexpr std::size_t kMinStepBytes = 4 + 1 + 4 + 1 + 8 + 4 + 4;
constexpr std::size_t kMinKernelBytes = 4 + 13 * 8 + 1;

} // namespace

Engine::Engine(std::string model_name, std::string device_name,
               nn::Precision precision, std::uint64_t build_id,
               std::vector<ExecutionStep> steps,
               std::vector<IoDesc> inputs, std::vector<IoDesc> outputs,
               std::uint64_t calibration_fingerprint)
    : model_name_(std::move(model_name)),
      device_name_(std::move(device_name)), precision_(precision),
      build_id_(build_id), steps_(std::move(steps)),
      inputs_(std::move(inputs)), outputs_(std::move(outputs)),
      calibration_fingerprint_(calibration_fingerprint)
{}

std::int64_t
Engine::kernelCount() const
{
    std::int64_t n = 0;
    for (const auto &s : steps_)
        n += static_cast<std::int64_t>(s.kernels.size());
    return n;
}

std::vector<std::string>
Engine::uniqueKernelNames() const
{
    std::set<std::string> names;
    for (const auto &s : steps_)
        for (const auto &k : s.kernels)
            names.insert(k.name);
    return {names.begin(), names.end()};
}

std::int64_t
Engine::weightBytes() const
{
    std::int64_t n = 0;
    for (const auto &s : steps_)
        n += s.weight_plan_bytes;
    return n;
}

int
Engine::weightTransfers() const
{
    int n = 0;
    for (const auto &s : steps_)
        n += s.weight_transfers;
    return n;
}

double
Engine::int8ComputeFraction() const
{
    double total = 0.0;
    double int8 = 0.0;
    for (const auto &s : steps_) {
        double flops = 0.0;
        for (const auto &k : s.kernels)
            flops += static_cast<double>(k.flops);
        total += flops;
        if (s.precision == nn::Precision::kInt8)
            int8 += flops;
    }
    return total > 0.0 ? int8 / total : 0.0;
}

std::int64_t
Engine::planSizeBytes() const
{
    // One embedded cubin per (kernel, launch shape) specialization —
    // TensorRT dedups compiled kernels at that granularity.
    std::set<std::pair<std::string, std::int64_t>> specializations;
    for (const auto &s : steps_)
        for (const auto &k : s.kernels)
            specializations.insert({k.name, k.grid_blocks});
    std::int64_t unique =
        static_cast<std::int64_t>(specializations.size());
    return kPlanHeaderBytes + unique * kCubinBytes +
           static_cast<std::int64_t>(steps_.size()) * kStepMetaBytes +
           weightBytes();
}

std::uint64_t
Engine::fingerprint() const
{
    std::uint64_t h = hashString(model_name_);
    h = hashCombine(h, static_cast<std::uint64_t>(precision_));
    h = hashCombine(h, calibration_fingerprint_);
    for (const auto &s : steps_) {
        h = hashCombine(h, hashString(s.tactic_name));
        for (const auto &k : s.kernels) {
            h = hashCombine(h, hashString(k.name));
            h = hashCombine(h,
                            static_cast<std::uint64_t>(k.grid_blocks));
        }
    }
    return h;
}

std::vector<std::uint8_t>
Engine::serialize() const
{
    BinWriter w;
    w.str(model_name_);
    w.str(device_name_);
    w.u8(static_cast<std::uint8_t>(precision_));
    w.u64(build_id_);
    w.u64(calibration_fingerprint_);

    auto writeIo = [&](const std::vector<IoDesc> &ios) {
        w.u32(static_cast<std::uint32_t>(ios.size()));
        for (const auto &io : ios) {
            w.str(io.name);
            w.i64(io.dims.n);
            w.i64(io.dims.c);
            w.i64(io.dims.h);
            w.i64(io.dims.w);
            w.i64(io.bytes);
        }
    };
    writeIo(inputs_);
    writeIo(outputs_);

    w.u32(static_cast<std::uint32_t>(steps_.size()));
    for (const auto &s : steps_) {
        w.str(s.node_name);
        w.u8(static_cast<std::uint8_t>(s.kind));
        w.str(s.tactic_name);
        w.u8(static_cast<std::uint8_t>(s.precision));
        w.i64(s.weight_plan_bytes);
        w.u32(static_cast<std::uint32_t>(s.weight_transfers));
        w.u32(static_cast<std::uint32_t>(s.kernels.size()));
        for (const auto &k : s.kernels) {
            w.str(k.name);
            w.i64(k.grid_blocks);
            w.i64(k.block_threads);
            w.i64(k.max_blocks_per_sm);
            w.i64(k.flops);
            w.i64(k.dram_bytes);
            w.u8(k.tensor_core);
            w.f64(k.efficiency);
            w.f64(k.tile_kb);
            w.i64(k.instructions);
            w.i64(k.ldg);
            w.i64(k.stg);
            w.i64(k.lds);
            w.i64(k.sts);
            w.i64(k.l1_hits);
            w.i64(k.l2_hits);
        }
    }
    return frameWrap(kPlanMagic, kPlanVersion, w.bytes());
}

Result<Engine>
Engine::deserialize(const std::vector<std::uint8_t> &bytes)
{
    auto framed = frameUnwrap(kPlanMagic, kPlanFramedSince,
                              kPlanVersion, bytes, "engine plan");
    if (!framed.ok())
        return framed.status().context("Engine::deserialize");

    // Plan files are untrusted: parse with a fallible reader, then
    // check its status once after the last field.
    BinReader r(framed->payload, BinReader::OnError::kStatus);

    std::string model = r.str();
    std::string device = r.str();
    std::uint8_t precision_raw = r.u8();
    std::uint64_t build_id = r.u64();
    std::uint64_t calib = r.u64();
    // Engine-level precision admits kMixed (a plan-level label);
    // per-step precisions below stay concrete (<= kInt8).
    if (precision_raw >
        static_cast<std::uint8_t>(nn::Precision::kMixed))
        return errorStatus(ErrorCode::kDataLoss,
                           "Engine::deserialize: invalid precision ",
                           static_cast<int>(precision_raw));
    auto precision = static_cast<nn::Precision>(precision_raw);

    auto readIo = [&]() {
        // count() bounds the prealloc by the bytes actually present.
        std::vector<IoDesc> ios(r.count(kMinIoBytes));
        for (auto &io : ios) {
            io.name = r.str();
            io.dims.n = r.i64();
            io.dims.c = r.i64();
            io.dims.h = r.i64();
            io.dims.w = r.i64();
            io.bytes = r.i64();
        }
        return ios;
    };
    auto inputs = readIo();
    auto outputs = readIo();

    std::vector<ExecutionStep> steps(r.count(kMinStepBytes));
    for (auto &s : steps) {
        s.node_name = r.str();
        std::uint8_t kind_raw = r.u8();
        if (kind_raw >
            static_cast<std::uint8_t>(FusedOpKind::kDetection))
            return errorStatus(
                ErrorCode::kDataLoss,
                "Engine::deserialize: invalid fused-op kind ",
                static_cast<int>(kind_raw), " in step '",
                s.node_name, "'");
        s.kind = static_cast<FusedOpKind>(kind_raw);
        s.tactic_name = r.str();
        std::uint8_t step_prec_raw = r.u8();
        if (step_prec_raw >
            static_cast<std::uint8_t>(nn::Precision::kInt8))
            return errorStatus(
                ErrorCode::kDataLoss,
                "Engine::deserialize: invalid step precision ",
                static_cast<int>(step_prec_raw), " in step '",
                s.node_name, "'");
        s.precision = static_cast<nn::Precision>(step_prec_raw);
        s.weight_plan_bytes = r.i64();
        s.weight_transfers = static_cast<int>(r.u32());
        s.kernels.resize(r.count(kMinKernelBytes));
        for (auto &k : s.kernels) {
            k.name = r.str();
            k.grid_blocks = r.i64();
            k.block_threads = r.i64();
            k.max_blocks_per_sm = r.i64();
            k.flops = r.i64();
            k.dram_bytes = r.i64();
            k.tensor_core = r.u8();
            k.efficiency = r.f64();
            k.tile_kb = r.f64();
            k.instructions = r.i64();
            k.ldg = r.i64();
            k.stg = r.i64();
            k.lds = r.i64();
            k.sts = r.i64();
            k.l1_hits = r.i64();
            k.l2_hits = r.i64();
        }
    }
    if (!r.ok())
        return r.status().context("Engine::deserialize");
    if (!r.atEnd())
        return errorStatus(ErrorCode::kDataLoss,
                           "Engine::deserialize: ", r.remaining(),
                           " trailing bytes after the last field");
    return Engine(std::move(model), std::move(device), precision,
                  build_id, std::move(steps), std::move(inputs),
                  std::move(outputs), calib);
}

} // namespace edgert::core
