#ifndef EDGERT_CORE_PRECISION_HH
#define EDGERT_CORE_PRECISION_HH

/**
 * @file
 * Per-layer precision selection for mixed-precision engines.
 *
 * Quantizing every conv/gemm to INT8 is not free: layers whose
 * calibrated input range is wide relative to their output range
 * amplify the 1/127 quantization step into the activations the
 * classifier margins depend on. TensorRT (and NNCF-style
 * quantization-aware flows) handle this by *falling back* the worst
 * layers to FP16 while keeping the rest in INT8.
 *
 * EdgeRT models the same decision analytically. For each quantizable
 * node the selector estimates a surrogate *margin loss* — how much
 * the node's INT8 rounding erodes the classifier's decision margin:
 *
 *   rel_err(node)  = (1/127) * sqrt(1/6) * r_in / r_out
 *   margin_loss    = kMarginLossPerRelErr * rel_err
 *
 * where r_in / r_out are the calibrator's per-tensor dynamic ranges.
 * The He-propagated ranges are variance-preserving on average, so
 * the ratio hovers near 1; the seeded entropy-clipping factor
 * perturbs it per tensor — which both differentiates layers (some
 * genuinely quantize worse) and ties the plan to the calibration
 * seed (refreshed calibration data can flip a borderline layer,
 * the F2-style nondeterminism source the cross-precision DriftGate
 * must tolerate).
 *
 * Selection is two budgeted passes, both deterministic:
 *  1. any node whose margin loss exceeds `layer_margin_budget`
 *     falls back to FP16;
 *  2. if the surviving total still exceeds `total_margin_budget`,
 *     the worst remaining nodes fall back (loss-descending,
 *     node-order tie-break) until the total fits.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/calibrator.hh"
#include "core/optimizer.hh"
#include "gpusim/device.hh"

namespace edgert::core {

/** Budgets of the per-layer precision selector. */
struct PrecisionPlanConfig
{
    /** Max surrogate margin loss one INT8 layer may contribute;
     *  anything above falls back to FP16. */
    double layer_margin_budget = 0.030;

    /** Max summed margin loss of all layers kept in INT8; the
     *  worst layers fall back until the plan fits. */
    double total_margin_budget = 0.50;
};

/** The selector's verdict for one quantizable node. */
struct PrecisionDecision
{
    std::string node;         //!< fused-node name
    bool int8 = false;        //!< kept in INT8 (else FP16 fallback)
    double margin_loss = 0.0; //!< estimated surrogate margin loss
};

/**
 * A resolved per-layer precision assignment for one engine build.
 * Only quantizable nodes (conv / fully-connected, i.e. those the
 * optimizer assigned kInt8) appear in `decisions`; every other node
 * keeps its optimizer-assigned precision.
 */
struct PrecisionPlan
{
    std::vector<PrecisionDecision> decisions;

    int int8_nodes = 0;      //!< nodes kept in INT8
    int fp16_fallbacks = 0;  //!< nodes pushed back to FP16

    /** Summed margin loss of the nodes kept in INT8 — the accuracy
     *  cost the engine actually pays. */
    double quantized_loss = 0.0;

    /** Margin loss avoided by the FP16 fallbacks. */
    double fallback_loss = 0.0;

    /** Order-sensitive hash of the decisions (provenance). */
    std::uint64_t fingerprint() const;
};

/**
 * Estimated surrogate margin loss of quantizing one node to INT8,
 * from the calibrator's range table (see file comment). Nodes whose
 * tensors the calibrator does not know contribute the base loss
 * (range ratio 1).
 */
double quantMarginLoss(const OptNode &node,
                       const Int8Calibrator &calib);

/**
 * Decide, per quantizable node of `graph`, whether INT8 stays
 * within the margin-loss budgets. The graph is the result of
 * optimize(net, kInt8, ...): nodes currently at kInt8 are the
 * candidates; everything else is left alone.
 */
PrecisionPlan selectPrecisions(const OptimizedGraph &graph,
                               const Int8Calibrator &calib,
                               const PrecisionPlanConfig &cfg = {});

/**
 * Flip the plan's FP16 fallbacks in `graph` (node precisions only;
 * tactic selection happens afterwards and sees the final
 * assignment).
 */
void applyPrecisionPlan(OptimizedGraph &graph,
                        const PrecisionPlan &plan);

/**
 * Nominal throughput multiplier of serving `precision` on `device`,
 * relative to the FP16 HMMA peak the spec sheets quote. INT8 runs
 * the IMMA/DP4A paths at device.int8_speedup; a mixed engine is
 * credited the midpoint (the spec-sheet estimate — the calibrated
 * placement path measures the real ratio). Used by the serve and
 * fleet layers to rank devices by *precision-effective* throughput
 * instead of raw FP16 FLOPs.
 */
double precisionThroughputFactor(const gpusim::DeviceSpec &device,
                                 nn::Precision precision);

} // namespace edgert::core

#endif // EDGERT_CORE_PRECISION_HH
