#include "core/folding.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace edgert::core {

using nn::Layer;
using nn::LayerKind;
using nn::Network;

namespace {

/** One un-merged fusion chain: a main layer plus absorbed layers. */
struct Chain
{
    std::int32_t main_id = -1;
    std::vector<std::int32_t> absorbed;
    std::string output; //!< original tensor name this chain yields
};

/** Split a (possibly horizontally merged) node into its chains. */
std::vector<Chain>
splitChains(const OptNode &node)
{
    std::vector<Chain> chains;
    std::size_t out_idx = 0;
    for (auto id : node.layer_ids) {
        bool is_main =
            chains.empty() ||
            std::find(node.merged_main_ids.begin(),
                      node.merged_main_ids.end(),
                      id) != node.merged_main_ids.end();
        if (is_main) {
            Chain c;
            c.main_id = id;
            if (out_idx < node.outputs.size())
                c.output = node.outputs[out_idx++];
            chains.push_back(std::move(c));
        } else {
            chains.back().absorbed.push_back(id);
        }
    }
    return chains;
}

/**
 * Fold a chain's normalization layers into (weights, bias); returns
 * the id of the fused activation layer, or -1.
 */
std::int32_t
foldChain(const Network &src, const nn::WeightsStore &src_weights,
          const Chain &chain, std::vector<float> &w,
          std::vector<float> &b)
{
    const Layer &main = src.layer(chain.main_id);
    std::int64_t oc = src.tensor(main.output).dims.c;
    auto blob = src_weights.materialize(main);

    bool has_bias = true;
    std::int64_t per_oc = 0;
    if (main.kind == LayerKind::kFullyConnected) {
        has_bias = main.as<nn::FcParams>().has_bias;
        per_oc = (static_cast<std::int64_t>(blob.size()) -
                  (has_bias ? oc : 0)) /
                 oc;
    } else {
        has_bias = main.as<nn::ConvParams>().has_bias;
        per_oc = (static_cast<std::int64_t>(blob.size()) -
                  (has_bias ? oc : 0)) /
                 oc;
    }

    w.assign(blob.begin(), blob.begin() + per_oc * oc);
    if (has_bias)
        b.assign(blob.begin() + per_oc * oc, blob.end());
    else
        b.assign(static_cast<std::size_t>(oc), 0.0f);

    std::int32_t act_id = -1;
    for (auto id : chain.absorbed) {
        const Layer &l = src.layer(id);
        auto aux = src_weights.materialize(l);
        switch (l.kind) {
          case LayerKind::kBatchNorm: {
            float eps = l.as<nn::BatchNormParams>().epsilon;
            const float *mu = aux.data();
            const float *var = aux.data() + oc;
            for (std::int64_t c = 0; c < oc; c++) {
                float inv = 1.0f / std::sqrt(var[c] + eps);
                for (std::int64_t k = 0; k < per_oc; k++)
                    w[static_cast<std::size_t>(c * per_oc + k)] *=
                        inv;
                b[static_cast<std::size_t>(c)] =
                    (b[static_cast<std::size_t>(c)] - mu[c]) * inv;
            }
            break;
          }
          case LayerKind::kScale: {
            bool sb = l.as<nn::ScaleParams>().has_bias;
            const float *gamma = aux.data();
            const float *beta = sb ? aux.data() + oc : nullptr;
            for (std::int64_t c = 0; c < oc; c++) {
                for (std::int64_t k = 0; k < per_oc; k++)
                    w[static_cast<std::size_t>(c * per_oc + k)] *=
                        gamma[c];
                b[static_cast<std::size_t>(c)] =
                    b[static_cast<std::size_t>(c)] * gamma[c] +
                    (beta ? beta[c] : 0.0f);
            }
            break;
          }
          case LayerKind::kActivation:
            act_id = id;
            break;
          default:
            panic("unexpected absorbed layer kind ",
                  layerKindName(l.kind));
        }
    }
    return act_id;
}

} // namespace

FoldedModel
foldOptimizedGraph(const OptimizedGraph &graph,
                   const nn::WeightsStore &src_weights)
{
    const Network &src = graph.network();
    FoldedModel out;
    out.network = std::make_unique<Network>(src.name() + "-folded");
    Network &dst = *out.network;

    // Pending weight overrides, installed after the store exists.
    std::vector<std::pair<std::string, std::vector<float>>> pending;

    for (const auto &in : src.inputs())
        dst.addInput(in, src.tensor(in).dims);

    auto copyBlob = [&](const std::string &dst_layer,
                        const Layer &src_layer) {
        if (src.layerParamCount(src_layer) > 0)
            pending.emplace_back(dst_layer,
                                 src_weights.materialize(src_layer));
    };

    for (const auto &node : graph.nodes()) {
        switch (node.kind) {
          case FusedOpKind::kConv:
          case FusedOpKind::kDeconv:
          case FusedOpKind::kFullyConnected: {
            for (const Chain &chain : splitChains(node)) {
                const Layer &main = src.layer(chain.main_id);
                std::vector<float> w, b;
                std::int32_t act_id =
                    foldChain(src, src_weights, chain, w, b);

                std::string conv_name =
                    act_id >= 0 ? chain.output + "::folded"
                                : chain.output;
                std::string in0 = node.inputs.at(0);
                if (node.kind == FusedOpKind::kFullyConnected) {
                    nn::FcParams p = main.as<nn::FcParams>();
                    p.has_bias = true;
                    dst.addFullyConnected(conv_name, in0, p);
                } else {
                    nn::ConvParams p = main.as<nn::ConvParams>();
                    p.has_bias = true;
                    if (node.kind == FusedOpKind::kDeconv)
                        dst.addDeconvolution(conv_name, in0, p);
                    else
                        dst.addConvolution(conv_name, in0, p);
                }
                std::vector<float> blob = std::move(w);
                blob.insert(blob.end(), b.begin(), b.end());
                pending.emplace_back(conv_name, std::move(blob));

                if (act_id >= 0) {
                    const Layer &act = src.layer(act_id);
                    dst.addActivation(
                        chain.output, conv_name,
                        act.as<nn::ActivationParams>());
                    copyBlob(chain.output, act); // PRelu slopes
                }
            }
            break;
          }
          default: {
            // Non-folding nodes: recreate the original layers,
            // rewiring the first layer to the node's (post-elision)
            // inputs and naming the last one after the node output.
            const std::string &out_name = node.outputs.at(0);
            for (std::size_t i = 0; i < node.layer_ids.size(); i++) {
                const Layer &l = src.layer(node.layer_ids[i]);
                bool last = i + 1 == node.layer_ids.size();
                std::string name =
                    last ? out_name
                         : out_name + "::f" + std::to_string(i);
                std::vector<std::string> ins;
                if (i == 0) {
                    ins = node.inputs;
                } else {
                    ins = {out_name + "::f" + std::to_string(i - 1)};
                }
                switch (l.kind) {
                  case LayerKind::kPooling:
                    dst.addPooling(name, ins.at(0),
                                   l.as<nn::PoolParams>());
                    break;
                  case LayerKind::kLRN:
                    dst.addLrn(name, ins.at(0),
                               l.as<nn::LrnParams>());
                    break;
                  case LayerKind::kConcat:
                    dst.addConcat(name, ins);
                    break;
                  case LayerKind::kEltwise:
                    dst.addEltwise(name, ins,
                                   l.as<nn::EltwiseParams>());
                    break;
                  case LayerKind::kSoftmax:
                    dst.addSoftmax(name, ins.at(0));
                    break;
                  case LayerKind::kUpsample:
                    dst.addUpsample(name, ins.at(0),
                                    l.as<nn::UpsampleParams>());
                    break;
                  case LayerKind::kRegion:
                    dst.addRegion(name, ins.at(0),
                                  l.as<nn::RegionParams>());
                    break;
                  case LayerKind::kDetectionOutput:
                    dst.addDetectionOutput(
                        name, ins,
                        l.as<nn::DetectionOutputParams>());
                    break;
                  case LayerKind::kActivation:
                    dst.addActivation(
                        name, ins.at(0),
                        l.as<nn::ActivationParams>());
                    copyBlob(name, l);
                    break;
                  case LayerKind::kBatchNorm:
                    dst.addBatchNorm(name, ins.at(0),
                                     l.as<nn::BatchNormParams>());
                    copyBlob(name, l);
                    break;
                  case LayerKind::kScale:
                    dst.addScale(name, ins.at(0),
                                 l.as<nn::ScaleParams>());
                    copyBlob(name, l);
                    break;
                  case LayerKind::kDropout:
                  case LayerKind::kFlatten:
                  case LayerKind::kIdentity:
                    dst.addIdentity(name, ins.at(0));
                    break;
                  default:
                    panic("foldOptimizedGraph: unexpected layer ",
                          layerKindName(l.kind));
                }
            }
            break;
          }
        }
    }

    // Outputs that survive the fused graph keep their names.
    for (const auto &o : src.outputs())
        dst.markOutput(o);
    dst.validate();

    out.weights = std::make_unique<nn::WeightsStore>(
        dst, src_weights.seed() ^ 0xf01dedull);
    for (auto &[name, blob] : pending)
        out.weights->setOverride(name, std::move(blob));
    return out;
}

} // namespace edgert::core
