#include "core/tactics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/analysis.hh"

namespace edgert::core {

using gpusim::KernelDesc;
using nn::Dims;
using nn::Layer;
using nn::LayerKind;

namespace {

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Fraction of a tile dimension doing useful work. */
double
tileFit(std::int64_t extent, std::int64_t tile)
{
    return static_cast<double>(extent) /
           static_cast<double>(ceilDiv(extent, tile) * tile);
}

/** Derive profiler counters from a kernel's modeled work. */
void
fillCounters(KernelDesc &k, std::int64_t in_elems,
             std::int64_t weight_elems, std::int64_t out_elems)
{
    k.ldg = (in_elems + weight_elems) / 8 + k.flops / 128;
    k.stg = std::max<std::int64_t>(1, out_elems / 4);
    if (k.tensor_core) {
        k.lds = k.flops / 8;
        k.sts = k.lds / 4;
    } else {
        k.lds = k.flops / 16;
        k.sts = k.lds / 4;
    }
    k.l1_hits = static_cast<std::int64_t>(0.72 *
                                          static_cast<double>(k.ldg));
    k.l2_hits = static_cast<std::int64_t>(
        0.19 * static_cast<double>(k.ldg));
    k.instructions =
        k.flops / 2 + k.ldg + k.stg + (k.lds + k.sts) / 4 + out_elems;
}

/** GEMM size-class suffix used in the cudnn-style kernel names. */
const char *
sizeClass(std::int64_t n)
{
    if (n <= 2048)
        return "small";
    if (n <= 16384)
        return "medium";
    return "interior";
}

struct TileDef
{
    int m;
    int n;
    double base_eff;
    int blocks_per_sm;
    double tile_kb;
};

constexpr TileDef kHmmaTiles[] = {
    {256, 64, 0.62, 1, 128.0},  {128, 128, 0.62, 1, 112.0},
    {256, 128, 0.64, 1, 160.0}, {128, 64, 0.58, 2, 80.0},
    {64, 64, 0.605, 2, 56.0},
};

constexpr TileDef kScudnnTiles[] = {
    {128, 64, 0.34, 2, 96.0},
    {128, 32, 0.32, 2, 64.0},
    {64, 64, 0.30, 2, 56.0},
};

constexpr TileDef kGemmTiles[] = {
    {128, 64, 0.70, 2, 96.0},
    {256, 64, 0.72, 1, 128.0},
    {64, 64, 0.66, 2, 56.0},
    {128, 128, 0.70, 1, 112.0},
};

} // namespace

NodeCost
analyzeNode(const OptimizedGraph &graph, const OptNode &node)
{
    const nn::Network &net = graph.network();
    NodeCost c;
    for (auto lid : node.layer_ids) {
        const Layer &l = net.layer(lid);
        c.flops += nn::layerFlops(net, l);
        c.weight_params += net.layerParamCount(l);
    }
    for (const auto &in : node.inputs)
        c.in_elems += net.tensor(in).dims.volume();
    for (const auto &out : node.outputs)
        c.out_elems += net.tensor(out).dims.volume();
    c.elem_size = static_cast<std::int64_t>(
        node.precision == nn::Precision::kFp32   ? 4
        : node.precision == nn::Precision::kFp16 ? 2
                                                 : 1);
    c.in_dims = net.tensor(node.inputs.at(0)).dims;
    c.out_dims = net.tensor(node.outputs.at(0)).dims;
    return c;
}

namespace {

/** Build the base kernel shared by all of a node's candidates. */
KernelDesc
baseKernel(const NodeCost &c, double traffic_factor,
           double weight_traffic_per_param)
{
    KernelDesc k;
    k.flops = c.flops;
    double act_bytes = static_cast<double>(c.in_elems + c.out_elems) *
                       static_cast<double>(c.elem_size);
    double w_bytes = static_cast<double>(c.weight_params) *
                     weight_traffic_per_param;
    k.dram_bytes = static_cast<std::int64_t>(act_bytes *
                                             traffic_factor +
                                             w_bytes);
    fillCounters(k, c.in_elems, c.weight_params, c.out_elems);
    return k;
}

int
paramTransfers(const OptimizedGraph &graph, const OptNode &node)
{
    // Fused nodes upload their (folded) parameters as one buffer;
    // the per-transfer driver overhead is therefore paid once per
    // param-bearing step, which is what the paper's Table X memcpy
    // times calibrate against.
    for (auto lid : node.layer_ids)
        if (graph.network().layerParamCount(
                graph.network().layer(lid)) > 0)
            return 1;
    return 0;
}

std::vector<Tactic>
convTactics(const OptimizedGraph &graph, const OptNode &node,
            const gpusim::DeviceSpec &device)
{
    const nn::Network &net = graph.network();
    const Layer &main = net.layer(node.layer_ids[0]);
    const auto &p = main.as<nn::ConvParams>();
    NodeCost c = analyzeNode(graph, node);
    int transfers = paramTransfers(graph, node);

    // Total output channels across horizontally merged siblings.
    std::int64_t m = 0;
    for (const auto &out : node.outputs)
        m += net.tensor(out).dims.c;
    std::int64_t n = c.out_dims.n * c.out_dims.h * c.out_dims.w;
    std::int64_t in_c = c.in_dims.c;

    bool fp16 = node.precision != nn::Precision::kFp32;
    bool int8 = node.precision == nn::Precision::kInt8;
    bool depthwise = p.groups > 1 && p.groups == in_c &&
                     p.out_channels == in_c;
    // Runtime weight bytes per parameter.
    double wpp = int8 ? 1.0 : fp16 ? 2.0 : 4.0;
    double layout = int8 ? 0.3125 : fp16 ? 0.5 : 1.0;
    // The Volta iGPUs run INT8 through DP4A/IMMA paths at roughly
    // 1.4-1.6x the effective FP16 HMMA rate, depending on how hard
    // the SM count presses the shared L2 (DeviceSpec::int8_speedup).
    double prec_eff = int8 ? device.int8_speedup : 1.0;

    std::vector<Tactic> out;

    if (depthwise) {
        for (const char *variant :
             {"cuDepthwise::depthwiseConvHMMAPrefetchKernel",
              "cuDepthwise::depthwiseConvVectorizedKernel"}) {
            Tactic t;
            t.name = variant;
            KernelDesc k = baseKernel(c, 1.5, wpp);
            k.name = variant;
            k.grid_blocks = ceilDiv(n * in_c, 256 * 8);
            k.block_threads = 256;
            k.max_blocks_per_sm = 4;
            k.tensor_core = fp16;
            k.strided_access = true; // per-channel NCHW walks
            k.efficiency = (std::string(variant).find("Prefetch") !=
                                    std::string::npos
                                ? 0.42
                                : 0.38) *
                           prec_eff;
            k.tile_kb = 24.0;
            t.kernels.push_back(std::move(k));
            t.weight_layout_factor = layout;
            t.weight_transfers = transfers;
            out.push_back(std::move(t));
        }
        return out;
    }

    const TileDef *tiles = fp16 ? kHmmaTiles : kScudnnTiles;
    std::size_t n_tiles = fp16 ? std::size(kHmmaTiles)
                               : std::size(kScudnnTiles);
    for (std::size_t i = 0; i < n_tiles; i++) {
        const TileDef &td = tiles[i];
        Tactic t;
        char buf[160];
        if (int8) {
            std::snprintf(
                buf, sizeof(buf),
                "trt_volta_i8816cudnn_%dx%d_ldg16_relu_%s_nt_v1",
                td.m, td.n, sizeClass(n));
        } else if (fp16) {
            std::snprintf(
                buf, sizeof(buf),
                "trt_volta_h884cudnn_%dx%d_ldg8_relu_exp_%s_nhwc_tn_v1",
                td.m, td.n, sizeClass(n));
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "trt_volta_scudnn_%dx%d_relu_%s_nn_v1", td.m, td.n,
                sizeClass(n));
        }
        t.name = buf;
        KernelDesc k = baseKernel(c, 1.15, wpp);
        k.name = buf;
        k.grid_blocks = ceilDiv(m, td.m) * ceilDiv(n, td.n);
        k.block_threads = 256;
        k.max_blocks_per_sm = td.blocks_per_sm;
        k.tensor_core = fp16;
        k.efficiency = td.base_eff * prec_eff * tileFit(m, td.m) *
                       tileFit(n, td.n);
        k.tile_kb = td.tile_kb;
        t.kernels.push_back(std::move(k));
        t.weight_layout_factor = layout;
        t.weight_transfers = transfers;
        out.push_back(std::move(t));
    }

    // Winograd: 3x3 stride-1 only; the large-tile variant is only
    // generated on 8-SM-class devices (cuDNN gates tactics by SM
    // count). Plan stores transformed FP16 filters plus a fallback
    // copy (layout 1.39) — the cause of the larger AGX engines in
    // Table II.
    bool wino_ok = fp16 && !int8 && p.kh() == 3 && p.kw() == 3 &&
                   p.stride == 1 && p.dilation == 1 &&
                   p.groups == 1 && in_c >= 64 && m >= 64 &&
                   c.out_dims.h * c.out_dims.w <= 160 &&
                   device.sm_count >= 8;
    if (wino_ok) {
        Tactic t;
        t.name = "trt_volta_h884cudnn_winograd_128x128_ldg1_ldg4_"
                 "relu_tile148t_nt_v1";
        NodeCost wc = c;
        wc.flops = static_cast<std::int64_t>(0.5 *
                                             static_cast<double>(
                                                 c.flops));
        // The kernel streams the compact FP16 filters and expands
        // them in shared memory, skipping the ldg8 refetches of the
        // direct tiles; runtime weight traffic is slightly *lower*
        // even though the plan stores the pre-transformed copy.
        KernelDesc k = baseKernel(wc, 1.10, 1.95);
        k.name = t.name;
        std::int64_t tiles_sp = ceilDiv(c.out_dims.h, 4) *
                                ceilDiv(c.out_dims.w, 4) *
                                c.out_dims.n;
        k.grid_blocks = ceilDiv(m, 64) * ceilDiv(tiles_sp, 32);
        k.block_threads = 256;
        k.max_blocks_per_sm = 1;
        k.tensor_core = true;
        k.efficiency = 0.60;
        k.tile_kb = 56.0;
        t.kernels.push_back(std::move(k));
        t.weight_layout_factor = 1.39;
        t.weight_transfers = transfers;
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<Tactic>
gemmTactics(const OptimizedGraph &graph, const OptNode &node,
            const gpusim::DeviceSpec &device)
{
    const nn::Network &net = graph.network();
    NodeCost c = analyzeNode(graph, node);
    int transfers = paramTransfers(graph, node);
    bool fp16 = node.precision != nn::Precision::kFp32;
    bool int8 = node.precision == nn::Precision::kInt8;
    std::int64_t m = net.tensor(node.outputs[0]).dims.c;
    std::int64_t n = c.out_dims.n;
    double wpp = int8 ? 1.0 : fp16 ? 2.0 : 4.0;
    double layout = int8 ? 0.3125 : fp16 ? 0.5 : 1.0;
    double prec_eff = int8 ? device.int8_speedup : 1.0;

    std::vector<Tactic> out;
    for (const TileDef &td : kGemmTiles) {
        Tactic t;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "trt_volta_%s_%dx%d_ldg8_tn_v1",
                      int8 ? "i8816gemm"
                      : fp16 ? "h884gemm"
                             : "s884gemm",
                      td.m, td.n);
        t.name = buf;
        KernelDesc k = baseKernel(c, 1.05, wpp);
        k.name = buf;
        k.grid_blocks = std::max<std::int64_t>(
            1, ceilDiv(m, td.m) * ceilDiv(n, 8));
        k.block_threads = 256;
        k.max_blocks_per_sm = td.blocks_per_sm;
        k.tensor_core = fp16;
        k.efficiency = td.base_eff * prec_eff * tileFit(m, td.m);
        k.tile_kb = td.tile_kb;
        t.kernels.push_back(std::move(k));
        t.weight_layout_factor = layout;
        t.weight_transfers = transfers;
        out.push_back(std::move(t));
    }
    return out;
}

/** Single-kernel memory-bound tactic helper. */
Tactic
pointwiseTactic(const NodeCost &c, const std::string &name,
                double traffic, double eff, int transfers,
                bool fp16)
{
    Tactic t;
    t.name = name;
    KernelDesc k = baseKernel(c, traffic, fp16 ? 2.0 : 4.0);
    k.name = name;
    k.grid_blocks = std::max<std::int64_t>(
        1, ceilDiv(c.out_elems, 256 * 8));
    k.block_threads = 256;
    k.max_blocks_per_sm = 4;
    k.tensor_core = false;
    k.efficiency = eff;
    k.tile_kb = 16.0;
    t.kernels.push_back(std::move(k));
    t.weight_layout_factor = fp16 ? 0.5 : 1.0;
    t.weight_transfers = transfers;
    return t;
}

} // namespace

std::vector<Tactic>
tacticCandidates(const OptimizedGraph &graph, const OptNode &node,
                 const gpusim::DeviceSpec &device)
{
    NodeCost c = analyzeNode(graph, node);
    int transfers = paramTransfers(graph, node);
    bool fp16 = node.precision != nn::Precision::kFp32;

    switch (node.kind) {
      case FusedOpKind::kConv:
        return convTactics(graph, node, device);
      case FusedOpKind::kFullyConnected:
        return gemmTactics(graph, node, device);
      case FusedOpKind::kDeconv: {
        std::vector<Tactic> out;
        out.push_back(pointwiseTactic(
            c, "trt_volta_hmma_deconv_128x64_nhwc_v1", 1.3, 0.40,
            transfers, fp16));
        out.push_back(pointwiseTactic(
            c, "trt_volta_hmma_deconv_64x64_nhwc_v1", 1.35, 0.37,
            transfers, fp16));
        return out;
      }
      case FusedOpKind::kPooling: {
        const auto &p = graph.network()
                            .layer(node.layer_ids[0])
                            .as<nn::PoolParams>();
        std::string name =
            p.mode == nn::PoolParams::Mode::kMax
                ? "trt_maxpool_nchw_hmma_kernel"
                : "trt_avgpool_nchw_hmma_kernel";
        return {pointwiseTactic(c, name, 1.0, 0.75, transfers, fp16)};
      }
      case FusedOpKind::kLrn: {
        Tactic t = pointwiseTactic(c, "lrn::lrnForward_NChWH2", 1.6,
                                   0.45, transfers, fp16);
        t.kernels[0].strided_access = true; // cross-channel window
        return {t};
      }
      case FusedOpKind::kConcat:
        return {pointwiseTactic(c, "trt_copy_nchw_kernel", 1.0, 0.85,
                                transfers, fp16)};
      case FusedOpKind::kEltwise:
        return {pointwiseTactic(c, "trt_pointwise_eltwise_relu_v0",
                                1.0, 0.80, transfers, fp16)};
      case FusedOpKind::kUpsample:
        return {pointwiseTactic(c, "trt_resize_nearest_nchw_kernel",
                                1.0, 0.80, transfers, fp16)};
      case FusedOpKind::kSoftmax: {
        Tactic t = pointwiseTactic(
            c, "softmax_kernel_warp_reduce_v1", 1.2, 0.55, transfers,
            false);
        if (c.out_dims.c >= 1000) {
            // Large class counts add a TopK pass (TensorRT lowers it
            // to CUB segmented radix sorts — visible in the paper's
            // mobilenet trace, Table XI).
            for (const char *srt :
                 {"cub::DeviceSegmentedRadixSortKernel1",
                  "cub::DeviceSegmentedRadixSortKernel2"}) {
                KernelDesc k;
                k.name = srt;
                k.grid_blocks = std::max<std::int64_t>(
                    1, ceilDiv(c.out_elems, 2048));
                k.block_threads = 256;
                k.max_blocks_per_sm = 2;
                k.flops = c.out_elems * 8;
                k.dram_bytes = c.out_elems * 16;
                k.efficiency = 0.35;
                k.tile_kb = 48.0;
                k.strided_access = true; // scatter/gather sort
                fillCounters(k, c.out_elems, 0, c.out_elems);
                t.kernels.push_back(std::move(k));
            }
        }
        return {t};
      }
      case FusedOpKind::kRegion:
        return {pointwiseTactic(c, "yolo_region_logistic_kernel", 1.2,
                                0.50, transfers, false)};
      case FusedOpKind::kDetection: {
        Tactic t;
        t.name = "ssd_detection_output";
        const char *names[] = {
            "cub::DeviceSegmentedRadixSortKernel1",
            "cub::DeviceSegmentedRadixSortKernel2",
            "ssd::decodeBBoxesKernel",
            "ssd::nmsOptKernel",
        };
        for (const char *kn : names) {
            KernelDesc k;
            k.name = kn;
            k.grid_blocks = std::max<std::int64_t>(
                1, ceilDiv(c.in_elems, 4096));
            k.block_threads = 256;
            k.max_blocks_per_sm = 2;
            k.flops = c.in_elems * 6;
            k.dram_bytes = c.in_elems * 8;
            k.efficiency = 0.35;
            k.tile_kb = 48.0;
            k.strided_access = true; // scatter/gather NMS + sort
            fillCounters(k, c.in_elems, 0, c.out_elems);
            t.kernels.push_back(std::move(k));
        }
        t.weight_layout_factor = 0.5;
        t.weight_transfers = transfers;
        return {t};
      }
    }
    (void)device;
    panic("tacticCandidates: unhandled node kind");
}

Tactic
unoptimizedTactic(const nn::Network &net, const Layer &layer)
{
    NodeCost c;
    c.flops = nn::layerFlops(net, layer);
    c.weight_params = net.layerParamCount(layer);
    for (const auto &in : layer.inputs)
        c.in_elems += net.tensor(in).dims.volume();
    c.out_elems = net.tensor(layer.output).dims.volume();
    c.elem_size = 4; // frameworks run FP32
    c.in_dims = net.tensor(layer.inputs.at(0)).dims;
    c.out_dims = net.tensor(layer.output).dims;

    Tactic t;
    bool heavy = layer.kind == LayerKind::kConvolution ||
                 layer.kind == LayerKind::kDeconvolution ||
                 layer.kind == LayerKind::kFullyConnected;
    std::string name =
        heavy ? std::string("scudnn_128x32_sliced1x1_ldg4_") +
                    layerKindName(layer.kind) + "_exp_small_nn_v0"
              : std::string("framework_") +
                    layerKindName(layer.kind) + "_fp32_kernel";
    t.name = name;
    KernelDesc k;
    k.name = name;
    k.flops = c.flops;
    // No fusion: every layer round-trips activations through DRAM at
    // FP32, and convolutions lower through im2col scratch buffers.
    double traffic = heavy ? 2.4 : 2.0;
    k.dram_bytes = static_cast<std::int64_t>(
        static_cast<double>(c.in_elems + c.out_elems) * 4.0 *
            traffic +
        static_cast<double>(c.weight_params) * 4.0);
    k.grid_blocks = std::max<std::int64_t>(
        1, heavy ? ceilDiv(c.out_dims.c, 32) *
                       ceilDiv(c.out_dims.h * c.out_dims.w, 128)
                 : ceilDiv(c.out_elems, 256 * 4));
    k.block_threads = 128;
    k.max_blocks_per_sm = 4;
    k.tensor_core = false;
    // Framework execution runs FP32 NCHW kernels with layer-wise
    // dispatch/sync; achieved efficiency is a few percent of peak
    // (calibrated against the paper's Table VII baseline FPS).
    k.efficiency = heavy ? 0.045 : 0.25;
    k.tile_kb = 48.0;
    fillCounters(k, c.in_elems, c.weight_params, c.out_elems);
    t.kernels.push_back(std::move(k));
    t.weight_layout_factor = 1.0;
    t.weight_transfers = c.weight_params > 0 ? 1 : 0;
    return t;
}

} // namespace edgert::core
