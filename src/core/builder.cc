#include "core/builder.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/threadpool.hh"
#include "core/calibrator.hh"
#include "core/timing_cache.hh"
#include "gpusim/timing.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace edgert::core {

namespace {

/**
 * Hash of everything the timing model can observe about a node:
 * fused-op kind, precision, dims, and the full candidate kernel
 * geometry. Equal signatures imply identical measurement inputs, so
 * a timing-cache hit is exact (see timing_cache.hh).
 */
std::uint64_t
nodeSignature(const OptNode &node, const NodeCost &cost,
              const std::vector<Tactic> &candidates)
{
    std::uint64_t h = mix64(static_cast<std::uint64_t>(node.kind));
    h = hashCombine(h, static_cast<std::uint64_t>(node.precision));
    auto mixDims = [&](const nn::Dims &d) {
        h = hashCombine(h, static_cast<std::uint64_t>(d.n));
        h = hashCombine(h, static_cast<std::uint64_t>(d.c));
        h = hashCombine(h, static_cast<std::uint64_t>(d.h));
        h = hashCombine(h, static_cast<std::uint64_t>(d.w));
    };
    mixDims(cost.in_dims);
    mixDims(cost.out_dims);
    for (const auto &t : candidates) {
        h = hashCombine(h, hashString(t.name));
        for (const auto &k : t.kernels) {
            h = hashCombine(h, hashString(k.name));
            h = hashCombine(
                h, static_cast<std::uint64_t>(k.grid_blocks));
            h = hashCombine(
                h, static_cast<std::uint64_t>(k.block_threads));
            h = hashCombine(h, static_cast<std::uint64_t>(k.flops));
            h = hashCombine(
                h, static_cast<std::uint64_t>(k.dram_bytes));
            h = hashCombine(
                h, static_cast<std::uint64_t>(
                       k.max_blocks_per_sm * 4 + k.tensor_core * 2 +
                       k.strided_access));
            std::uint64_t eff;
            static_assert(sizeof(eff) == sizeof(k.efficiency));
            std::memcpy(&eff, &k.efficiency, sizeof(eff));
            h = hashCombine(h, eff);
            std::uint64_t tile;
            std::memcpy(&tile, &k.tile_kb, sizeof(tile));
            h = hashCombine(h, tile);
        }
    }
    return h;
}

/** Autotuning state for one fused node. */
struct NodeSweep
{
    std::vector<Tactic> candidates;
    NodeCost cost;
    std::uint64_t signature = 0;
    std::vector<double> seconds; //!< per candidate (cache mode: shared)
};

} // namespace

double
TimingWorkload::serialSeconds() const
{
    double total = 0.0;
    for (double t : task_device_seconds)
        total += t;
    return total;
}

double
TimingWorkload::makespanSeconds(int workers) const
{
    if (workers < 1)
        workers = 1;
    // Greedy in dispatch order — exactly what the pool's atomic
    // task counter does: a finishing worker grabs the next task.
    std::vector<double> clock(static_cast<std::size_t>(workers),
                              0.0);
    for (double t : task_device_seconds)
        *std::min_element(clock.begin(), clock.end()) += t;
    return *std::max_element(clock.begin(), clock.end());
}

Builder::Builder(const gpusim::DeviceSpec &device,
                 const BuilderConfig &config)
    : device_(device), config_(config)
{
    if (config_.avg_timing_iterations < 1)
        fatal("Builder: avg_timing_iterations must be >= 1");
    if (config_.jobs < 0)
        fatal("Builder: jobs must be >= 0");
}

double
Builder::measureTactic(const Tactic &tactic,
                       std::uint64_t noise_key) const
{
    // The autotuner observes the candidate through noisy wall-clock
    // timing: each iteration re-runs the tactic's kernels on the
    // simulated device and perturbs the analytic duration with
    // measurement jitter. The jitter RNG is keyed by build id, node
    // identity and tactic — never wall-clock or thread schedule —
    // so a different build id yields a different (but internally
    // deterministic) set of measurements: the mechanical source of
    // non-deterministic engine generation (Finding 6), and what
    // keeps parallel builds bit-identical to serial ones.
    Rng rng(noise_key);
    double sum = 0.0;
    for (int i = 0; i < config_.avg_timing_iterations; i++) {
        double t = 0.0;
        for (const auto &k : tactic.kernels)
            t += gpusim::soloKernelSeconds(device_, k) +
                 device_.kernel_launch_us * 1e-6;
        double noise = rng.gaussian(0.0, config_.timing_noise);
        sum += t * std::max(0.2, 1.0 + noise);
    }
    return sum / static_cast<double>(config_.avg_timing_iterations);
}

Engine
Builder::build(const nn::Network &net, BuildReport *report) const
{
    // The report doubles as the source of the builder metrics, so
    // always collect one even when the caller passed none.
    BuildReport local_report;
    if (!report)
        report = &local_report;

    EDGERT_SPAN("build",
                {{"model", net.name()}, {"device", device_.name}});

    net.validate();
    // A mixed build starts from the fully quantized assignment and
    // lets the precision selector walk individual nodes back to FP16.
    nn::Precision node_target =
        config_.precision == nn::Precision::kMixed
            ? nn::Precision::kInt8
            : config_.precision;
    OptimizedGraph graph =
        optimize(net, node_target, config_.optimizer);
    report->optimizer = graph.stats();

    // INT8 and mixed builds calibrate activation ranges first; the
    // resulting table is part of the engine's identity.
    std::uint64_t calib_fp = 0;
    if (config_.precision == nn::Precision::kInt8 ||
        config_.precision == nn::Precision::kMixed) {
        Int8Calibrator calibrator(net, config_.calibration_seed);
        calib_fp = calibrator.tableFingerprint();
        if (config_.precision == nn::Precision::kMixed) {
            report->precision_plan = selectPrecisions(
                graph, calibrator, config_.precision_plan);
            applyPrecisionPlan(graph, report->precision_plan);
        }
    }

    const auto &nodes = graph.nodes();
    std::vector<NodeSweep> sweeps(nodes.size());
    TimingCache *cache = config_.timing_cache;

    int jobs = config_.jobs == 0 ? ThreadPool::defaultThreads()
                                 : config_.jobs;
    std::unique_ptr<ThreadPool> pool;
    if (jobs > 1 && nodes.size() > 1)
        pool = std::make_unique<ThreadPool>(jobs);
    auto forEach = [&](std::size_t n,
                       const std::function<void(std::size_t)> &body) {
        if (pool) {
            pool->parallelFor(n, body);
        } else {
            for (std::size_t i = 0; i < n; i++)
                body(i);
        }
    };

    // Phase 1 — per-node prep (parallel): enumerate candidates,
    // analyze cost and, without a cache, run the timing sweep with
    // the classic per-node noise keying. Work items write disjoint
    // slots, so scheduling cannot affect the result.
    forEach(nodes.size(), [&](std::size_t i) {
        EDGERT_SPAN("tactic_sweep", {{"node", nodes[i].name}});
        NodeSweep &s = sweeps[i];
        s.candidates = tacticCandidates(graph, nodes[i], device_);
        if (s.candidates.empty())
            return; // reported serially below
        s.cost = analyzeNode(graph, nodes[i]);
        if (cache) {
            s.signature = nodeSignature(nodes[i], s.cost,
                                        s.candidates);
        } else {
            s.seconds.resize(s.candidates.size());
            for (std::size_t j = 0; j < s.candidates.size(); j++)
                s.seconds[j] = measureTactic(
                    s.candidates[j],
                    hashCombine(
                        hashCombine(config_.build_id,
                                    hashString(nodes[i].name)),
                        hashCombine(
                            hashString(s.candidates[j].name), j)));
        }
    });
    for (std::size_t i = 0; i < nodes.size(); i++)
        if (sweeps[i].candidates.empty())
            panic("no tactic candidates for node ", nodes[i].name);

    // Phase 2 — cache-backed timing resolution. Measurements are
    // shared per node *signature*: the first node (in topological
    // order) with a given signature owns the sweep, and its noise
    // RNG is keyed by (build_id, signature, tactic, trial). Lookups
    // only see the pre-build cache — fresh measurements are
    // committed afterwards in owner order — so neither thread
    // schedule nor intra-build insert races can perturb the result.
    if (cache) {
        std::vector<std::size_t> owners;
        std::unordered_map<std::uint64_t, std::size_t> owner_of;
        for (std::size_t i = 0; i < nodes.size(); i++)
            if (owner_of.emplace(sweeps[i].signature, i).second)
                owners.push_back(i);

        std::vector<std::vector<char>> fresh(owners.size());
        forEach(owners.size(), [&](std::size_t oi) {
            NodeSweep &s = sweeps[owners[oi]];
            EDGERT_SPAN("tactic_sweep",
                        {{"node", nodes[owners[oi]].name}});
            s.seconds.resize(s.candidates.size());
            fresh[oi].assign(s.candidates.size(), 0);
            for (std::size_t j = 0; j < s.candidates.size(); j++) {
                EDGERT_SPAN("cache_lookup",
                            {{"tactic", s.candidates[j].name}});
                std::string key = TimingCache::key(
                    device_.name, s.signature, s.candidates[j].name);
                if (auto hit = cache->lookup(key)) {
                    s.seconds[j] = *hit;
                } else {
                    s.seconds[j] = measureTactic(
                        s.candidates[j],
                        hashCombine(
                            hashCombine(config_.build_id,
                                        s.signature),
                            hashCombine(
                                hashString(s.candidates[j].name),
                                j)));
                    fresh[oi][j] = 1;
                }
            }
        });
        for (std::size_t oi = 0; oi < owners.size(); oi++) {
            const NodeSweep &s = sweeps[owners[oi]];
            for (std::size_t j = 0; j < s.candidates.size(); j++)
                if (fresh[oi][j])
                    cache->insert(
                        TimingCache::key(device_.name, s.signature,
                                         s.candidates[j].name),
                        s.seconds[j]);
        }
        for (auto &s : sweeps)
            if (s.seconds.empty())
                s.seconds = sweeps[owner_of.at(s.signature)].seconds;

        {
            TimingWorkload &w = report->workload;
            w.jobs = jobs;
            double iters = config_.avg_timing_iterations;
            w.task_device_seconds.reserve(owners.size());
            for (std::size_t oi = 0; oi < owners.size(); oi++) {
                const NodeSweep &s = sweeps[owners[oi]];
                double dev = 0.0;
                for (std::size_t j = 0; j < s.candidates.size();
                     j++) {
                    if (fresh[oi][j]) {
                        w.measurements++;
                        dev += s.seconds[j] * iters;
                    } else {
                        w.cache_hits++;
                    }
                }
                w.task_device_seconds.push_back(dev);
            }
            for (std::size_t i = 0; i < nodes.size(); i++)
                if (owner_of.at(sweeps[i].signature) != i)
                    w.shared += static_cast<std::int64_t>(
                        sweeps[i].candidates.size());
        }
    } else {
        TimingWorkload &w = report->workload;
        w.jobs = jobs;
        double iters = config_.avg_timing_iterations;
        w.task_device_seconds.reserve(sweeps.size());
        for (const NodeSweep &s : sweeps) {
            double dev = 0.0;
            for (double sec : s.seconds)
                dev += sec * iters;
            w.measurements +=
                static_cast<std::int64_t>(s.seconds.size());
            w.task_device_seconds.push_back(dev);
        }
    }

    // Phase 3 — serial selection pass: argmin per node, build log,
    // step assembly. Cheap, and keeps report/step order exactly the
    // topological order regardless of jobs.
    std::vector<ExecutionStep> steps;
    steps.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); i++) {
        const auto &node = nodes[i];
        NodeSweep &s = sweeps[i];

        double best = std::numeric_limits<double>::infinity();
        double runner_up = best;
        std::size_t best_idx = 0;
        for (std::size_t j = 0; j < s.candidates.size(); j++) {
            double t = s.seconds[j];
            if (t < best) {
                runner_up = best;
                best = t;
                best_idx = j;
            } else if (t < runner_up) {
                runner_up = t;
            }
        }
        Tactic &chosen = s.candidates[best_idx];

        debug("tactic: ", node.name, " -> ", chosen.name, " (",
              s.candidates.size(), " candidates, best ", best * 1e3,
              " ms)");

        TuningRecord rec;
        rec.node_name = node.name;
        rec.chosen_tactic = chosen.name;
        rec.candidates = static_cast<int>(s.candidates.size());
        rec.best_ms = best * 1e3;
        rec.runner_up_ms =
            std::isfinite(runner_up) ? runner_up * 1e3 : 0.0;
        report->tuning.push_back(std::move(rec));

        ExecutionStep step;
        step.node_name = node.name;
        step.kind = node.kind;
        step.tactic_name = chosen.name;
        step.kernels = std::move(chosen.kernels);
        step.precision = node.precision;
        step.weight_plan_bytes = static_cast<std::int64_t>(
            static_cast<double>(s.cost.weight_params) * 4.0 *
            chosen.weight_layout_factor);
        step.weight_transfers = chosen.weight_transfers;
        steps.push_back(std::move(step));
    }

    std::vector<IoDesc> inputs;
    for (const auto &in : net.inputs()) {
        const auto &t = net.tensor(in);
        inputs.push_back({in, t.dims, t.dims.volume() * 4});
    }
    std::vector<IoDesc> outputs;
    for (const auto &out : net.outputs()) {
        const auto &t = net.tensor(out);
        outputs.push_back({out, t.dims, t.dims.volume() * 4});
    }

    publishMetrics(*report, cache, pool.get());

    Engine engine(net.name(), device_.name, config_.precision,
                  config_.build_id, std::move(steps),
                  std::move(inputs), std::move(outputs), calib_fp);

    BuildProvenance &prov = report->provenance;
    prov.model = net.name();
    prov.device = device_.name;
    prov.precision = config_.precision;
    prov.build_id = config_.build_id;
    prov.tactic_fingerprint = engine.fingerprint();
    prov.timing_measurements = report->workload.measurements;
    prov.timing_cache_hits = report->workload.cache_hits;
    prov.timing_shared = report->workload.shared;
    prov.jobs = report->workload.jobs;

    return engine;
}

void
Builder::publishMetrics(const BuildReport &report,
                        const TimingCache *cache,
                        const ThreadPool *pool) const
{
    using obs::MetricRegistry;
    MetricRegistry &reg = MetricRegistry::global();
    const obs::Labels device_label = {{"device", device_.name}};
    const TimingWorkload &w = report.workload;

    reg.counter("builder.builds", device_label).add();
    reg.counter("builder.tactic.measured", device_label)
        .add(w.measurements);
    reg.counter("builder.tactic.cache_served", device_label)
        .add(w.cache_hits);
    reg.counter("builder.tactic.shared", device_label)
        .add(w.shared);

    // One histogram sample per sweep task, in topological owner
    // order — parallel builds record the same sequence.
    obs::Histogram task_us = reg.histogram(
        "builder.sweep.task_device_us", device_label);
    for (double sec : w.task_device_seconds)
        task_us.record(sec * 1e6);

    reg.gauge("builder.sweep.jobs", device_label)
        .set(static_cast<double>(w.jobs));
    reg.gauge("builder.sweep.serial_device_ms", device_label)
        .set(w.serialSeconds() * 1e3);
    reg.gauge("builder.sweep.makespan_device_ms", device_label)
        .set(w.makespanSeconds(w.jobs) * 1e3);

    if (cache) {
        TimingCacheStats cs = cache->stats();
        reg.gauge("builder.timing_cache.hits", device_label)
            .set(static_cast<double>(cs.hits));
        reg.gauge("builder.timing_cache.misses", device_label)
            .set(static_cast<double>(cs.misses));
        reg.gauge("builder.timing_cache.inserts", device_label)
            .set(static_cast<double>(cs.inserts));
    }

    if (pool) {
        PoolStats ps = pool->stats();
        reg.gauge("builder.pool.workers", device_label)
            .set(static_cast<double>(pool->size()));
        reg.gauge("builder.pool.tasks", device_label)
            .set(static_cast<double>(ps.tasks_run));
        reg.gauge("builder.pool.max_queue_depth", device_label)
            .set(static_cast<double>(ps.max_queue_depth));
        reg.gauge("builder.pool.utilization_pct", device_label)
            .set(ps.utilizationPct());
    }
}

Engine
Builder::buildUnoptimized(const nn::Network &net) const
{
    net.validate();
    std::vector<ExecutionStep> steps;
    for (const auto &l : net.layers()) {
        if (l.kind == nn::LayerKind::kInput)
            continue;
        Tactic t = unoptimizedTactic(net, l);
        ExecutionStep step;
        step.node_name = l.name;
        // Reuse the closest fused-op kind for reporting purposes.
        switch (l.kind) {
          case nn::LayerKind::kConvolution:
            step.kind = FusedOpKind::kConv;
            break;
          case nn::LayerKind::kDeconvolution:
            step.kind = FusedOpKind::kDeconv;
            break;
          case nn::LayerKind::kFullyConnected:
            step.kind = FusedOpKind::kFullyConnected;
            break;
          case nn::LayerKind::kPooling:
            step.kind = FusedOpKind::kPooling;
            break;
          case nn::LayerKind::kSoftmax:
            step.kind = FusedOpKind::kSoftmax;
            break;
          case nn::LayerKind::kConcat:
            step.kind = FusedOpKind::kConcat;
            break;
          default:
            step.kind = FusedOpKind::kEltwise;
            break;
        }
        step.tactic_name = t.name;
        step.kernels = std::move(t.kernels);
        step.precision = nn::Precision::kFp32;
        step.weight_plan_bytes = net.layerParamCount(l) * 4;
        step.weight_transfers = t.weight_transfers;
        steps.push_back(std::move(step));
    }

    std::vector<IoDesc> inputs;
    for (const auto &in : net.inputs()) {
        const auto &t = net.tensor(in);
        inputs.push_back({in, t.dims, t.dims.volume() * 4});
    }
    std::vector<IoDesc> outputs;
    for (const auto &out : net.outputs()) {
        const auto &t = net.tensor(out);
        outputs.push_back({out, t.dims, t.dims.volume() * 4});
    }
    return Engine(net.name(), device_.name, nn::Precision::kFp32,
                  config_.build_id, std::move(steps),
                  std::move(inputs), std::move(outputs));
}

} // namespace edgert::core
