#include "core/builder.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/calibrator.hh"
#include "gpusim/timing.hh"

namespace edgert::core {

Builder::Builder(const gpusim::DeviceSpec &device,
                 const BuilderConfig &config)
    : device_(device), config_(config)
{
    if (config_.avg_timing_iterations < 1)
        fatal("Builder: avg_timing_iterations must be >= 1");
}

double
Builder::measureTactic(const Tactic &tactic,
                       const std::string &node_name,
                       std::uint64_t trial) const
{
    // Noiseless analytic duration of the candidate on this device.
    double t = 0.0;
    for (const auto &k : tactic.kernels)
        t += gpusim::soloKernelSeconds(device_, k) +
             device_.kernel_launch_us * 1e-6;

    // The autotuner observes this through noisy wall-clock timing:
    // the measurement RNG is keyed by build id, node and tactic, so
    // a different build id yields a different (but internally
    // deterministic) set of measurements — the mechanical source of
    // non-deterministic engine generation (Finding 6).
    Rng rng(hashCombine(
        hashCombine(config_.build_id, hashString(node_name)),
        hashCombine(hashString(tactic.name), trial)));
    double sum = 0.0;
    for (int i = 0; i < config_.avg_timing_iterations; i++) {
        double noise = rng.gaussian(0.0, config_.timing_noise);
        sum += t * std::max(0.2, 1.0 + noise);
    }
    return sum / static_cast<double>(config_.avg_timing_iterations);
}

Engine
Builder::build(const nn::Network &net, BuildReport *report) const
{
    OptimizedGraph graph =
        optimize(net, config_.precision, config_.optimizer);
    if (report)
        report->optimizer = graph.stats();

    // INT8 builds calibrate activation ranges first; the resulting
    // table is part of the engine's identity.
    std::uint64_t calib_fp = 0;
    if (config_.precision == nn::Precision::kInt8) {
        Int8Calibrator calibrator(net, config_.calibration_seed);
        calib_fp = calibrator.tableFingerprint();
    }

    std::vector<ExecutionStep> steps;
    steps.reserve(graph.nodes().size());

    for (const auto &node : graph.nodes()) {
        auto candidates = tacticCandidates(graph, node, device_);
        if (candidates.empty())
            panic("no tactic candidates for node ", node.name);

        double best = std::numeric_limits<double>::infinity();
        double runner_up = best;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < candidates.size(); i++) {
            double t = measureTactic(candidates[i], node.name, i);
            if (t < best) {
                runner_up = best;
                best = t;
                best_idx = i;
            } else if (t < runner_up) {
                runner_up = t;
            }
        }
        Tactic &chosen = candidates[best_idx];

        if (report) {
            TuningRecord rec;
            rec.node_name = node.name;
            rec.chosen_tactic = chosen.name;
            rec.candidates = static_cast<int>(candidates.size());
            rec.best_ms = best * 1e3;
            rec.runner_up_ms =
                std::isfinite(runner_up) ? runner_up * 1e3 : 0.0;
            report->tuning.push_back(std::move(rec));
        }

        NodeCost cost = analyzeNode(graph, node);
        ExecutionStep step;
        step.node_name = node.name;
        step.kind = node.kind;
        step.tactic_name = chosen.name;
        step.kernels = std::move(chosen.kernels);
        step.precision = node.precision;
        step.weight_plan_bytes = static_cast<std::int64_t>(
            static_cast<double>(cost.weight_params) * 4.0 *
            chosen.weight_layout_factor);
        step.weight_transfers = chosen.weight_transfers;
        steps.push_back(std::move(step));
    }

    std::vector<IoDesc> inputs;
    for (const auto &in : net.inputs()) {
        const auto &t = net.tensor(in);
        inputs.push_back({in, t.dims, t.dims.volume() * 4});
    }
    std::vector<IoDesc> outputs;
    for (const auto &out : net.outputs()) {
        const auto &t = net.tensor(out);
        outputs.push_back({out, t.dims, t.dims.volume() * 4});
    }

    return Engine(net.name(), device_.name, config_.precision,
                  config_.build_id, std::move(steps),
                  std::move(inputs), std::move(outputs), calib_fp);
}

Engine
Builder::buildUnoptimized(const nn::Network &net) const
{
    net.validate();
    std::vector<ExecutionStep> steps;
    for (const auto &l : net.layers()) {
        if (l.kind == nn::LayerKind::kInput)
            continue;
        Tactic t = unoptimizedTactic(net, l);
        ExecutionStep step;
        step.node_name = l.name;
        // Reuse the closest fused-op kind for reporting purposes.
        switch (l.kind) {
          case nn::LayerKind::kConvolution:
            step.kind = FusedOpKind::kConv;
            break;
          case nn::LayerKind::kDeconvolution:
            step.kind = FusedOpKind::kDeconv;
            break;
          case nn::LayerKind::kFullyConnected:
            step.kind = FusedOpKind::kFullyConnected;
            break;
          case nn::LayerKind::kPooling:
            step.kind = FusedOpKind::kPooling;
            break;
          case nn::LayerKind::kSoftmax:
            step.kind = FusedOpKind::kSoftmax;
            break;
          case nn::LayerKind::kConcat:
            step.kind = FusedOpKind::kConcat;
            break;
          default:
            step.kind = FusedOpKind::kEltwise;
            break;
        }
        step.tactic_name = t.name;
        step.kernels = std::move(t.kernels);
        step.precision = nn::Precision::kFp32;
        step.weight_plan_bytes = net.layerParamCount(l) * 4;
        step.weight_transfers = t.weight_transfers;
        steps.push_back(std::move(step));
    }

    std::vector<IoDesc> inputs;
    for (const auto &in : net.inputs()) {
        const auto &t = net.tensor(in);
        inputs.push_back({in, t.dims, t.dims.volume() * 4});
    }
    std::vector<IoDesc> outputs;
    for (const auto &out : net.outputs()) {
        const auto &t = net.tensor(out);
        outputs.push_back({out, t.dims, t.dims.volume() * 4});
    }
    return Engine(net.name(), device_.name, nn::Precision::kFp32,
                  config_.build_id, std::move(steps),
                  std::move(inputs), std::move(outputs));
}

} // namespace edgert::core
