#ifndef EDGERT_RUNTIME_MEASURE_HH
#define EDGERT_RUNTIME_MEASURE_HH

/**
 * @file
 * Measurement harnesses replicating the paper's methodology:
 *
 *  - measureLatency(): the Table VIII/IX/X protocol. Each run
 *    uploads the engine to GPU memory (the CUDA-memcpy component
 *    the paper dissects in Table X), copies the input, executes all
 *    kernels, copies the output back; 10 runs, mean and stddev.
 *    Optionally simulates an attached nvprof (per-op overhead).
 *
 *  - measureThroughput(): the Figure 3/4 protocol. N threads share
 *    one engine, each bound to its own CUDA stream; frames run
 *    back-to-back with a host think-time gap. Reports aggregate FPS
 *    and tegrastats-style GPU utilization over a warm window, at
 *    the platform's maximum clock.
 */

#include <vector>

#include "core/engine.hh"
#include "gpusim/device.hh"

namespace edgert::runtime {

/** Options for the latency protocol. */
struct LatencyOptions
{
    int runs = 10;
    bool with_profiler = true;     //!< nvprof attached (Table VIII)
    double profiler_overhead_us = 50.0; //!< per CUDA API call
    bool upload_weights_per_run = true; //!< paper's methodology
    double system_noise = 0.02;    //!< relative run-to-run jitter
    std::uint64_t noise_seed = 0;  //!< extra seed for the jitter
};

/** Latency measurement results (one engine on one device). */
struct LatencyStats
{
    std::vector<double> samples_ms;
    double mean_ms = 0.0;
    double std_ms = 0.0;
    double memcpy_mean_ms = 0.0; //!< CUDA memcpy portion per run
    double kernel_mean_ms = 0.0; //!< kernel portion per run
};

/** Run the latency protocol for an engine on a device. */
LatencyStats measureLatency(const core::Engine &engine,
                            const gpusim::DeviceSpec &device,
                            const LatencyOptions &opts = {});

/** Per-kernel aggregate from a latency run (nvprof summary mode). */
struct KernelProfile
{
    std::string name;
    int calls = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double std_ms = 0.0;
};

/**
 * Latency protocol variant that also returns nvprof-style per-kernel
 * aggregates across the runs.
 */
LatencyStats profileLatency(const core::Engine &engine,
                            const gpusim::DeviceSpec &device,
                            std::vector<KernelProfile> &kernels,
                            const LatencyOptions &opts = {});

/**
 * Options for the throughput/concurrency protocol. One knob set
 * shared by the benches, the Eq. 1 capacity probe and the EdgeServe
 * instance sizing — the host think-time gap and the warm-window
 * length live here rather than being hard-coded at call sites.
 */
struct ThroughputOptions
{
    int threads = 1;
    int frames_per_thread = 40; //!< measured (warm-window) frames
    int warmup_frames = 5;      //!< frames before the stats window
    double host_gap_us = 250.0; //!< per-frame CPU think time
    bool at_max_clock = true;   //!< paper uses MAXN for these runs

    /**
     * Pipelined (double-buffered) I/O: copies overlap compute, as a
     * steady-state camera pipeline does. Disable to serialize
     * copies into the compute stream.
     */
    bool pipelined = true;

    /**
     * The short single-stream probe estimateMaxThreads() runs to
     * find one thread's frame rate (and EdgeServe runs to size its
     * instance pools): same protocol, fewer frames.
     */
    static ThroughputOptions probe()
    {
        ThroughputOptions o;
        o.threads = 1;
        o.frames_per_thread = 12;
        return o;
    }
};

/** Throughput measurement results. */
struct ThroughputResult
{
    double aggregate_fps = 0.0;
    double per_thread_fps = 0.0;
    double gpu_util_pct = 0.0; //!< tegrastats GR3D analogue
    double copy_busy_pct = 0.0;
    double window_s = 0.0;
};

/** Run the concurrency protocol for an engine on a device. */
ThroughputResult measureThroughput(const core::Engine &engine,
                                   const gpusim::DeviceSpec &device,
                                   const ThroughputOptions &opts = {});

/**
 * The paper's Equation 1 bound on the number of concurrently
 * sustainable inference threads:
 *
 *   N = O(Fmem x Bwid / Bth)
 *
 * where Fmem x Bwid is the platform's memory bandwidth and Bth the
 * bandwidth one thread demands. Bth is estimated from the engine's
 * per-frame DRAM traffic at the single-thread frame rate.
 *
 * @param probe Options for the single-stream frame-rate probe
 *        (thread count is forced to 1); callers that tune the host
 *        gap or warm window pass the same struct they measure with.
 */
int estimateMaxThreads(const core::Engine &engine,
                       const gpusim::DeviceSpec &device,
                       const ThroughputOptions &probe =
                           ThroughputOptions::probe());

} // namespace edgert::runtime

#endif // EDGERT_RUNTIME_MEASURE_HH
