#ifndef EDGERT_RUNTIME_CONTEXT_HH
#define EDGERT_RUNTIME_CONTEXT_HH

/**
 * @file
 * Execution context: binds a built engine to a device simulator and
 * a stream (TensorRT IExecutionContext analogue). All enqueue calls
 * are asynchronous; the caller drives GpuSim::run() and reads event
 * timestamps.
 */

#include "core/engine.hh"
#include "gpusim/sim.hh"

namespace edgert::runtime {

/**
 * Events delimiting one enqueued inference. `begin` and `end`
 * always bracket the whole enqueue; the stage events in between are
 * only recorded by staged enqueues (see enqueueInference) and stay
 * -1 otherwise.
 */
struct InferenceHandle
{
    gpusim::EventId begin = -1;
    gpusim::EventId upload_done = -1;  //!< input H2D copies done
    gpusim::EventId compute_done = -1; //!< kernels done
    gpusim::EventId end = -1;
};

/**
 * One engine bound to one stream of one simulated device.
 */
class ExecutionContext
{
  public:
    /**
     * @param engine Built engine (outlives the context).
     * @param sim    Device simulator (outlives the context).
     * @param stream Stream this context enqueues on.
     */
    ExecutionContext(const core::Engine &engine, gpusim::GpuSim &sim,
                     int stream);

    const core::Engine &engine() const { return *engine_; }
    int stream() const { return stream_; }

    /**
     * Enqueue the engine's weight upload (context initialisation).
     * The paper's per-inference latency methodology re-uploads the
     * engine each run, so measureLatency() calls this per run.
     */
    void enqueueWeightUpload();

    /**
     * Enqueue one complete inference.
     * @param copy_input  Copy network inputs host-to-device first.
     * @param copy_output Copy network outputs back afterwards.
     * @param staged      Also record the upload_done/compute_done
     *        stage events so a request-scoped watcher can attribute
     *        latency to upload vs compute vs download. Off by
     *        default: the extra markers leave simulated timing
     *        untouched but shift later event ids, and existing
     *        byte-reproducibility fixtures pin those.
     */
    InferenceHandle enqueueInference(bool copy_input = true,
                                     bool copy_output = true,
                                     bool staged = false);

    /**
     * Enqueue one pipelined (double-buffered) inference: I/O copies
     * go to a dedicated copy stream and overlap with compute, as in
     * a steady-state camera pipeline. The returned events bracket
     * the compute stream only.
     */
    InferenceHandle enqueuePipelinedInference();

    /**
     * Enqueue one fully staged, cross-stream-pipelined inference:
     * pinned input uploads on `upload_stream`, kernels on the
     * context's compute stream, pinned output downloads on
     * `download_stream`, chained upload → compute → download with
     * GpuSim::waitEvent so consecutive frames overlap stage-wise
     * (frame i+1 uploads while frame i computes, which downloads
     * while frame i+2 uploads). All four handle events are
     * recorded: begin/upload_done on the upload stream,
     * compute_done on the compute stream, end on the download
     * stream. The caller sequences frame admission by delaying the
     * *upload* stream.
     */
    InferenceHandle enqueueStagedPipelined(int upload_stream,
                                           int download_stream);

    /** Enqueue host think-time before the next frame. */
    void enqueueHostGap(double seconds);

  private:
    const core::Engine *engine_;
    gpusim::GpuSim *sim_;
    int stream_;
    int copy_stream_ = -1; //!< lazily created for pipelined mode
};

/**
 * Estimated per-context device memory footprint (engine weights +
 * activation arena + stream bookkeeping), used by the concurrency
 * harness to bound thread counts against platform RAM.
 */
std::int64_t contextFootprintBytes(const core::Engine &engine);

} // namespace edgert::runtime

#endif // EDGERT_RUNTIME_CONTEXT_HH
