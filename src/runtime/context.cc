#include "runtime/context.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace edgert::runtime {

namespace {

obs::Counter
runtimeCounter(const char *name, const core::Engine &engine)
{
    return obs::MetricRegistry::global().counter(
        name, {{"model", engine.modelName()}});
}

} // namespace

ExecutionContext::ExecutionContext(const core::Engine &engine,
                                   gpusim::GpuSim &sim, int stream)
    : engine_(&engine), sim_(&sim), stream_(stream)
{
    EDGERT_SPAN("context_setup",
                {{"model", engine.modelName()},
                 {"stream", std::to_string(stream)}});
}

void
ExecutionContext::enqueueWeightUpload()
{
    std::int64_t bytes = engine_->weightBytes();
    int transfers = engine_->weightTransfers();
    if (bytes <= 0)
        return;
    sim_->memcpyH2D(stream_, static_cast<std::uint64_t>(bytes),
                    std::max(1, transfers), "engine_weights_h2d");
    runtimeCounter("runtime.weight_upload.bytes", *engine_)
        .add(bytes);
}

InferenceHandle
ExecutionContext::enqueueInference(bool copy_input, bool copy_output,
                                   bool staged)
{
    runtimeCounter("runtime.inference.enqueued", *engine_).add();
    InferenceHandle h;
    h.begin = sim_->recordEvent(stream_);
    if (copy_input) {
        for (const auto &in : engine_->inputs())
            sim_->memcpyH2D(stream_,
                            static_cast<std::uint64_t>(in.bytes), 1,
                            "input_h2d:" + in.name);
    }
    if (staged)
        h.upload_done = sim_->recordEvent(stream_);
    for (const auto &step : engine_->steps())
        for (const auto &k : step.kernels)
            sim_->launchKernel(stream_, k);
    if (staged)
        h.compute_done = sim_->recordEvent(stream_);
    if (copy_output) {
        for (const auto &out : engine_->outputs())
            sim_->memcpyD2H(stream_,
                            static_cast<std::uint64_t>(out.bytes), 1,
                            "output_d2h:" + out.name);
    }
    h.end = sim_->recordEvent(stream_);
    return h;
}

InferenceHandle
ExecutionContext::enqueuePipelinedInference()
{
    runtimeCounter("runtime.inference.enqueued", *engine_).add();
    if (copy_stream_ < 0)
        copy_stream_ = sim_->createStream();
    // Next frame's input upload and previous frame's output download
    // overlap with this frame's kernels (double buffering through
    // pre-pinned ring buffers).
    for (const auto &in : engine_->inputs())
        sim_->memcpyH2D(copy_stream_,
                        static_cast<std::uint64_t>(in.bytes), 1,
                        "input_h2d:" + in.name, /*pinned=*/true);
    for (const auto &out : engine_->outputs())
        sim_->memcpyD2H(copy_stream_,
                        static_cast<std::uint64_t>(out.bytes), 1,
                        "output_d2h:" + out.name, /*pinned=*/true);

    InferenceHandle h;
    h.begin = sim_->recordEvent(stream_);
    for (const auto &step : engine_->steps())
        for (const auto &k : step.kernels)
            sim_->launchKernel(stream_, k);
    h.end = sim_->recordEvent(stream_);
    return h;
}

InferenceHandle
ExecutionContext::enqueueStagedPipelined(int upload_stream,
                                         int download_stream)
{
    runtimeCounter("runtime.inference.enqueued", *engine_).add();
    InferenceHandle h;
    h.begin = sim_->recordEvent(upload_stream);
    for (const auto &in : engine_->inputs())
        sim_->memcpyH2D(upload_stream,
                        static_cast<std::uint64_t>(in.bytes), 1,
                        "input_h2d:" + in.name, /*pinned=*/true);
    h.upload_done = sim_->recordEvent(upload_stream);

    sim_->waitEvent(stream_, h.upload_done);
    for (const auto &step : engine_->steps())
        for (const auto &k : step.kernels)
            sim_->launchKernel(stream_, k);
    h.compute_done = sim_->recordEvent(stream_);

    sim_->waitEvent(download_stream, h.compute_done);
    for (const auto &out : engine_->outputs())
        sim_->memcpyD2H(download_stream,
                        static_cast<std::uint64_t>(out.bytes), 1,
                        "output_d2h:" + out.name, /*pinned=*/true);
    h.end = sim_->recordEvent(download_stream);
    return h;
}

void
ExecutionContext::enqueueHostGap(double seconds)
{
    if (seconds > 0.0)
        sim_->hostDelay(stream_, seconds);
}

std::int64_t
contextFootprintBytes(const core::Engine &engine)
{
    // Weights + an activation arena (TensorRT reserves the worst-case
    // region pool, roughly 6x the largest I/O binding) + fixed
    // per-context bookkeeping.
    std::int64_t io = 0;
    for (const auto &in : engine.inputs())
        io += in.bytes;
    for (const auto &out : engine.outputs())
        io += out.bytes;
    return engine.weightBytes() + 6 * io + (32 << 20);
}

} // namespace edgert::runtime
