#include "runtime/measure.hh"

#include <algorithm>
#include <map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "gpusim/sim.hh"
#include "obs/metrics.hh"
#include "runtime/context.hh"

namespace edgert::runtime {

namespace {

LatencyStats
runLatencyProtocol(const core::Engine &engine,
                   const gpusim::DeviceSpec &device,
                   const LatencyOptions &opts,
                   std::vector<KernelProfile> *kernel_profiles)
{
    gpusim::GpuSim sim(device);
    if (opts.with_profiler)
        sim.setProfilingOverheadUs(opts.profiler_overhead_us);
    sim.setTimingJitter(
        opts.system_noise,
        hashCombine(hashCombine(engine.fingerprint(),
                                hashString(device.name)),
                    opts.noise_seed));

    ExecutionContext ctx(engine, sim, /*stream=*/0);

    struct RunMarks
    {
        gpusim::EventId begin;
        gpusim::EventId end;
    };
    std::vector<RunMarks> marks;
    for (int r = 0; r < opts.runs; r++) {
        RunMarks m;
        m.begin = sim.recordEvent(0);
        if (opts.upload_weights_per_run || r == 0)
            ctx.enqueueWeightUpload();
        auto h = ctx.enqueueInference(true, true);
        m.end = h.end;
        marks.push_back(m);
    }
    sim.run();

    LatencyStats out;
    RunningStat total, memcpy_ms, kernel_ms;
    std::map<std::string, std::vector<double>> per_kernel;

    for (const auto &m : marks) {
        double t0 = sim.eventSeconds(m.begin);
        double t1 = sim.eventSeconds(m.end);
        out.samples_ms.push_back((t1 - t0) * 1e3);
        total.add((t1 - t0) * 1e3);

        double mc = 0.0, kn = 0.0;
        for (const auto &rec : sim.trace()) {
            if (rec.start_s < t0 - 1e-12 || rec.end_s > t1 + 1e-9)
                continue;
            if (rec.kind == gpusim::OpKind::kKernel) {
                kn += rec.durationSeconds() * 1e3;
                if (kernel_profiles)
                    per_kernel[rec.name].push_back(
                        rec.durationSeconds() * 1e3);
            } else if (rec.kind == gpusim::OpKind::kMemcpyH2D ||
                       rec.kind == gpusim::OpKind::kMemcpyD2H) {
                mc += rec.durationSeconds() * 1e3;
            }
        }
        memcpy_ms.add(mc);
        kernel_ms.add(kn);
    }

    out.mean_ms = total.mean();
    out.std_ms = total.stddev();
    out.memcpy_mean_ms = memcpy_ms.mean();
    out.kernel_mean_ms = kernel_ms.mean();

    // One sample per measured run, in run order.
    obs::Histogram latency = obs::MetricRegistry::global().histogram(
        "runtime.inference.latency_ms", {{"device", device.name}});
    for (double ms : out.samples_ms)
        latency.record(ms);

    if (kernel_profiles) {
        for (auto &[name, samples] : per_kernel) {
            KernelProfile kp;
            kp.name = name;
            kp.calls = static_cast<int>(samples.size()) / opts.runs;
            double sum = 0.0;
            for (double s : samples)
                sum += s;
            kp.total_ms = sum / opts.runs; // per-run total
            kp.mean_ms = mean(samples);
            kp.std_ms = stddev(samples);
            kernel_profiles->push_back(std::move(kp));
        }
        std::sort(kernel_profiles->begin(), kernel_profiles->end(),
                  [](const KernelProfile &a, const KernelProfile &b) {
                      return a.total_ms > b.total_ms;
                  });
    }
    return out;
}

} // namespace

LatencyStats
measureLatency(const core::Engine &engine,
               const gpusim::DeviceSpec &device,
               const LatencyOptions &opts)
{
    return runLatencyProtocol(engine, device, opts, nullptr);
}

LatencyStats
profileLatency(const core::Engine &engine,
               const gpusim::DeviceSpec &device,
               std::vector<KernelProfile> &kernels,
               const LatencyOptions &opts)
{
    return runLatencyProtocol(engine, device, opts, &kernels);
}

ThroughputResult
measureThroughput(const core::Engine &engine,
                  const gpusim::DeviceSpec &device,
                  const ThroughputOptions &opts)
{
    gpusim::DeviceSpec dev =
        opts.at_max_clock ? device.atMaxClock() : device;
    gpusim::GpuSim sim(dev);

    const int threads = std::max(1, opts.threads);
    std::vector<ExecutionContext> ctxs;
    ctxs.reserve(static_cast<std::size_t>(threads));
    std::vector<gpusim::EventId> warm_markers;
    std::vector<gpusim::EventId> last_frame;

    for (int t = 0; t < threads; t++) {
        int stream = t == 0 ? 0 : sim.createStream();
        ctxs.emplace_back(engine, sim, stream);
        // One-time engine upload per context (shared weights would
        // be one upload; we model the conservative per-context copy).
        ctxs.back().enqueueWeightUpload();
    }

    double gap_s = opts.host_gap_us * 1e-6;

    auto enqueue_frame = [&](int t) {
        auto &ctx = ctxs[static_cast<std::size_t>(t)];
        auto h = opts.pipelined ? ctx.enqueuePipelinedInference()
                                : ctx.enqueueInference(true, true);
        ctx.enqueueHostGap(gap_s);
        return h;
    };

    // Warmup frames.
    for (int t = 0; t < threads; t++) {
        for (int f = 0; f < opts.warmup_frames; f++)
            enqueue_frame(t);
        warm_markers.push_back(sim.recordEvent(
            ctxs[static_cast<std::size_t>(t)].stream()));
    }

    // Measured frames.
    for (int t = 0; t < threads; t++) {
        gpusim::EventId last = -1;
        for (int f = 0; f < opts.frames_per_thread; f++)
            last = enqueue_frame(t).end;
        last_frame.push_back(last);
    }

    // Run until every thread finished warmup, then open the stats
    // window (tegrastats sampling starts after the pipeline is hot).
    for (auto ev : warm_markers)
        sim.runUntilEvent(ev);
    double t_open = sim.nowSeconds();
    sim.resetStats();
    sim.run();

    double t_close = 0.0;
    for (auto ev : last_frame)
        t_close = std::max(t_close, sim.eventSeconds(ev));

    ThroughputResult res;
    res.window_s = t_close - t_open;
    std::int64_t frames = static_cast<std::int64_t>(threads) *
                          opts.frames_per_thread;
    res.aggregate_fps =
        res.window_s > 0.0
            ? static_cast<double>(frames) / res.window_s
            : 0.0;
    res.per_thread_fps = res.aggregate_fps / threads;
    auto st = sim.stats();
    // The stats window extends to full drain; normalize to the
    // measured span.
    double span = std::max(st.window_s, 1e-9);
    res.gpu_util_pct = 100.0 * st.sm_busy_integral /
                       (span * dev.sm_count);
    res.copy_busy_pct = 100.0 * st.copy_busy_s / span;

    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    const obs::Labels dev_label = {{"device", dev.name}};
    reg.counter("runtime.throughput.frames", dev_label).add(frames);
    reg.gauge("runtime.throughput.gpu_util_pct", dev_label)
        .set(res.gpu_util_pct);
    reg.gauge("runtime.throughput.copy_busy_pct", dev_label)
        .set(res.copy_busy_pct);
    reg.gauge("runtime.throughput.streams", dev_label)
        .set(static_cast<double>(threads));
    return res;
}

int
estimateMaxThreads(const core::Engine &engine,
                   const gpusim::DeviceSpec &device,
                   const ThroughputOptions &probe)
{
    gpusim::DeviceSpec dev = device.atMaxClock();

    // Per-frame DRAM traffic of the engine's kernels plus I/O.
    double bytes_per_frame = 0.0;
    for (const auto &step : engine.steps())
        for (const auto &k : step.kernels)
            bytes_per_frame += static_cast<double>(k.dram_bytes);
    for (const auto &in : engine.inputs())
        bytes_per_frame += static_cast<double>(in.bytes);
    for (const auto &out : engine.outputs())
        bytes_per_frame += static_cast<double>(out.bytes);

    // One thread's frame rate at max clock.
    ThroughputOptions topt = probe;
    topt.threads = 1;
    double fps1 = measureThroughput(engine, dev, topt).aggregate_fps;

    // Eq. 1: N = eta * (Fmem x Bwid) / Bth. eta captures achievable
    // bandwidth and the per-thread demand shrinking as threads
    // contend; the paper states the bound as O(.), so eta is a
    // single order-of-magnitude constant calibrated against the
    // Figure 3/4 saturation counts.
    constexpr double kEta = 9.0;
    double b_th = bytes_per_frame * fps1;
    if (b_th <= 0.0)
        return 1;
    double n = kEta * dev.dram_gbps * 1e9 / b_th;
    return std::max(1, static_cast<int>(n));
}

} // namespace edgert::runtime
