#include "obs/clock.hh"

#include <chrono>

namespace edgert::obs {

namespace {

SteadyClock g_default_clock;
std::atomic<Clock *> g_clock{nullptr};

} // namespace

std::uint64_t
SteadyClock::nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

FakeClock::FakeClock(std::uint64_t start_ns,
                     std::uint64_t auto_step_ns)
    : now_(start_ns), step_(auto_step_ns)
{}

std::uint64_t
FakeClock::nowNanos()
{
    return now_.fetch_add(step_, std::memory_order_relaxed);
}

void
FakeClock::advance(std::uint64_t ns)
{
    now_.fetch_add(ns, std::memory_order_relaxed);
}

std::uint64_t
FakeClock::peekNanos() const
{
    return now_.load(std::memory_order_relaxed);
}

Clock &
clock()
{
    Clock *c = g_clock.load(std::memory_order_acquire);
    return c ? *c : g_default_clock;
}

Clock *
setClock(Clock *c)
{
    return g_clock.exchange(c, std::memory_order_acq_rel);
}

} // namespace edgert::obs
