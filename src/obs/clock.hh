#ifndef EDGERT_OBS_CLOCK_HH
#define EDGERT_OBS_CLOCK_HH

/**
 * @file
 * Host-side time source for the observability layer.
 *
 * Span timestamps and pass durations come from this Clock interface
 * rather than from std::chrono directly, so the repo's
 * no-wall-clock-in-simulation rule extends to tests of the
 * observability layer itself: tools and benches run on SteadyClock,
 * tests install a FakeClock and get byte-identical traces and
 * metric snapshots across runs. Simulated (device) time never flows
 * through here — GpuSim keeps its own virtual clock.
 */

#include <atomic>
#include <cstdint>

namespace edgert::obs {

/** Monotonic nanosecond time source. Implementations are
 *  thread-safe (the parallel builder reads from worker threads). */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current monotonic timestamp in nanoseconds. */
    virtual std::uint64_t nowNanos() = 0;
};

/** std::chrono::steady_clock-backed time (tools and benches). */
class SteadyClock final : public Clock
{
  public:
    std::uint64_t nowNanos() override;
};

/**
 * Deterministic test clock. Every nowNanos() call returns the
 * current reading and then auto-advances by a fixed step, so spans
 * get nonzero, reproducible durations without any explicit
 * advance() choreography.
 */
class FakeClock final : public Clock
{
  public:
    explicit FakeClock(std::uint64_t start_ns = 0,
                       std::uint64_t auto_step_ns = 1000);

    std::uint64_t nowNanos() override;

    /** Move time forward by @p ns without consuming a reading. */
    void advance(std::uint64_t ns);

    /** Current reading without advancing. */
    std::uint64_t peekNanos() const;

  private:
    std::atomic<std::uint64_t> now_;
    std::uint64_t step_;
};

/** The process-wide clock; a SteadyClock unless overridden. */
Clock &clock();

/**
 * Override the process-wide clock (nullptr restores the default
 * SteadyClock). @return the previous override, or nullptr if the
 * default was active.
 */
Clock *setClock(Clock *c);

/** RAII clock override for tests. */
class ScopedClock
{
  public:
    explicit ScopedClock(Clock *c) : prev_(setClock(c)) {}
    ~ScopedClock() { setClock(prev_); }

    ScopedClock(const ScopedClock &) = delete;
    ScopedClock &operator=(const ScopedClock &) = delete;

  private:
    Clock *prev_;
};

} // namespace edgert::obs

#endif // EDGERT_OBS_CLOCK_HH
