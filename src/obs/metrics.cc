#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace edgert::obs {

namespace metrics_detail {

namespace {

/** Precomputed bucket upper bounds (8 per decade from 1e-3). */
const std::array<double, HistogramCell::kBuckets> &
bucketBounds()
{
    static const auto bounds = [] {
        std::array<double, HistogramCell::kBuckets> b{};
        for (int i = 0; i < HistogramCell::kBuckets; i++)
            b[static_cast<std::size_t>(i)] =
                HistogramCell::kFirstUpper *
                std::pow(10.0, i / 8.0);
        return b;
    }();
    return bounds;
}

} // namespace

double
HistogramCell::upperBound(int bucket)
{
    return bucketBounds()[static_cast<std::size_t>(bucket)];
}

void
HistogramCell::record(double v)
{
    if (!std::isfinite(v))
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    count++;
    sum += v;
    const auto &bounds = bucketBounds();
    auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    buckets[static_cast<std::size_t>(it - bounds.begin())]++;
}

void
HistogramCell::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    count = 0;
    sum = 0.0;
    min = 0.0;
    max = 0.0;
    buckets.fill(0);
}

double
HistogramCell::percentileLocked(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cum = 0;
    for (int i = 0; i <= kBuckets; i++) {
        cum += buckets[static_cast<std::size_t>(i)];
        if (cum >= rank) {
            double rep;
            if (i >= kBuckets) {
                rep = max;
            } else {
                double ub = upperBound(i);
                double lb = i == 0 ? ub * 0.1 : upperBound(i - 1);
                rep = std::sqrt(lb * ub); // geometric midpoint
            }
            return std::clamp(rep, min, max);
        }
    }
    return max;
}

} // namespace metrics_detail

std::uint64_t
Histogram::count() const
{
    if (!cell_)
        return 0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->count;
}

double
Histogram::sum() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->sum;
}

double
Histogram::min() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->min;
}

double
Histogram::max() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->max;
}

double
Histogram::percentile(double p) const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->percentileLocked(p);
}

std::string
MetricRegistry::key(const std::string &name, const Labels &labels)
{
    if (name.empty())
        fatal("MetricRegistry: empty metric name");
    if (labels.empty())
        return name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string k = name + "{";
    for (std::size_t i = 0; i < sorted.size(); i++) {
        if (i)
            k += ",";
        k += sorted[i].first + "=" + sorted[i].second;
    }
    k += "}";
    return k;
}

Counter
MetricRegistry::counter(const std::string &name,
                        const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (gauges_.count(k) || histograms_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = counters_.find(k);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::CounterCell>())
                 .first;
    return Counter(it->second.get());
}

Gauge
MetricRegistry::gauge(const std::string &name, const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.count(k) || histograms_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = gauges_.find(k);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::GaugeCell>())
                 .first;
    return Gauge(it->second.get());
}

Histogram
MetricRegistry::histogram(const std::string &name,
                          const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.count(k) || gauges_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = histograms_.find(k);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::HistogramCell>())
                 .first;
    return Histogram(it->second.get());
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[k, cell] : counters_)
        cell->value.store(0, std::memory_order_relaxed);
    for (auto &[k, cell] : gauges_)
        cell->value.store(0.0, std::memory_order_relaxed);
    for (auto &[k, cell] : histograms_)
        cell->reset();
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

bool
keptBy(const std::string &key,
       const std::vector<std::string> &prefixes)
{
    if (prefixes.empty())
        return true;
    for (const std::string &p : prefixes)
        if (key.compare(0, p.size(), p) == 0)
            return true;
    return false;
}

} // namespace

void
MetricRegistry::writeJson(
    std::ostream &os, const std::vector<std::string> &prefixes) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[k, cell] : counters_) {
        if (!keptBy(k, prefixes))
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": "
           << cell->value.load(std::memory_order_relaxed);
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[k, cell] : gauges_) {
        if (!keptBy(k, prefixes))
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": "
           << jsonNumber(
                  cell->value.load(std::memory_order_relaxed));
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[k, cell] : histograms_) {
        if (!keptBy(k, prefixes))
            continue;
        std::lock_guard<std::mutex> hlock(cell->mu);
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": {\"count\": " << cell->count
           << ", \"sum\": " << jsonNumber(cell->sum)
           << ", \"min\": " << jsonNumber(cell->min)
           << ", \"max\": " << jsonNumber(cell->max)
           << ", \"p50\": "
           << jsonNumber(cell->percentileLocked(0.50))
           << ", \"p95\": "
           << jsonNumber(cell->percentileLocked(0.95))
           << ", \"p99\": "
           << jsonNumber(cell->percentileLocked(0.99)) << "}";
        first = false;
    }
    os << (first ? "}\n" : "\n  }\n") << "}\n";
}

std::string
MetricRegistry::toJson(
    const std::vector<std::string> &prefixes) const
{
    std::ostringstream oss;
    writeJson(oss, prefixes);
    return oss.str();
}

void
MetricRegistry::save(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("MetricRegistry::save: cannot open '", path, "'");
    writeJson(f);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

} // namespace edgert::obs
