#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace edgert::obs {

namespace metrics_detail {

namespace {

/** Precomputed bucket upper bounds (8 per decade from 1e-3). */
const std::array<double, HistogramCell::kBuckets> &
bucketBounds()
{
    static const auto bounds = [] {
        std::array<double, HistogramCell::kBuckets> b{};
        for (int i = 0; i < HistogramCell::kBuckets; i++)
            b[static_cast<std::size_t>(i)] =
                HistogramCell::kFirstUpper *
                std::pow(10.0, i / 8.0);
        return b;
    }();
    return bounds;
}

} // namespace

double
HistogramCell::upperBound(int bucket)
{
    return bucketBounds()[static_cast<std::size_t>(bucket)];
}

void
HistogramCell::record(double v)
{
    if (!std::isfinite(v))
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    count++;
    sum += v;
    if (count <= kExactCap) {
        exact.push_back(v);
    } else if (!exact.empty()) {
        exact.clear();
        exact.shrink_to_fit();
    }
    const auto &bounds = bucketBounds();
    auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    buckets[static_cast<std::size_t>(it - bounds.begin())]++;
}

void
HistogramCell::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    count = 0;
    sum = 0.0;
    min = 0.0;
    max = 0.0;
    buckets.fill(0);
    exact.clear();
    exact.shrink_to_fit();
}

double
HistogramCell::percentileLocked(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count)));
    rank = std::max<std::uint64_t>(rank, 1);
    if (exactLocked()) {
        // Small sample: exact nearest-rank over the raw values.
        std::vector<double> sorted = exact;
        std::sort(sorted.begin(), sorted.end());
        return sorted[static_cast<std::size_t>(rank - 1)];
    }
    std::uint64_t cum = 0;
    for (int i = 0; i <= kBuckets; i++) {
        cum += buckets[static_cast<std::size_t>(i)];
        if (cum >= rank) {
            double rep;
            if (i >= kBuckets) {
                rep = max;
            } else {
                double ub = upperBound(i);
                double lb = i == 0 ? ub * 0.1 : upperBound(i - 1);
                rep = std::sqrt(lb * ub); // geometric midpoint
            }
            return std::clamp(rep, min, max);
        }
    }
    return max;
}

} // namespace metrics_detail

std::uint64_t
Histogram::count() const
{
    if (!cell_)
        return 0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->count;
}

double
Histogram::sum() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->sum;
}

double
Histogram::min() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->min;
}

double
Histogram::max() const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->max;
}

double
Histogram::percentile(double p) const
{
    if (!cell_)
        return 0.0;
    std::lock_guard<std::mutex> lock(cell_->mu);
    return cell_->percentileLocked(p);
}

std::string
MetricRegistry::key(const std::string &name, const Labels &labels)
{
    if (name.empty())
        fatal("MetricRegistry: empty metric name");
    if (labels.empty())
        return name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string k = name + "{";
    for (std::size_t i = 0; i < sorted.size(); i++) {
        if (i)
            k += ",";
        k += sorted[i].first + "=" + sorted[i].second;
    }
    k += "}";
    return k;
}

Counter
MetricRegistry::counter(const std::string &name,
                        const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (gauges_.count(k) || histograms_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = counters_.find(k);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::CounterCell>())
                 .first;
    return Counter(it->second.get());
}

Gauge
MetricRegistry::gauge(const std::string &name, const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.count(k) || histograms_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = gauges_.find(k);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::GaugeCell>())
                 .first;
    return Gauge(it->second.get());
}

Histogram
MetricRegistry::histogram(const std::string &name,
                          const Labels &labels)
{
    std::string k = key(name, labels);
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.count(k) || gauges_.count(k))
        fatal("metric '", k, "' already registered as another kind");
    auto it = histograms_.find(k);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::move(k),
                          std::make_unique<
                              metrics_detail::HistogramCell>())
                 .first;
    return Histogram(it->second.get());
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[k, cell] : counters_)
        cell->value.store(0, std::memory_order_relaxed);
    for (auto &[k, cell] : gauges_)
        cell->value.store(0.0, std::memory_order_relaxed);
    for (auto &[k, cell] : histograms_)
        cell->reset();
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

/** Value-type copy of a HistogramCell's state for lock staging. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t,
               metrics_detail::HistogramCell::kBuckets + 1>
        buckets{};
    std::vector<double> exact;
};

} // namespace

void
MetricRegistry::mergeFrom(const MetricRegistry &src,
                          const std::string &prefix)
{
    // Stage the source under its own lock only, so self-merges and
    // concurrent cross-merges cannot deadlock.
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> hists;
    {
        std::lock_guard<std::mutex> lock(src.mu_);
        counters.reserve(src.counters_.size());
        for (const auto &[k, cell] : src.counters_)
            counters.emplace_back(
                k, cell->value.load(std::memory_order_relaxed));
        gauges.reserve(src.gauges_.size());
        for (const auto &[k, cell] : src.gauges_)
            gauges.emplace_back(
                k, cell->value.load(std::memory_order_relaxed));
        hists.reserve(src.histograms_.size());
        for (const auto &[k, cell] : src.histograms_) {
            std::lock_guard<std::mutex> hlock(cell->mu);
            HistogramSnapshot snap;
            snap.count = cell->count;
            snap.sum = cell->sum;
            snap.min = cell->min;
            snap.max = cell->max;
            snap.buckets = cell->buckets;
            snap.exact = cell->exact;
            hists.emplace_back(k, std::move(snap));
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[k, v] : counters) {
        std::string key = prefix + k;
        if (gauges_.count(key) || histograms_.count(key))
            fatal("mergeFrom: metric '", key,
                  "' already registered as another kind");
        auto it = counters_.find(key);
        if (it == counters_.end())
            it = counters_
                     .emplace(std::move(key),
                              std::make_unique<
                                  metrics_detail::CounterCell>())
                     .first;
        it->second->value.fetch_add(v, std::memory_order_relaxed);
    }
    for (const auto &[k, v] : gauges) {
        std::string key = prefix + k;
        if (counters_.count(key) || histograms_.count(key))
            fatal("mergeFrom: metric '", key,
                  "' already registered as another kind");
        auto it = gauges_.find(key);
        if (it == gauges_.end())
            it = gauges_
                     .emplace(std::move(key),
                              std::make_unique<
                                  metrics_detail::GaugeCell>())
                     .first;
        it->second->value.store(v, std::memory_order_relaxed);
    }
    for (const auto &[k, snap] : hists) {
        std::string key = prefix + k;
        if (counters_.count(key) || gauges_.count(key))
            fatal("mergeFrom: metric '", key,
                  "' already registered as another kind");
        auto it = histograms_.find(key);
        if (it == histograms_.end())
            it = histograms_
                     .emplace(std::move(key),
                              std::make_unique<
                                  metrics_detail::HistogramCell>())
                     .first;
        metrics_detail::HistogramCell &cell = *it->second;
        std::lock_guard<std::mutex> hlock(cell.mu);
        bool dst_exact = cell.count == cell.exact.size();
        bool src_exact = snap.count == snap.exact.size();
        std::uint64_t combined = cell.count + snap.count;
        if (snap.count > 0) {
            if (cell.count == 0) {
                cell.min = snap.min;
                cell.max = snap.max;
            } else {
                cell.min = std::min(cell.min, snap.min);
                cell.max = std::max(cell.max, snap.max);
            }
        }
        cell.count = combined;
        cell.sum += snap.sum;
        for (std::size_t i = 0; i < cell.buckets.size(); i++)
            cell.buckets[i] += snap.buckets[i];
        if (dst_exact && src_exact &&
            combined <=
                metrics_detail::HistogramCell::kExactCap) {
            cell.exact.insert(cell.exact.end(),
                              snap.exact.begin(),
                              snap.exact.end());
        } else if (!cell.exact.empty()) {
            cell.exact.clear();
            cell.exact.shrink_to_fit();
        }
    }
}

namespace {

bool
keptBy(const std::string &key,
       const std::vector<std::string> &prefixes)
{
    if (prefixes.empty())
        return true;
    for (const std::string &p : prefixes)
        if (key.compare(0, p.size(), p) == 0)
            return true;
    return false;
}

} // namespace

void
MetricRegistry::writeJson(
    std::ostream &os, const std::vector<std::string> &prefixes) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[k, cell] : counters_) {
        if (!keptBy(k, prefixes))
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": "
           << cell->value.load(std::memory_order_relaxed);
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[k, cell] : gauges_) {
        if (!keptBy(k, prefixes))
            continue;
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": "
           << jsonNumber(
                  cell->value.load(std::memory_order_relaxed));
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[k, cell] : histograms_) {
        if (!keptBy(k, prefixes))
            continue;
        std::lock_guard<std::mutex> hlock(cell->mu);
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(k)
           << "\": {\"count\": " << cell->count << ", \"exact\": "
           << (cell->exactLocked() ? "true" : "false")
           << ", \"sum\": " << jsonNumber(cell->sum)
           << ", \"min\": " << jsonNumber(cell->min)
           << ", \"max\": " << jsonNumber(cell->max)
           << ", \"p50\": "
           << jsonNumber(cell->percentileLocked(0.50))
           << ", \"p95\": "
           << jsonNumber(cell->percentileLocked(0.95))
           << ", \"p99\": "
           << jsonNumber(cell->percentileLocked(0.99)) << "}";
        first = false;
    }
    os << (first ? "}\n" : "\n  }\n") << "}\n";
}

std::string
MetricRegistry::toJson(
    const std::vector<std::string> &prefixes) const
{
    std::ostringstream oss;
    writeJson(oss, prefixes);
    return oss.str();
}

void
MetricRegistry::save(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("MetricRegistry::save: cannot open '", path, "'");
    writeJson(f);
}

namespace {

/** A canonical key split back into its name and label parts. */
struct ParsedKey
{
    std::string name;
    Labels labels;
};

/**
 * Invert MetricRegistry::key(). Safe for every label this codebase
 * emits (model/device/pass names); a label *value* containing ','
 * or '=' would be mis-split, which key() never protects against
 * either.
 */
ParsedKey
parseKey(const std::string &key)
{
    ParsedKey out;
    std::size_t brace = key.find('{');
    if (brace == std::string::npos) {
        out.name = key;
        return out;
    }
    out.name = key.substr(0, brace);
    std::string body =
        key.substr(brace + 1, key.size() - brace - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        std::string item = body.substr(pos, comma - pos);
        std::size_t eq = item.find('=');
        if (eq != std::string::npos)
            out.labels.emplace_back(item.substr(0, eq),
                                    item.substr(eq + 1));
        pos = comma + 1;
    }
    return out;
}

/** Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') ||
                  (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
                  (c >= '0' && c <= '9' && !out.empty());
        out += ok ? c : '_';
    }
    if (out.empty())
        out = "_";
    return out;
}

/** Label-value escaping per the text exposition spec. */
std::string
promEscape(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** `{k="v",...}` rendering; "" when there are no labels. */
std::string
promLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); i++) {
        if (i)
            out += ",";
        out += promName(labels[i].first) + "=\"" +
               promEscape(labels[i].second) + "\"";
    }
    out += "}";
    return out;
}

/**
 * Sample lines grouped per family so each family gets one `# TYPE`
 * header even though `name` and `name{...}` need not be adjacent
 * in canonical key order (e.g. `namex` sorts between them).
 */
using FamilyLines = std::map<std::string, std::vector<std::string>>;

void
emitFamilies(std::ostream &os, const FamilyLines &families,
             const char *type)
{
    for (const auto &[fam, lines] : families) {
        os << "# TYPE " << fam << " " << type << "\n";
        for (const std::string &line : lines)
            os << line << "\n";
    }
}

} // namespace

void
MetricRegistry::writePromText(
    std::ostream &os, const std::vector<std::string> &prefixes) const
{
    std::lock_guard<std::mutex> lock(mu_);

    FamilyLines counter_fams;
    for (const auto &[k, cell] : counters_) {
        if (!keptBy(k, prefixes))
            continue;
        ParsedKey pk = parseKey(k);
        std::string fam = promName(pk.name);
        counter_fams[fam].push_back(
            fam + promLabels(pk.labels) + " " +
            std::to_string(
                cell->value.load(std::memory_order_relaxed)));
    }
    emitFamilies(os, counter_fams, "counter");

    FamilyLines gauge_fams;
    for (const auto &[k, cell] : gauges_) {
        if (!keptBy(k, prefixes))
            continue;
        ParsedKey pk = parseKey(k);
        std::string fam = promName(pk.name);
        gauge_fams[fam].push_back(
            fam + promLabels(pk.labels) + " " +
            jsonNumber(
                cell->value.load(std::memory_order_relaxed)));
    }
    emitFamilies(os, gauge_fams, "gauge");

    // Histograms export as summaries: our log-scale buckets do not
    // match Prometheus's cumulative `le` convention, but quantiles,
    // _sum and _count translate directly.
    FamilyLines summary_fams;
    for (const auto &[k, cell] : histograms_) {
        if (!keptBy(k, prefixes))
            continue;
        ParsedKey pk = parseKey(k);
        std::string fam = promName(pk.name);
        auto &lines = summary_fams[fam];
        std::lock_guard<std::mutex> hlock(cell->mu);
        static constexpr struct
        {
            const char *label;
            double p;
        } kQuantiles[] = {
            {"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto &q : kQuantiles) {
            Labels with_q = pk.labels;
            with_q.emplace_back("quantile", q.label);
            lines.push_back(
                fam + promLabels(with_q) + " " +
                jsonNumber(cell->percentileLocked(q.p)));
        }
        lines.push_back(fam + "_sum" + promLabels(pk.labels) + " " +
                        jsonNumber(cell->sum));
        lines.push_back(fam + "_count" + promLabels(pk.labels) +
                        " " + std::to_string(cell->count));
    }
    emitFamilies(os, summary_fams, "summary");
}

std::string
MetricRegistry::toPromText(
    const std::vector<std::string> &prefixes) const
{
    std::ostringstream oss;
    writePromText(oss, prefixes);
    return oss.str();
}

void
MetricRegistry::savePromText(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("MetricRegistry::savePromText: cannot open '", path,
              "'");
    writePromText(f);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

} // namespace edgert::obs
