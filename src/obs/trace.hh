#ifndef EDGERT_OBS_TRACE_HH
#define EDGERT_OBS_TRACE_HH

/**
 * @file
 * Host-side span tracing.
 *
 * RAII scoped spans record named host phases (build passes, tactic
 * sweeps, cache lookups, context setup) on real threads:
 *
 *   EDGERT_SPAN("tactic_sweep", {{"node", node.name}});
 *
 * Spans flow into the global Tracer, which profile::
 * writeMergedChromeTrace() merges with GpuSim device ops into one
 * chrome://tracing file — host tracks above device stream tracks.
 *
 * Tracing is off by default; a disabled span is a single relaxed
 * atomic load and never touches the Clock, which keeps the
 * no-wall-clock-in-simulation rule intact for ordinary runs. Span
 * conventions: lower_snake names, `pass:` prefix for optimizer
 * passes, args for identities (node, model, key) — never for bulk
 * data.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace edgert::obs {

/** One key/value annotation on a span. */
struct SpanArg
{
    std::string key;
    std::string value;
};

/** A completed host span. */
struct SpanRecord
{
    std::string name;
    int thread = 0; //!< tracer-assigned host-thread ordinal
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::vector<SpanArg> args;

    double durationUs() const
    {
        return static_cast<double>(end_ns - start_ns) * 1e-3;
    }
};

/**
 * Thread-safe collector of completed spans.
 */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Append a completed span (thread ordinal filled in here). */
    void record(SpanRecord rec);

    /**
     * Ordinal of the calling thread (0 = first thread seen since
     * the last clear(), usually the build's main thread).
     */
    int threadOrdinal();

    /** Snapshot of all spans recorded so far. */
    std::vector<SpanRecord> spans() const;

    /** Number of recorded spans. */
    std::size_t size() const;

    /** Drop all spans and forget thread ordinals. */
    void clear();

    /** The process-wide tracer the EDGERT_SPAN macro records to. */
    static Tracer &global();

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
    std::map<std::thread::id, int> thread_ordinals_;
};

/**
 * RAII span: captures a start timestamp on construction and records
 * the completed span on destruction. No-op while the global tracer
 * is disabled.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        std::vector<SpanArg> args = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanRecord rec_;
    bool active_ = false;
};

#define EDGERT_SPAN_CAT2(a, b) a##b
#define EDGERT_SPAN_CAT(a, b) EDGERT_SPAN_CAT2(a, b)

/** Open a scoped span for the rest of the enclosing block. */
#define EDGERT_SPAN(...)                                            \
    ::edgert::obs::ScopedSpan EDGERT_SPAN_CAT(edgert_span_,        \
                                              __COUNTER__)(        \
        __VA_ARGS__)

} // namespace edgert::obs

#endif // EDGERT_OBS_TRACE_HH
