#ifndef EDGERT_OBS_METRICS_HH
#define EDGERT_OBS_METRICS_HH

/**
 * @file
 * MetricRegistry — thread-safe, label-aware counters, gauges and
 * histograms with a canonical JSON snapshot writer.
 *
 * Naming scheme: `subsystem.object.property[_unit]`, labels in
 * `{key=value}` form appended to the name to build the canonical
 * metric key (labels sorted by key, e.g.
 * `builder.pass.duration_us{device=Xavier NX,pass=fusion}`).
 * Duration metrics are recorded in microseconds (`_us`), byte
 * counts in bytes, ratios in percent (`_pct`).
 *
 * Handles (Counter/Gauge/Histogram) are cheap value types pointing
 * into registry-owned cells; creating the same (name, labels) twice
 * returns a handle to the same cell. Cells live until the registry
 * dies — reset() zeroes values but never invalidates handles, so
 * long-lived instrumented objects (a GpuSim, a ThreadPool) can keep
 * their handles across snapshot/reset cycles.
 *
 * Determinism: counters and histogram bucket counts are
 * order-independent; histogram sums accumulate in call order, which
 * is simulation- or topological-order deterministic at every
 * instrumented seam. Snapshots are canonical (std::map-sorted keys,
 * shortest-round-trip number formatting), so equal metric state
 * always serializes to equal bytes.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace edgert::obs {

/** Metric labels: key=value pairs (any order; keys are sorted into
 *  the canonical metric key internally). */
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace metrics_detail {

struct CounterCell
{
    std::atomic<std::int64_t> value{0};
};

struct GaugeCell
{
    std::atomic<double> value{0.0};
};

/**
 * Fixed log-scale histogram: 8 buckets per decade from 1e-3 up to
 * ~7.5e8, plus an overflow bucket. Values <= the first upper bound
 * land in bucket 0. Percentiles are estimated as the geometric
 * midpoint of the bucket the rank falls in, clamped to the observed
 * min/max.
 */
struct HistogramCell
{
    static constexpr int kBuckets = 96;
    static constexpr double kFirstUpper = 1e-3;

    /** Up to this many samples the raw values are retained and
     *  percentiles are exact nearest-rank statistics; beyond it the
     *  reservoir is dropped and estimation falls back to the
     *  bucketed geometric midpoint. */
    static constexpr int kExactCap = 64;

    mutable std::mutex mu;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets + 1> buckets{};
    std::vector<double> exact; //!< first kExactCap raw samples

    static double upperBound(int bucket);

    void record(double v);
    void reset();
    double percentileLocked(double p) const; //!< caller holds mu

    /** True while percentiles are exact (count <= kExactCap). */
    bool exactLocked() const
    {
        return count == exact.size();
    }
};

} // namespace metrics_detail

/** Monotonic integer counter handle. */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::int64_t delta = 1)
    {
        if (cell_)
            cell_->value.fetch_add(delta,
                                   std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed)
                     : 0;
    }

  private:
    friend class MetricRegistry;
    explicit Counter(metrics_detail::CounterCell *cell)
        : cell_(cell)
    {}
    metrics_detail::CounterCell *cell_ = nullptr;
};

/** Last-value gauge handle. */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
        if (cell_)
            cell_->value.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return cell_ ? cell_->value.load(std::memory_order_relaxed)
                     : 0.0;
    }

  private:
    friend class MetricRegistry;
    explicit Gauge(metrics_detail::GaugeCell *cell) : cell_(cell) {}
    metrics_detail::GaugeCell *cell_ = nullptr;
};

/** Log-scale-bucket distribution handle. */
class Histogram
{
  public:
    Histogram() = default;

    void
    record(double v)
    {
        if (cell_)
            cell_->record(v);
    }

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;

    /** Estimated quantile, p in [0, 1] (e.g. 0.95). */
    double percentile(double p) const;

  private:
    friend class MetricRegistry;
    explicit Histogram(metrics_detail::HistogramCell *cell)
        : cell_(cell)
    {}
    metrics_detail::HistogramCell *cell_ = nullptr;
};

/**
 * Thread-safe registry of named metrics with canonical JSON
 * snapshots.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Get or create a metric. A name may only ever be used with
     *  one metric kind; reusing it across kinds is fatal(). */
    Counter counter(const std::string &name,
                    const Labels &labels = {});
    Gauge gauge(const std::string &name, const Labels &labels = {});
    Histogram histogram(const std::string &name,
                        const Labels &labels = {});

    /** Zero every metric; handles stay valid, keys stay listed. */
    void reset();

    /**
     * Merge another registry's current state into this one, key by
     * key, optionally prepending `prefix` to every metric *name*
     * (the sorted `{k=v,...}` label block is untouched, so merged
     * keys stay canonical and label ordering stays deterministic).
     * Counters add, gauges take the source value (last merge wins),
     * histograms combine count/sum/min/max and bucket counts; the
     * exact-percentile reservoir survives only while both sides are
     * exact and the combined count fits kExactCap, matching what a
     * replay of all record() calls would have retained. Missing
     * destination cells are created; reusing a merged key as a
     * different metric kind is fatal(), as in counter()/gauge()/
     * histogram(). The source is snapshotted before this registry
     * is locked, so merging a registry into itself under a prefix
     * is safe.
     */
    void mergeFrom(const MetricRegistry &src,
                   const std::string &prefix = "");

    /** Number of registered metric keys across all kinds. */
    std::size_t size() const;

    /**
     * Canonical JSON snapshot:
     * `{"counters":{...},"gauges":{...},"histograms":{...}}` with
     * sorted keys; histograms render
     * count/exact/sum/min/max/p50/p95/p99, where `exact` reports
     * whether the percentiles are nearest-rank statistics over the
     * retained raw samples (count <= HistogramCell::kExactCap)
     * rather than bucket-midpoint estimates.
     *
     * A non-empty `prefixes` list keeps only metrics whose key
     * starts with one of the prefixes — benches use this to embed
     * simulation-deterministic families (`deploy.`, `serve.`) while
     * excluding wall-clock instrumentation such as
     * `builder.pass.duration_us`.
     */
    void writeJson(std::ostream &os,
                   const std::vector<std::string> &prefixes = {})
        const;
    std::string
    toJson(const std::vector<std::string> &prefixes = {}) const;

    /** Write toJson() to a file; fatal() on I/O error. */
    void save(const std::string &path) const;

    /**
     * Prometheus text exposition (format 0.0.4): counters and
     * gauges as single samples, histograms as summaries (quantile
     * 0.5/0.95/0.99 plus `_sum`/`_count` series). Metric names are
     * sanitized (`.` and other invalid characters become `_`),
     * label values are escaped per the exposition spec, and each
     * family gets exactly one `# TYPE` line even when label sets
     * interleave with other families in canonical key order.
     * `prefixes` filters on the canonical (pre-sanitization) key,
     * as in writeJson().
     */
    void writePromText(std::ostream &os,
                       const std::vector<std::string> &prefixes =
                           {}) const;
    std::string
    toPromText(const std::vector<std::string> &prefixes = {}) const;

    /** Write toPromText() to a file; fatal() on I/O error. */
    void savePromText(const std::string &path) const;

    /** The process-wide registry the built-in instrumentation
     *  records into. */
    static MetricRegistry &global();

    /** Canonical metric key: `name` or `name{k=v,...}`, keys
     *  sorted. Exposed for tests. */
    static std::string key(const std::string &name,
                           const Labels &labels);

  private:
    mutable std::mutex mu_;
    std::map<std::string,
             std::unique_ptr<metrics_detail::CounterCell>>
        counters_;
    std::map<std::string,
             std::unique_ptr<metrics_detail::GaugeCell>>
        gauges_;
    std::map<std::string,
             std::unique_ptr<metrics_detail::HistogramCell>>
        histograms_;
};

} // namespace edgert::obs

#endif // EDGERT_OBS_METRICS_HH
