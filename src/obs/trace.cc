#include "obs/trace.hh"

#include "obs/clock.hh"

namespace edgert::obs {

void
Tracer::record(SpanRecord rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = thread_ordinals_.emplace(
        std::this_thread::get_id(),
        static_cast<int>(thread_ordinals_.size()));
    rec.thread = it->second;
    spans_.push_back(std::move(rec));
}

int
Tracer::threadOrdinal()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = thread_ordinals_.emplace(
        std::this_thread::get_id(),
        static_cast<int>(thread_ordinals_.size()));
    return it->second;
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    thread_ordinals_.clear();
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

ScopedSpan::ScopedSpan(std::string name, std::vector<SpanArg> args)
{
    if (!Tracer::global().enabled())
        return;
    active_ = true;
    rec_.name = std::move(name);
    rec_.args = std::move(args);
    rec_.start_ns = clock().nowNanos();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    rec_.end_ns = clock().nowNanos();
    Tracer::global().record(std::move(rec_));
}

} // namespace edgert::obs
