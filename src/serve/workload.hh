#ifndef EDGERT_SERVE_WORKLOAD_HH
#define EDGERT_SERVE_WORKLOAD_HH

/**
 * @file
 * Seeded open-loop load generator for EdgeServe.
 *
 * Arrival processes are generated up front from a `common::Rng`
 * stream — the server replays them on its simulated clock, so a run
 * is a pure function of (config, seed) and never reads wall-clock
 * time. Three processes cover the paper's §VI-A serving sketches:
 *
 *  - poisson: memoryless arrivals at a fixed rate (steady camera
 *    traffic).
 *  - bursty:  an on/off modulated Poisson process (traffic-light
 *    cycles — a burst window at `burst_factor` x the mean rate, the
 *    remainder of each period at the complementary low rate).
 *  - replay:  deterministic replay of a recorded inter-arrival-gap
 *    trace, cycled for the whole duration.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace edgert::serve {

/** Supported arrival processes. */
enum class ArrivalKind { kPoisson, kBursty, kReplay };

/** Parse "poisson" / "bursty" / "replay" (fatal on anything else). */
ArrivalKind parseArrivalKind(const std::string &s);

/** Printable name of an arrival kind. */
std::string arrivalKindName(ArrivalKind kind);

/** Configuration of one model's arrival process. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::kPoisson;
    double qps = 100.0; //!< mean offered rate (poisson / bursty)

    // Bursty-only knobs: each `period_s` cycle spends `duty` of its
    // length in a burst at `burst_factor * qps`; the off-window rate
    // is chosen so the long-run mean stays `qps`.
    double period_s = 1.0;
    double duty = 0.25;
    double burst_factor = 3.0;

    // Replay-only: inter-arrival gaps in seconds, cycled. The mean
    // rate is the trace's own; `qps` is ignored.
    std::vector<double> replay_gaps_s;
};

/**
 * Generate the arrival times (simulated seconds, strictly
 * increasing, all < duration_s) of one model's request stream.
 *
 * @param rng Forked per model by the caller; consumed sequentially
 *            so the stream is independent of other models' streams.
 */
std::vector<double> generateArrivals(const ArrivalConfig &cfg,
                                     double duration_s, Rng &rng);

} // namespace edgert::serve

#endif // EDGERT_SERVE_WORKLOAD_HH
