#ifndef EDGERT_SERVE_SERVER_HH
#define EDGERT_SERVE_SERVER_HH

/**
 * @file
 * EdgeServe: a Triton-style inference server over the simulated
 * edge devices.
 *
 * A run is two deterministic phases over the same dispatch plan:
 *
 *  1. Control: a discrete-event loop over arrivals, batch timeouts
 *     and predicted instance completions. Admission control and the
 *     dynamic batcher act on BSP-*predicted* service times (a real
 *     server also decides on estimates — it cannot observe a
 *     dispatch's duration before issuing it), producing a dispatch
 *     plan: (instance, release time, engine, request ids).
 *  2. Replay: each device's plan executes in its GpuSim with
 *     delayUntil() pinning every dispatch's release time, one run()
 *     per device. Completion times — and therefore all reported
 *     latencies, SLO verdicts and utilizations — come from the
 *     simulator with full cross-stream contention, not from the
 *     predictions.
 *
 * Everything is a pure function of (config, seed): arrivals flow
 * from common::Rng, both phases run on simulated clocks, and no
 * wall-clock is ever read.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "nn/executor.hh"
#include "serve/queue.hh"
#include "serve/request.hh"
#include "serve/workload.hh"
#include "watch/watch.hh"

namespace edgert::serve {

/** One served model and its traffic contract. */
struct ModelConfig
{
    std::string model;       //!< nn::buildZooModel name
    double slo_ms = 50.0;    //!< end-to-end deadline
    ArrivalConfig arrivals;  //!< offered-load process
    BatchPolicy batching;    //!< dynamic-batcher knobs
    int instances_per_device = 1;

    /** Serving precision of this model's engine ladder. The pool
     *  and the latency predictor calibrate per (device, engine,
     *  precision) — an INT8 ladder is a different set of engines
     *  with different fingerprints, latencies and RAM footprints
     *  than the FP16 one. */
    nn::Precision precision = nn::Precision::kFp16;

    /** Calibration-batch identity for @int8 / @mixed ladders. */
    std::uint64_t calibration_seed = 0;
};

/**
 * Injected engine-load faults for resilience testing. A server that
 * loads opaque plan blobs must expect some of them to be corrupt or
 * missing; these knobs simulate that without touching the disk. A
 * failed load is retried (a "rebuild") up to max_load_attempts per
 * (model, device); a model whose loads keep failing everywhere is
 * degraded — its traffic is shed per-model while every other model
 * keeps serving. Failures are counted in the metric registry as
 * `serve.engine.load_failures{model=...}`.
 */
struct FaultInjection
{
    /** Model name → number of initial engine-load attempts that
     *  fail before loads for that model succeed again. */
    std::map<std::string, int> engine_load_failures;

    /**
     * Model name → number of *swap-time* candidate-load attempts
     * that fail (a separate budget so a fault can target the swap
     * path while the initial placement succeeds). A candidate whose
     * load keeps failing rolls the swap back to the incumbent.
     */
    std::map<std::string, int> swap_load_failures;

    /** Load attempts per (model, device) before the scheduler
     *  gives up on that placement (first try + rebuilds). */
    int max_load_attempts = 2;
};

/**
 * One scheduled mid-run engine hot-swap (the deploy layer's
 * HotSwapper hands these to the server after the drift gate has
 * accepted a candidate). At t_s the server loads the candidate
 * build for the model, pauses that model's dispatch while the
 * candidate warms up (context creation, weight upload, canary
 * runs) — queued requests wait, none are dropped — and then either
 * commits (new batches go to the candidate; in-flight incumbent
 * batches drain) or rolls back to the incumbent when the
 * candidate's canary latency regresses beyond the threshold.
 */
struct SwapSpec
{
    std::string model;                  //!< must match a ModelConfig
    double t_s = 0.0;                   //!< trigger time (seconds)
    std::uint64_t candidate_build_id = 0;

    /** Roll back when the candidate's canary latency exceeds the
     *  incumbent's by more than this percentage. */
    double rollback_regression_pct = 10.0;

    /**
     * Precision of the candidate ladder. Unset (the default) keeps
     * the model's serving precision; set it for a cross-precision
     * swap — e.g. promoting a drift-gated INT8 candidate over the
     * FP16 incumbent.
     */
    std::optional<nn::Precision> precision;

    /** Calibration seed of the candidate (INT8/mixed swaps). */
    std::uint64_t calibration_seed = 0;
};

/** Whole-server configuration. */
struct ServeConfig
{
    std::vector<ModelConfig> models;
    std::vector<gpusim::DeviceSpec> devices;
    double duration_s = 10.0;
    std::uint64_t seed = 1;
    bool admission_control = true;

    /** false forces max_batch = 1 (no-batching baseline policy). */
    bool dynamic_batching = true;

    /** Share of device RAM available for execution contexts. */
    double ram_fraction = 0.5;

    /** Engine-build knobs (jobs = 1 keeps runs byte-reproducible). */
    std::uint64_t build_id = 1;
    int build_jobs = 1;

    /**
     * When non-empty, write a merged chrome://tracing timeline
     * (host serve spans + one process per device) here after the
     * replay.
     */
    std::string trace_out;

    /**
     * Worker threads for the phase-2 replay. 1 (the default)
     * replays devices serially in index order; >1 simulates
     * independent devices concurrently on a common::ThreadPool.
     * Reports, metric snapshots and device traces are byte-identical
     * across thread counts: each simulator buffers its histogram
     * records during run() and the server commits them in device
     * index order afterwards.
     */
    int sim_threads = 1;

    /**
     * Publish simulator self-measurement (`sim.*`) and — when the
     * replay is parallel — `serve.pool.*` gauges. Off by default:
     * they carry wall-clock readings, and canonical benchmark
     * reports embed the whole registry.
     */
    bool sim_metrics = false;

    /** Per-device kernel-trace policy for the replay. kFull keeps
     *  every record (byte-compatible default); kSampled keeps one
     *  in trace_sample_every; kOff records nothing. */
    gpusim::TraceMode trace_mode = gpusim::TraceMode::kFull;
    int trace_sample_every = 16;

    /** Injected engine-load faults (empty = none). */
    FaultInjection faults;

    /** Mid-run engine hot-swaps to execute (empty = none). */
    std::vector<SwapSpec> swaps;

    /**
     * EdgeWatch: request-scoped tracing, sliding-window SLO burn
     * rates with page/warn alerts, flight-recorder incident dumps
     * and F4/F5 latency-inversion detection. watch.enabled = false
     * (the default) leaves the run — report bytes included —
     * exactly as before.
     */
    watch::WatchConfig watch;
};

/** Per-engine-version serving outcome within one model. */
struct VersionStats
{
    std::uint64_t build_id = 0;
    std::uint64_t fingerprint = 0; //!< batch-1 engine fingerprint
    std::int64_t batches = 0;
    std::int64_t completed = 0;
    double mean_ms = 0.0;
    double p99_ms = 0.0;
};

/** Per-model serving outcome. */
struct ModelStats
{
    std::string model;
    double slo_ms = 0.0;
    double offered_qps = 0.0; //!< measured offered rate

    std::int64_t offered = 0;
    std::int64_t shed = 0;
    std::int64_t completed = 0;
    std::int64_t slo_violations = 0;
    std::int64_t batches = 0;

    double goodput_qps = 0.0; //!< completions within SLO per second
    double mean_batch = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    double predictor_mae_pct = 0.0; //!< mean |pred-meas|/meas x 100
    int instances = 0;

    /** Engine-load failures observed while placing this model. */
    std::int64_t load_failures = 0;

    /** Loads that succeeded only after at least one retry. */
    std::int64_t rebuilds = 0;

    /** True when the model loaded on no device: every request for
     *  it was shed, but the rest of the fleet kept serving. */
    bool degraded = false;

    // ---- engine-lifecycle (hot-swap) outcome ----

    /** build_id serving this model's new batches at end of run. */
    std::uint64_t active_build_id = 0;

    std::int64_t swaps = 0;           //!< swap attempts executed
    std::int64_t swaps_rolled_back = 0;
    double swap_downtime_ms = 0.0;    //!< summed pause windows

    /** Machine-readable reason of the last rollback ("" = none):
     *  load_failure | latency_regression | model_degraded |
     *  overlapping_swap. */
    std::string swap_rollback_reason;

    /** p99 of requests arriving inside a swap window vs outside. */
    double p99_swap_ms = 0.0;
    double p99_steady_ms = 0.0;

    /** Per engine-version breakdown, load order (index 0 is the
     *  engine the run started with). */
    std::vector<VersionStats> versions;
};

/** Per-device serving outcome. */
struct DeviceStats
{
    std::string device;
    int instances = 0;
    double sm_util_pct = 0.0;   //!< tegrastats GR3D analogue
    double copy_busy_pct = 0.0;
    double makespan_s = 0.0;    //!< drain time of the replay
    std::int64_t ram_used_bytes = 0;
    std::int64_t ram_budget_bytes = 0;
};

/** Full report of one EdgeServe run. */
struct ServeReport
{
    std::uint64_t seed = 0;
    double duration_s = 0.0;
    bool admission_control = false;
    bool dynamic_batching = false;
    std::vector<ModelStats> models;
    std::vector<DeviceStats> devices;

    /** EdgeWatch outcome; serialized (as a trailing "watch" key)
     *  only when watch.enabled, so watch-off reports keep their
     *  pre-watch bytes. */
    watch::WatchSummary watch;

    /** Canonical JSON (deterministic field order and numbers). */
    std::string toJson() const;
};

/** Parse a device list entry: "nx" | "agx". */
gpusim::DeviceSpec parseDevice(const std::string &name);

/** Run the server; deterministic for a fixed config. */
ServeReport runServer(const ServeConfig &cfg);

} // namespace edgert::serve

#endif // EDGERT_SERVE_SERVER_HH
