#include "serve/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/context.hh"

namespace edgert::serve {

std::vector<int>
engineBatchLadder(int max_batch)
{
    std::vector<int> out;
    int b = 1;
    while (b < max_batch) {
        out.push_back(b);
        b *= 2;
    }
    out.push_back(b); // smallest power of two >= max_batch
    return out;
}

int
EngineSet::indexFor(int batch) const
{
    for (std::size_t i = 0; i < batches.size(); i++)
        if (batches[i] >= batch)
            return static_cast<int>(i);
    panic("no prebuilt engine fits batch ", batch, " (largest is ",
          batches.empty() ? 0 : batches.back(), ")");
}

std::int64_t
EngineSet::maxFootprintBytes() const
{
    std::int64_t max_fp = 0;
    for (const auto &eng : engines)
        max_fp = std::max(max_fp,
                          runtime::contextFootprintBytes(eng));
    return max_fp;
}

InstancePool::InstancePool(
    const std::vector<gpusim::DeviceSpec> &devices,
    double ram_fraction)
    : devices_(devices),
      ram_fraction_(ram_fraction),
      ram_used_(devices.size(), 0)
{
}

int
InstancePool::place(int model, int device,
                    std::int64_t footprint_bytes, int want)
{
    if (static_cast<std::size_t>(model) >= by_model_.size())
        by_model_.resize(static_cast<std::size_t>(model) + 1);

    std::int64_t budget =
        ramBudgetBytes(device) - ram_used_[
            static_cast<std::size_t>(device)];
    int placed = 0;
    for (int i = 0; i < want; i++) {
        if (footprint_bytes > budget)
            break;
        budget -= footprint_bytes;
        ram_used_[static_cast<std::size_t>(device)] +=
            footprint_bytes;
        Instance inst;
        inst.model = model;
        inst.device = device;
        by_model_[static_cast<std::size_t>(model)].push_back(
            static_cast<int>(instances_.size()));
        instances_.push_back(std::move(inst));
        placed++;
    }
    return placed;
}

const std::vector<int> &
InstancePool::instancesOf(int model) const
{
    static const std::vector<int> kNone;
    if (static_cast<std::size_t>(model) >= by_model_.size())
        return kNone;
    return by_model_[static_cast<std::size_t>(model)];
}

int
InstancePool::freeInstance(int model, double now_s) const
{
    int best = -1;
    double best_free = 0.0;
    for (int idx : instancesOf(model)) {
        const Instance &inst =
            instances_[static_cast<std::size_t>(idx)];
        if (inst.predicted_free_s > now_s + 1e-12)
            continue;
        if (best < 0 || inst.predicted_free_s < best_free) {
            best = idx;
            best_free = inst.predicted_free_s;
        }
    }
    return best;
}

double
InstancePool::earliestFree(int model) const
{
    double best = 1e30;
    for (int idx : instancesOf(model))
        best = std::min(
            best,
            instances_[static_cast<std::size_t>(idx)]
                .predicted_free_s);
    return best;
}

std::int64_t
InstancePool::ramUsedBytes(int device) const
{
    return ram_used_.at(static_cast<std::size_t>(device));
}

std::int64_t
InstancePool::ramBudgetBytes(int device) const
{
    const auto &spec = devices_.at(static_cast<std::size_t>(device));
    double ram_bytes = spec.ram_gb * 1024.0 * 1024.0 * 1024.0;
    return static_cast<std::int64_t>(ram_bytes * ram_fraction_);
}

} // namespace edgert::serve
