#include "serve/batcher.hh"

#include <algorithm>

namespace edgert::serve {

int
DynamicBatcher::decide(std::size_t queued, double oldest_arrival_s,
                       double now_s) const
{
    if (queued == 0)
        return 0;
    int max_batch = std::max(1, policy_.max_batch);
    if (queued >= static_cast<std::size_t>(max_batch))
        return max_batch;
    // Partial batch: dispatch once the oldest request has waited out
    // the batching timeout, else keep coalescing.
    if (now_s + 1e-12 >= deadlineFor(oldest_arrival_s))
        return static_cast<int>(queued);
    return 0;
}

} // namespace edgert::serve
