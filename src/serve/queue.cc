#include "serve/queue.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace edgert::serve {

double
BackendView::serviceFor(const InstanceView &inst, int batch) const
{
    for (std::size_t i = 0; i < ladder.size(); i++)
        if (ladder[i] >= batch)
            return inst.service_s[i];
    return inst.service_s.empty() ? 1e9 : inst.service_s.back();
}

double
predictSojournSeconds(const BackendView &backend,
                      const BatchPolicy &policy, int queued_ahead,
                      double now_s, double arrival_rate_hz)
{
    if (backend.instances.empty())
        return 1e9; // nothing can serve this model

    // Expected wait for this request's own batch to fill: the slots
    // left after the backlog ahead of it is packed into full
    // batches, divided by the arrival rate, capped by the batcher's
    // timeout.
    int max_batch = std::max(1, policy.max_batch);
    double timeout_s = policy.timeout_us * 1e-6;
    int slots_open =
        max_batch - 1 - (queued_ahead % max_batch);
    double fill_s =
        arrival_rate_hz > 1e-9
            ? static_cast<double>(slots_open) / arrival_rate_hz
            : timeout_s;
    fill_s = std::min(fill_s, timeout_s);

    // The request's own dispatch: its backlog remainder plus the
    // arrivals expected while the batcher coalesces — not a full
    // max_batch, or a lightly loaded server would predict the
    // worst-case batch service for every request and shed traffic
    // it could easily carry.
    int growth = arrival_rate_hz > 0.0
                     ? static_cast<int>(arrival_rate_hz * fill_s)
                     : 0;
    int own_batch = std::min(max_batch,
                             queued_ahead % max_batch + 1 + growth);

    // Greedily assign the backlog's full batches, then the
    // request's own batch, onto earliest-predicted-free instances.
    std::vector<double> free_s;
    free_s.reserve(backend.instances.size());
    for (const auto &inst : backend.instances)
        free_s.push_back(std::max(inst.free_s, now_s));

    auto earliest = [&]() {
        return static_cast<std::size_t>(
            std::min_element(free_s.begin(), free_s.end()) -
            free_s.begin());
    };
    int full_batches = queued_ahead / max_batch;
    for (int b = 0; b < full_batches; b++) {
        std::size_t idx = earliest();
        free_s[idx] += backend.serviceFor(backend.instances[idx],
                                          max_batch);
    }
    std::size_t idx = earliest();
    double done_s = free_s[idx] + backend.serviceFor(
                                      backend.instances[idx],
                                      own_batch);
    return std::max(0.0, done_s - now_s) + fill_s;
}

void
RequestQueue::observeArrival(double now_s)
{
    if (last_arrival_s_ >= 0.0) {
        double gap = std::max(now_s - last_arrival_s_, 1e-9);
        double inst = 1.0 / gap;
        double alpha = 1.0 - std::exp(-gap / rate_tau_s_);
        rate_hz_ += alpha * (inst - rate_hz_);
    }
    last_arrival_s_ = now_s;
}

void
RequestQueue::push(std::int64_t id, double arrival_s)
{
    pending_.push({id, arrival_s});
}

std::vector<std::int64_t>
RequestQueue::cut(int n)
{
    if (n <= 0 || static_cast<std::size_t>(n) > pending_.size())
        panic("RequestQueue::cut(", n, ") with ", pending_.size(),
              " pending");
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++) {
        out.push_back(pending_.front().id);
        pending_.pop();
    }
    return out;
}

double
RequestQueue::oldestArrivalSeconds() const
{
    if (pending_.empty())
        panic("oldestArrivalSeconds() on an empty queue");
    return pending_.front().arrival_s;
}

} // namespace edgert::serve
