#ifndef EDGERT_SERVE_PREDICTOR_HH
#define EDGERT_SERVE_PREDICTOR_HH

/**
 * @file
 * BSP-calibrated service-time predictor for EdgeServe.
 *
 * Admission control and batch scheduling need "how long will this
 * dispatch take" *before* running it. The predictor reuses the
 * perfmodel workflow (paper §VI-B): calibrate per-kernel lambdas
 * from one solo profiled run per engine, then predict any engine's
 * service time as lambda-corrected BSP kernel time plus analytic
 * I/O-copy and launch-overhead terms. Predictions drive control
 * decisions only — measured completion times always come from the
 * GpuSim replay, and the gap between the two is exported as
 * `serve.predictor.error_pct`.
 */

#include "core/engine.hh"
#include "gpusim/device.hh"
#include "perfmodel/bsp.hh"

namespace edgert::serve {

/** Per-device service-time predictor. */
class LatencyPredictor
{
  public:
    explicit LatencyPredictor(const gpusim::DeviceSpec &device);

    /**
     * Run one solo inference of `engine` in a private simulator
     * (weights resident, no jitter) and fold its per-kernel
     * durations into the lambda table.
     */
    void calibrate(const core::Engine &engine);

    /**
     * Predicted solo service time in seconds of one dispatch of
     * `engine`: input copies + lambda-corrected kernel time + launch
     * overhead + output copies. Kernels never seen in calibration
     * fall back to lambda = 1.
     */
    double predictServiceSeconds(const core::Engine &engine) const;

    const gpusim::DeviceSpec &device() const { return device_; }
    const perfmodel::BspModel &model() const { return bsp_; }

  private:
    gpusim::DeviceSpec device_;
    perfmodel::MicroArchParams params_;
    perfmodel::BspModel bsp_;
};

} // namespace edgert::serve

#endif // EDGERT_SERVE_PREDICTOR_HH
