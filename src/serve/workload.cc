#include "serve/workload.hh"

#include <cmath>

#include "common/logging.hh"

namespace edgert::serve {

ArrivalKind
parseArrivalKind(const std::string &s)
{
    if (s == "poisson")
        return ArrivalKind::kPoisson;
    if (s == "bursty")
        return ArrivalKind::kBursty;
    if (s == "replay")
        return ArrivalKind::kReplay;
    fatal("unknown arrival process '", s,
          "' (expected poisson|bursty|replay)");
}

std::string
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::kPoisson:
        return "poisson";
      case ArrivalKind::kBursty:
        return "bursty";
      case ArrivalKind::kReplay:
        return "replay";
    }
    return "?";
}

namespace {

/** Exponential inter-arrival gap at the given rate. */
double
expGap(double rate_hz, Rng &rng)
{
    // uniform() is in [0, 1); 1-u is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate_hz;
}

std::vector<double>
poissonArrivals(double qps, double duration_s, Rng &rng)
{
    std::vector<double> out;
    if (qps <= 0.0)
        return out;
    double t = expGap(qps, rng);
    while (t < duration_s) {
        out.push_back(t);
        t += expGap(qps, rng);
    }
    return out;
}

std::vector<double>
burstyArrivals(const ArrivalConfig &cfg, double duration_s, Rng &rng)
{
    std::vector<double> out;
    if (cfg.qps <= 0.0 || cfg.period_s <= 0.0)
        return out;
    double duty = std::min(std::max(cfg.duty, 1e-6), 1.0);
    double rate_on = cfg.qps * cfg.burst_factor;
    // Off-window rate chosen so the long-run mean is exactly qps;
    // clamped at zero when the burst alone carries more than the
    // mean (then the off window is silent).
    double rate_off =
        duty >= 1.0
            ? rate_on
            : std::max(0.0, cfg.qps * (1.0 - cfg.burst_factor * duty) /
                                (1.0 - duty));

    // Walk segment boundaries; the exponential's memorylessness lets
    // us redraw the gap at each rate change.
    double t = 0.0;
    while (t < duration_s) {
        double phase = std::fmod(t, cfg.period_s);
        bool on = phase < duty * cfg.period_s;
        double seg_end =
            t - phase + (on ? duty * cfg.period_s : cfg.period_s);
        double rate = on ? rate_on : rate_off;
        if (rate <= 0.0) {
            t = seg_end;
            continue;
        }
        double next = t + expGap(rate, rng);
        if (next >= seg_end) {
            t = seg_end;
            continue;
        }
        if (next >= duration_s)
            break;
        out.push_back(next);
        t = next;
    }
    return out;
}

std::vector<double>
replayArrivals(const ArrivalConfig &cfg, double duration_s)
{
    std::vector<double> out;
    if (cfg.replay_gaps_s.empty())
        fatal("replay arrival process needs a non-empty gap trace");
    double t = 0.0;
    std::size_t i = 0;
    while (true) {
        double gap = cfg.replay_gaps_s[i % cfg.replay_gaps_s.size()];
        if (gap <= 0.0)
            fatal("replay gap trace must be strictly positive");
        t += gap;
        if (t >= duration_s)
            break;
        out.push_back(t);
        i++;
    }
    return out;
}

} // namespace

std::vector<double>
generateArrivals(const ArrivalConfig &cfg, double duration_s, Rng &rng)
{
    switch (cfg.kind) {
      case ArrivalKind::kPoisson:
        return poissonArrivals(cfg.qps, duration_s, rng);
      case ArrivalKind::kBursty:
        return burstyArrivals(cfg, duration_s, rng);
      case ArrivalKind::kReplay:
        return replayArrivals(cfg, duration_s);
    }
    return {};
}

} // namespace edgert::serve
