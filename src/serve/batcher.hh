#ifndef EDGERT_SERVE_BATCHER_HH
#define EDGERT_SERVE_BATCHER_HH

/**
 * @file
 * Dynamic batcher policy for EdgeServe (Triton's dynamic_batching
 * analogue).
 *
 * The batcher coalesces queued requests into one dispatch of up to
 * `max_batch`, waiting at most `batch_timeout_us` past the oldest
 * request's arrival for the batch to fill — the bench_batch result
 * in action: a fuller batch amortizes per-dispatch copy overhead
 * and fills tail waves, at the price of batching delay. With
 * max_batch = 1 it degenerates to no-batching FIFO dispatch.
 */

#include "serve/queue.hh"

namespace edgert::serve {

/** Pure decision logic: when to cut a batch and how big. */
class DynamicBatcher
{
  public:
    explicit DynamicBatcher(const BatchPolicy &policy)
        : policy_(policy)
    {}

    const BatchPolicy &policy() const { return policy_; }

    /**
     * How many requests to cut into a dispatch right now; 0 means
     * keep coalescing (only possible before the oldest request's
     * timeout). Called only when an instance is free to take the
     * batch.
     */
    int decide(std::size_t queued, double oldest_arrival_s,
               double now_s) const;

    /** Absolute time the oldest request's batch times out. */
    double deadlineFor(double oldest_arrival_s) const
    {
        return oldest_arrival_s + policy_.timeout_us * 1e-6;
    }

  private:
    BatchPolicy policy_;
};

} // namespace edgert::serve

#endif // EDGERT_SERVE_BATCHER_HH
