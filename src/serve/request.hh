#ifndef EDGERT_SERVE_REQUEST_HH
#define EDGERT_SERVE_REQUEST_HH

/**
 * @file
 * Request bookkeeping shared by the EdgeServe components. A request
 * is one inference invocation of one model; all times are simulated
 * seconds on the server's event-loop clock (never wall-clock).
 */

#include <cstdint>
#include <string>

namespace edgert::serve {

/** Terminal state of one request. */
enum class Outcome
{
    kPending,   //!< still queued or in flight
    kCompleted, //!< executed; latency fields valid
    kShed,      //!< rejected by admission control on arrival
};

/** One inference request through its whole lifetime. */
struct Request
{
    std::int64_t id = 0;   //!< global arrival-order index
    int model = 0;         //!< index into the server's model table
    double arrival_s = 0.0;
    double slo_ms = 0.0;   //!< deadline relative to arrival

    Outcome outcome = Outcome::kPending;
    double dispatch_s = 0.0; //!< batch cut time (kCompleted only)
    double done_s = 0.0;     //!< execution completion time
    int batch = 0;           //!< size of the batch it rode in
    int device = -1;         //!< device the batch ran on
    int instance = -1;       //!< engine instance the batch ran on
    int version = 0;         //!< engine version the batch ran on

    /** End-to-end latency in milliseconds (kCompleted only). */
    double latencyMs() const { return (done_s - arrival_s) * 1e3; }

    /** True when the request completed within its SLO. */
    bool sloMet() const
    {
        return outcome == Outcome::kCompleted && latencyMs() <= slo_ms;
    }
};

} // namespace edgert::serve

#endif // EDGERT_SERVE_REQUEST_HH
