#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/threadpool.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "gpusim/sim.hh"
#include "nn/model_zoo.hh"
#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "profile/trace_export.hh"
#include "runtime/context.hh"
#include "runtime/measure.hh"
#include "serve/batcher.hh"
#include "serve/predictor.hh"
#include "serve/scheduler.hh"

namespace edgert::serve {

gpusim::DeviceSpec
parseDevice(const std::string &name)
{
    if (name == "nx")
        return gpusim::DeviceSpec::xavierNX();
    if (name == "agx")
        return gpusim::DeviceSpec::xavierAGX();
    fatal("unknown device '", name, "' (expected nx|agx)");
}

namespace {

/** Control-plane discrete event. */
struct Event
{
    enum Kind { kArrival, kTimeout, kPredFree, kSwapBegin, kSwapReady };

    double t = 0.0;
    std::int64_t seq = 0; //!< push order: total, deterministic tie-break
    Kind kind = kArrival;
    int target = 0;       //!< model (arrival/timeout), instance, or swap
    std::int64_t req = -1;
};

struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

/** Per-model obs:: handles (created once, recorded in sim order). */
struct ModelMetrics
{
    obs::Counter offered;
    obs::Counter shed;
    obs::Counter completed;
    obs::Counter violations;
    obs::Counter batches;
    obs::Counter load_failures;
    obs::Counter rebuilds;
    obs::Histogram queue_depth;
    obs::Histogram batch_size;
    obs::Histogram latency_ms;
    obs::Histogram predictor_err;

    explicit ModelMetrics(const std::string &model)
        : offered(obs::MetricRegistry::global().counter(
              "serve.request.offered", {{"model", model}})),
          shed(obs::MetricRegistry::global().counter(
              "serve.request.shed", {{"model", model}})),
          completed(obs::MetricRegistry::global().counter(
              "serve.request.completed", {{"model", model}})),
          violations(obs::MetricRegistry::global().counter(
              "serve.request.slo_violations", {{"model", model}})),
          batches(obs::MetricRegistry::global().counter(
              "serve.batch.dispatched", {{"model", model}})),
          load_failures(obs::MetricRegistry::global().counter(
              "serve.engine.load_failures", {{"model", model}})),
          rebuilds(obs::MetricRegistry::global().counter(
              "serve.engine.rebuilds", {{"model", model}})),
          queue_depth(obs::MetricRegistry::global().histogram(
              "serve.queue.depth", {{"model", model}})),
          batch_size(obs::MetricRegistry::global().histogram(
              "serve.batch.size", {{"model", model}})),
          latency_ms(obs::MetricRegistry::global().histogram(
              "serve.request.latency_ms", {{"model", model}})),
          predictor_err(obs::MetricRegistry::global().histogram(
              "serve.predictor.error_pct", {{"model", model}}))
    {}
};

} // namespace

ServeReport
runServer(const ServeConfig &cfg)
{
    if (cfg.models.empty())
        fatal("EdgeServe needs at least one --model");
    if (cfg.devices.empty())
        fatal("EdgeServe needs at least one device");
    if (cfg.duration_s <= 0.0)
        fatal("EdgeServe duration must be positive");
    {
        std::set<std::string> names;
        for (const auto &m : cfg.models)
            if (!names.insert(m.model).second)
                fatal("duplicate model '", m.model,
                      "' (metric labels would collide)");
    }

    const int n_models = static_cast<int>(cfg.models.size());
    const int n_devices = static_cast<int>(cfg.devices.size());

    // Effective per-model batch policies: the no-batching baseline
    // forces FIFO single-request dispatch.
    std::vector<BatchPolicy> policies;
    for (const auto &mc : cfg.models) {
        BatchPolicy p = mc.batching;
        if (!cfg.dynamic_batching) {
            p.max_batch = 1;
            p.timeout_us = 0.0;
        }
        policies.push_back(p);
    }

    // Per-model obs handles are created up front so the fault
    // counters below exist (and snapshot deterministically) even
    // for models that never complete a load.
    std::vector<ModelMetrics> mm;
    for (const auto &mc : cfg.models)
        mm.emplace_back(mc.model);

    // ------------------------------------------------------------
    // Build: engines come in *versions* — the version the run
    // starts with (index 0, built from cfg.build_id with one shared
    // timing cache so same-signature nodes measure once) plus any
    // candidate versions hot-swapped in mid-run. A version holds
    // one EngineSet per device (the power-of-two batch ladder) and
    // the calibrated per-engine service predictions the control
    // plane dispatches with. Engine loads are fallible — injected
    // faults stand in for corrupt or missing plan files — and each
    // failure is retried (a rebuild) up to faults.max_load_attempts.
    // A (model, device) pair whose loads keep failing is left
    // without engines; the placement below routes around it.
    // ------------------------------------------------------------
    struct ModelVersion
    {
        std::uint64_t build_id = 0;
        std::vector<EngineSet> sets;          //!< per device
        std::vector<std::vector<double>> svc; //!< [device][engine]

        bool availableOn(int d) const
        {
            return !sets[static_cast<std::size_t>(d)]
                        .engines.empty();
        }
        bool available() const
        {
            for (const auto &s : sets)
                if (!s.engines.empty())
                    return true;
            return false;
        }
    };
    core::TimingCache timing_cache;
    std::vector<std::vector<ModelVersion>> versions(
        static_cast<std::size_t>(n_models));
    std::vector<int> active(static_cast<std::size_t>(n_models), 0);
    std::vector<std::int64_t> load_failures(
        static_cast<std::size_t>(n_models), 0);
    std::vector<std::int64_t> rebuilds(
        static_cast<std::size_t>(n_models), 0);

    std::map<std::string, int> fault_budget =
        cfg.faults.engine_load_failures;
    std::map<std::string, int> swap_fault_budget =
        cfg.faults.swap_load_failures;
    const int attempts = std::max(1, cfg.faults.max_load_attempts);

    // Build one engine version of model m. use_cache shares the
    // run's timing cache (the initial load); swap-time candidates
    // re-time their tactics — a rebuild that may pick different
    // kernels is exactly what the deploy layer's drift gate
    // screens, and a tactic-frozen rebuild would make hot-swapping
    // moot. device_mask (nullptr = every device) restricts which
    // devices load; the calibration lambdas are deliberately not
    // shared across the batch ladder (a shared table leaves each
    // engine with a small systematic bias, and at saturation that
    // bias accumulates in the instances' predicted-free times until
    // admission control is reasoning about a timeline minutes
    // adrift of the replay).
    auto buildVersion = [&](int m, std::uint64_t build_id,
                            nn::Precision precision,
                            std::uint64_t calibration_seed,
                            std::map<std::string, int> &budget,
                            bool use_cache,
                            const std::vector<bool> *device_mask)
        -> ModelVersion {
        const auto &mc = cfg.models[static_cast<std::size_t>(m)];
        EDGERT_SPAN("serve_load_version",
                    {{"model", mc.model},
                     {"build", std::to_string(build_id)}});
        ModelVersion ver;
        ver.build_id = build_id;
        auto ladder = engineBatchLadder(
            policies[static_cast<std::size_t>(m)].max_batch);
        for (int d = 0; d < n_devices; d++) {
            EngineSet set;
            std::vector<double> svc_d;
            bool wanted =
                !device_mask ||
                (*device_mask)[static_cast<std::size_t>(d)];
            if (wanted) {
                const auto &spec =
                    cfg.devices[static_cast<std::size_t>(d)];
                core::BuilderConfig bcfg;
                bcfg.precision = precision;
                bcfg.calibration_seed = calibration_seed;
                bcfg.build_id = build_id;
                bcfg.jobs = cfg.build_jobs;
                bcfg.timing_cache =
                    use_cache ? &timing_cache : nullptr;
                core::Builder builder(spec, bcfg);

                auto loadSet = [&]() -> Result<EngineSet> {
                    auto it = budget.find(mc.model);
                    if (it != budget.end() && it->second > 0) {
                        it->second--;
                        return errorStatus(
                            ErrorCode::kUnavailable,
                            "injected engine-load fault for '",
                            mc.model, "'");
                    }
                    EngineSet out;
                    for (int b : ladder) {
                        out.engines.push_back(builder.build(
                            nn::buildZooModel(mc.model, b)));
                        out.batches.push_back(b);
                    }
                    return out;
                };

                bool loaded = false;
                for (int a = 0; a < attempts && !loaded; a++) {
                    auto r = loadSet();
                    if (r.ok()) {
                        set = std::move(r).value();
                        loaded = true;
                        if (a > 0) {
                            rebuilds[static_cast<std::size_t>(m)]++;
                            mm[static_cast<std::size_t>(m)]
                                .rebuilds.add();
                        }
                    } else {
                        load_failures[static_cast<std::size_t>(
                            m)]++;
                        mm[static_cast<std::size_t>(m)]
                            .load_failures.add();
                        warn("EdgeServe: engine load for '",
                             mc.model, "' on ", spec.name,
                             "[", d, "] failed (attempt ", a + 1,
                             "/", attempts,
                             "): ", r.status().message());
                    }
                }
                for (const auto &eng : set.engines) {
                    LatencyPredictor pred(
                        cfg.devices[static_cast<std::size_t>(d)]);
                    pred.calibrate(eng);
                    svc_d.push_back(
                        pred.predictServiceSeconds(eng));
                }
            }
            // An empty set marks (model, device) unavailable.
            ver.sets.push_back(std::move(set));
            ver.svc.push_back(std::move(svc_d));
        }
        return ver;
    };

    {
        EDGERT_SPAN("serve_build",
                    {{"models", std::to_string(n_models)},
                     {"devices", std::to_string(n_devices)}});
        for (int m = 0; m < n_models; m++) {
            const auto &mc = cfg.models[static_cast<std::size_t>(m)];
            versions[static_cast<std::size_t>(m)].push_back(
                buildVersion(m, cfg.build_id, mc.precision,
                             mc.calibration_seed, fault_budget, true,
                             nullptr));
        }
    }

    // A model with engines on no device is degraded: all of its
    // traffic is shed while the other models keep serving.
    auto setAvailable = [&](int m, int d) {
        const auto &mv = versions[static_cast<std::size_t>(m)];
        return mv[static_cast<std::size_t>(
                      active[static_cast<std::size_t>(m)])]
            .availableOn(d);
    };
    std::vector<bool> degraded(static_cast<std::size_t>(n_models),
                               false);

    // ------------------------------------------------------------
    // Placement: RAM-bounded instances per device, additionally
    // capped by the paper's Eq. 1 concurrency bound (estimated with
    // the shared ThroughputOptions::probe() knob set).
    // ------------------------------------------------------------
    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    InstancePool pool(cfg.devices, cfg.ram_fraction);
    for (int m = 0; m < n_models; m++) {
        const auto &mc = cfg.models[static_cast<std::size_t>(m)];
        int placed_total = 0;
        for (int d = 0; d < n_devices; d++) {
            if (!setAvailable(m, d))
                continue;
            const auto &spec =
                cfg.devices[static_cast<std::size_t>(d)];
            const auto &set =
                versions[static_cast<std::size_t>(m)]
                    .front()
                    .sets[static_cast<std::size_t>(d)];
            int eq1 = runtime::estimateMaxThreads(
                set.engines.front(), spec,
                runtime::ThroughputOptions::probe());
            reg.gauge("serve.device.eq1_threads",
                      {{"device", spec.name},
                       {"index", std::to_string(d)},
                       {"model", mc.model}})
                .set(static_cast<double>(eq1));
            int want = std::min(mc.instances_per_device,
                                std::max(1, eq1));
            placed_total += pool.place(
                m, d, set.maxFootprintBytes(), want);
        }
        if (placed_total == 0) {
            // No engines anywhere (persistent load faults) or no
            // RAM budget fits the context: degrade this model —
            // shed its traffic — instead of failing the fleet.
            degraded[static_cast<std::size_t>(m)] = true;
            reg.gauge("serve.model.degraded",
                      {{"model", mc.model}})
                .set(1.0);
            warn("EdgeServe: model '", mc.model,
                 "' has no usable instances (engine loads failed "
                 "or no RAM budget fits); shedding its traffic");
        }
    }

    // Per-device simulators and per-instance streams.
    std::vector<std::unique_ptr<gpusim::GpuSim>> sims;
    for (int d = 0; d < n_devices; d++)
        sims.push_back(std::make_unique<gpusim::GpuSim>(
            cfg.devices[static_cast<std::size_t>(d)]));
    {
        std::vector<int> streams_made(
            static_cast<std::size_t>(n_devices), 0);
        for (auto &inst : pool.instances()) {
            auto &made =
                streams_made[static_cast<std::size_t>(inst.device)];
            inst.stream =
                made == 0
                    ? 0
                    : sims[static_cast<std::size_t>(inst.device)]
                          ->createStream();
            made++;
        }
    }

    // ------------------------------------------------------------
    // Workload: per-model arrival streams from forked Rng streams,
    // merged into one id-ordered request table.
    // ------------------------------------------------------------
    std::vector<Request> requests;
    {
        Rng root(cfg.seed);
        Rng workload_rng = root.fork("workload");
        std::vector<std::pair<double, int>> merged;
        for (int m = 0; m < n_models; m++) {
            Rng rng = workload_rng.fork(
                static_cast<std::uint64_t>(m));
            for (double t : generateArrivals(
                     cfg.models[static_cast<std::size_t>(m)]
                         .arrivals,
                     cfg.duration_s, rng))
                merged.emplace_back(t, m);
        }
        std::sort(merged.begin(), merged.end());
        requests.reserve(merged.size());
        for (const auto &[t, m] : merged) {
            Request r;
            r.id = static_cast<std::int64_t>(requests.size());
            r.model = m;
            r.arrival_s = t;
            r.slo_ms =
                cfg.models[static_cast<std::size_t>(m)].slo_ms;
            requests.push_back(r);
        }
    }

    // ------------------------------------------------------------
    // Phase 1 — control loop over (arrival, timeout, predicted-
    // free) events. Decisions use predicted service times only; the
    // output is each instance's dispatch plan.
    // ------------------------------------------------------------
    std::vector<RequestQueue> queues(
        static_cast<std::size_t>(n_models));
    std::vector<DynamicBatcher> batchers;
    for (int m = 0; m < n_models; m++)
        batchers.emplace_back(
            policies[static_cast<std::size_t>(m)]);
    std::vector<std::int64_t> timeout_armed(
        static_cast<std::size_t>(n_models), -1);

    std::priority_queue<Event, std::vector<Event>, EventAfter> evq;
    std::int64_t seq = 0;
    for (const auto &r : requests) {
        Event e;
        e.t = r.arrival_s;
        e.seq = seq++;
        e.kind = Event::kArrival;
        e.target = r.model;
        e.req = r.id;
        evq.push(e);
    }

    // ------------------------------------------------------------
    // Hot-swap bookkeeping: one state per SwapSpec, spec order.
    // The protocol is a small state machine per swap:
    //   serving --kSwapBegin--> warming (dispatch paused; candidate
    //   loads, canaries run) --kSwapReady--> committed | rolled
    //   back --> serving. A candidate that fails to load rolls
    //   back immediately without pausing.
    // ------------------------------------------------------------
    struct SwapState
    {
        int model = -1;
        int to_version = -1; //!< into versions[model]; -1 until loaded
        bool rolled_back = false;
        std::string reason;  //!< machine-readable rollback reason
        double begin_s = 0.0;
        double ready_s = 0.0;
        double incumbent_canary_ms = 0.0;
        double candidate_canary_ms = 0.0;
    };
    std::vector<SwapState> swap_states;
    std::vector<std::int64_t> model_swaps(
        static_cast<std::size_t>(n_models), 0);
    std::vector<std::int64_t> model_rollbacks(
        static_cast<std::size_t>(n_models), 0);
    std::vector<double> model_downtime_ms(
        static_cast<std::size_t>(n_models), 0.0);
    std::vector<std::string> rollback_reason(
        static_cast<std::size_t>(n_models));
    // Swap windows per model, for the p99-during-swap split.
    std::vector<std::vector<std::pair<double, double>>> swap_windows(
        static_cast<std::size_t>(n_models));
    for (std::size_t s = 0; s < cfg.swaps.size(); s++) {
        const SwapSpec &sp = cfg.swaps[s];
        int m = -1;
        for (int i = 0; i < n_models; i++)
            if (cfg.models[static_cast<std::size_t>(i)].model ==
                sp.model)
                m = i;
        if (m < 0)
            fatal("hot-swap for unknown model '", sp.model, "'");
        if (sp.t_s < 0.0)
            fatal("hot-swap time must be non-negative (got ",
                  sp.t_s, ")");
        SwapState st;
        st.model = m;
        swap_states.push_back(st);
        Event e;
        e.t = sp.t_s;
        e.seq = seq++;
        e.kind = Event::kSwapBegin;
        e.target = static_cast<int>(s);
        evq.push(e);
    }

    // Dispatch pauses per model while a hot-swap candidate warms
    // up: queued requests wait out the window, none are dropped.
    std::vector<bool> swap_paused(static_cast<std::size_t>(n_models),
                                  false);

    auto activeVersion = [&](int m) -> const ModelVersion & {
        return versions[static_cast<std::size_t>(m)]
                       [static_cast<std::size_t>(
                           active[static_cast<std::size_t>(m)])];
    };

    auto backendView = [&](int m) {
        BackendView view;
        const ModelVersion &ver = activeVersion(m);
        // The ladder is identical across devices; take the first
        // available device's (a degraded model never gets here).
        for (int d = 0; d < n_devices; d++)
            if (ver.availableOn(d)) {
                view.ladder =
                    ver.sets[static_cast<std::size_t>(d)].batches;
                break;
            }
        for (int idx : pool.instancesOf(m)) {
            const Instance &inst =
                pool.instances()[static_cast<std::size_t>(idx)];
            BackendView::InstanceView iv;
            iv.free_s = inst.predicted_free_s;
            iv.service_s =
                ver.svc[static_cast<std::size_t>(inst.device)];
            view.instances.push_back(std::move(iv));
        }
        return view;
    };

    auto tryDispatch = [&](int m, double t) {
        if (swap_paused[static_cast<std::size_t>(m)])
            return;
        auto &q = queues[static_cast<std::size_t>(m)];
        const auto &batcher =
            batchers[static_cast<std::size_t>(m)];
        while (!q.empty()) {
            int inst_idx = pool.freeInstance(m, t);
            if (inst_idx < 0)
                break;
            int cut = batcher.decide(
                q.size(), q.oldestArrivalSeconds(), t);
            if (cut == 0)
                break;
            Instance &inst =
                pool.instances()[static_cast<std::size_t>(
                    inst_idx)];
            const ModelVersion &ver = activeVersion(m);
            int eidx =
                ver.sets[static_cast<std::size_t>(inst.device)]
                    .indexFor(cut);
            double svc_s =
                ver.svc[static_cast<std::size_t>(inst.device)]
                       [static_cast<std::size_t>(eidx)];
            PlannedDispatch pd;
            pd.t_s = t;
            pd.engine_idx = eidx;
            pd.version = active[static_cast<std::size_t>(m)];
            pd.batch = cut;
            pd.request_ids = q.cut(cut);
            pd.predicted_service_s = svc_s;
            for (std::int64_t id : pd.request_ids) {
                Request &r =
                    requests[static_cast<std::size_t>(id)];
                r.dispatch_s = t;
                r.batch = cut;
                r.device = inst.device;
                r.instance = inst_idx;
                r.version = pd.version;
            }
            inst.plan.push_back(std::move(pd));
            inst.predicted_free_s = t + svc_s;
            Event e;
            e.t = inst.predicted_free_s;
            e.seq = seq++;
            e.kind = Event::kPredFree;
            e.target = inst_idx;
            evq.push(e);
            mm[static_cast<std::size_t>(m)].batches.add();
            mm[static_cast<std::size_t>(m)].batch_size.record(cut);
        }
        // Arm (or re-arm after a front change) the batch timeout.
        if (!q.empty() &&
            q.frontId() !=
                timeout_armed[static_cast<std::size_t>(m)]) {
            timeout_armed[static_cast<std::size_t>(m)] =
                q.frontId();
            Event e;
            e.t = batcher.deadlineFor(q.oldestArrivalSeconds());
            e.seq = seq++;
            e.kind = Event::kTimeout;
            e.target = m;
            evq.push(e);
        }
    };

    {
        EDGERT_SPAN("serve_control",
                    {{"requests",
                      std::to_string(requests.size())}});
        while (!evq.empty()) {
            Event e = evq.top();
            evq.pop();
            switch (e.kind) {
              case Event::kArrival: {
                  Request &r =
                      requests[static_cast<std::size_t>(e.req)];
                  int m = r.model;
                  auto &q = queues[static_cast<std::size_t>(m)];
                  q.observeArrival(e.t);
                  mm[static_cast<std::size_t>(m)].offered.add();
                  if (degraded[static_cast<std::size_t>(m)]) {
                      // No backend exists for this model; shed
                      // instead of queueing forever.
                      r.outcome = Outcome::kShed;
                      mm[static_cast<std::size_t>(m)].shed.add();
                      break;
                  }
                  if (cfg.admission_control) {
                      double est_s = predictSojournSeconds(
                          backendView(m),
                          policies[static_cast<std::size_t>(m)],
                          static_cast<int>(q.size()), e.t,
                          q.rateHz());
                      if (est_s * 1e3 > r.slo_ms) {
                          r.outcome = Outcome::kShed;
                          mm[static_cast<std::size_t>(m)]
                              .shed.add();
                          break;
                      }
                  }
                  q.push(r.id, e.t);
                  mm[static_cast<std::size_t>(m)]
                      .queue_depth.record(
                          static_cast<double>(q.size()));
                  tryDispatch(m, e.t);
                  break;
              }
              case Event::kTimeout:
                  tryDispatch(e.target, e.t);
                  break;
              case Event::kPredFree:
                  tryDispatch(
                      pool.instances()[static_cast<std::size_t>(
                                           e.target)]
                          .model,
                      e.t);
                  break;
              case Event::kSwapBegin: {
                  const SwapSpec &sp =
                      cfg.swaps[static_cast<std::size_t>(e.target)];
                  SwapState &st =
                      swap_states[static_cast<std::size_t>(
                          e.target)];
                  const int m = st.model;
                  const auto mi = static_cast<std::size_t>(m);
                  const std::string &name = cfg.models[mi].model;
                  EDGERT_SPAN(
                      "deploy_swap",
                      {{"model", name},
                       {"build",
                        std::to_string(sp.candidate_build_id)}});
                  reg.counter("deploy.swap.attempted",
                              {{"model", name}})
                      .add();
                  model_swaps[mi]++;
                  auto rollBack = [&](const char *why) {
                      st.rolled_back = true;
                      st.reason = why;
                      model_rollbacks[mi]++;
                      rollback_reason[mi] = why;
                      reg.counter("deploy.swap.rolled_back",
                                  {{"model", name},
                                   {"reason", why}})
                          .add();
                      warn("EdgeServe: hot-swap of '", name,
                           "' to build ", sp.candidate_build_id,
                           " rolled back (", why, ")");
                  };
                  if (degraded[mi]) {
                      rollBack("model_degraded");
                      break;
                  }
                  if (swap_paused[mi]) {
                      rollBack("overlapping_swap");
                      break;
                  }

                  // The candidate loads through the same fault
                  // machinery as the initial placement (from the
                  // swap budget), on exactly the devices the
                  // incumbent serves. A candidate missing any of
                  // those devices cannot take over: roll back
                  // without ever pausing the incumbent.
                  std::vector<bool> mask(
                      static_cast<std::size_t>(n_devices));
                  for (int d = 0; d < n_devices; d++)
                      mask[static_cast<std::size_t>(d)] =
                          activeVersion(m).availableOn(d);
                  // A cross-precision swap (SwapSpec::precision set)
                  // builds the candidate ladder at its own precision
                  // — the drift gate upstream already judged it
                  // against the incumbent's lineage.
                  ModelVersion cand = buildVersion(
                      m, sp.candidate_build_id,
                      sp.precision.value_or(
                          cfg.models[mi].precision),
                      sp.calibration_seed, swap_fault_budget, false,
                      &mask);
                  bool usable = cand.available();
                  for (int d = 0; d < n_devices; d++)
                      if (mask[static_cast<std::size_t>(d)] &&
                          !cand.availableOn(d))
                          usable = false;
                  if (!usable) {
                      rollBack("load_failure");
                      break;
                  }

                  // Canary: measured batch-1 latency of incumbent
                  // vs candidate on the first serving device. The
                  // model's dispatch pauses for the warmup window
                  // (context creation, weight upload, canary runs
                  // on both versions) — that window is the swap's
                  // downtime; queued requests simply wait it out.
                  int d0 = 0;
                  for (int d = 0; d < n_devices; d++)
                      if (mask[static_cast<std::size_t>(d)]) {
                          d0 = d;
                          break;
                      }
                  runtime::LatencyOptions lo;
                  lo.runs = 3;
                  lo.with_profiler = false;
                  lo.noise_seed =
                      cfg.seed +
                      static_cast<std::uint64_t>(e.target);
                  auto inc = runtime::measureLatency(
                      activeVersion(m)
                          .sets[static_cast<std::size_t>(d0)]
                          .engines.front(),
                      cfg.devices[static_cast<std::size_t>(d0)],
                      lo);
                  auto cnd = runtime::measureLatency(
                      cand.sets[static_cast<std::size_t>(d0)]
                          .engines.front(),
                      cfg.devices[static_cast<std::size_t>(d0)],
                      lo);
                  st.incumbent_canary_ms = inc.mean_ms;
                  st.candidate_canary_ms = cnd.mean_ms;
                  double warmup_s = 0.0;
                  for (double s_ms : inc.samples_ms)
                      warmup_s += s_ms * 1e-3;
                  for (double s_ms : cnd.samples_ms)
                      warmup_s += s_ms * 1e-3;

                  versions[mi].push_back(std::move(cand));
                  st.to_version =
                      static_cast<int>(versions[mi].size()) - 1;
                  st.begin_s = e.t;
                  st.ready_s = e.t + warmup_s;
                  swap_paused[mi] = true;
                  model_downtime_ms[mi] += warmup_s * 1e3;
                  reg.histogram("deploy.swap.downtime_ms",
                                {{"model", name}})
                      .record(warmup_s * 1e3);
                  swap_windows[mi].emplace_back(e.t,
                                                st.ready_s + 0.25);
                  Event r;
                  r.t = st.ready_s;
                  r.seq = seq++;
                  r.kind = Event::kSwapReady;
                  r.target = e.target;
                  evq.push(r);
                  break;
              }
              case Event::kSwapReady: {
                  const SwapSpec &sp =
                      cfg.swaps[static_cast<std::size_t>(e.target)];
                  SwapState &st =
                      swap_states[static_cast<std::size_t>(
                          e.target)];
                  const int m = st.model;
                  const auto mi = static_cast<std::size_t>(m);
                  const std::string &name = cfg.models[mi].model;
                  double limit =
                      st.incumbent_canary_ms *
                      (1.0 + sp.rollback_regression_pct / 100.0);
                  if (st.candidate_canary_ms > limit) {
                      st.rolled_back = true;
                      st.reason = "latency_regression";
                      model_rollbacks[mi]++;
                      rollback_reason[mi] = st.reason;
                      reg.counter("deploy.swap.rolled_back",
                                  {{"model", name},
                                   {"reason", st.reason}})
                          .add();
                      warn("EdgeServe: hot-swap of '", name,
                           "' to build ", sp.candidate_build_id,
                           " rolled back (canary ",
                           st.candidate_canary_ms, " ms vs incumbent ",
                           st.incumbent_canary_ms, " ms)");
                  } else {
                      active[mi] = st.to_version;
                      reg.counter("deploy.swap.committed",
                                  {{"model", name}})
                          .add();
                  }
                  reg.gauge("deploy.model.active_build",
                            {{"model", name}})
                      .set(static_cast<double>(
                          activeVersion(m).build_id));
                  swap_paused[mi] = false;
                  tryDispatch(m, e.t);
                  break;
              }
            }
        }
    }

    // ------------------------------------------------------------
    // Phase 2 — execution replay: every dispatch released at its
    // planned time via delayUntil(), one run() per device. Measured
    // completions, not predictions, feed all reported statistics.
    // Devices share nothing once their plans are enqueued, so with
    // sim_threads > 1 the runs execute on a worker pool; histogram
    // records defer into each simulator and commit in device index
    // order, keeping every observable byte-identical to serial.
    // ------------------------------------------------------------
    std::vector<double> replay_wall_s(
        static_cast<std::size_t>(n_devices), 0.0);
    {
        // Context cache: [instance][(version, engine_idx)]. An
        // instance keeps its old version's contexts alive through
        // a swap — batches planned on the incumbent drain on its
        // contexts while new batches run on the candidate's.
        std::vector<std::map<std::pair<int, int>,
                             std::unique_ptr<
                                 runtime::ExecutionContext>>>
            ctxs(pool.instances().size());
        for (std::size_t i = 0; i < pool.instances().size(); i++) {
            Instance &inst = pool.instances()[i];
            auto &sim =
                *sims[static_cast<std::size_t>(inst.device)];
            for (auto &pd : inst.plan) {
                sim.delayUntil(inst.stream, pd.t_s);
                auto &ctx =
                    ctxs[i][{pd.version, pd.engine_idx}];
                if (!ctx)
                    ctx = std::make_unique<
                        runtime::ExecutionContext>(
                        versions
                            [static_cast<std::size_t>(inst.model)]
                            [static_cast<std::size_t>(pd.version)]
                                .sets[static_cast<std::size_t>(
                                    inst.device)]
                                .engines[static_cast<std::size_t>(
                                    pd.engine_idx)],
                        sim, inst.stream);
                // Staged: record upload/compute boundary events so
                // EdgeWatch can attribute per-request latency. The
                // markers are timing-neutral, and serving always
                // stages so the replay's event stream (and report
                // bytes) never depend on whether watch is enabled.
                auto h = ctx->enqueueInference(true, true,
                                               /*staged=*/true);
                pd.begin = h.begin;
                pd.upload_done = h.upload_done;
                pd.compute_done = h.compute_done;
                pd.end = h.end;
            }
        }
        for (auto &sim : sims)
            sim->setTraceMode(cfg.trace_mode,
                              cfg.trace_sample_every);
        auto runDevice = [&](std::size_t d) {
            std::uint64_t t0 = obs::clock().nowNanos();
            sims[d]->run();
            replay_wall_s[d] =
                static_cast<double>(obs::clock().nowNanos() - t0) *
                1e-9;
        };
        const int threads =
            std::min(std::max(1, cfg.sim_threads), n_devices);
        if (threads <= 1) {
            for (int d = 0; d < n_devices; d++) {
                EDGERT_SPAN(
                    "serve_replay",
                    {{"device",
                      cfg.devices[static_cast<std::size_t>(d)]
                          .name},
                     {"index", std::to_string(d)}});
                runDevice(static_cast<std::size_t>(d));
            }
        } else {
            EDGERT_SPAN("serve_replay",
                        {{"devices", std::to_string(n_devices)},
                         {"threads", std::to_string(threads)}});
            for (auto &sim : sims)
                sim->setDeferMetrics(true);
            ThreadPool tp(threads);
            tp.parallelFor(static_cast<std::size_t>(n_devices),
                           runDevice);
            for (auto &sim : sims) {
                sim->commitMetrics();
                sim->setDeferMetrics(false);
            }
            if (cfg.sim_metrics) {
                PoolStats ps = tp.stats();
                const obs::Labels pl = {{"scope", "serve_replay"}};
                reg.gauge("serve.pool.workers", pl)
                    .set(static_cast<double>(tp.size()));
                reg.gauge("serve.pool.tasks_run", pl)
                    .set(static_cast<double>(ps.tasks_run));
                reg.gauge("serve.pool.max_queue_depth", pl)
                    .set(static_cast<double>(ps.max_queue_depth));
                reg.gauge("serve.pool.wait_seconds", pl)
                    .set(static_cast<double>(ps.wait_ns) * 1e-9);
                reg.gauge("serve.pool.utilization_pct", pl)
                    .set(ps.utilizationPct());
            }
        }
        if (cfg.sim_metrics)
            for (int d = 0; d < n_devices; d++) {
                auto di = static_cast<std::size_t>(d);
                gpusim::publishSimMetrics(
                    *sims[di],
                    {{"device", cfg.devices[di].name},
                     {"index", std::to_string(d)}},
                    replay_wall_s[di]);
            }
    }

    // Fold measured completions back into the request table and the
    // predictor-error metric (instance order, then plan order —
    // deterministic). The per-request stage times (batch start,
    // upload done, compute done) feed EdgeWatch's attribution.
    std::vector<double> stage_begin(requests.size(), 0.0);
    std::vector<double> stage_upload(requests.size(), 0.0);
    std::vector<double> stage_compute(requests.size(), 0.0);
    for (const Instance &inst : pool.instances()) {
        const auto &sim =
            *sims[static_cast<std::size_t>(inst.device)];
        for (const auto &pd : inst.plan) {
            double start = sim.eventSeconds(pd.begin);
            double upload = sim.eventSeconds(pd.upload_done);
            double compute = sim.eventSeconds(pd.compute_done);
            double end = sim.eventSeconds(pd.end);
            double actual_s = std::max(end - start, 1e-12);
            double err_pct =
                std::fabs(pd.predicted_service_s - actual_s) /
                actual_s * 100.0;
            mm[static_cast<std::size_t>(inst.model)]
                .predictor_err.record(err_pct);
            for (std::int64_t id : pd.request_ids) {
                Request &r =
                    requests[static_cast<std::size_t>(id)];
                r.outcome = Outcome::kCompleted;
                r.done_s = end;
                stage_begin[static_cast<std::size_t>(id)] = start;
                stage_upload[static_cast<std::size_t>(id)] =
                    upload;
                stage_compute[static_cast<std::size_t>(id)] =
                    compute;
            }
        }
    }

    // ------------------------------------------------------------
    // Report assembly (request-id order keeps every metric write
    // deterministic).
    // ------------------------------------------------------------
    ServeReport report;
    report.seed = cfg.seed;
    report.duration_s = cfg.duration_s;
    report.admission_control = cfg.admission_control;
    report.dynamic_batching = cfg.dynamic_batching;

    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(n_models));
    std::vector<std::int64_t> within_slo(
        static_cast<std::size_t>(n_models), 0);
    for (const Request &r : requests) {
        if (r.outcome != Outcome::kCompleted)
            continue;
        auto m = static_cast<std::size_t>(r.model);
        lat[m].push_back(r.latencyMs());
        mm[m].latency_ms.record(r.latencyMs());
        mm[m].completed.add();
        if (r.sloMet())
            within_slo[m]++;
        else
            mm[m].violations.add();
    }

    for (int m = 0; m < n_models; m++) {
        auto mi = static_cast<std::size_t>(m);
        const auto &mc = cfg.models[mi];
        ModelStats s;
        s.model = mc.model;
        s.slo_ms = mc.slo_ms;
        s.instances = static_cast<int>(pool.instancesOf(m).size());
        s.load_failures = load_failures[mi];
        s.rebuilds = rebuilds[mi];
        s.degraded = degraded[mi];
        std::int64_t dispatched = 0;
        std::int64_t batches = 0;
        for (int idx : pool.instancesOf(m)) {
            for (const auto &pd :
                 pool.instances()[static_cast<std::size_t>(idx)]
                     .plan) {
                dispatched += pd.batch;
                batches++;
            }
        }
        for (const Request &r : requests) {
            if (r.model != m)
                continue;
            s.offered++;
            if (r.outcome == Outcome::kShed)
                s.shed++;
        }
        s.completed = static_cast<std::int64_t>(lat[mi].size());
        s.slo_violations = s.completed - within_slo[mi];
        s.batches = batches;
        s.active_build_id =
            versions[mi][static_cast<std::size_t>(active[mi])]
                .build_id;
        s.swaps = model_swaps[mi];
        s.swaps_rolled_back = model_rollbacks[mi];
        s.swap_downtime_ms = model_downtime_ms[mi];
        s.swap_rollback_reason = rollback_reason[mi];
        s.offered_qps =
            static_cast<double>(s.offered) / cfg.duration_s;
        s.goodput_qps = static_cast<double>(within_slo[mi]) /
                        cfg.duration_s;
        s.mean_batch =
            batches > 0 ? static_cast<double>(dispatched) /
                              static_cast<double>(batches)
                        : 0.0;
        if (!lat[mi].empty()) {
            s.mean_ms = mean(lat[mi]);
            s.p50_ms = percentile(lat[mi], 50.0);
            s.p95_ms = percentile(lat[mi], 95.0);
            s.p99_ms = percentile(lat[mi], 99.0);
            s.max_ms =
                *std::max_element(lat[mi].begin(), lat[mi].end());
        }
        // Mean absolute predictor error over this model's batches.
        {
            double sum = 0.0;
            std::int64_t n = 0;
            for (int idx : pool.instancesOf(m)) {
                const Instance &inst =
                    pool.instances()[static_cast<std::size_t>(
                        idx)];
                const auto &sim = *sims[static_cast<std::size_t>(
                    inst.device)];
                for (const auto &pd : inst.plan) {
                    double actual =
                        std::max(sim.eventSeconds(pd.end) -
                                     sim.eventSeconds(pd.begin),
                                 1e-12);
                    sum += std::fabs(pd.predicted_service_s -
                                     actual) /
                           actual * 100.0;
                    n++;
                }
            }
            s.predictor_mae_pct =
                n > 0 ? sum / static_cast<double>(n) : 0.0;
        }
        // Per engine-version breakdown (hot-swap lineage).
        {
            const auto &mv = versions[mi];
            std::vector<VersionStats> vs(mv.size());
            std::vector<std::vector<double>> vlat(mv.size());
            for (std::size_t v = 0; v < mv.size(); v++) {
                vs[v].build_id = mv[v].build_id;
                for (int d = 0; d < n_devices; d++)
                    if (mv[v].availableOn(d)) {
                        vs[v].fingerprint =
                            mv[v].sets[static_cast<std::size_t>(d)]
                                .engines.front()
                                .fingerprint();
                        break;
                    }
            }
            for (int idx : pool.instancesOf(m))
                for (const auto &pd :
                     pool.instances()[static_cast<std::size_t>(
                                          idx)]
                         .plan)
                    vs[static_cast<std::size_t>(pd.version)]
                        .batches++;
            for (const Request &r : requests) {
                if (r.model != m ||
                    r.outcome != Outcome::kCompleted)
                    continue;
                auto v = static_cast<std::size_t>(r.version);
                vs[v].completed++;
                vlat[v].push_back(r.latencyMs());
            }
            for (std::size_t v = 0; v < mv.size(); v++)
                if (!vlat[v].empty()) {
                    vs[v].mean_ms = mean(vlat[v]);
                    vs[v].p99_ms = percentile(vlat[v], 99.0);
                }
            s.versions = std::move(vs);
        }
        // p99 of requests arriving inside vs outside swap windows.
        if (!swap_windows[mi].empty()) {
            std::vector<double> in_win, out_win;
            for (const Request &r : requests) {
                if (r.model != m ||
                    r.outcome != Outcome::kCompleted)
                    continue;
                bool in = false;
                for (const auto &[a, b] : swap_windows[mi])
                    if (r.arrival_s >= a && r.arrival_s <= b) {
                        in = true;
                        break;
                    }
                (in ? in_win : out_win).push_back(r.latencyMs());
            }
            if (!in_win.empty())
                s.p99_swap_ms = percentile(in_win, 99.0);
            if (!out_win.empty())
                s.p99_steady_ms = percentile(out_win, 99.0);
        } else {
            s.p99_steady_ms = s.p99_ms;
        }
        report.models.push_back(std::move(s));
    }

    for (int d = 0; d < n_devices; d++) {
        auto di = static_cast<std::size_t>(d);
        const auto &spec = cfg.devices[di];
        DeviceStats s;
        s.device = spec.name;
        for (const auto &inst : pool.instances())
            if (inst.device == d)
                s.instances++;
        auto st = sims[di]->stats();
        s.sm_util_pct = st.smUtilizationPct(spec.sm_count);
        s.copy_busy_pct =
            st.window_s > 0.0
                ? 100.0 * st.copy_busy_s / st.window_s
                : 0.0;
        s.makespan_s = sims[di]->nowSeconds();
        s.ram_used_bytes = pool.ramUsedBytes(d);
        s.ram_budget_bytes = pool.ramBudgetBytes(d);

        const obs::Labels labels = {{"device", spec.name},
                                    {"index", std::to_string(d)}};
        reg.gauge("serve.device.sm_util_pct", labels)
            .set(s.sm_util_pct);
        reg.gauge("serve.device.copy_busy_pct", labels)
            .set(s.copy_busy_pct);
        reg.gauge("serve.device.instances", labels)
            .set(static_cast<double>(s.instances));
        reg.gauge("serve.device.ram_used_bytes", labels)
            .set(static_cast<double>(s.ram_used_bytes));
        report.devices.push_back(std::move(s));
    }

    // ------------------------------------------------------------
    // EdgeWatch: replay the run's admissions, sheds, dispatches,
    // completions (with stage attribution) and swap lifecycle as
    // one time-ordered feed. The feed is built from the same
    // deterministic tables as the report, so the watch report and
    // every incident file are byte-identical across runs — and the
    // serve report itself never depends on whether watch is on.
    // ------------------------------------------------------------
    std::vector<profile::SimSpan> watch_spans;
    if (cfg.watch.enabled) {
        EDGERT_SPAN("serve_watch",
                    {{"models", std::to_string(n_models)}});
        std::vector<std::string> model_names;
        std::vector<double> slo_ms;
        for (const auto &mc : cfg.models) {
            model_names.push_back(mc.model);
            slo_ms.push_back(mc.slo_ms);
        }
        std::vector<std::string> dev_names;
        std::vector<double> dev_scores;
        for (int d = 0; d < n_devices; d++) {
            const auto &spec =
                cfg.devices[static_cast<std::size_t>(d)];
            dev_names.push_back(spec.name + "[" +
                                std::to_string(d) + "]");
            // Precision-effective capability: raw FP16 FLOPs scored
            // a device identically whether it serves FP16 or INT8
            // ladders, mis-ranking fleets where INT8 runs ~1.6x the
            // HMMA rate. Weight the peak by the mean throughput
            // factor of the precisions actually served here.
            double factor = 0.0;
            for (const auto &mc : cfg.models)
                factor += core::precisionThroughputFactor(
                    spec, mc.precision);
            factor /= static_cast<double>(cfg.models.size());
            dev_scores.push_back(spec.peakFp16Flops() * factor);
        }
        watch::EdgeWatch ew(cfg.watch, model_names, slo_ms,
                            dev_names, dev_scores);

        struct FeedItem
        {
            enum What {
                kAdmit,
                kShed,
                kSwapBegin,
                kDispatch,
                kSwapCommit,
                kSwapRollback,
                kComplete,
            };
            double t = 0.0;
            int rank = 0; //!< tie-break at equal t (What order)
            What what = kAdmit;
            int model = -1;
            std::int64_t id = -1;
            int batch = 0;
            int device = -1;
            std::uint64_t build_id = 0;
            std::string reason;
            watch::RequestTrace rt;
        };
        std::size_t feed_cap = requests.size() * 2;
        for (const Instance &inst : pool.instances())
            feed_cap += inst.plan.size();
        feed_cap += swap_states.size() * 2;
        std::vector<FeedItem> feed;
        feed.reserve(feed_cap);
        for (const Request &r : requests) {
            FeedItem it;
            it.t = r.arrival_s;
            it.what = r.outcome == Outcome::kShed
                          ? FeedItem::kShed
                          : FeedItem::kAdmit;
            it.rank = 0;
            it.model = r.model;
            it.id = r.id;
            feed.push_back(std::move(it));
            if (r.outcome != Outcome::kCompleted)
                continue;
            FeedItem c;
            c.t = r.done_s;
            c.rank = 4;
            c.what = FeedItem::kComplete;
            c.model = r.model;
            c.id = r.id;
            c.rt.id = r.id;
            c.rt.model = r.model;
            c.rt.device = r.device;
            c.rt.instance = r.instance;
            c.rt.batch = r.batch;
            c.rt.version = r.version;
            c.rt.arrival_s = r.arrival_s;
            c.rt.dispatch_s = r.dispatch_s;
            c.rt.begin_s =
                stage_begin[static_cast<std::size_t>(r.id)];
            c.rt.upload_done_s =
                stage_upload[static_cast<std::size_t>(r.id)];
            c.rt.compute_done_s =
                stage_compute[static_cast<std::size_t>(r.id)];
            c.rt.done_s = r.done_s;
            feed.push_back(std::move(c));
        }
        for (const Instance &inst : pool.instances()) {
            for (const auto &pd : inst.plan) {
                FeedItem it;
                it.t = pd.t_s;
                it.rank = 2;
                it.what = FeedItem::kDispatch;
                it.model = inst.model;
                it.batch = pd.batch;
                it.device = inst.device;
                it.id = pd.request_ids.empty()
                            ? -1
                            : pd.request_ids.front();
                feed.push_back(std::move(it));
            }
        }
        for (std::size_t s = 0; s < swap_states.size(); s++) {
            const SwapState &st = swap_states[s];
            const SwapSpec &sp = cfg.swaps[s];
            const bool warmed = st.to_version >= 0;
            FeedItem b;
            b.t = warmed ? st.begin_s : sp.t_s;
            b.rank = 1;
            b.what = FeedItem::kSwapBegin;
            b.model = st.model;
            b.build_id = sp.candidate_build_id;
            feed.push_back(std::move(b));
            FeedItem e;
            e.t = warmed ? st.ready_s : sp.t_s;
            e.rank = 3;
            e.model = st.model;
            if (st.rolled_back) {
                e.what = FeedItem::kSwapRollback;
                e.reason = st.reason;
            } else {
                e.what = FeedItem::kSwapCommit;
                e.build_id = sp.candidate_build_id;
            }
            feed.push_back(std::move(e));
        }
        // Sort indices, not the (large) items: stable_sort moves
        // its elements O(n log n) times and the feed dominates the
        // watch path's wall time for busy scenarios.
        std::vector<std::uint32_t> order(feed.size());
        for (std::uint32_t i = 0; i < order.size(); i++)
            order[i] = i;
        std::stable_sort(
            order.begin(), order.end(),
            [&feed](std::uint32_t ia, std::uint32_t ib) {
                const FeedItem &a = feed[ia];
                const FeedItem &b = feed[ib];
                if (a.t != b.t)
                    return a.t < b.t;
                return a.rank < b.rank;
            });
        for (std::uint32_t idx : order) {
            const FeedItem &it = feed[idx];
            switch (it.what) {
              case FeedItem::kAdmit:
                  ew.onAdmit(it.t, it.model, it.id);
                  break;
              case FeedItem::kShed:
                  ew.onShed(it.t, it.model, it.id);
                  break;
              case FeedItem::kDispatch:
                  ew.onDispatch(it.t, it.model, it.batch,
                                it.device, it.id);
                  break;
              case FeedItem::kSwapBegin:
                  ew.onSwapBegin(it.t, it.model, it.build_id);
                  break;
              case FeedItem::kSwapCommit:
                  ew.onSwapCommit(it.t, it.model, it.build_id);
                  break;
              case FeedItem::kSwapRollback:
                  ew.onSwapRollback(it.t, it.model, it.reason);
                  break;
              case FeedItem::kComplete:
                  ew.onComplete(it.rt);
                  break;
            }
        }
        ew.finish(cfg.duration_s);
        report.watch = ew.summary();
        ew.writeFiles();

        // Slow requests overlay the device tracks in the merged
        // trace: one track per retained request, stage spans on
        // the simulated clock.
        for (std::size_t i = 0;
             i < report.watch.slow_requests.size(); i++) {
            const watch::RequestTrace &r =
                report.watch.slow_requests[i];
            auto span = [&](const char *stage, double a,
                            double b) {
                profile::SimSpan s;
                s.name = "r" + std::to_string(r.id) + " " + stage;
                s.track = static_cast<int>(i);
                s.start_s = a;
                s.end_s = b;
                s.args = {
                    {"model", model_names[static_cast<std::size_t>(
                                  r.model)]},
                    {"batch", std::to_string(r.batch)},
                    {"device", std::to_string(r.device)}};
                watch_spans.push_back(std::move(s));
            };
            span("queue", r.arrival_s, r.dispatch_s);
            span("dispatch_wait", r.dispatch_s, r.begin_s);
            span("upload", r.begin_s, r.upload_done_s);
            span("compute", r.upload_done_s, r.compute_done_s);
            span("download", r.compute_done_s, r.done_s);
        }
    }

    if (!cfg.trace_out.empty()) {
        std::vector<profile::NamedTrace> device_traces;
        for (int d = 0; d < n_devices; d++) {
            const auto &sim = *sims[static_cast<std::size_t>(d)];
            profile::NamedTrace nt;
            nt.name =
                cfg.devices[static_cast<std::size_t>(d)].name +
                "[" + std::to_string(d) + "]";
            nt.trace = &sim.trace();
            if (sim.traceMode() == gpusim::TraceMode::kSampled)
                nt.sample_every = sim.traceSampleEvery();
            device_traces.push_back(std::move(nt));
        }
        profile::saveMergedChromeTrace(
            cfg.trace_out, obs::Tracer::global().spans(),
            device_traces, watch_spans, "watch: slow requests");
    }

    return report;
}

std::string
ServeReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"duration_s\": " << jsonNumber(duration_s) << ",\n";
    os << "  \"admission_control\": "
       << (admission_control ? "true" : "false") << ",\n";
    os << "  \"dynamic_batching\": "
       << (dynamic_batching ? "true" : "false") << ",\n";
    os << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); i++) {
        const ModelStats &s = models[i];
        os << "    {\n";
        os << "      \"model\": \"" << jsonEscape(s.model)
           << "\",\n";
        os << "      \"slo_ms\": " << jsonNumber(s.slo_ms)
           << ",\n";
        os << "      \"instances\": " << s.instances << ",\n";
        os << "      \"degraded\": "
           << (s.degraded ? "true" : "false") << ",\n";
        os << "      \"load_failures\": " << s.load_failures
           << ",\n";
        os << "      \"rebuilds\": " << s.rebuilds << ",\n";
        os << "      \"offered\": " << s.offered << ",\n";
        os << "      \"offered_qps\": "
           << jsonNumber(s.offered_qps) << ",\n";
        os << "      \"shed\": " << s.shed << ",\n";
        os << "      \"completed\": " << s.completed << ",\n";
        os << "      \"slo_violations\": " << s.slo_violations
           << ",\n";
        os << "      \"batches\": " << s.batches << ",\n";
        os << "      \"mean_batch\": " << jsonNumber(s.mean_batch)
           << ",\n";
        os << "      \"goodput_qps\": "
           << jsonNumber(s.goodput_qps) << ",\n";
        os << "      \"latency_ms\": {\n";
        os << "        \"mean\": " << jsonNumber(s.mean_ms)
           << ",\n";
        os << "        \"p50\": " << jsonNumber(s.p50_ms) << ",\n";
        os << "        \"p95\": " << jsonNumber(s.p95_ms) << ",\n";
        os << "        \"p99\": " << jsonNumber(s.p99_ms) << ",\n";
        os << "        \"max\": " << jsonNumber(s.max_ms) << "\n";
        os << "      },\n";
        os << "      \"predictor_mae_pct\": "
           << jsonNumber(s.predictor_mae_pct) << ",\n";
        os << "      \"active_build_id\": " << s.active_build_id
           << ",\n";
        os << "      \"swaps\": " << s.swaps << ",\n";
        os << "      \"swaps_rolled_back\": " << s.swaps_rolled_back
           << ",\n";
        os << "      \"swap_downtime_ms\": "
           << jsonNumber(s.swap_downtime_ms) << ",\n";
        os << "      \"swap_rollback_reason\": \""
           << jsonEscape(s.swap_rollback_reason) << "\",\n";
        os << "      \"p99_swap_ms\": " << jsonNumber(s.p99_swap_ms)
           << ",\n";
        os << "      \"p99_steady_ms\": "
           << jsonNumber(s.p99_steady_ms) << ",\n";
        os << "      \"versions\": [\n";
        for (std::size_t v = 0; v < s.versions.size(); v++) {
            const VersionStats &vs = s.versions[v];
            os << "        {\"build_id\": " << vs.build_id
               << ", \"fingerprint\": \"" << vs.fingerprint
               << "\", \"batches\": " << vs.batches
               << ", \"completed\": " << vs.completed
               << ", \"mean_ms\": " << jsonNumber(vs.mean_ms)
               << ", \"p99_ms\": " << jsonNumber(vs.p99_ms) << "}"
               << (v + 1 < s.versions.size() ? "," : "") << "\n";
        }
        os << "      ]\n";
        os << "    }" << (i + 1 < models.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"devices\": [\n";
    for (std::size_t i = 0; i < devices.size(); i++) {
        const DeviceStats &s = devices[i];
        os << "    {\n";
        os << "      \"device\": \"" << jsonEscape(s.device)
           << "\",\n";
        os << "      \"instances\": " << s.instances << ",\n";
        os << "      \"sm_util_pct\": "
           << jsonNumber(s.sm_util_pct) << ",\n";
        os << "      \"copy_busy_pct\": "
           << jsonNumber(s.copy_busy_pct) << ",\n";
        os << "      \"makespan_s\": " << jsonNumber(s.makespan_s)
           << ",\n";
        os << "      \"ram_used_bytes\": " << s.ram_used_bytes
           << ",\n";
        os << "      \"ram_budget_bytes\": " << s.ram_budget_bytes
           << "\n";
        os << "    }" << (i + 1 < devices.size() ? "," : "")
           << "\n";
    }
    os << "  ]";
    // Trailing key so watch-off reports keep their pre-watch bytes.
    if (watch.enabled) {
        os << ",\n  \"watch\": {\n";
        os << "    \"admitted\": " << watch.admitted << ",\n";
        os << "    \"shed\": " << watch.shed << ",\n";
        os << "    \"completed\": " << watch.completed << ",\n";
        os << "    \"page_alerts\": " << watch.page_alerts
           << ",\n";
        os << "    \"warn_alerts\": " << watch.warn_alerts
           << ",\n";
        os << "    \"clear_alerts\": " << watch.clear_alerts
           << ",\n";
        os << "    \"anomalies\": " << watch.anomalies << ",\n";
        os << "    \"incidents\": " << watch.incidents << ",\n";
        os << "    \"first_page_s\": "
           << jsonNumber(watch.first_page_s) << ",\n";
        os << "    \"models\": [\n";
        for (std::size_t i = 0; i < watch.models.size(); i++) {
            const watch::ModelWatchStats &m = watch.models[i];
            os << "      {\"model\": \"" << jsonEscape(m.model)
               << "\", \"tier\": \""
               << watch::alertTierName(m.tier)
               << "\", \"burn_fast\": " << jsonNumber(m.burn.fast)
               << ", \"burn_mid\": " << jsonNumber(m.burn.mid)
               << ", \"burn_slow\": " << jsonNumber(m.burn.slow)
               << ", \"observed\": " << m.observed
               << ", \"bad\": " << m.bad
               << ", \"stage_mean_ms\": {\"queue\": "
               << jsonNumber(m.queue_mean_ms)
               << ", \"dispatch_wait\": "
               << jsonNumber(m.dispatch_wait_mean_ms)
               << ", \"upload\": " << jsonNumber(m.upload_mean_ms)
               << ", \"compute\": "
               << jsonNumber(m.compute_mean_ms)
               << ", \"download\": "
               << jsonNumber(m.download_mean_ms)
               << ", \"total\": " << jsonNumber(m.total_mean_ms)
               << "}}"
               << (i + 1 < watch.models.size() ? "," : "") << "\n";
        }
        os << "    ]\n";
        os << "  }\n";
    } else {
        os << "\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace edgert::serve
