#ifndef EDGERT_SERVE_SCHEDULER_HH
#define EDGERT_SERVE_SCHEDULER_HH

/**
 * @file
 * Engine-instance pool and placement for EdgeServe.
 *
 * Each model is prebuilt at power-of-two batch sizes up to its
 * max_batch (TensorRT engines are static-shape: a batch of b runs
 * on the smallest prebuilt engine >= b). An *instance* is one
 * execution context bound to its own stream on one device — the
 * pool places the requested instances per device, bounded by
 * `runtime::contextFootprintBytes` of the largest engine against
 * the device's RAM budget, and tracks the dispatch plan the control
 * loop builds for the execution replay.
 */

#include <cstdint>
#include <vector>

#include "core/engine.hh"
#include "gpusim/device.hh"
#include "gpusim/sim.hh"

namespace edgert::serve {

/**
 * Power-of-two engine-batch ladder covering [1, max_batch]: 1, 2,
 * 4, ... up to the smallest power of two >= max_batch. Every server
 * (node-local or fleet) prebuilds one engine per rung.
 */
std::vector<int> engineBatchLadder(int max_batch);

/** One model's prebuilt engines on one device, batch ascending. */
struct EngineSet
{
    std::vector<core::Engine> engines;
    std::vector<int> batches; //!< batch size of engines[i]

    /** Index of the smallest engine fitting `batch` requests. */
    int indexFor(int batch) const;

    /** Footprint of the largest (most expensive) engine. */
    std::int64_t maxFootprintBytes() const;
};

/** One batch dispatch decided by the control loop. */
struct PlannedDispatch
{
    double t_s = 0.0;       //!< release (batch-cut) time
    int engine_idx = 0;     //!< into the instance's EngineSet
    int version = 0;        //!< engine version (hot-swap lineage)
    int batch = 0;          //!< actual request count (<= engine batch)
    std::vector<std::int64_t> request_ids;
    double predicted_service_s = 0.0;

    // Filled during the execution replay. The stage events
    // (upload_done, compute_done) come from the staged enqueue and
    // feed EdgeWatch's per-request attribution.
    gpusim::EventId begin = -1;
    gpusim::EventId upload_done = -1;
    gpusim::EventId compute_done = -1;
    gpusim::EventId end = -1;
};

/** One engine instance: a stream-bound context slot on a device. */
struct Instance
{
    int model = 0;
    int device = 0;
    int stream = 0;               //!< on the device's simulator
    double predicted_free_s = 0.0; //!< control-plane estimate
    std::vector<PlannedDispatch> plan;
};

/** RAM-bounded instance placement across the device fleet. */
class InstancePool
{
  public:
    /**
     * @param devices      The simulated fleet.
     * @param ram_fraction Share of each device's RAM available for
     *        execution contexts (the rest models the OS, CUDA and
     *        the framework itself).
     */
    InstancePool(const std::vector<gpusim::DeviceSpec> &devices,
                 double ram_fraction);

    /**
     * Place up to `want` instances of `model` on `device`, each
     * costing `footprint_bytes`; stops at the RAM budget. Returns
     * the number actually placed.
     */
    int place(int model, int device, std::int64_t footprint_bytes,
              int want);

    std::vector<Instance> &instances() { return instances_; }
    const std::vector<Instance> &instances() const
    {
        return instances_;
    }

    /** Pool indices of the instances serving `model`. */
    const std::vector<int> &instancesOf(int model) const;

    /**
     * Pool index of the predicted-free instance of `model` with the
     * earliest predicted_free_s <= now_s (ties to the lowest
     * index), or -1 when all are predicted busy.
     */
    int freeInstance(int model, double now_s) const;

    /** Earliest predicted_free_s over `model`'s instances. */
    double earliestFree(int model) const;

    /** Bytes of context footprint placed on `device`. */
    std::int64_t ramUsedBytes(int device) const;

    /** Context RAM budget of `device`. */
    std::int64_t ramBudgetBytes(int device) const;

  private:
    std::vector<gpusim::DeviceSpec> devices_;
    double ram_fraction_;
    std::vector<Instance> instances_;
    std::vector<std::vector<int>> by_model_;
    std::vector<std::int64_t> ram_used_;
};

} // namespace edgert::serve

#endif // EDGERT_SERVE_SCHEDULER_HH
