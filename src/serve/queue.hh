#ifndef EDGERT_SERVE_QUEUE_HH
#define EDGERT_SERVE_QUEUE_HH

/**
 * @file
 * Per-model request queue with SLO-aware admission control.
 *
 * The queue holds admitted-but-undispatched request ids in arrival
 * order and tracks an EWMA of the arrival rate (used to estimate how
 * long a fresh request will wait for its batch to fill). Admission
 * control predicts the request's sojourn — batch-fill wait plus
 * queueing behind batches ahead of it plus its own service — against
 * a view of the backend instances' predicted-free times, and sheds
 * the request on arrival when the prediction exceeds the SLO
 * (deadline-infeasible work is rejected while it is still cheap).
 */

#include <cstdint>
#include <vector>

#include "common/arena.hh"

namespace edgert::serve {

/** Batching policy of one model's queue. */
struct BatchPolicy
{
    int max_batch = 8;          //!< coalesce at most this many
    double timeout_us = 2000.0; //!< max wait for a fuller batch
};

/**
 * What admission control knows about the backend: the prebuilt
 * engine-batch ladder and, per instance serving this model, the
 * predicted-free time and predicted service seconds of one
 * dispatch at each ladder size.
 */
struct BackendView
{
    std::vector<int> ladder; //!< engine batch sizes, ascending

    struct InstanceView
    {
        double free_s = 0.0; //!< predicted idle-at time
        std::vector<double> service_s; //!< parallel to `ladder`
    };
    std::vector<InstanceView> instances;

    /** Service prediction of a `batch`-request dispatch there. */
    double serviceFor(const InstanceView &inst, int batch) const;
};

/**
 * Predicted sojourn (seconds from `now_s` to completion) of a
 * request arriving now, given `queued_ahead` admitted requests
 * already waiting. Greedily packs the backlog into full max_batch
 * dispatches onto earliest-free instances; the request's own batch
 * is sized by its backlog remainder plus the arrivals expected
 * within the batching timeout, and the expected batch-fill wait
 * min(timeout, slots-remaining / arrival-rate) is added on top.
 */
double predictSojournSeconds(const BackendView &backend,
                             const BatchPolicy &policy,
                             int queued_ahead, double now_s,
                             double arrival_rate_hz);

/** Arrival-ordered queue of admitted request ids for one model. */
class RequestQueue
{
  public:
    /** @param rate_tau_s EWMA time constant of the arrival-rate
     *         estimate. */
    explicit RequestQueue(double rate_tau_s = 0.5)
        : rate_tau_s_(rate_tau_s)
    {}

    /** Record an arrival (admitted or not) in the rate estimate. */
    void observeArrival(double now_s);

    /** Enqueue an admitted request. */
    void push(std::int64_t id, double arrival_s);

    /** Dequeue the oldest `n` requests (n <= size()). */
    std::vector<std::int64_t> cut(int n);

    bool empty() const { return pending_.empty(); }
    std::size_t size() const { return pending_.size(); }

    /** Arrival time of the oldest pending request. */
    double oldestArrivalSeconds() const;

    /** Id of the oldest pending request (queue must be non-empty). */
    std::int64_t frontId() const { return pending_.front().id; }

    /** EWMA arrival-rate estimate in requests/second. */
    double rateHz() const { return rate_hz_; }

  private:
    struct Pending
    {
        std::int64_t id;
        double arrival_s;
    };

    RingBuffer<Pending> pending_;
    double rate_tau_s_;
    double rate_hz_ = 0.0;
    double last_arrival_s_ = -1.0;
};

} // namespace edgert::serve

#endif // EDGERT_SERVE_QUEUE_HH
