#include "serve/predictor.hh"

#include <algorithm>

#include "gpusim/sim.hh"
#include "gpusim/timing.hh"
#include "runtime/context.hh"

namespace edgert::serve {

LatencyPredictor::LatencyPredictor(const gpusim::DeviceSpec &device)
    : device_(device),
      params_(perfmodel::MicroArchParams::measure(device)),
      bsp_(device)
{
}

void
LatencyPredictor::calibrate(const core::Engine &engine)
{
    // Solo, jitter-free run: the calibration fixture of §VI-B. The
    // serving path keeps weights resident, so none are uploaded
    // here either — lambdas describe steady-state kernel time.
    gpusim::GpuSim sim(device_);
    runtime::ExecutionContext ctx(engine, sim, /*stream=*/0);
    ctx.enqueueInference(true, true);
    sim.run();
    bsp_.calibrate(sim.trace());
}

double
LatencyPredictor::predictServiceSeconds(const core::Engine &engine) const
{
    const auto &lambdas = bsp_.lambdas();

    double kernel_s = 0.0;
    int kernels = 0;
    for (const auto &step : engine.steps()) {
        for (const auto &k : step.kernels) {
            double raw_ms = perfmodel::bspRawMs(k, device_, params_);
            auto it = lambdas.find(k.name);
            double lambda =
                it == lambdas.end() ? 1.0 : it->second.lambda;
            kernel_s += raw_ms * 1e-3 / std::max(lambda, 1e-9);
            kernels++;
        }
    }

    // Uncalibrated kernels (lambda = 1) miss their launch latency —
    // calibrated lambdas absorb it, since the simulator's recorded
    // kernel durations include the serial launch phase.
    double launch_s = 0.0;
    if (kernels > 0 && lambdas.empty())
        launch_s = kernels * device_.kernel_launch_us * 1e-6;

    // Input/output copies, one cudaMemcpy each (pageable path, as
    // enqueueInference issues them).
    double copy_s = 0.0;
    for (const auto &in : engine.inputs())
        copy_s += gpusim::memcpySeconds(device_, in.bytes, 1);
    for (const auto &out : engine.outputs())
        copy_s += gpusim::memcpySeconds(device_, out.bytes, 1);

    return kernel_s + launch_s + copy_s;
}

} // namespace edgert::serve
