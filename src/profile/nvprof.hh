#ifndef EDGERT_PROFILE_NVPROF_HH
#define EDGERT_PROFILE_NVPROF_HH

/**
 * @file
 * nvprof-analogue reporting over GpuSim traces.
 *
 * Two modes mirror the tool the paper uses:
 *  - summary mode: per-kernel aggregation (calls, total, avg, min,
 *    max) plus the CUDA memcpy rows;
 *  - GPU-trace mode: the chronological list of every launch.
 *
 * Like the real nvprof, attaching the profiler perturbs the
 * measurement: GpuSim adds a per-API-call overhead while profiling
 * is enabled (GpuSim::setProfilingOverheadUs), which is how the
 * Table VIII (profiled) vs Table IX (bare) difference reproduces.
 */

#include <ostream>
#include <string>
#include <vector>

#include "gpusim/sim.hh"

namespace edgert::profile {

/** One row of the summary-mode report. */
struct SummaryRow
{
    std::string name;
    gpusim::OpKind kind = gpusim::OpKind::kKernel;
    int calls = 0;
    double total_ms = 0.0;
    double avg_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double pct_of_total = 0.0;
};

/** Aggregate a trace into summary rows, sorted by total time. */
std::vector<SummaryRow>
summarize(const std::vector<gpusim::OpRecord> &trace);

/** Render summary mode ("nvprof --print-summary" style). */
void printSummary(std::ostream &os,
                  const std::vector<gpusim::OpRecord> &trace);

/**
 * Render GPU-trace mode (chronological launch list). Markers and
 * host delays are skipped; after @p max_rows printable rows the
 * output ends with an explicit "... N more rows" footer.
 * @return the number of rows truncated (0 when everything fit).
 */
std::size_t printGpuTrace(std::ostream &os,
                          const std::vector<gpusim::OpRecord> &trace,
                          std::size_t max_rows = 64);

/**
 * GPU-trace mode straight from a simulator. Identical to the
 * vector overload on a full trace; when the simulator's trace mode
 * thinned the record stream (kSampled/kOff) the listing ends with a
 * "sampled 1/N" footer stating how many of the completed ops were
 * recorded, so a thinned trace is never mistaken for the full
 * launch list.
 */
std::size_t printGpuTrace(std::ostream &os,
                          const gpusim::GpuSim &sim,
                          std::size_t max_rows = 64);

/** Per-invocation durations (ms) of one kernel name, in order. */
std::vector<double>
invocationTimesMs(const std::vector<gpusim::OpRecord> &trace,
                  const std::string &kernel_name);

} // namespace edgert::profile

#endif // EDGERT_PROFILE_NVPROF_HH
