#ifndef EDGERT_PROFILE_TRACE_EXPORT_HH
#define EDGERT_PROFILE_TRACE_EXPORT_HH

/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) export of GpuSim op
 * traces. Each stream renders as a track; kernels, memcpys and host
 * delays become complete events — the visual equivalent of nvprof's
 * timeline mode. Streams and host threads are labeled via
 * `thread_name` metadata events so the viewer shows e.g.
 * "stream 0 (xavier-nx)" instead of a bare tid.
 *
 * The merged variant interleaves host-side obs::Tracer spans (build
 * phases, tactic sweeps) with the device ops in one file: host
 * tracks (small tids) render above the device stream tracks (tids
 * offset by 1000). Host span timestamps are rebased so the first
 * span starts at ts 0 — host Clock time and simulated device time
 * share an origin in the viewer but are not one clock.
 */

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/sim.hh"
#include "obs/trace.hh"

namespace edgert::profile {

/**
 * Write the trace in Chrome's JSON array format.
 * @param os     Output stream.
 * @param trace  GpuSim::trace() records.
 * @param process_name Label for the whole trace ("xavier-nx").
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<gpusim::OpRecord> &trace,
                      const std::string &process_name);

/** Write the trace to a file; fatal on I/O error. */
void saveChromeTrace(const std::string &path,
                     const std::vector<gpusim::OpRecord> &trace,
                     const std::string &process_name);

/**
 * Write host spans and device ops as one chrome-trace document.
 * @param os     Output stream.
 * @param spans  obs::Tracer::global().spans() host records.
 * @param trace  GpuSim::trace() device records.
 * @param process_name Label for the whole trace.
 */
void writeMergedChromeTrace(
    std::ostream &os, const std::vector<obs::SpanRecord> &spans,
    const std::vector<gpusim::OpRecord> &trace,
    const std::string &process_name);

/** Write the merged trace to a file; fatal on I/O error. */
void saveMergedChromeTrace(
    const std::string &path,
    const std::vector<obs::SpanRecord> &spans,
    const std::vector<gpusim::OpRecord> &trace,
    const std::string &process_name);

/**
 * One device's timeline in a multi-device merged export. The trace
 * is referenced, not owned; it must outlive the write call.
 */
struct NamedTrace
{
    std::string name; //!< process label, e.g. "xavier-nx[0]"
    const std::vector<gpusim::OpRecord> *trace = nullptr;

    /**
     * 1 = every op recorded (full trace). N > 1 means the simulator
     * ran in TraceMode::kSampled keeping one op in N: the process
     * label gains a "sampled 1/N" suffix so a thinned timeline is
     * never read as the device's complete schedule.
     */
    int sample_every = 1;
};

/**
 * A span on the *simulated* clock (seconds), rendered without the
 * host-span rebase so it lines up with the device tracks. EdgeWatch
 * uses these to overlay slow-request stage breakdowns on the
 * timeline.
 */
struct SimSpan
{
    std::string name;
    int track = 0; //!< tid within the sim-span process
    double start_s = 0.0;
    double end_s = 0.0;
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Multi-device variant of the merged export (EdgeServe fleets):
 * host spans render as pid 1, each device timeline as its own
 * process with per-stream tracks. All device timelines share the
 * simulated-time origin; host spans are rebased as above. When
 * `sim_spans` is non-empty they render as one more process (named
 * `sim_process`) on the simulated clock, aligned with the devices.
 */
void writeMergedChromeTrace(
    std::ostream &os, const std::vector<obs::SpanRecord> &spans,
    const std::vector<NamedTrace> &devices,
    const std::vector<SimSpan> &sim_spans = {},
    const std::string &sim_process = "watch");

/** Write the multi-device merged trace; fatal on I/O error. */
void saveMergedChromeTrace(
    const std::string &path,
    const std::vector<obs::SpanRecord> &spans,
    const std::vector<NamedTrace> &devices,
    const std::vector<SimSpan> &sim_spans = {},
    const std::string &sim_process = "watch");

} // namespace edgert::profile

#endif // EDGERT_PROFILE_TRACE_EXPORT_HH
