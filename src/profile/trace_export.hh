#ifndef EDGERT_PROFILE_TRACE_EXPORT_HH
#define EDGERT_PROFILE_TRACE_EXPORT_HH

/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto) export of GpuSim op
 * traces. Each stream renders as a track; kernels, memcpys and host
 * delays become complete events — the visual equivalent of nvprof's
 * timeline mode.
 */

#include <ostream>
#include <string>
#include <vector>

#include "gpusim/sim.hh"

namespace edgert::profile {

/**
 * Write the trace in Chrome's JSON array format.
 * @param os     Output stream.
 * @param trace  GpuSim::trace() records.
 * @param process_name Label for the whole trace ("xavier-nx").
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<gpusim::OpRecord> &trace,
                      const std::string &process_name);

/** Write the trace to a file; fatal on I/O error. */
void saveChromeTrace(const std::string &path,
                     const std::vector<gpusim::OpRecord> &trace,
                     const std::string &process_name);

} // namespace edgert::profile

#endif // EDGERT_PROFILE_TRACE_EXPORT_HH
