#include "profile/trace_export.hh"

#include <fstream>

#include "common/logging.hh"

namespace edgert::profile {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

const char *
category(gpusim::OpKind k)
{
    switch (k) {
      case gpusim::OpKind::kKernel: return "kernel";
      case gpusim::OpKind::kMemcpyH2D: return "memcpy_h2d";
      case gpusim::OpKind::kMemcpyD2H: return "memcpy_d2h";
      case gpusim::OpKind::kDelay: return "host";
      case gpusim::OpKind::kMarker: return "marker";
    }
    return "other";
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<gpusim::OpRecord> &trace,
                 const std::string &process_name)
{
    os << "[\n";
    bool first = true;
    // Process-name metadata event.
    os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"" << jsonEscape(process_name)
       << "\"}}";
    first = false;

    for (const auto &rec : trace) {
        if (rec.kind == gpusim::OpKind::kMarker)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        double us = rec.start_s * 1e6;
        double dur = rec.durationSeconds() * 1e6;
        os << "  {\"name\":\"" << jsonEscape(rec.name)
           << "\",\"cat\":\"" << category(rec.kind)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << rec.stream
           << ",\"ts\":" << us << ",\"dur\":" << dur << "}";
    }
    os << "\n]\n";
}

void
saveChromeTrace(const std::string &path,
                const std::vector<gpusim::OpRecord> &trace,
                const std::string &process_name)
{
    std::ofstream f(path);
    if (!f)
        fatal("saveChromeTrace: cannot open '", path, "'");
    writeChromeTrace(f, trace, process_name);
}

} // namespace edgert::profile
