#include "profile/trace_export.hh"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>

#include "common/json.hh"
#include "common/logging.hh"

namespace edgert::profile {

namespace {

/** Device stream tracks sit below host tracks in the merged view. */
constexpr int kDeviceTidBase = 1000;

const char *
category(gpusim::OpKind k)
{
    switch (k) {
      case gpusim::OpKind::kKernel: return "kernel";
      case gpusim::OpKind::kMemcpyH2D: return "memcpy_h2d";
      case gpusim::OpKind::kMemcpyD2H: return "memcpy_d2h";
      case gpusim::OpKind::kDelay: return "host";
      case gpusim::OpKind::kMarker: return "marker";
      case gpusim::OpKind::kWaitEvent: return "wait";
    }
    return "other";
}

void
emitProcessName(std::ostream &os, const std::string &process_name,
                int pid = 1, bool first = true)
{
    os << (first ? "  " : ",\n  ")
       << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << jsonEscape(process_name)
       << "\"}}";
}

void
emitThreadName(std::ostream &os, int tid, const std::string &label,
               int pid = 1)
{
    os << ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
       << pid << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << jsonEscape(label) << "\"}}";
}

/** thread_name metadata for every stream present in the trace. */
void
emitStreamNames(std::ostream &os,
                const std::vector<gpusim::OpRecord> &trace,
                const std::string &process_name, int tid_base,
                int pid = 1)
{
    std::set<int> streams;
    for (const auto &rec : trace)
        if (rec.kind != gpusim::OpKind::kMarker)
            streams.insert(rec.stream);
    for (int s : streams)
        emitThreadName(os, tid_base + s,
                       "stream " + std::to_string(s) + " (" +
                           process_name + ")",
                       pid);
}

void
emitDeviceOp(std::ostream &os, const gpusim::OpRecord &rec,
             int tid_base, int pid = 1)
{
    os << ",\n  {\"name\":\"" << jsonEscape(rec.name)
       << "\",\"cat\":\"" << category(rec.kind)
       << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":"
       << (tid_base + rec.stream)
       << ",\"ts\":" << jsonNumber(rec.start_s * 1e6)
       << ",\"dur\":" << jsonNumber(rec.durationSeconds() * 1e6)
       << "}";
}

/** Host spans as pid `pid`, timestamps rebased to the first span. */
void
emitHostSpans(std::ostream &os,
              const std::vector<obs::SpanRecord> &spans, int pid)
{
    int max_thread = -1;
    for (const auto &s : spans)
        max_thread = std::max(max_thread, s.thread);
    for (int t = 0; t <= max_thread; t++)
        emitThreadName(os, 1 + t,
                       "host thread " + std::to_string(t), pid);

    std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
    for (const auto &s : spans)
        t0 = std::min(t0, s.start_ns);

    for (const auto &s : spans) {
        os << ",\n  {\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\"host\",\"ph\":\"X\",\"pid\":" << pid
           << ",\"tid\":" << (1 + s.thread) << ",\"ts\":"
           << jsonNumber(static_cast<double>(s.start_ns - t0) *
                         1e-3)
           << ",\"dur\":"
           << jsonNumber(static_cast<double>(s.end_ns -
                                             s.start_ns) *
                         1e-3);
        if (!s.args.empty()) {
            os << ",\"args\":{";
            for (std::size_t i = 0; i < s.args.size(); i++) {
                if (i)
                    os << ",";
                os << "\"" << jsonEscape(s.args[i].key) << "\":\""
                   << jsonEscape(s.args[i].value) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<gpusim::OpRecord> &trace,
                 const std::string &process_name)
{
    os << "[\n";
    emitProcessName(os, process_name);
    emitStreamNames(os, trace, process_name, /*tid_base=*/0);

    for (const auto &rec : trace) {
        if (rec.kind == gpusim::OpKind::kMarker)
            continue;
        emitDeviceOp(os, rec, /*tid_base=*/0);
    }
    os << "\n]\n";
}

void
saveChromeTrace(const std::string &path,
                const std::vector<gpusim::OpRecord> &trace,
                const std::string &process_name)
{
    std::ofstream f(path);
    if (!f)
        fatal("saveChromeTrace: cannot open '", path, "'");
    writeChromeTrace(f, trace, process_name);
}

void
writeMergedChromeTrace(std::ostream &os,
                       const std::vector<obs::SpanRecord> &spans,
                       const std::vector<gpusim::OpRecord> &trace,
                       const std::string &process_name)
{
    os << "[\n";
    emitProcessName(os, process_name);
    emitStreamNames(os, trace, process_name, kDeviceTidBase);
    emitHostSpans(os, spans, /*pid=*/1);
    for (const auto &rec : trace) {
        if (rec.kind == gpusim::OpKind::kMarker)
            continue;
        emitDeviceOp(os, rec, kDeviceTidBase);
    }
    os << "\n]\n";
}

void
saveMergedChromeTrace(const std::string &path,
                      const std::vector<obs::SpanRecord> &spans,
                      const std::vector<gpusim::OpRecord> &trace,
                      const std::string &process_name)
{
    std::ofstream f(path);
    if (!f)
        fatal("saveMergedChromeTrace: cannot open '", path, "'");
    writeMergedChromeTrace(f, spans, trace, process_name);
}

void
writeMergedChromeTrace(std::ostream &os,
                       const std::vector<obs::SpanRecord> &spans,
                       const std::vector<NamedTrace> &devices,
                       const std::vector<SimSpan> &sim_spans,
                       const std::string &sim_process)
{
    os << "[\n";
    emitProcessName(os, "host");
    for (std::size_t d = 0; d < devices.size(); d++) {
        int pid = 2 + static_cast<int>(d);
        std::string label = devices[d].name;
        if (devices[d].sample_every > 1)
            label += " (sampled 1/" +
                     std::to_string(devices[d].sample_every) + ")";
        emitProcessName(os, label, pid, /*first=*/false);
        emitStreamNames(os, *devices[d].trace, label,
                        kDeviceTidBase, pid);
    }
    const int sim_pid = 2 + static_cast<int>(devices.size());
    if (!sim_spans.empty())
        emitProcessName(os, sim_process, sim_pid, /*first=*/false);
    emitHostSpans(os, spans, /*pid=*/1);
    for (std::size_t d = 0; d < devices.size(); d++) {
        int pid = 2 + static_cast<int>(d);
        for (const auto &rec : *devices[d].trace) {
            if (rec.kind == gpusim::OpKind::kMarker)
                continue;
            emitDeviceOp(os, rec, kDeviceTidBase, pid);
        }
    }
    // Sim-clock spans: same microsecond origin as the device ops,
    // no rebase — they overlay the device timelines directly.
    for (const SimSpan &s : sim_spans) {
        os << ",\n  {\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\"watch\",\"ph\":\"X\",\"pid\":"
           << sim_pid << ",\"tid\":" << s.track
           << ",\"ts\":" << jsonNumber(s.start_s * 1e6)
           << ",\"dur\":"
           << jsonNumber((s.end_s - s.start_s) * 1e6);
        if (!s.args.empty()) {
            os << ",\"args\":{";
            for (std::size_t i = 0; i < s.args.size(); i++) {
                if (i)
                    os << ",";
                os << "\"" << jsonEscape(s.args[i].first)
                   << "\":\"" << jsonEscape(s.args[i].second)
                   << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]\n";
}

void
saveMergedChromeTrace(const std::string &path,
                      const std::vector<obs::SpanRecord> &spans,
                      const std::vector<NamedTrace> &devices,
                      const std::vector<SimSpan> &sim_spans,
                      const std::string &sim_process)
{
    std::ofstream f(path);
    if (!f)
        fatal("saveMergedChromeTrace: cannot open '", path, "'");
    writeMergedChromeTrace(f, spans, devices, sim_spans,
                           sim_process);
}

} // namespace edgert::profile
