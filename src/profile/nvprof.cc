#include "profile/nvprof.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace edgert::profile {

std::vector<SummaryRow>
summarize(const std::vector<gpusim::OpRecord> &trace)
{
    struct Acc
    {
        gpusim::OpKind kind;
        int calls = 0;
        double total = 0.0;
        double mn = 1e300;
        double mx = 0.0;
    };
    std::map<std::string, Acc> acc;
    double grand_total = 0.0;
    for (const auto &rec : trace) {
        if (rec.kind == gpusim::OpKind::kMarker ||
            rec.kind == gpusim::OpKind::kDelay ||
            rec.kind == gpusim::OpKind::kWaitEvent)
            continue;
        std::string key = rec.kind == gpusim::OpKind::kKernel
                              ? rec.name
                              : (rec.kind == gpusim::OpKind::kMemcpyH2D
                                     ? "[CUDA memcpy HtoD]"
                                     : "[CUDA memcpy DtoH]");
        Acc &a = acc.try_emplace(key, Acc{rec.kind}).first->second;
        double ms = rec.durationSeconds() * 1e3;
        a.calls++;
        a.total += ms;
        a.mn = std::min(a.mn, ms);
        a.mx = std::max(a.mx, ms);
        grand_total += ms;
    }

    std::vector<SummaryRow> rows;
    for (const auto &[name, a] : acc) {
        SummaryRow r;
        r.name = name;
        r.kind = a.kind;
        r.calls = a.calls;
        r.total_ms = a.total;
        r.avg_ms = a.total / a.calls;
        r.min_ms = a.mn;
        r.max_ms = a.mx;
        r.pct_of_total =
            grand_total > 0.0 ? 100.0 * a.total / grand_total : 0.0;
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const SummaryRow &a, const SummaryRow &b) {
                  return a.total_ms > b.total_ms;
              });
    return rows;
}

void
printSummary(std::ostream &os,
             const std::vector<gpusim::OpRecord> &trace)
{
    auto rows = summarize(trace);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%7s %9s %6s %9s %9s %9s  %s\n",
                  "Time(%)", "Time(ms)", "Calls", "Avg(ms)",
                  "Min(ms)", "Max(ms)", "Name");
    os << "==PROF== Profiling result (summary mode):\n" << buf;
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof(buf),
                      "%6.2f%% %9.3f %6d %9.4f %9.4f %9.4f  %s\n",
                      r.pct_of_total, r.total_ms, r.calls, r.avg_ms,
                      r.min_ms, r.max_ms, r.name.c_str());
        os << buf;
    }
}

std::size_t
printGpuTrace(std::ostream &os,
              const std::vector<gpusim::OpRecord> &trace,
              std::size_t max_rows)
{
    os << "==PROF== Profiling result (GPU trace mode):\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%12s %10s %7s  %s\n",
                  "Start(ms)", "Dur(ms)", "Stream", "Name");
    os << buf;
    std::size_t shown = 0;
    std::size_t truncated = 0;
    for (const auto &rec : trace) {
        if (rec.kind == gpusim::OpKind::kMarker ||
            rec.kind == gpusim::OpKind::kDelay ||
            rec.kind == gpusim::OpKind::kWaitEvent)
            continue;
        if (shown >= max_rows) {
            truncated++;
            continue;
        }
        shown++;
        std::snprintf(buf, sizeof(buf), "%12.4f %10.4f %7d  %s\n",
                      rec.start_s * 1e3,
                      rec.durationSeconds() * 1e3, rec.stream,
                      rec.name.c_str());
        os << buf;
    }
    if (truncated > 0)
        os << "  ... " << truncated << " more rows\n";
    return truncated;
}

std::size_t
printGpuTrace(std::ostream &os, const gpusim::GpuSim &sim,
              std::size_t max_rows)
{
    std::size_t truncated =
        printGpuTrace(os, sim.trace(), max_rows);
    gpusim::SimStats st = sim.simStats();
    if (sim.traceMode() == gpusim::TraceMode::kSampled)
        os << "==PROF== trace sampled 1/" << sim.traceSampleEvery()
           << " (" << st.trace_records << " of " << st.ops_completed
           << " ops recorded)\n";
    else if (sim.traceMode() == gpusim::TraceMode::kOff)
        os << "==PROF== trace off (0 of " << st.ops_completed
           << " ops recorded)\n";
    return truncated;
}

std::vector<double>
invocationTimesMs(const std::vector<gpusim::OpRecord> &trace,
                  const std::string &kernel_name)
{
    std::vector<double> out;
    for (const auto &rec : trace)
        if (rec.kind == gpusim::OpKind::kKernel &&
            rec.name == kernel_name)
            out.push_back(rec.durationSeconds() * 1e3);
    return out;
}

} // namespace edgert::profile
