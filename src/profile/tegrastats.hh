#ifndef EDGERT_PROFILE_TEGRASTATS_HH
#define EDGERT_PROFILE_TEGRASTATS_HH

/**
 * @file
 * tegrastats analogue: periodic board-level statistics over a
 * GpuSim run — GR3D (GPU) load, EMC (memory) load, and RAM usage.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpusim/sim.hh"

namespace edgert::profile {

/** One tegrastats sample line. */
struct BoardSample
{
    double t_s = 0.0;
    double gr3d_pct = 0.0;   //!< GPU load over the last interval
    double emc_pct = 0.0;    //!< DRAM bandwidth utilization
    double ram_used_mb = 0.0;
    double ram_total_mb = 0.0;
    double vdd_gpu_mw = 0.0; //!< GPU rail power estimate
};

/**
 * Windowed sampler: call sample() between GpuSim run segments; each
 * call closes the current stats window and opens a new one.
 */
class Tegrastats
{
  public:
    /**
     * @param sim          Simulator to observe (not owned).
     * @param ram_used_mb  Static resident-set model (engines +
     *                     contexts + OS), reported in every sample.
     */
    Tegrastats(gpusim::GpuSim &sim, double ram_used_mb);

    /** Close the current window and record a sample. */
    const BoardSample &sample();

    const std::vector<BoardSample> &samples() const
    {
        return samples_;
    }

    /** Render samples in tegrastats' one-line-per-sample format. */
    void print(std::ostream &os) const;

  private:
    gpusim::GpuSim *sim_;
    double ram_used_mb_;
    std::vector<BoardSample> samples_;
};

} // namespace edgert::profile

#endif // EDGERT_PROFILE_TEGRASTATS_HH
