#include "profile/tegrastats.hh"

#include <algorithm>
#include <cstdio>

namespace edgert::profile {

Tegrastats::Tegrastats(gpusim::GpuSim &sim, double ram_used_mb)
    : sim_(&sim), ram_used_mb_(ram_used_mb)
{
    sim_->resetStats();
}

const BoardSample &
Tegrastats::sample()
{
    auto st = sim_->stats();
    const auto &spec = sim_->spec();

    BoardSample s;
    s.t_s = sim_->nowSeconds();
    s.gr3d_pct = st.smUtilizationPct(spec.sm_count);
    double window = std::max(st.window_s, 1e-12);
    s.emc_pct = std::min(
        100.0, 100.0 * st.dram_bytes /
                   (window * spec.effDramBps()));
    s.ram_used_mb = ram_used_mb_;
    s.ram_total_mb = spec.ram_gb * 1024.0;
    s.vdd_gpu_mw = spec.gpuPowerMw(s.gr3d_pct / 100.0);
    samples_.push_back(s);
    sim_->resetStats();
    return samples_.back();
}

void
Tegrastats::print(std::ostream &os) const
{
    char buf[160];
    for (const auto &s : samples_) {
        std::snprintf(buf, sizeof(buf),
                      "t=%.3fs RAM %.0f/%.0fMB GR3D_FREQ %.0f%% "
                      "EMC_FREQ %.0f%% VDD_GPU %.0fmW\n",
                      s.t_s, s.ram_used_mb, s.ram_total_mb,
                      s.gr3d_pct, s.emc_pct, s.vdd_gpu_mw);
        os << buf;
    }
}

} // namespace edgert::profile
