#include "stream/source.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edgert::stream {

FrameArrival
parseFrameArrival(const std::string &s)
{
    if (s == "fixed" || s == "fixed_fps")
        return FrameArrival::kFixedFps;
    if (s == "jitter" || s == "jittered_camera")
        return FrameArrival::kJitteredCamera;
    fatal("unknown frame arrival '", s, "' (expected fixed|jitter)");
}

std::string
frameArrivalName(FrameArrival kind)
{
    switch (kind) {
      case FrameArrival::kFixedFps: return "fixed";
      case FrameArrival::kJitteredCamera: return "jitter";
    }
    return "unknown";
}

std::vector<double>
generateFrameTimes(const FrameSourceConfig &cfg, double duration_s,
                   Rng &rng)
{
    if (cfg.fps <= 0.0)
        fatal("frame source fps must be positive (got ", cfg.fps,
              ")");
    const double gap = 1.0 / cfg.fps;
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(
        std::max(0.0, duration_s * cfg.fps) + 1.0));
    double t = rng.uniform(0.0, gap); // phase
    while (t < duration_s) {
        times.push_back(t);
        double step = gap;
        if (cfg.kind == FrameArrival::kJitteredCamera)
            step = gap *
                   std::max(0.2, 1.0 + rng.gaussian(
                                           0.0, cfg.jitter_pct /
                                                    100.0));
        t += step;
    }
    return times;
}

} // namespace edgert::stream
