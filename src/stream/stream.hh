#ifndef EDGERT_STREAM_STREAM_HH
#define EDGERT_STREAM_STREAM_HH

/**
 * @file
 * EdgeStream: continuous camera-stream serving on the simulated
 * edge fleet.
 *
 * A run is the serve layer's two deterministic phases applied to a
 * frame pipeline instead of a request stream:
 *
 *  1. Control: frame capture times come from seeded FrameSources;
 *     decode and preprocess are modeled host stages chained per
 *     camera stream; ready frames enter a per-model StreamQueue
 *     under a backpressure policy, and a discrete-event loop over
 *     (frame-ready, batch-timeout, predicted-free) events cuts
 *     batches across streams through the DynamicBatcher onto
 *     InstancePool instances — producing each instance's dispatch
 *     plan. The control clock stops producing work at duration_s:
 *     frames still queued (or still decoding) then are `in_flight`.
 *  2. Replay: each instance owns THREE device streams — upload,
 *     compute, download — and every dispatch replays through
 *     ExecutionContext::enqueueStagedPipelined with delayUntil
 *     pinning its release on the upload stream. waitEvent chains
 *     upload → compute → download, so frame i+1's upload overlaps
 *     frame i's compute, which overlaps frame i-1's download — the
 *     paper's copy/compute overlap at pipeline depth 3. Measured
 *     completions feed postprocess chains and every reported
 *     statistic.
 *
 * Everything is a pure function of (config, seed): reports are
 * byte-identical across runs and across sim_threads values.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hh"
#include "gpusim/sim.hh"
#include "nn/executor.hh"
#include "serve/queue.hh"
#include "stream/freshness.hh"
#include "stream/pipeline.hh"
#include "stream/source.hh"
#include "watch/slo.hh"
#include "watch/watch.hh"

namespace edgert::stream {

/** One streamed model: its cameras, stages and serving contract. */
struct StreamModelConfig
{
    std::string model; //!< nn::buildZooModel name
    nn::Precision precision = nn::Precision::kFp16;
    std::uint64_t calibration_seed = 0;

    int streams = 4;    //!< independent camera streams
    double fps = 30.0;  //!< per-stream nominal frame rate
    FrameArrival arrival = FrameArrival::kFixedFps;
    double arrival_jitter_pct = 10.0;

    /** Freshness SLO: a frame older than this at postprocess-done
     *  is stale. */
    double stale_ms = 100.0;

    BackpressurePolicy policy = BackpressurePolicy::kDropOldest;
    int frame_budget = 4; //!< queued frames per stream (drop_oldest)

    StageModel stages;
    serve::BatchPolicy batching;
    int instances_per_device = 1;
};

/** Whole-run configuration. */
struct StreamConfig
{
    std::vector<StreamModelConfig> models;
    std::vector<gpusim::DeviceSpec> devices;
    double duration_s = 5.0;
    std::uint64_t seed = 1;

    /** Share of device RAM available for execution contexts. */
    double ram_fraction = 0.5;

    std::uint64_t build_id = 1;
    int build_jobs = 1;

    /** Replay worker threads; reports are byte-identical for any
     *  value (same defer/commit contract as serve). */
    int sim_threads = 1;

    gpusim::TraceMode trace_mode = gpusim::TraceMode::kFull;
    int trace_sample_every = 16;

    /** Merged chrome://tracing timeline path ("" = off). */
    std::string trace_out;

    /**
     * Freshness alerting knobs: the burn-rate thresholds and
     * windows come from here (watch.enabled additionally writes
     * the freshness report to watch.out_path). The per-(model,
     * stream) SloTrackerSet always runs — it is how the report's
     * alert counts are computed.
     */
    watch::WatchConfig watch;
};

/** Freshness outcome of one camera stream. */
struct StreamLaneStats
{
    int stream = 0;
    FreshnessStats freshness;
    watch::Alert::Tier tier = watch::Alert::kNone;
};

/** Per-model streaming outcome. */
struct StreamModelStats
{
    std::string model;
    std::string precision;
    std::string policy;
    std::string arrival;
    int streams = 0;
    double fps = 0.0;
    double stale_ms = 0.0;
    int instances = 0;

    FreshnessStats freshness; //!< aggregate over the lanes
    bool conserved = false;   //!< conservation invariant held

    std::int64_t batches = 0;
    double mean_batch = 0.0;

    // Mean per-stage attribution over completed frames, ms. The
    // infer stages reuse watch::RequestTrace's breakdown.
    double decode_mean_ms = 0.0;
    double preprocess_mean_ms = 0.0;
    double queue_mean_ms = 0.0;
    double dispatch_wait_mean_ms = 0.0;
    double upload_mean_ms = 0.0;
    double compute_mean_ms = 0.0;
    double download_mean_ms = 0.0;
    double postprocess_mean_ms = 0.0;

    std::vector<StreamLaneStats> lanes; //!< stream-index order
};

/** Per-device replay outcome. */
struct StreamDeviceStats
{
    std::string device;
    int instances = 0;
    double sm_util_pct = 0.0;
    double copy_busy_pct = 0.0;
    double makespan_s = 0.0;
    std::int64_t ram_used_bytes = 0;
    std::int64_t ram_budget_bytes = 0;
};

/** Full report of one EdgeStream run. */
struct StreamReport
{
    std::uint64_t seed = 0;
    double duration_s = 0.0;
    std::vector<StreamModelStats> models;
    std::vector<StreamDeviceStats> devices;

    // Freshness-alert rollup over every (model, stream) key.
    std::int64_t freshness_pages = 0;
    std::int64_t freshness_warns = 0;
    std::int64_t freshness_clears = 0;
    double first_page_s = -1.0; //!< -1 = no page fired

    /** Canonical JSON (deterministic field order and numbers). */
    std::string toJson() const;
};

/** Run the streaming pipeline; deterministic for a fixed config. */
StreamReport runStreams(const StreamConfig &cfg);

} // namespace edgert::stream

#endif // EDGERT_STREAM_STREAM_HH
