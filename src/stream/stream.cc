#include "stream/stream.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/threadpool.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "profile/trace_export.hh"
#include "runtime/context.hh"
#include "runtime/measure.hh"
#include "serve/batcher.hh"
#include "serve/scheduler.hh"
#include "serve/predictor.hh"

namespace edgert::stream {

namespace {

/** Control-plane discrete event. */
struct Event
{
    enum Kind { kFrameReady, kTimeout, kPredFree };

    double t = 0.0;
    std::int64_t seq = 0; //!< push order: deterministic tie-break
    Kind kind = kFrameReady;
    int target = 0;       //!< model (ready/timeout) or instance
    std::int64_t req = -1;
};

struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

/** One frame's whole lifecycle (the stream analogue of Request). */
struct FrameRec
{
    enum Outcome { kInFlight, kDropped, kCompleted };

    std::int64_t id = -1;
    int model = 0;
    int stream = 0;
    std::int64_t seq = 0; //!< per-stream capture index
    double capture_s = 0.0;

    // Per-frame stage durations, drawn at generation time so the
    // draw order never depends on scheduling.
    double decode_dur_s = 0.0;
    double preprocess_dur_s = 0.0;
    double postprocess_dur_s = 0.0;

    double decode_done_s = 0.0;
    double ready_s = 0.0; //!< preprocess done; queue admission time

    Outcome outcome = kInFlight;
    double drop_s = 0.0;

    int device = -1;
    int instance = -1;
    int batch = 0;
    double dispatch_s = 0.0;
    double begin_s = 0.0;
    double upload_done_s = 0.0;
    double compute_done_s = 0.0;
    double done_s = 0.0;      //!< device output download finished
    double post_done_s = 0.0; //!< host postprocess finished

    double ageMs() const
    {
        return (post_done_s - capture_s) * 1e3;
    }
};

/** Per-model obs:: handles (created once, recorded in sim order). */
struct ModelMetrics
{
    obs::Counter produced;
    obs::Counter dropped;
    obs::Counter completed;
    obs::Counter stale;
    obs::Counter batches;
    obs::Histogram batch_size;
    obs::Histogram age_ms;

    explicit ModelMetrics(const std::string &model)
        : produced(obs::MetricRegistry::global().counter(
              "stream.frame.produced", {{"model", model}})),
          dropped(obs::MetricRegistry::global().counter(
              "stream.frame.dropped", {{"model", model}})),
          completed(obs::MetricRegistry::global().counter(
              "stream.frame.completed", {{"model", model}})),
          stale(obs::MetricRegistry::global().counter(
              "stream.frame.stale", {{"model", model}})),
          batches(obs::MetricRegistry::global().counter(
              "stream.batch.dispatched", {{"model", model}})),
          batch_size(obs::MetricRegistry::global().histogram(
              "stream.batch.size", {{"model", model}})),
          age_ms(obs::MetricRegistry::global().histogram(
              "stream.frame.age_ms", {{"model", model}}))
    {}
};

/** Freshness-alert key of one camera stream. */
std::string
laneKey(const std::string &model, int stream)
{
    return model + "/cam" + std::to_string(stream);
}

/** Stage-duration jitter: base * max(0.1, 1 + N(0, pct/100)). */
double
jitteredSeconds(double base_ms, double jitter_pct, Rng &rng)
{
    double scale =
        std::max(0.1, 1.0 + rng.gaussian(0.0, jitter_pct / 100.0));
    return base_ms * 1e-3 * scale;
}

/** Canonical freshness watch report (cfg.watch.out_path). */
void
writeFreshnessFile(const std::string &path,
                   const watch::SloTrackerSet &slo)
{
    std::ofstream f(path);
    if (!f)
        fatal("EdgeStream: cannot write '", path, "'");
    f << "{\n  \"lanes\": [\n";
    auto keys = slo.keys();
    for (std::size_t i = 0; i < keys.size(); i++) {
        const watch::SloTracker *t = slo.find(keys[i]);
        watch::BurnRates b = t->burnRates();
        f << "    {\"key\": \"" << jsonEscape(keys[i])
          << "\", \"tier\": \"" << watch::alertTierName(t->tier())
          << "\", \"burn_fast\": " << jsonNumber(b.fast)
          << ", \"burn_mid\": " << jsonNumber(b.mid)
          << ", \"burn_slow\": " << jsonNumber(b.slow)
          << ", \"observed\": " << t->total()
          << ", \"bad\": " << t->bad() << "}"
          << (i + 1 < keys.size() ? "," : "") << "\n";
    }
    const auto &r = slo.rollup();
    f << "  ],\n  \"rollup\": {\"pages\": " << r.pages
      << ", \"warns\": " << r.warns << ", \"clears\": " << r.clears
      << ", \"first_page_s\": " << jsonNumber(r.first_page_s)
      << "}\n}\n";
}

} // namespace

StreamReport
runStreams(const StreamConfig &cfg)
{
    if (cfg.models.empty())
        fatal("EdgeStream needs at least one --model");
    if (cfg.devices.empty())
        fatal("EdgeStream needs at least one device");
    if (cfg.duration_s <= 0.0)
        fatal("EdgeStream duration must be positive");
    {
        std::set<std::string> names;
        for (const auto &m : cfg.models) {
            if (m.streams < 1)
                fatal("model '", m.model,
                      "' needs at least one stream");
            if (!names.insert(m.model).second)
                fatal("duplicate model '", m.model,
                      "' (metric labels would collide)");
        }
    }

    const int n_models = static_cast<int>(cfg.models.size());
    const int n_devices = static_cast<int>(cfg.devices.size());

    std::vector<ModelMetrics> mm;
    for (const auto &mc : cfg.models)
        mm.emplace_back(mc.model);

    // ------------------------------------------------------------
    // Build: one power-of-two engine ladder per (model, device)
    // with a shared timing cache, plus the calibrated per-engine
    // service predictions the control plane dispatches with. No
    // fault injection here — stream serving reuses serve's engine
    // machinery, not its resilience experiments.
    // ------------------------------------------------------------
    core::TimingCache timing_cache;
    std::vector<std::vector<serve::EngineSet>> sets(
        static_cast<std::size_t>(n_models)); //!< [model][device]
    std::vector<std::vector<std::vector<double>>> svc(
        static_cast<std::size_t>(n_models)); //!< [m][d][engine]
    {
        EDGERT_SPAN("stream_build",
                    {{"models", std::to_string(n_models)},
                     {"devices", std::to_string(n_devices)}});
        for (int m = 0; m < n_models; m++) {
            const auto &mc = cfg.models[static_cast<std::size_t>(m)];
            auto ladder =
                serve::engineBatchLadder(mc.batching.max_batch);
            for (int d = 0; d < n_devices; d++) {
                const auto &spec =
                    cfg.devices[static_cast<std::size_t>(d)];
                core::BuilderConfig bcfg;
                bcfg.precision = mc.precision;
                bcfg.calibration_seed = mc.calibration_seed;
                bcfg.build_id = cfg.build_id;
                bcfg.jobs = cfg.build_jobs;
                bcfg.timing_cache = &timing_cache;
                core::Builder builder(spec, bcfg);
                serve::EngineSet set;
                std::vector<double> svc_d;
                for (int b : ladder) {
                    set.engines.push_back(builder.build(
                        nn::buildZooModel(mc.model, b)));
                    set.batches.push_back(b);
                }
                for (const auto &eng : set.engines) {
                    serve::LatencyPredictor pred(spec);
                    pred.calibrate(eng);
                    svc_d.push_back(
                        pred.predictServiceSeconds(eng));
                }
                sets[static_cast<std::size_t>(m)].push_back(
                    std::move(set));
                svc[static_cast<std::size_t>(m)].push_back(
                    std::move(svc_d));
            }
        }
    }

    // ------------------------------------------------------------
    // Placement: RAM-bounded instances per device, capped by the
    // paper's Eq. 1 concurrency bound.
    // ------------------------------------------------------------
    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    serve::InstancePool pool(cfg.devices, cfg.ram_fraction);
    for (int m = 0; m < n_models; m++) {
        const auto &mc = cfg.models[static_cast<std::size_t>(m)];
        int placed_total = 0;
        for (int d = 0; d < n_devices; d++) {
            const auto &spec =
                cfg.devices[static_cast<std::size_t>(d)];
            const auto &set = sets[static_cast<std::size_t>(m)]
                                  [static_cast<std::size_t>(d)];
            int eq1 = runtime::estimateMaxThreads(
                set.engines.front(), spec,
                runtime::ThroughputOptions::probe());
            int want = std::min(mc.instances_per_device,
                                std::max(1, eq1));
            placed_total += pool.place(
                m, d, set.maxFootprintBytes(), want);
        }
        if (placed_total == 0)
            warn("EdgeStream: model '", mc.model,
                 "' has no usable instances (no RAM budget fits); "
                 "its frames will only age out");
    }

    // Per-device simulators; every instance owns an upload, a
    // compute and a download stream so enqueueStagedPipelined can
    // overlap stage k of frame i with stage k-1 of frame i+1.
    std::vector<std::unique_ptr<gpusim::GpuSim>> sims;
    for (int d = 0; d < n_devices; d++)
        sims.push_back(std::make_unique<gpusim::GpuSim>(
            cfg.devices[static_cast<std::size_t>(d)]));
    std::vector<int> up_stream(pool.instances().size(), 0);
    std::vector<int> comp_stream(pool.instances().size(), 0);
    std::vector<int> down_stream(pool.instances().size(), 0);
    {
        std::vector<int> streams_made(
            static_cast<std::size_t>(n_devices), 0);
        for (std::size_t i = 0; i < pool.instances().size(); i++) {
            serve::Instance &inst = pool.instances()[i];
            auto &sim =
                *sims[static_cast<std::size_t>(inst.device)];
            auto &made =
                streams_made[static_cast<std::size_t>(inst.device)];
            up_stream[i] = made == 0 ? 0 : sim.createStream();
            made++;
            comp_stream[i] = sim.createStream();
            down_stream[i] = sim.createStream();
            inst.stream = up_stream[i]; //!< release-pinning stream
        }
    }

    // ------------------------------------------------------------
    // Frame generation: capture times and per-frame stage durations
    // from forked Rng lineages (root → frames/stages → model →
    // stream), then the host decode/preprocess chains — one decoder
    // per camera stream, so stage k of frame i+1 waits for stage k
    // of frame i. Host stages never see device feedback, so the
    // chains fold eagerly. The merged table is capture-ordered.
    // ------------------------------------------------------------
    std::vector<FrameRec> frames;
    {
        Rng root(cfg.seed);
        Rng frames_rng = root.fork("frames");
        Rng stages_rng = root.fork("stages");
        struct Key
        {
            double capture_s;
            int model;
            int stream;
            std::int64_t seq;
            std::size_t idx;
        };
        std::vector<Key> order;
        std::vector<FrameRec> raw;
        for (int m = 0; m < n_models; m++) {
            const auto &mc =
                cfg.models[static_cast<std::size_t>(m)];
            Rng model_frames =
                frames_rng.fork(static_cast<std::uint64_t>(m));
            Rng model_stages =
                stages_rng.fork(static_cast<std::uint64_t>(m));
            FrameSourceConfig sc;
            sc.kind = mc.arrival;
            sc.fps = mc.fps;
            sc.jitter_pct = mc.arrival_jitter_pct;
            for (int s = 0; s < mc.streams; s++) {
                Rng cam = model_frames.fork(
                    static_cast<std::uint64_t>(s));
                Rng stage_rng = model_stages.fork(
                    static_cast<std::uint64_t>(s));
                auto times =
                    generateFrameTimes(sc, cfg.duration_s, cam);
                double decode_free = 0.0;
                double pre_free = 0.0;
                for (std::size_t i = 0; i < times.size(); i++) {
                    FrameRec fr;
                    fr.model = m;
                    fr.stream = s;
                    fr.seq = static_cast<std::int64_t>(i);
                    fr.capture_s = times[i];
                    fr.decode_dur_s = jitteredSeconds(
                        mc.stages.decode_ms,
                        mc.stages.jitter_pct, stage_rng);
                    fr.preprocess_dur_s = jitteredSeconds(
                        mc.stages.preprocess_ms,
                        mc.stages.jitter_pct, stage_rng);
                    fr.postprocess_dur_s = jitteredSeconds(
                        mc.stages.postprocess_ms,
                        mc.stages.jitter_pct, stage_rng);
                    double dstart =
                        std::max(fr.capture_s, decode_free);
                    fr.decode_done_s = dstart + fr.decode_dur_s;
                    decode_free = fr.decode_done_s;
                    double pstart =
                        std::max(fr.decode_done_s, pre_free);
                    fr.ready_s = pstart + fr.preprocess_dur_s;
                    pre_free = fr.ready_s;
                    order.push_back(Key{fr.capture_s, m, s,
                                        fr.seq, raw.size()});
                    raw.push_back(fr);
                }
            }
        }
        std::sort(order.begin(), order.end(),
                  [](const Key &a, const Key &b) {
                      if (a.capture_s != b.capture_s)
                          return a.capture_s < b.capture_s;
                      if (a.model != b.model)
                          return a.model < b.model;
                      if (a.stream != b.stream)
                          return a.stream < b.stream;
                      return a.seq < b.seq;
                  });
        frames.reserve(raw.size());
        for (const Key &k : order) {
            FrameRec fr = raw[k.idx];
            fr.id = static_cast<std::int64_t>(frames.size());
            frames.push_back(fr);
        }
    }

    // ------------------------------------------------------------
    // Phase 1 — control loop over (frame-ready, batch-timeout,
    // predicted-free) events. Ready frames enter the per-model
    // StreamQueue under the backpressure policy; the batcher cuts
    // across streams onto predicted-free instances. Work stops at
    // duration_s: later-ready frames and queue leftovers are
    // in_flight.
    // ------------------------------------------------------------
    std::vector<StreamQueue> queues;
    std::vector<serve::DynamicBatcher> batchers;
    for (int m = 0; m < n_models; m++) {
        const auto &mc = cfg.models[static_cast<std::size_t>(m)];
        queues.emplace_back(mc.streams);
        batchers.emplace_back(mc.batching);
    }
    std::vector<std::int64_t> timeout_armed(
        static_cast<std::size_t>(n_models), -1);

    std::priority_queue<Event, std::vector<Event>, EventAfter> evq;
    std::int64_t seq = 0;
    for (const FrameRec &fr : frames) {
        if (fr.ready_s > cfg.duration_s)
            continue; // still decoding when the run ends
        Event e;
        e.t = fr.ready_s;
        e.seq = seq++;
        e.kind = Event::kFrameReady;
        e.target = fr.model;
        e.req = fr.id;
        evq.push(e);
    }

    auto tryDispatch = [&](int m, double t) {
        auto &q = queues[static_cast<std::size_t>(m)];
        const auto &batcher =
            batchers[static_cast<std::size_t>(m)];
        while (!q.empty()) {
            int inst_idx = pool.freeInstance(m, t);
            if (inst_idx < 0)
                break;
            int cut = batcher.decide(
                q.size(), q.oldestReadySeconds(), t);
            if (cut == 0)
                break;
            serve::Instance &inst =
                pool.instances()[static_cast<std::size_t>(
                    inst_idx)];
            const auto &set =
                sets[static_cast<std::size_t>(m)]
                    [static_cast<std::size_t>(inst.device)];
            int eidx = set.indexFor(cut);
            double svc_s =
                svc[static_cast<std::size_t>(m)]
                   [static_cast<std::size_t>(inst.device)]
                   [static_cast<std::size_t>(eidx)];
            serve::PlannedDispatch pd;
            pd.t_s = t;
            pd.engine_idx = eidx;
            pd.batch = cut;
            pd.request_ids = q.cut(cut);
            pd.predicted_service_s = svc_s;
            for (std::int64_t id : pd.request_ids) {
                FrameRec &fr =
                    frames[static_cast<std::size_t>(id)];
                fr.dispatch_s = t;
                fr.batch = cut;
                fr.device = inst.device;
                fr.instance = inst_idx;
            }
            inst.plan.push_back(std::move(pd));
            inst.predicted_free_s = t + svc_s;
            Event e;
            e.t = inst.predicted_free_s;
            e.seq = seq++;
            e.kind = Event::kPredFree;
            e.target = inst_idx;
            evq.push(e);
            mm[static_cast<std::size_t>(m)].batches.add();
            mm[static_cast<std::size_t>(m)].batch_size.record(cut);
        }
        // Arm (or re-arm after a front change) the batch timeout.
        if (!q.empty() &&
            q.frontId() !=
                timeout_armed[static_cast<std::size_t>(m)]) {
            timeout_armed[static_cast<std::size_t>(m)] =
                q.frontId();
            Event e;
            e.t = batcher.deadlineFor(q.oldestReadySeconds());
            e.seq = seq++;
            e.kind = Event::kTimeout;
            e.target = m;
            evq.push(e);
        }
    };

    {
        EDGERT_SPAN("stream_control",
                    {{"frames", std::to_string(frames.size())}});
        while (!evq.empty()) {
            Event e = evq.top();
            evq.pop();
            if (e.t > cfg.duration_s)
                continue; // the camera window is over
            switch (e.kind) {
              case Event::kFrameReady: {
                  FrameRec &fr =
                      frames[static_cast<std::size_t>(e.req)];
                  const int m = fr.model;
                  const auto &mc =
                      cfg.models[static_cast<std::size_t>(m)];
                  auto evicted =
                      queues[static_cast<std::size_t>(m)].push(
                          fr.id, fr.stream, e.t, mc.policy,
                          mc.frame_budget);
                  for (std::int64_t id : evicted) {
                      FrameRec &old =
                          frames[static_cast<std::size_t>(id)];
                      old.outcome = FrameRec::kDropped;
                      old.drop_s = e.t;
                  }
                  tryDispatch(m, e.t);
                  break;
              }
              case Event::kTimeout:
                  tryDispatch(e.target, e.t);
                  break;
              case Event::kPredFree:
                  tryDispatch(
                      pool.instances()[static_cast<std::size_t>(
                                           e.target)]
                          .model,
                      e.t);
                  break;
            }
        }
    }

    // ------------------------------------------------------------
    // Phase 2 — execution replay: each dispatch releases on its
    // instance's *upload* stream at the planned time; waitEvent
    // chains upload → compute → download so consecutive frames
    // overlap stage-wise. One run() per device; histogram records
    // defer and commit in device index order under sim_threads > 1
    // so every observable stays byte-identical to serial.
    // ------------------------------------------------------------
    {
        std::vector<
            std::map<int, std::unique_ptr<
                              runtime::ExecutionContext>>>
            ctxs(pool.instances().size());
        for (std::size_t i = 0; i < pool.instances().size(); i++) {
            serve::Instance &inst = pool.instances()[i];
            auto &sim =
                *sims[static_cast<std::size_t>(inst.device)];
            for (auto &pd : inst.plan) {
                sim.delayUntil(up_stream[i], pd.t_s);
                auto &ctx = ctxs[i][pd.engine_idx];
                if (!ctx)
                    ctx = std::make_unique<
                        runtime::ExecutionContext>(
                        sets[static_cast<std::size_t>(inst.model)]
                            [static_cast<std::size_t>(inst.device)]
                                .engines[static_cast<std::size_t>(
                                    pd.engine_idx)],
                        sim, comp_stream[i]);
                auto h = ctx->enqueueStagedPipelined(
                    up_stream[i], down_stream[i]);
                pd.begin = h.begin;
                pd.upload_done = h.upload_done;
                pd.compute_done = h.compute_done;
                pd.end = h.end;
            }
        }
        for (auto &sim : sims)
            sim->setTraceMode(cfg.trace_mode,
                              cfg.trace_sample_every);
        auto runDevice = [&](std::size_t d) { sims[d]->run(); };
        const int threads =
            std::min(std::max(1, cfg.sim_threads), n_devices);
        if (threads <= 1) {
            for (int d = 0; d < n_devices; d++) {
                EDGERT_SPAN(
                    "stream_replay",
                    {{"device",
                      cfg.devices[static_cast<std::size_t>(d)]
                          .name},
                     {"index", std::to_string(d)}});
                runDevice(static_cast<std::size_t>(d));
            }
        } else {
            EDGERT_SPAN("stream_replay",
                        {{"devices", std::to_string(n_devices)},
                         {"threads", std::to_string(threads)}});
            for (auto &sim : sims)
                sim->setDeferMetrics(true);
            ThreadPool tp(threads);
            tp.parallelFor(static_cast<std::size_t>(n_devices),
                           runDevice);
            for (auto &sim : sims) {
                sim->commitMetrics();
                sim->setDeferMetrics(false);
            }
        }
    }

    // Fold measured completions back into the frame table
    // (instance order, then plan order — deterministic), then run
    // the host postprocess chains per camera stream over the
    // completions in (done, seq) order.
    for (const serve::Instance &inst : pool.instances()) {
        const auto &sim =
            *sims[static_cast<std::size_t>(inst.device)];
        for (const auto &pd : inst.plan) {
            double begin = sim.eventSeconds(pd.begin);
            double upload = sim.eventSeconds(pd.upload_done);
            double compute = sim.eventSeconds(pd.compute_done);
            double end = sim.eventSeconds(pd.end);
            for (std::int64_t id : pd.request_ids) {
                FrameRec &fr =
                    frames[static_cast<std::size_t>(id)];
                fr.outcome = FrameRec::kCompleted;
                fr.begin_s = begin;
                fr.upload_done_s = upload;
                fr.compute_done_s = compute;
                fr.done_s = end;
            }
        }
    }
    {
        // Index completed frames per (model, stream).
        std::vector<std::vector<std::vector<std::int64_t>>> done(
            static_cast<std::size_t>(n_models));
        for (int m = 0; m < n_models; m++)
            done[static_cast<std::size_t>(m)].resize(
                static_cast<std::size_t>(
                    cfg.models[static_cast<std::size_t>(m)]
                        .streams));
        for (const FrameRec &fr : frames)
            if (fr.outcome == FrameRec::kCompleted)
                done[static_cast<std::size_t>(fr.model)]
                    [static_cast<std::size_t>(fr.stream)]
                        .push_back(fr.id);
        for (auto &per_model : done)
            for (auto &ids : per_model) {
                std::sort(
                    ids.begin(), ids.end(),
                    [&frames](std::int64_t a, std::int64_t b) {
                        const FrameRec &fa =
                            frames[static_cast<std::size_t>(a)];
                        const FrameRec &fb =
                            frames[static_cast<std::size_t>(b)];
                        if (fa.done_s != fb.done_s)
                            return fa.done_s < fb.done_s;
                        return fa.seq < fb.seq;
                    });
                double post_free = 0.0;
                for (std::int64_t id : ids) {
                    FrameRec &fr =
                        frames[static_cast<std::size_t>(id)];
                    double start =
                        std::max(fr.done_s, post_free);
                    fr.post_done_s =
                        start + fr.postprocess_dur_s;
                    post_free = fr.post_done_s;
                }
            }
    }

    // ------------------------------------------------------------
    // Freshness: terminal outcomes feed the per-model trackers (and
    // the metric registry) in frame-id order, and the per-(model,
    // stream) SloTrackerSet in time order so its sliding windows
    // see a monotone clock. A dropped frame is bad at its drop
    // time; a completed frame is bad at postprocess-done when its
    // age exceeds the stale budget.
    // ------------------------------------------------------------
    std::vector<FreshnessTracker> fresh;
    for (const auto &mc : cfg.models)
        fresh.emplace_back(mc.streams, mc.stale_ms);
    for (const FrameRec &fr : frames) {
        auto m = static_cast<std::size_t>(fr.model);
        fresh[m].onProduced(fr.stream);
        mm[m].produced.add();
        switch (fr.outcome) {
          case FrameRec::kDropped:
              fresh[m].onDropped(fr.stream);
              mm[m].dropped.add();
              break;
          case FrameRec::kCompleted: {
              double age = fr.ageMs();
              fresh[m].onCompleted(fr.stream, age);
              mm[m].completed.add();
              mm[m].age_ms.record(age);
              if (age > cfg.models[m].stale_ms)
                  mm[m].stale.add();
              break;
          }
          case FrameRec::kInFlight:
              fresh[m].onLeftInFlight(fr.stream);
              break;
        }
    }

    watch::SloTracker::Config scfg;
    scfg.objective_pct = cfg.watch.slo_objective_pct;
    scfg.page_burn = cfg.watch.page_burn;
    scfg.warn_burn = cfg.watch.warn_burn;
    scfg.fast_window_s = cfg.watch.fast_window_s;
    scfg.mid_window_s = cfg.watch.mid_window_s;
    scfg.slow_window_s = cfg.watch.slow_window_s;
    watch::SloTrackerSet slo(scfg);
    {
        struct Item
        {
            double t;
            int rank; //!< 0 = drop, 1 = completion
            std::int64_t id;
            bool bad;
        };
        std::vector<Item> feed;
        for (const FrameRec &fr : frames) {
            if (fr.outcome == FrameRec::kDropped)
                feed.push_back(Item{fr.drop_s, 0, fr.id, true});
            else if (fr.outcome == FrameRec::kCompleted)
                feed.push_back(Item{
                    fr.post_done_s, 1, fr.id,
                    fr.ageMs() >
                        cfg.models[static_cast<std::size_t>(
                                       fr.model)]
                            .stale_ms});
        }
        std::sort(feed.begin(), feed.end(),
                  [](const Item &a, const Item &b) {
                      if (a.t != b.t)
                          return a.t < b.t;
                      if (a.rank != b.rank)
                          return a.rank < b.rank;
                      return a.id < b.id;
                  });
        for (const Item &it : feed) {
            const FrameRec &fr =
                frames[static_cast<std::size_t>(it.id)];
            slo.observe(
                laneKey(cfg.models[static_cast<std::size_t>(
                                       fr.model)]
                            .model,
                        fr.stream),
                it.t, it.bad);
        }
    }
    if (cfg.watch.enabled && !cfg.watch.out_path.empty())
        writeFreshnessFile(cfg.watch.out_path, slo);

    // ------------------------------------------------------------
    // Report assembly (model order, then stream order).
    // ------------------------------------------------------------
    StreamReport report;
    report.seed = cfg.seed;
    report.duration_s = cfg.duration_s;
    report.freshness_pages = slo.rollup().pages;
    report.freshness_warns = slo.rollup().warns;
    report.freshness_clears = slo.rollup().clears;
    report.first_page_s = slo.rollup().first_page_s;

    for (int m = 0; m < n_models; m++) {
        auto mi = static_cast<std::size_t>(m);
        const auto &mc = cfg.models[mi];
        StreamModelStats s;
        s.model = mc.model;
        s.precision = nn::precisionName(mc.precision);
        s.policy = backpressurePolicyName(mc.policy);
        s.arrival = frameArrivalName(mc.arrival);
        s.streams = mc.streams;
        s.fps = mc.fps;
        s.stale_ms = mc.stale_ms;
        s.instances = static_cast<int>(pool.instancesOf(m).size());
        s.freshness = fresh[mi].totalStats();
        s.conserved = fresh[mi].conserved();
        std::int64_t dispatched = 0;
        for (int idx : pool.instancesOf(m))
            for (const auto &pd :
                 pool.instances()[static_cast<std::size_t>(idx)]
                     .plan) {
                dispatched += pd.batch;
                s.batches++;
            }
        s.mean_batch =
            s.batches > 0
                ? static_cast<double>(dispatched) /
                      static_cast<double>(s.batches)
                : 0.0;
        // Stage attribution over completed frames, reusing the
        // RequestTrace breakdown for the infer stages.
        std::int64_t n = 0;
        double dec = 0.0, pre = 0.0, que = 0.0, dw = 0.0,
               up = 0.0, comp = 0.0, down = 0.0, post = 0.0;
        for (const FrameRec &fr : frames) {
            if (fr.model != m ||
                fr.outcome != FrameRec::kCompleted)
                continue;
            watch::RequestTrace rt;
            rt.arrival_s = fr.ready_s;
            rt.dispatch_s = fr.dispatch_s;
            rt.begin_s = fr.begin_s;
            rt.upload_done_s = fr.upload_done_s;
            rt.compute_done_s = fr.compute_done_s;
            rt.done_s = fr.done_s;
            dec += (fr.decode_done_s - fr.capture_s) * 1e3;
            pre += (fr.ready_s - fr.decode_done_s) * 1e3;
            que += rt.queueMs();
            dw += rt.dispatchWaitMs();
            up += rt.uploadMs();
            comp += rt.computeMs();
            down += rt.downloadMs();
            post += (fr.post_done_s - fr.done_s) * 1e3;
            n++;
        }
        if (n > 0) {
            auto dn = static_cast<double>(n);
            s.decode_mean_ms = dec / dn;
            s.preprocess_mean_ms = pre / dn;
            s.queue_mean_ms = que / dn;
            s.dispatch_wait_mean_ms = dw / dn;
            s.upload_mean_ms = up / dn;
            s.compute_mean_ms = comp / dn;
            s.download_mean_ms = down / dn;
            s.postprocess_mean_ms = post / dn;
        }
        for (int c = 0; c < mc.streams; c++) {
            StreamLaneStats lane;
            lane.stream = c;
            lane.freshness = fresh[mi].streamStats(c);
            if (const watch::SloTracker *t =
                    slo.find(laneKey(mc.model, c)))
                lane.tier = t->tier();
            s.lanes.push_back(std::move(lane));
        }
        report.models.push_back(std::move(s));
    }

    for (int d = 0; d < n_devices; d++) {
        auto di = static_cast<std::size_t>(d);
        const auto &spec = cfg.devices[di];
        StreamDeviceStats s;
        s.device = spec.name;
        for (const auto &inst : pool.instances())
            if (inst.device == d)
                s.instances++;
        auto st = sims[di]->stats();
        s.sm_util_pct = st.smUtilizationPct(spec.sm_count);
        s.copy_busy_pct =
            st.window_s > 0.0
                ? 100.0 * st.copy_busy_s / st.window_s
                : 0.0;
        s.makespan_s = sims[di]->nowSeconds();
        s.ram_used_bytes = pool.ramUsedBytes(d);
        s.ram_budget_bytes = pool.ramBudgetBytes(d);

        const obs::Labels labels = {{"device", spec.name},
                                    {"index", std::to_string(d)}};
        reg.gauge("stream.device.sm_util_pct", labels)
            .set(s.sm_util_pct);
        reg.gauge("stream.device.copy_busy_pct", labels)
            .set(s.copy_busy_pct);
        reg.gauge("stream.device.instances", labels)
            .set(static_cast<double>(s.instances));
        report.devices.push_back(std::move(s));
    }

    if (!cfg.trace_out.empty()) {
        std::vector<profile::NamedTrace> device_traces;
        for (int d = 0; d < n_devices; d++) {
            const auto &sim = *sims[static_cast<std::size_t>(d)];
            profile::NamedTrace nt;
            nt.name =
                cfg.devices[static_cast<std::size_t>(d)].name +
                "[" + std::to_string(d) + "]";
            nt.trace = &sim.trace();
            if (sim.traceMode() == gpusim::TraceMode::kSampled)
                nt.sample_every = sim.traceSampleEvery();
            device_traces.push_back(std::move(nt));
        }
        profile::saveMergedChromeTrace(
            cfg.trace_out, obs::Tracer::global().spans(),
            device_traces, {}, "stream");
    }

    return report;
}

std::string
StreamReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"duration_s\": " << jsonNumber(duration_s) << ",\n";
    os << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); i++) {
        const StreamModelStats &s = models[i];
        os << "    {\n";
        os << "      \"model\": \"" << jsonEscape(s.model)
           << "\",\n";
        os << "      \"precision\": \"" << jsonEscape(s.precision)
           << "\",\n";
        os << "      \"policy\": \"" << jsonEscape(s.policy)
           << "\",\n";
        os << "      \"arrival\": \"" << jsonEscape(s.arrival)
           << "\",\n";
        os << "      \"streams\": " << s.streams << ",\n";
        os << "      \"fps\": " << jsonNumber(s.fps) << ",\n";
        os << "      \"stale_ms\": " << jsonNumber(s.stale_ms)
           << ",\n";
        os << "      \"instances\": " << s.instances << ",\n";
        os << "      \"produced\": " << s.freshness.produced
           << ",\n";
        os << "      \"completed\": " << s.freshness.completed
           << ",\n";
        os << "      \"dropped\": " << s.freshness.dropped
           << ",\n";
        os << "      \"in_flight\": " << s.freshness.in_flight
           << ",\n";
        os << "      \"stale_completed\": "
           << s.freshness.stale_completed << ",\n";
        os << "      \"stale_rate_pct\": "
           << jsonNumber(s.freshness.stale_rate_pct) << ",\n";
        os << "      \"conserved\": "
           << (s.conserved ? "true" : "false") << ",\n";
        os << "      \"batches\": " << s.batches << ",\n";
        os << "      \"mean_batch\": " << jsonNumber(s.mean_batch)
           << ",\n";
        os << "      \"age_ms\": {\n";
        os << "        \"mean\": "
           << jsonNumber(s.freshness.age_mean_ms) << ",\n";
        os << "        \"p50\": "
           << jsonNumber(s.freshness.age_p50_ms) << ",\n";
        os << "        \"p95\": "
           << jsonNumber(s.freshness.age_p95_ms) << ",\n";
        os << "        \"p99\": "
           << jsonNumber(s.freshness.age_p99_ms) << ",\n";
        os << "        \"max\": "
           << jsonNumber(s.freshness.age_max_ms) << "\n";
        os << "      },\n";
        os << "      \"stage_mean_ms\": {\"decode\": "
           << jsonNumber(s.decode_mean_ms) << ", \"preprocess\": "
           << jsonNumber(s.preprocess_mean_ms) << ", \"queue\": "
           << jsonNumber(s.queue_mean_ms)
           << ", \"dispatch_wait\": "
           << jsonNumber(s.dispatch_wait_mean_ms)
           << ", \"upload\": " << jsonNumber(s.upload_mean_ms)
           << ", \"compute\": " << jsonNumber(s.compute_mean_ms)
           << ", \"download\": " << jsonNumber(s.download_mean_ms)
           << ", \"postprocess\": "
           << jsonNumber(s.postprocess_mean_ms) << "},\n";
        os << "      \"lanes\": [\n";
        for (std::size_t l = 0; l < s.lanes.size(); l++) {
            const StreamLaneStats &lane = s.lanes[l];
            os << "        {\"stream\": " << lane.stream
               << ", \"produced\": " << lane.freshness.produced
               << ", \"completed\": " << lane.freshness.completed
               << ", \"dropped\": " << lane.freshness.dropped
               << ", \"in_flight\": " << lane.freshness.in_flight
               << ", \"stale_rate_pct\": "
               << jsonNumber(lane.freshness.stale_rate_pct)
               << ", \"age_p99_ms\": "
               << jsonNumber(lane.freshness.age_p99_ms)
               << ", \"tier\": \""
               << watch::alertTierName(lane.tier) << "\"}"
               << (l + 1 < s.lanes.size() ? "," : "") << "\n";
        }
        os << "      ]\n";
        os << "    }" << (i + 1 < models.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"devices\": [\n";
    for (std::size_t i = 0; i < devices.size(); i++) {
        const StreamDeviceStats &s = devices[i];
        os << "    {\n";
        os << "      \"device\": \"" << jsonEscape(s.device)
           << "\",\n";
        os << "      \"instances\": " << s.instances << ",\n";
        os << "      \"sm_util_pct\": "
           << jsonNumber(s.sm_util_pct) << ",\n";
        os << "      \"copy_busy_pct\": "
           << jsonNumber(s.copy_busy_pct) << ",\n";
        os << "      \"makespan_s\": " << jsonNumber(s.makespan_s)
           << ",\n";
        os << "      \"ram_used_bytes\": " << s.ram_used_bytes
           << ",\n";
        os << "      \"ram_budget_bytes\": " << s.ram_budget_bytes
           << "\n";
        os << "    }" << (i + 1 < devices.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"freshness\": {\"pages\": " << freshness_pages
       << ", \"warns\": " << freshness_warns
       << ", \"clears\": " << freshness_clears
       << ", \"first_page_s\": " << jsonNumber(first_page_s)
       << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace edgert::stream
