#ifndef EDGERT_STREAM_PIPELINE_HH
#define EDGERT_STREAM_PIPELINE_HH

/**
 * @file
 * Staged stream pipeline pieces: the host-side stage model, the
 * per-stream backpressure policies and the frame queue that applies
 * them.
 *
 * A frame flows decode → preprocess → infer → postprocess. Decode
 * and preprocess are modeled host stages chained per camera stream
 * (one decoder per camera: stage k of frame i+1 starts no earlier
 * than stage k of frame i ends); infer goes through the serve
 * layer's InstancePool / DynamicBatcher ladder so batching works
 * across streams; postprocess chains per stream again after the
 * device completes.
 *
 * Backpressure decides what happens when frames become ready faster
 * than inference drains them:
 *
 *  - drop_oldest:     keep at most `frame_budget` queued frames per
 *                     stream; admitting one more evicts that
 *                     stream's oldest queued frame (a bounded
 *                     mailbox).
 *  - skip_to_latest:  a fresh frame replaces every queued frame of
 *                     its stream (budget-1 mailbox — the consumer
 *                     only ever wants the newest detection input).
 *  - block:           nothing is dropped; the queue grows without
 *                     bound and frames age in it (the camera keeps
 *                     capturing; completions go stale instead).
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace edgert::stream {

/** First-class per-stream backpressure policies. */
enum class BackpressurePolicy { kDropOldest, kSkipToLatest, kBlock };

/** Parse "drop_oldest" / "skip_to_latest" / "block". */
BackpressurePolicy parseBackpressurePolicy(const std::string &s);

/** Stable wire name of a backpressure policy. */
std::string backpressurePolicyName(BackpressurePolicy policy);

/**
 * Modeled host-side stage costs of one model's streams. Each frame
 * draws its own per-stage duration at generation time:
 * `base_ms * max(0.1, 1 + N(0, jitter_pct/100))`.
 */
struct StageModel
{
    double decode_ms = 2.0;
    double preprocess_ms = 1.0;
    double postprocess_ms = 0.5;
    double jitter_pct = 10.0;
};

/**
 * Ready-frame queue of one model: frames from all of its camera
 * streams in ready order, with per-stream backpressure applied at
 * admission. Entries live in an append-only arena; drops and cuts
 * are lazy deletions, so push/cut stay amortized O(1) regardless of
 * how deep a blocked queue grows.
 */
class StreamQueue
{
  public:
    explicit StreamQueue(int n_streams);

    /**
     * Admit a ready frame, applying `policy` with `frame_budget` to
     * its stream's queued frames. Returns the ids the admission
     * evicted (oldest first); empty for block or when under budget.
     */
    std::vector<std::int64_t> push(std::int64_t id, int stream,
                                   double ready_s,
                                   BackpressurePolicy policy,
                                   int frame_budget);

    /** Dequeue the oldest `n` live frames (n <= size()). */
    std::vector<std::int64_t> cut(int n);

    bool empty() const { return live_total_ == 0; }
    std::size_t size() const { return live_total_; }

    /** Ready time of the oldest live frame (queue non-empty). */
    double oldestReadySeconds() const;

    /** Id of the oldest live frame (queue non-empty). */
    std::int64_t frontId() const;

    /** Live queued frames of one stream. */
    int queuedOf(int stream) const;

    /** Ids of every live frame, oldest first (end-of-run sweep). */
    std::vector<std::int64_t> drain();

  private:
    struct Entry
    {
        std::int64_t id = -1;
        int stream = 0;
        double ready_s = 0.0;
        bool gone = false; //!< dropped or cut
    };

    /** Skip dropped/cut entries at the FIFO head. */
    void compactFront();

    std::vector<Entry> entries_;
    std::deque<std::int32_t> fifo_; //!< arena indices, ready order
    std::vector<std::deque<std::int32_t>> per_stream_;
    std::vector<int> live_;
    std::size_t live_total_ = 0;
};

} // namespace edgert::stream

#endif // EDGERT_STREAM_PIPELINE_HH
