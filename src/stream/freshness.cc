#include "stream/freshness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace edgert::stream {

FreshnessTracker::FreshnessTracker(int n_streams, double stale_ms)
    : stale_ms_(stale_ms),
      per_stream_(static_cast<std::size_t>(n_streams)),
      ages_(static_cast<std::size_t>(n_streams))
{
    if (n_streams <= 0)
        fatal("FreshnessTracker needs at least one stream (got ",
              n_streams, ")");
    if (stale_ms <= 0.0)
        fatal("stale budget must be positive (got ", stale_ms,
              " ms)");
}

void
FreshnessTracker::onProduced(int stream)
{
    per_stream_[static_cast<std::size_t>(stream)].produced++;
}

void
FreshnessTracker::onDropped(int stream)
{
    per_stream_[static_cast<std::size_t>(stream)].dropped++;
}

void
FreshnessTracker::onCompleted(int stream, double age_ms)
{
    auto si = static_cast<std::size_t>(stream);
    per_stream_[si].completed++;
    if (age_ms > stale_ms_)
        per_stream_[si].stale_completed++;
    ages_[si].push_back(age_ms);
}

void
FreshnessTracker::onLeftInFlight(int stream)
{
    per_stream_[static_cast<std::size_t>(stream)].in_flight++;
}

FreshnessStats
FreshnessTracker::finish(const Counts &c, std::vector<double> ages)
{
    FreshnessStats s;
    s.produced = c.produced;
    s.completed = c.completed;
    s.dropped = c.dropped;
    s.in_flight = c.in_flight;
    s.stale_completed = c.stale_completed;
    std::int64_t terminal = c.completed + c.dropped;
    if (terminal > 0)
        s.stale_rate_pct =
            100.0 *
            static_cast<double>(c.dropped + c.stale_completed) /
            static_cast<double>(terminal);
    if (!ages.empty()) {
        s.age_mean_ms = mean(ages);
        s.age_max_ms =
            *std::max_element(ages.begin(), ages.end());
        s.age_p50_ms = percentile(ages, 50.0);
        s.age_p95_ms = percentile(ages, 95.0);
        s.age_p99_ms = percentile(std::move(ages), 99.0);
    }
    return s;
}

FreshnessStats
FreshnessTracker::streamStats(int stream) const
{
    auto si = static_cast<std::size_t>(stream);
    return finish(per_stream_[si], ages_[si]);
}

FreshnessStats
FreshnessTracker::totalStats() const
{
    Counts total;
    std::vector<double> ages;
    for (std::size_t s = 0; s < per_stream_.size(); s++) {
        const Counts &c = per_stream_[s];
        total.produced += c.produced;
        total.completed += c.completed;
        total.dropped += c.dropped;
        total.in_flight += c.in_flight;
        total.stale_completed += c.stale_completed;
        ages.insert(ages.end(), ages_[s].begin(), ages_[s].end());
    }
    return finish(total, std::move(ages));
}

bool
FreshnessTracker::conserved() const
{
    for (const Counts &c : per_stream_)
        if (c.produced != c.completed + c.dropped + c.in_flight)
            return false;
    return true;
}

} // namespace edgert::stream
