#ifndef EDGERT_STREAM_FRESHNESS_HH
#define EDGERT_STREAM_FRESHNESS_HH

/**
 * @file
 * Freshness accounting for one model's camera streams.
 *
 * Streaming quality is not p99 of admitted requests — a pipeline
 * that drops nine of ten frames can post a superb p99 while the
 * detector acts on stale scenes. The tracker therefore scores
 * *terminal frame outcomes*:
 *
 *  - a dropped frame is stale by definition (its scene was never
 *    acted on);
 *  - a completed frame is stale when its end-to-end age (capture →
 *    postprocess done) exceeds the stream's stale budget;
 *  - stale-frame rate = (dropped + stale completions) /
 *    (completed + dropped).
 *
 * Frames still in the pipeline when the run ends are `in_flight`;
 * every stream must satisfy the conservation invariant
 * produced == completed + dropped + in_flight, which conserved()
 * checks (the counters are fed independently by the runner, so a
 * double-complete or a drop of a finished frame trips it).
 */

#include <cstdint>
#include <vector>

namespace edgert::stream {

/** Terminal outcome counts and age statistics of one stream. */
struct FreshnessStats
{
    std::int64_t produced = 0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0;
    std::int64_t in_flight = 0;
    std::int64_t stale_completed = 0; //!< age > stale budget

    /** (dropped + stale completions) / (completed + dropped). */
    double stale_rate_pct = 0.0;

    // End-to-end frame age (capture → postprocess done) over
    // completed frames, ms.
    double age_mean_ms = 0.0;
    double age_p50_ms = 0.0;
    double age_p95_ms = 0.0;
    double age_p99_ms = 0.0;
    double age_max_ms = 0.0;
};

/** Per-stream freshness bookkeeping for one model. */
class FreshnessTracker
{
  public:
    /**
     * @param n_streams Camera streams of the model.
     * @param stale_ms  Age budget: a completed frame older than
     *        this is stale.
     */
    FreshnessTracker(int n_streams, double stale_ms);

    void onProduced(int stream);
    void onDropped(int stream);
    void onCompleted(int stream, double age_ms);

    /** A frame still in the pipeline when the run ended. */
    void onLeftInFlight(int stream);

    double staleMs() const { return stale_ms_; }
    int streams() const
    {
        return static_cast<int>(per_stream_.size());
    }

    /** Stats of one stream (percentiles computed on demand). */
    FreshnessStats streamStats(int stream) const;

    /** Aggregate stats over every stream. */
    FreshnessStats totalStats() const;

    /** produced == completed + dropped + in_flight, per stream. */
    bool conserved() const;

  private:
    struct Counts
    {
        std::int64_t produced = 0;
        std::int64_t completed = 0;
        std::int64_t dropped = 0;
        std::int64_t in_flight = 0;
        std::int64_t stale_completed = 0;
    };

    static FreshnessStats finish(const Counts &c,
                                 std::vector<double> ages);

    double stale_ms_;
    std::vector<Counts> per_stream_;
    std::vector<std::vector<double>> ages_; //!< per stream, ms
};

} // namespace edgert::stream

#endif // EDGERT_STREAM_FRESHNESS_HH
