#include "stream/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edgert::stream {

BackpressurePolicy
parseBackpressurePolicy(const std::string &s)
{
    if (s == "drop_oldest")
        return BackpressurePolicy::kDropOldest;
    if (s == "skip_to_latest")
        return BackpressurePolicy::kSkipToLatest;
    if (s == "block")
        return BackpressurePolicy::kBlock;
    fatal("unknown backpressure policy '", s,
          "' (expected drop_oldest|skip_to_latest|block)");
}

std::string
backpressurePolicyName(BackpressurePolicy policy)
{
    switch (policy) {
      case BackpressurePolicy::kDropOldest: return "drop_oldest";
      case BackpressurePolicy::kSkipToLatest:
          return "skip_to_latest";
      case BackpressurePolicy::kBlock: return "block";
    }
    return "unknown";
}

StreamQueue::StreamQueue(int n_streams)
    : per_stream_(static_cast<std::size_t>(n_streams)),
      live_(static_cast<std::size_t>(n_streams), 0)
{
    if (n_streams <= 0)
        fatal("StreamQueue needs at least one stream (got ",
              n_streams, ")");
}

std::vector<std::int64_t>
StreamQueue::push(std::int64_t id, int stream, double ready_s,
                  BackpressurePolicy policy, int frame_budget)
{
    auto si = static_cast<std::size_t>(stream);
    std::vector<std::int64_t> evicted;
    auto &mine = per_stream_[si];

    auto evictOldest = [&]() {
        while (!mine.empty()) {
            std::int32_t idx = mine.front();
            mine.pop_front();
            Entry &e = entries_[static_cast<std::size_t>(idx)];
            if (e.gone)
                continue; // already cut; lazy tombstone
            e.gone = true;
            live_[si]--;
            live_total_--;
            evicted.push_back(e.id);
            return true;
        }
        return false;
    };

    switch (policy) {
      case BackpressurePolicy::kDropOldest:
          while (live_[si] >= std::max(1, frame_budget))
              if (!evictOldest())
                  break;
          break;
      case BackpressurePolicy::kSkipToLatest:
          while (live_[si] > 0)
              if (!evictOldest())
                  break;
          break;
      case BackpressurePolicy::kBlock: break;
    }

    auto idx = static_cast<std::int32_t>(entries_.size());
    entries_.push_back(Entry{id, stream, ready_s, false});
    fifo_.push_back(idx);
    mine.push_back(idx);
    live_[si]++;
    live_total_++;
    return evicted;
}

void
StreamQueue::compactFront()
{
    while (!fifo_.empty() &&
           entries_[static_cast<std::size_t>(fifo_.front())].gone)
        fifo_.pop_front();
}

std::vector<std::int64_t>
StreamQueue::cut(int n)
{
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(n));
    while (n > 0) {
        compactFront();
        if (fifo_.empty())
            fatal("StreamQueue::cut past end (", n,
                  " frames short)");
        Entry &e =
            entries_[static_cast<std::size_t>(fifo_.front())];
        fifo_.pop_front();
        e.gone = true;
        live_[static_cast<std::size_t>(e.stream)]--;
        live_total_--;
        out.push_back(e.id);
        n--;
    }
    return out;
}

double
StreamQueue::oldestReadySeconds() const
{
    for (std::int32_t idx : fifo_) {
        const Entry &e = entries_[static_cast<std::size_t>(idx)];
        if (!e.gone)
            return e.ready_s;
    }
    fatal("StreamQueue::oldestReadySeconds on empty queue");
}

std::int64_t
StreamQueue::frontId() const
{
    for (std::int32_t idx : fifo_) {
        const Entry &e = entries_[static_cast<std::size_t>(idx)];
        if (!e.gone)
            return e.id;
    }
    fatal("StreamQueue::frontId on empty queue");
}

int
StreamQueue::queuedOf(int stream) const
{
    return live_[static_cast<std::size_t>(stream)];
}

std::vector<std::int64_t>
StreamQueue::drain()
{
    std::vector<std::int64_t> out;
    out.reserve(live_total_);
    for (std::int32_t idx : fifo_) {
        Entry &e = entries_[static_cast<std::size_t>(idx)];
        if (e.gone)
            continue;
        e.gone = true;
        live_[static_cast<std::size_t>(e.stream)]--;
        out.push_back(e.id);
    }
    fifo_.clear();
    live_total_ = 0;
    return out;
}

} // namespace edgert::stream
