#ifndef EDGERT_STREAM_SOURCE_HH
#define EDGERT_STREAM_SOURCE_HH

/**
 * @file
 * Seeded frame sources for EdgeStream.
 *
 * A camera produces frames whether or not the server keeps up —
 * unlike serve's request processes there is no admission decision at
 * the source, only a capture clock. Two arrival models cover the
 * paper's traffic-intersection sketch:
 *
 *  - fixed_fps:        a rock-steady sensor clock (frame i at
 *                      phase + i/fps);
 *  - jittered_camera:  the same mean rate with per-gap Gaussian
 *                      jitter (auto-exposure, encoder hiccups) —
 *                      gaps are floored at 20% of the nominal gap so
 *                      the capture clock stays strictly increasing.
 *
 * Each stream draws from its own forked Rng lineage (root →
 * "frames" → model → stream, mirroring serve's load generator), so
 * adding a stream or reordering models never perturbs another
 * stream's capture times.
 */

#include <string>
#include <vector>

#include "common/rng.hh"

namespace edgert::stream {

/** Supported camera arrival models. */
enum class FrameArrival { kFixedFps, kJitteredCamera };

/** Parse "fixed" / "jitter" (fatal on anything else). */
FrameArrival parseFrameArrival(const std::string &s);

/** Stable wire name of an arrival model ("fixed", "jitter"). */
std::string frameArrivalName(FrameArrival kind);

/** Capture-clock configuration of one camera stream. */
struct FrameSourceConfig
{
    FrameArrival kind = FrameArrival::kFixedFps;
    double fps = 30.0;        //!< nominal frame rate
    double jitter_pct = 10.0; //!< gap stddev, percent (jittered)
};

/**
 * Generate one stream's capture times (simulated seconds, strictly
 * increasing, all < duration_s). Both models draw a uniform phase in
 * [0, 1/fps) first so streams at the same fps don't beat in
 * lockstep.
 *
 * @param rng Forked per (model, stream) by the caller; consumed
 *            sequentially so this stream is independent of others.
 */
std::vector<double> generateFrameTimes(const FrameSourceConfig &cfg,
                                       double duration_s, Rng &rng);

} // namespace edgert::stream

#endif // EDGERT_STREAM_SOURCE_HH
