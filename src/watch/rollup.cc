#include "watch/rollup.hh"

namespace edgert::watch {

void
AlertRollup::observe(double t_s, int node, const std::string &group,
                     Alert::Tier tier, const BurnRates &burn)
{
    NodeAlert a;
    a.t_s = t_s;
    a.node = node;
    a.group = group;
    a.tier = tier;
    a.burn = burn;
    alerts_.push_back(std::move(a));

    GroupAlertCounts &g = groups_[group];
    if (g.group.empty())
        g.group = group;
    switch (tier) {
      case Alert::kPage:
          pages_++;
          g.pages++;
          if (first_page_s_ < 0.0)
              first_page_s_ = t_s;
          break;
      case Alert::kWarn:
          warns_++;
          g.warns++;
          break;
      case Alert::kNone:
          clears_++;
          g.clears++;
          break;
    }
}

std::vector<GroupAlertCounts>
AlertRollup::byGroup() const
{
    std::vector<GroupAlertCounts> out;
    out.reserve(groups_.size());
    for (const auto &[name, counts] : groups_)
        out.push_back(counts);
    return out;
}

} // namespace edgert::watch
