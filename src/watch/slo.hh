#ifndef EDGERT_WATCH_SLO_HH
#define EDGERT_WATCH_SLO_HH

/**
 * @file
 * Sliding-window SLO accounting with multi-window error-budget burn
 * rates (the SRE-workbook alerting recipe adapted to simulated
 * time).
 *
 * Each served model gets one SloTracker holding three ring-bucket
 * sliding windows (fast / mid / slow, default 1 s / 10 s / 60 s of
 * sim time) over its terminal request outcomes. An outcome is *bad*
 * when the request was shed or completed past its deadline. With an
 * objective of `slo_objective_pct` (e.g. 99), the error budget is
 * `1 - objective/100` and a window's burn rate is
 *
 *     burn = (bad / total) / budget          (0 when the window is
 *                                             empty)
 *
 * burn = 1 means the model is consuming budget exactly as fast as
 * the objective allows; burn = 14.4 on a 99.9% objective is the
 * classic "page: budget gone in two days" threshold. Alerting is
 * multi-window to reject blips: *page* requires the fast AND mid
 * windows both over the page threshold, *warn* requires mid AND
 * slow both over the warn threshold. Tier changes are edge-
 * triggered: observe() returns an Alert only on a transition (to
 * page, to warn, or back to none — a "clear").
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace edgert::watch {

/**
 * Count of (total, bad) outcomes over the trailing `span_s` seconds
 * of simulated time, kept in a ring of fixed-width time buckets.
 * The window forgets whole buckets, so its reach is span_s rounded
 * to the bucket width — the standard ring-window tradeoff.
 */
class SlidingWindow
{
  public:
    explicit SlidingWindow(double span_s, int buckets = 20);

    /** Record one outcome at time t_s (monotone non-decreasing). */
    void add(double t_s, bool bad);

    /** Slide the window forward without recording. */
    void advanceTo(double t_s);

    std::int64_t total() const { return total_; }
    std::int64_t bad() const { return bad_; }

    /** Bad fraction in [0, 1]; 0 when the window is empty. */
    double badFraction() const;

    double spanSeconds() const { return span_s_; }

  private:
    struct Bucket
    {
        std::int64_t index = -1; //!< absolute bucket number
        std::int64_t total = 0;
        std::int64_t bad = 0;
    };

    void evictBefore(std::int64_t min_index);
    Bucket &bucketFor(double t_s);

    double span_s_;
    double width_s_;
    std::vector<Bucket> ring_;
    std::int64_t total_ = 0;
    std::int64_t bad_ = 0;
    std::int64_t evicted_before_ = 0; //!< indices below are gone
};

/** Burn rates of the three windows at one instant. */
struct BurnRates
{
    double fast = 0.0;
    double mid = 0.0;
    double slow = 0.0;
};

/** One edge-triggered alert (tier transition) from a SloTracker. */
struct Alert
{
    enum Tier { kNone, kWarn, kPage };

    double t_s = 0.0;
    std::string model;
    Tier tier = kNone; //!< new tier; kNone = the alert cleared
    BurnRates burn;    //!< burn rates at the transition
    std::int64_t window_total = 0; //!< fast-window sample count
};

/** Stable wire name of an alert tier ("none", "warn", "page"). */
const char *alertTierName(Alert::Tier tier);

/** Multi-window burn-rate SLO tracker for one model. */
class SloTracker
{
  public:
    struct Config
    {
        double objective_pct = 99.0; //!< SLO attainment objective
        double page_burn = 14.4;     //!< fast+mid page threshold
        double warn_burn = 6.0;      //!< mid+slow warn threshold
        double fast_window_s = 1.0;
        double mid_window_s = 10.0;
        double slow_window_s = 60.0;
    };

    SloTracker(std::string model, const Config &cfg);

    /**
     * Record one terminal request outcome (bad = shed or SLO miss).
     * Returns the tier-transition alert when this observation moved
     * the tracker across a threshold, else an Alert with the
     * current tier and t_s < 0 (sentinel: no transition).
     */
    Alert observe(double t_s, bool bad);

    /** Current burn rates (windows as of the last observation). */
    BurnRates burnRates() const;

    Alert::Tier tier() const { return tier_; }
    const std::string &model() const { return model_; }
    std::int64_t total() const { return total_; }
    std::int64_t bad() const { return bad_; }
    double errorBudget() const { return budget_; }

  private:
    Alert::Tier computeTier(const BurnRates &b) const;

    std::string model_;
    Config cfg_;
    double budget_;
    SlidingWindow fast_;
    SlidingWindow mid_;
    SlidingWindow slow_;
    Alert::Tier tier_ = Alert::kNone;
    std::int64_t total_ = 0;
    std::int64_t bad_ = 0;
};

/**
 * A keyed family of SloTrackers sharing one Config — the per-key
 * rollup the streaming layer uses for per-stream freshness alerts
 * (and any future per-tenant / per-node split). Trackers are
 * created lazily on first observe() of a key; the rollup
 * accumulates every key's tier transitions so a caller gets fleet
 * totals (pages, warns, clears, first page time) without walking
 * the keys itself. Keys iterate in sorted order, so any report
 * built from the set is deterministic.
 */
class SloTrackerSet
{
  public:
    explicit SloTrackerSet(const SloTracker::Config &cfg)
        : cfg_(cfg)
    {}

    /** Tier-transition totals across every key in the set. */
    struct Rollup
    {
        std::int64_t pages = 0;
        std::int64_t warns = 0;
        std::int64_t clears = 0;
        double first_page_s = -1.0; //!< -1 = no page fired
    };

    /**
     * Record one terminal outcome under `key` (created on first
     * use). Returns the key's tracker alert — t_s < 0 means no
     * tier transition, exactly as SloTracker::observe.
     */
    Alert observe(const std::string &key, double t_s, bool bad);

    /** The key's tracker, or nullptr if never observed. */
    const SloTracker *find(const std::string &key) const;

    /** Every observed key, sorted. */
    std::vector<std::string> keys() const;

    const Rollup &rollup() const { return rollup_; }
    std::size_t size() const { return trackers_.size(); }

    /** Keys currently at the given tier, sorted. */
    std::vector<std::string> keysAtTier(Alert::Tier tier) const;

  private:
    SloTracker::Config cfg_;
    std::map<std::string, SloTracker> trackers_;
    Rollup rollup_;
};

} // namespace edgert::watch

#endif // EDGERT_WATCH_SLO_HH
