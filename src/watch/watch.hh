#ifndef EDGERT_WATCH_WATCH_HH
#define EDGERT_WATCH_WATCH_HH

/**
 * @file
 * EdgeWatch — request-scoped observability for the serving fleet.
 *
 * The serve path feeds EdgeWatch a deterministic, time-ordered
 * stream of structured events (admissions, sheds, dispatches,
 * completions with per-stage timestamps, hot-swap lifecycle). From
 * that one feed it maintains:
 *
 *  - RequestTrace attribution: every completed request carries its
 *    queue / dispatch-wait / upload / compute / download breakdown,
 *    and the slowest N requests are retained for the report and the
 *    chrome-trace export;
 *  - per-model SloTracker instances (multi-window error-budget burn
 *    rates, page/warn alerts — see slo.hh);
 *  - a FlightRecorder ring of recent events, dumped as a
 *    byte-deterministic JSON incident file on every page alert and
 *    swap rollback;
 *  - an AnomalyDetector flagging per-(model, device) latency-
 *    ordering inversions à la the paper's F4/F5.
 *
 * Everything runs on simulated time only — EdgeWatch never reads a
 * clock — so for a fixed (config, seed) the watch report and every
 * incident file are byte-identical across runs and thread counts.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "watch/anomaly.hh"
#include "watch/recorder.hh"
#include "watch/slo.hh"

namespace edgert::watch {

/** EdgeWatch knobs (all time in simulated seconds). */
struct WatchConfig
{
    bool enabled = false;

    /** Watch report JSON path ("" = keep in memory only). */
    std::string out_path;

    /** Incident file prefix; files are `<prefix>NNN-<reason>.json`
     *  ("" = keep incident documents in memory only). */
    std::string incident_prefix;

    double slo_objective_pct = 99.0;
    double page_burn = 14.4;
    double warn_burn = 6.0;
    double fast_window_s = 1.0;
    double mid_window_s = 10.0;
    double slow_window_s = 60.0;

    int flight_recorder_depth = 256;
    int max_incidents = 8;  //!< later triggers only count
    int slow_trace_count = 8;

    int anomaly_window = 64;
    int anomaly_min_samples = 16;
    double anomaly_margin_pct = 10.0;
};

/** Per-stage attribution of one request (simulated seconds). */
struct RequestTrace
{
    std::int64_t id = -1;
    int model = -1;
    int device = -1;
    int instance = -1;
    int batch = 0;
    int version = 0;

    double arrival_s = 0.0;      //!< admission
    double dispatch_s = 0.0;     //!< batch cut (leaves host queue)
    double begin_s = 0.0;        //!< device starts the batch
    double upload_done_s = 0.0;  //!< input H2D copies finished
    double compute_done_s = 0.0; //!< kernels finished
    double done_s = 0.0;         //!< output D2H copies finished

    /** Host-queue time incl. batch formation. */
    double queueMs() const { return (dispatch_s - arrival_s) * 1e3; }
    /** Release-to-start wait on the device (stream contention). */
    double dispatchWaitMs() const
    {
        return (begin_s - dispatch_s) * 1e3;
    }
    double uploadMs() const
    {
        return (upload_done_s - begin_s) * 1e3;
    }
    double computeMs() const
    {
        return (compute_done_s - upload_done_s) * 1e3;
    }
    double downloadMs() const
    {
        return (done_s - compute_done_s) * 1e3;
    }
    double totalMs() const { return (done_s - arrival_s) * 1e3; }
};

/** End-of-run per-model watch outcome. */
struct ModelWatchStats
{
    std::string model;
    Alert::Tier tier = Alert::kNone; //!< tier at end of run
    BurnRates burn;                  //!< burn rates at end of run
    std::int64_t observed = 0;       //!< terminal outcomes seen
    std::int64_t bad = 0;            //!< sheds + SLO misses

    // Mean stage attribution over completed requests, ms.
    double queue_mean_ms = 0.0;
    double dispatch_wait_mean_ms = 0.0;
    double upload_mean_ms = 0.0;
    double compute_mean_ms = 0.0;
    double download_mean_ms = 0.0;
    double total_mean_ms = 0.0;
};

/** Whole-run watch outcome (embedded in the ServeReport). */
struct WatchSummary
{
    bool enabled = false;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;
    std::int64_t completed = 0;
    std::int64_t page_alerts = 0;
    std::int64_t warn_alerts = 0;
    std::int64_t clear_alerts = 0;
    std::int64_t anomalies = 0;
    std::int64_t incidents = 0;
    double first_page_s = -1.0; //!< -1 = no page alert fired

    std::vector<ModelWatchStats> models;
    std::vector<Alert> alerts;
    std::vector<AnomalyFinding> anomaly_findings;
    std::vector<RequestTrace> slow_requests; //!< worst N, slowest first
};

/** The watch facade the serve path drives. */
class EdgeWatch
{
  public:
    /**
     * @param cfg           Knobs (cfg.enabled is not consulted —
     *        constructing an EdgeWatch means watching).
     * @param models        Served model names, model-index order.
     * @param model_slo_ms  Deadline per model (same order).
     * @param device_names  Fleet device names, device-index order.
     * @param device_scores Capability score per device (higher =
     *        expected faster); peak FLOPS.
     */
    EdgeWatch(const WatchConfig &cfg,
              std::vector<std::string> models,
              std::vector<double> model_slo_ms,
              std::vector<std::string> device_names,
              std::vector<double> device_scores);

    // --- the event feed (strictly non-decreasing t_s) ---
    void onAdmit(double t_s, int model, std::int64_t id);
    void onShed(double t_s, int model, std::int64_t id);
    void onDispatch(double t_s, int model, int batch, int device,
                    std::int64_t first_id);
    void onComplete(const RequestTrace &rt);
    void onSwapBegin(double t_s, int model,
                     std::uint64_t build_id);
    void onSwapCommit(double t_s, int model,
                      std::uint64_t build_id);
    void onSwapRollback(double t_s, int model,
                        const std::string &reason);

    /** Close the run: slide windows to end_s, freeze the summary. */
    void finish(double end_s);

    const WatchSummary &summary() const { return summary_; }

    /** Canonical watch-report JSON (valid after finish()). */
    std::string reportJson() const;

    /** Incident documents dumped so far: (filename, content). */
    const std::vector<std::pair<std::string, std::string>> &
    incidents() const
    {
        return incidents_;
    }

    /**
     * Write the report to cfg.out_path and each incident next to
     * cfg.incident_prefix (no-ops for empty paths/prefix).
     */
    void writeFiles() const;

    const FlightRecorder &recorder() const { return recorder_; }

  private:
    void handleAlert(const Alert &a);
    void dumpIncident(double t_s, const std::string &reason,
                      const std::string &model,
                      const std::string &detail);
    const std::string &modelName(int model) const;

    WatchConfig cfg_;
    std::vector<std::string> models_;
    std::vector<double> slo_ms_;
    std::vector<std::string> device_names_;

    std::vector<SloTracker> trackers_;
    FlightRecorder recorder_;
    AnomalyDetector anomaly_;

    // Stage-attribution accumulators per model.
    struct StageSums
    {
        std::int64_t n = 0;
        double queue = 0.0, dispatch_wait = 0.0, upload = 0.0,
               compute = 0.0, download = 0.0, total = 0.0;
    };
    std::vector<StageSums> stages_;

    WatchSummary summary_;
    std::vector<std::pair<std::string, std::string>> incidents_;
    bool finished_ = false;
};

} // namespace edgert::watch

#endif // EDGERT_WATCH_WATCH_HH
