#include "watch/slo.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace edgert::watch {

SlidingWindow::SlidingWindow(double span_s, int buckets)
    : span_s_(span_s),
      width_s_(span_s / std::max(1, buckets)),
      ring_(static_cast<std::size_t>(std::max(1, buckets)))
{
    if (span_s <= 0.0)
        fatal("SlidingWindow span must be positive (got ", span_s,
              ")");
}

void
SlidingWindow::evictBefore(std::int64_t min_index)
{
    // Only the bucket indices that newly fell out of the window
    // since the last eviction can hold live counts, so the scan is
    // amortized O(1) per time advance instead of O(buckets) per
    // add.
    if (min_index <= evicted_before_)
        return;
    auto span = static_cast<std::int64_t>(ring_.size());
    std::int64_t start =
        std::max({evicted_before_, min_index - span,
                  static_cast<std::int64_t>(0)});
    for (std::int64_t i = start; i < min_index; i++) {
        Bucket &b = ring_[static_cast<std::size_t>(i) %
                          ring_.size()];
        if (b.index >= 0 && b.index < min_index) {
            total_ -= b.total;
            bad_ -= b.bad;
            b.index = -1;
            b.total = 0;
            b.bad = 0;
        }
    }
    evicted_before_ = min_index;
}

SlidingWindow::Bucket &
SlidingWindow::bucketFor(double t_s)
{
    auto idx = static_cast<std::int64_t>(
        std::floor(std::max(0.0, t_s) / width_s_));
    evictBefore(idx - static_cast<std::int64_t>(ring_.size()) + 1);
    Bucket &b =
        ring_[static_cast<std::size_t>(idx) % ring_.size()];
    if (b.index != idx) {
        // Stale slot from a lap the eviction pass already zeroed
        // (or never filled): claim it for the new bucket.
        total_ -= b.total;
        bad_ -= b.bad;
        b.index = idx;
        b.total = 0;
        b.bad = 0;
    }
    return b;
}

void
SlidingWindow::add(double t_s, bool bad)
{
    Bucket &b = bucketFor(t_s);
    b.total++;
    total_++;
    if (bad) {
        b.bad++;
        bad_++;
    }
}

void
SlidingWindow::advanceTo(double t_s)
{
    auto idx = static_cast<std::int64_t>(
        std::floor(std::max(0.0, t_s) / width_s_));
    evictBefore(idx - static_cast<std::int64_t>(ring_.size()) + 1);
}

double
SlidingWindow::badFraction() const
{
    if (total_ <= 0)
        return 0.0;
    return static_cast<double>(bad_) /
           static_cast<double>(total_);
}

const char *
alertTierName(Alert::Tier tier)
{
    switch (tier) {
      case Alert::kNone: return "none";
      case Alert::kWarn: return "warn";
      case Alert::kPage: return "page";
    }
    return "unknown";
}

SloTracker::SloTracker(std::string model, const Config &cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      budget_(1.0 - cfg.objective_pct / 100.0),
      fast_(cfg.fast_window_s),
      mid_(cfg.mid_window_s),
      slow_(cfg.slow_window_s)
{
    if (cfg.objective_pct <= 0.0 || cfg.objective_pct >= 100.0)
        fatal("SLO objective must be in (0, 100) percent (got ",
              cfg.objective_pct, ")");
}

Alert::Tier
SloTracker::computeTier(const BurnRates &b) const
{
    if (b.fast >= cfg_.page_burn && b.mid >= cfg_.page_burn)
        return Alert::kPage;
    if (b.mid >= cfg_.warn_burn && b.slow >= cfg_.warn_burn)
        return Alert::kWarn;
    return Alert::kNone;
}

BurnRates
SloTracker::burnRates() const
{
    BurnRates b;
    b.fast = fast_.badFraction() / budget_;
    b.mid = mid_.badFraction() / budget_;
    b.slow = slow_.badFraction() / budget_;
    return b;
}

Alert
SloTracker::observe(double t_s, bool bad)
{
    fast_.add(t_s, bad);
    mid_.add(t_s, bad);
    slow_.add(t_s, bad);
    total_++;
    if (bad)
        bad_++;

    BurnRates b = burnRates();
    Alert::Tier next = computeTier(b);
    Alert a;
    a.model = model_;
    a.burn = b;
    a.window_total = fast_.total();
    if (next == tier_) {
        a.t_s = -1.0; // no transition
        a.tier = tier_;
        return a;
    }
    tier_ = next;
    a.t_s = t_s;
    a.tier = next;
    return a;
}

Alert
SloTrackerSet::observe(const std::string &key, double t_s,
                       bool bad)
{
    auto it = trackers_.find(key);
    if (it == trackers_.end())
        it = trackers_.emplace(key, SloTracker(key, cfg_)).first;
    Alert a = it->second.observe(t_s, bad);
    if (a.t_s >= 0.0) {
        switch (a.tier) {
          case Alert::kPage:
            rollup_.pages++;
            if (rollup_.first_page_s < 0.0)
                rollup_.first_page_s = a.t_s;
            break;
          case Alert::kWarn: rollup_.warns++; break;
          case Alert::kNone: rollup_.clears++; break;
        }
    }
    return a;
}

const SloTracker *
SloTrackerSet::find(const std::string &key) const
{
    auto it = trackers_.find(key);
    if (it == trackers_.end())
        return nullptr;
    return &it->second;
}

std::vector<std::string>
SloTrackerSet::keys() const
{
    std::vector<std::string> out;
    out.reserve(trackers_.size());
    for (const auto &kv : trackers_)
        out.push_back(kv.first);
    return out;
}

std::vector<std::string>
SloTrackerSet::keysAtTier(Alert::Tier tier) const
{
    std::vector<std::string> out;
    for (const auto &kv : trackers_)
        if (kv.second.tier() == tier)
            out.push_back(kv.first);
    return out;
}

} // namespace edgert::watch
