#ifndef EDGERT_WATCH_RECORDER_HH
#define EDGERT_WATCH_RECORDER_HH

/**
 * @file
 * FlightRecorder: a fixed-size ring of recent structured serving
 * events (admissions, sheds, dispatches, swaps, alerts). The ring
 * keeps only the last `depth` events, so an incident dump shows the
 * run-up to an alert or swap failure without unbounded memory — the
 * same idea as an aircraft flight recorder.
 *
 * Recording is mutex-guarded so event producers on different threads
 * (e.g. a future multi-threaded admission path) can share one
 * recorder; the EdgeServe feed itself is single-threaded and
 * deterministic, so snapshots taken at the same simulated time are
 * byte-identical across runs.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace edgert::watch {

/** One structured event in the flight-recorder ring. */
struct FlightEvent
{
    enum Kind {
        kAdmit,
        kShed,
        kDispatch,
        kComplete,
        kSwapBegin,
        kSwapCommit,
        kSwapRollback,
        kAlert,
        kAnomaly,
    };

    double t_s = 0.0;     //!< simulated time of the event
    Kind kind = kAdmit;
    std::string model;    //!< model name ("" when not model-scoped)
    std::int64_t id = -1; //!< request id (-1 when not request-scoped)
    int batch = 0;        //!< dispatch batch size (0 otherwise)
    int device = -1;      //!< device index (-1 when fleet-wide)
    std::string detail;   //!< free-form context ("" when none)
};

/** Stable wire name of a FlightEvent kind ("admit", "shed", ...). */
const char *flightEventKindName(FlightEvent::Kind kind);

/** Fixed-depth ring buffer of FlightEvents. */
class FlightRecorder
{
  public:
    /** @param depth Events retained; older ones are overwritten. */
    explicit FlightRecorder(int depth);

    void record(const FlightEvent &event);

    /** The retained events, oldest first. */
    std::vector<FlightEvent> snapshot() const;

    /** Events ever recorded (including overwritten ones). */
    std::int64_t totalRecorded() const;

    int depth() const { return depth_; }

  private:
    mutable std::mutex mu_;
    const int depth_;
    std::vector<FlightEvent> ring_; //!< ring_[total_ % depth_] next
    std::int64_t total_ = 0;
};

} // namespace edgert::watch

#endif // EDGERT_WATCH_RECORDER_HH
