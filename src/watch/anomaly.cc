#include "watch/anomaly.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace edgert::watch {

AnomalyDetector::AnomalyDetector(
    const Config &cfg, std::vector<std::string> device_names,
    std::vector<double> device_scores)
    : cfg_(cfg),
      names_(std::move(device_names)),
      scores_(std::move(device_scores))
{
    if (names_.size() != scores_.size())
        fatal("AnomalyDetector: ", names_.size(), " device names vs ",
              scores_.size(), " scores");
    if (cfg.window < 1 || cfg.min_samples < 1)
        fatal("AnomalyDetector window/min_samples must be positive");
}

double
AnomalyDetector::medianOf(const Series &s) const
{
    scratch_ = s.ring;
    std::sort(scratch_.begin(), scratch_.end());
    std::size_t n = scratch_.size();
    if (n % 2 == 1)
        return scratch_[n / 2];
    return 0.5 * (scratch_[n / 2 - 1] + scratch_[n / 2]);
}

std::optional<AnomalyFinding>
AnomalyDetector::observe(double t_s, const std::string &model,
                         int device, double latency_ms)
{
    // An ordering inversion needs two devices; with fewer there is
    // nothing to compare, so skip the per-sample median work.
    if (names_.size() < 2)
        return std::nullopt;
    if (device < 0 || device >= static_cast<int>(names_.size()))
        return std::nullopt;
    Series &s = series_[{model, device}];
    if (static_cast<int>(s.ring.size()) < cfg_.window)
        s.ring.push_back(latency_ms);
    else
        s.ring[static_cast<std::size_t>(
            s.count % cfg_.window)] = latency_ms;
    s.count++;
    if (s.count < cfg_.min_samples)
        return std::nullopt;

    // Compare this device against every other device serving the
    // same model (device index order keeps the scan deterministic).
    double my_median = medianOf(s);
    double my_score = scores_[static_cast<std::size_t>(device)];
    for (int other = 0;
         other < static_cast<int>(names_.size()); other++) {
        if (other == device)
            continue;
        auto it = series_.find({model, other});
        if (it == series_.end() ||
            it->second.count < cfg_.min_samples)
            continue;
        double other_median = medianOf(it->second);
        double other_score =
            scores_[static_cast<std::size_t>(other)];

        // Expected-faster device = higher capability score. An
        // inversion: its median exceeds the weaker device's by more
        // than the margin.
        int strong = my_score > other_score ? device : other;
        int weak = strong == device ? other : device;
        double strong_median =
            strong == device ? my_median : other_median;
        double weak_median =
            strong == device ? other_median : my_median;
        if (scores_[static_cast<std::size_t>(strong)] ==
            scores_[static_cast<std::size_t>(weak)])
            continue; // no expected ordering to invert
        if (strong_median <=
            weak_median * (1.0 + cfg_.margin_pct / 100.0))
            continue;

        auto key = std::make_pair(model,
                                  std::make_pair(weak, strong));
        if (flagged_[key])
            continue;
        flagged_[key] = true;

        AnomalyFinding f;
        f.t_s = t_s;
        f.model = model;
        f.fast_device = weak;
        f.slow_device = strong;
        f.fast_device_name =
            names_[static_cast<std::size_t>(weak)];
        f.slow_device_name =
            names_[static_cast<std::size_t>(strong)];
        f.fast_median_ms = weak_median;
        f.slow_median_ms = strong_median;
        f.margin_pct =
            (strong_median / weak_median - 1.0) * 100.0;
        findings_.push_back(f);
        return f;
    }
    return std::nullopt;
}

} // namespace edgert::watch
