#include "watch/recorder.hh"

#include "common/logging.hh"

namespace edgert::watch {

const char *
flightEventKindName(FlightEvent::Kind kind)
{
    switch (kind) {
      case FlightEvent::kAdmit: return "admit";
      case FlightEvent::kShed: return "shed";
      case FlightEvent::kDispatch: return "dispatch";
      case FlightEvent::kComplete: return "complete";
      case FlightEvent::kSwapBegin: return "swap_begin";
      case FlightEvent::kSwapCommit: return "swap_commit";
      case FlightEvent::kSwapRollback: return "swap_rollback";
      case FlightEvent::kAlert: return "alert";
      case FlightEvent::kAnomaly: return "anomaly";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(int depth) : depth_(depth)
{
    if (depth < 1)
        fatal("FlightRecorder depth must be at least 1 (got ",
              depth, ")");
    ring_.reserve(static_cast<std::size_t>(depth));
}

void
FlightRecorder::record(const FlightEvent &event)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(ring_.size()) < depth_)
        ring_.push_back(event);
    else
        ring_[static_cast<std::size_t>(total_ % depth_)] = event;
    total_++;
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    if (static_cast<int>(ring_.size()) < depth_) {
        out = ring_;
    } else {
        // The slot total_ % depth_ holds the oldest event.
        std::size_t start =
            static_cast<std::size_t>(total_ % depth_);
        for (std::size_t i = 0; i < ring_.size(); i++)
            out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

std::int64_t
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

} // namespace edgert::watch
