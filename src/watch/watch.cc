#include "watch/watch.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace edgert::watch {

namespace {

/** Zero-padded incident sequence number ("000", "001", ...). */
std::string
incidentSeq(std::size_t n)
{
    std::string s = std::to_string(n);
    while (s.size() < 3)
        s.insert(s.begin(), '0');
    return s;
}

void
writeFlightEvent(std::ostream &os, const FlightEvent &e)
{
    os << "{\"t_s\": " << jsonNumber(e.t_s) << ", \"kind\": \""
       << flightEventKindName(e.kind) << "\", \"model\": \""
       << jsonEscape(e.model) << "\", \"id\": " << e.id
       << ", \"batch\": " << e.batch
       << ", \"device\": " << e.device << ", \"detail\": \""
       << jsonEscape(e.detail) << "\"}";
}

void
writeAlert(std::ostream &os, const Alert &a)
{
    os << "{\"t_s\": " << jsonNumber(a.t_s) << ", \"model\": \""
       << jsonEscape(a.model) << "\", \"tier\": \""
       << alertTierName(a.tier)
       << "\", \"fast_burn\": " << jsonNumber(a.burn.fast)
       << ", \"mid_burn\": " << jsonNumber(a.burn.mid)
       << ", \"slow_burn\": " << jsonNumber(a.burn.slow)
       << ", \"window_total\": " << a.window_total << "}";
}

void
writeAnomaly(std::ostream &os, const AnomalyFinding &f)
{
    os << "{\"t_s\": " << jsonNumber(f.t_s) << ", \"model\": \""
       << jsonEscape(f.model)
       << "\", \"fast_device\": " << f.fast_device
       << ", \"fast_device_name\": \""
       << jsonEscape(f.fast_device_name)
       << "\", \"slow_device\": " << f.slow_device
       << ", \"slow_device_name\": \""
       << jsonEscape(f.slow_device_name)
       << "\", \"fast_median_ms\": " << jsonNumber(f.fast_median_ms)
       << ", \"slow_median_ms\": " << jsonNumber(f.slow_median_ms)
       << ", \"margin_pct\": " << jsonNumber(f.margin_pct) << "}";
}

} // namespace

EdgeWatch::EdgeWatch(const WatchConfig &cfg,
                     std::vector<std::string> models,
                     std::vector<double> model_slo_ms,
                     std::vector<std::string> device_names,
                     std::vector<double> device_scores)
    : cfg_(cfg),
      models_(std::move(models)),
      slo_ms_(std::move(model_slo_ms)),
      device_names_(device_names),
      recorder_(cfg.flight_recorder_depth),
      anomaly_(
          AnomalyDetector::Config{cfg.anomaly_window,
                                  cfg.anomaly_min_samples,
                                  cfg.anomaly_margin_pct},
          std::move(device_names), std::move(device_scores)),
      stages_(models_.size())
{
    if (models_.size() != slo_ms_.size())
        fatal("EdgeWatch: ", models_.size(), " models vs ",
              slo_ms_.size(), " SLOs");
    SloTracker::Config tc;
    tc.objective_pct = cfg.slo_objective_pct;
    tc.page_burn = cfg.page_burn;
    tc.warn_burn = cfg.warn_burn;
    tc.fast_window_s = cfg.fast_window_s;
    tc.mid_window_s = cfg.mid_window_s;
    tc.slow_window_s = cfg.slow_window_s;
    for (const std::string &m : models_)
        trackers_.emplace_back(m, tc);
    summary_.enabled = true;
}

const std::string &
EdgeWatch::modelName(int model) const
{
    if (model < 0 || model >= static_cast<int>(models_.size()))
        fatal("EdgeWatch: model index ", model, " out of range");
    return models_[static_cast<std::size_t>(model)];
}

void
EdgeWatch::onAdmit(double t_s, int model, std::int64_t id)
{
    summary_.admitted++;
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kAdmit;
    e.model = modelName(model);
    e.id = id;
    recorder_.record(e);
}

void
EdgeWatch::onShed(double t_s, int model, std::int64_t id)
{
    summary_.shed++;
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kShed;
    e.model = modelName(model);
    e.id = id;
    recorder_.record(e);
    // A shed consumed error budget: the request got no service.
    handleAlert(trackers_[static_cast<std::size_t>(model)].observe(
        t_s, true));
}

void
EdgeWatch::onDispatch(double t_s, int model, int batch, int device,
                      std::int64_t first_id)
{
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kDispatch;
    e.model = modelName(model);
    e.id = first_id;
    e.batch = batch;
    e.device = device;
    recorder_.record(e);
}

void
EdgeWatch::onComplete(const RequestTrace &rt)
{
    summary_.completed++;
    const std::string &name = modelName(rt.model);
    bool bad =
        rt.totalMs() > slo_ms_[static_cast<std::size_t>(rt.model)];

    FlightEvent e;
    e.t_s = rt.done_s;
    e.kind = FlightEvent::kComplete;
    e.model = name;
    e.id = rt.id;
    e.batch = rt.batch;
    e.device = rt.device;
    if (bad)
        e.detail = "slo_miss";
    recorder_.record(e);

    StageSums &st = stages_[static_cast<std::size_t>(rt.model)];
    st.n++;
    st.queue += rt.queueMs();
    st.dispatch_wait += rt.dispatchWaitMs();
    st.upload += rt.uploadMs();
    st.compute += rt.computeMs();
    st.download += rt.downloadMs();
    st.total += rt.totalMs();

    // Slow-request reservoir: worst slow_trace_count by total
    // latency, slowest first, ties to the lower request id.
    auto &slow = summary_.slow_requests;
    auto slower = [](const RequestTrace &a, const RequestTrace &b) {
        if (a.totalMs() != b.totalMs())
            return a.totalMs() > b.totalMs();
        return a.id < b.id;
    };
    auto pos =
        std::lower_bound(slow.begin(), slow.end(), rt, slower);
    if (pos != slow.end() ||
        static_cast<int>(slow.size()) < cfg_.slow_trace_count)
        slow.insert(pos, rt);
    if (static_cast<int>(slow.size()) > cfg_.slow_trace_count)
        slow.pop_back();

    handleAlert(trackers_[static_cast<std::size_t>(rt.model)]
                    .observe(rt.done_s, bad));

    auto finding =
        anomaly_.observe(rt.done_s, name, rt.device, rt.totalMs());
    if (finding) {
        summary_.anomalies++;
        summary_.anomaly_findings.push_back(*finding);
        obs::MetricRegistry::global()
            .counter("watch.anomaly.flagged", {{"model", name}})
            .add();
        FlightEvent fe;
        fe.t_s = finding->t_s;
        fe.kind = FlightEvent::kAnomaly;
        fe.model = name;
        fe.device = finding->slow_device;
        fe.detail = finding->slow_device_name + " slower than " +
                    finding->fast_device_name;
        recorder_.record(fe);
    }
}

void
EdgeWatch::onSwapBegin(double t_s, int model,
                       std::uint64_t build_id)
{
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kSwapBegin;
    e.model = modelName(model);
    e.detail = "build " + std::to_string(build_id);
    recorder_.record(e);
}

void
EdgeWatch::onSwapCommit(double t_s, int model,
                        std::uint64_t build_id)
{
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kSwapCommit;
    e.model = modelName(model);
    e.detail = "build " + std::to_string(build_id);
    recorder_.record(e);
}

void
EdgeWatch::onSwapRollback(double t_s, int model,
                          const std::string &reason)
{
    const std::string &name = modelName(model);
    FlightEvent e;
    e.t_s = t_s;
    e.kind = FlightEvent::kSwapRollback;
    e.model = name;
    e.detail = reason;
    recorder_.record(e);
    dumpIncident(t_s, "swap_rollback", name, reason);
}

void
EdgeWatch::handleAlert(const Alert &a)
{
    if (a.t_s < 0.0)
        return; // no tier transition
    switch (a.tier) {
      case Alert::kPage:
        summary_.page_alerts++;
        if (summary_.first_page_s < 0.0)
            summary_.first_page_s = a.t_s;
        break;
      case Alert::kWarn: summary_.warn_alerts++; break;
      case Alert::kNone: summary_.clear_alerts++; break;
    }
    summary_.alerts.push_back(a);
    obs::MetricRegistry::global()
        .counter("watch.alert.fired",
                 {{"model", a.model},
                  {"tier", alertTierName(a.tier)}})
        .add();

    FlightEvent e;
    e.t_s = a.t_s;
    e.kind = FlightEvent::kAlert;
    e.model = a.model;
    e.detail = alertTierName(a.tier);
    recorder_.record(e);

    if (a.tier == Alert::kPage) {
        std::ostringstream detail;
        detail << "burn fast " << jsonNumber(a.burn.fast)
               << " mid " << jsonNumber(a.burn.mid) << " slow "
               << jsonNumber(a.burn.slow);
        dumpIncident(a.t_s, "page_alert", a.model, detail.str());
        warn("EdgeWatch: page alert for '", a.model,
             "' at t=", a.t_s, " s (fast burn ", a.burn.fast,
             ", mid burn ", a.burn.mid, ")");
    }
}

void
EdgeWatch::dumpIncident(double t_s, const std::string &reason,
                        const std::string &model,
                        const std::string &detail)
{
    if (static_cast<int>(incidents_.size()) >= cfg_.max_incidents) {
        summary_.incidents++; // counted, not dumped
        return;
    }
    std::ostringstream os;
    os << "{\n";
    os << "  \"incident\": " << incidents_.size() << ",\n";
    os << "  \"reason\": \"" << jsonEscape(reason) << "\",\n";
    os << "  \"t_s\": " << jsonNumber(t_s) << ",\n";
    os << "  \"model\": \"" << jsonEscape(model) << "\",\n";
    os << "  \"detail\": \"" << jsonEscape(detail) << "\",\n";
    os << "  \"recorder\": {\"depth\": " << recorder_.depth()
       << ", \"recorded\": " << recorder_.totalRecorded()
       << "},\n";
    os << "  \"events\": [\n";
    std::vector<FlightEvent> events = recorder_.snapshot();
    for (std::size_t i = 0; i < events.size(); i++) {
        os << "    ";
        writeFlightEvent(os, events[i]);
        os << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";

    std::string fname = incidentSeq(incidents_.size()) + "-" +
                        reason + ".json";
    incidents_.emplace_back(fname, os.str());
    summary_.incidents++;
    if (!cfg_.incident_prefix.empty()) {
        std::string path = cfg_.incident_prefix + fname;
        std::ofstream f(path);
        if (!f)
            fatal("EdgeWatch: cannot write incident '", path, "'");
        f << incidents_.back().second;
    }
}

void
EdgeWatch::finish(double end_s)
{
    for (std::size_t m = 0; m < models_.size(); m++) {
        SloTracker &tr = trackers_[m];
        ModelWatchStats ms;
        ms.model = models_[m];
        ms.tier = tr.tier();
        ms.burn = tr.burnRates();
        ms.observed = tr.total();
        ms.bad = tr.bad();
        const StageSums &st = stages_[m];
        if (st.n > 0) {
            double n = static_cast<double>(st.n);
            ms.queue_mean_ms = st.queue / n;
            ms.dispatch_wait_mean_ms = st.dispatch_wait / n;
            ms.upload_mean_ms = st.upload / n;
            ms.compute_mean_ms = st.compute / n;
            ms.download_mean_ms = st.download / n;
            ms.total_mean_ms = st.total / n;
        }
        summary_.models.push_back(std::move(ms));
    }
    (void)end_s;
    finished_ = true;
}

std::string
EdgeWatch::reportJson() const
{
    if (!finished_)
        fatal("EdgeWatch::reportJson before finish()");
    std::ostringstream os;
    os << "{\n";
    os << "  \"config\": {\"slo_objective_pct\": "
       << jsonNumber(cfg_.slo_objective_pct)
       << ", \"page_burn\": " << jsonNumber(cfg_.page_burn)
       << ", \"warn_burn\": " << jsonNumber(cfg_.warn_burn)
       << ", \"fast_window_s\": " << jsonNumber(cfg_.fast_window_s)
       << ", \"mid_window_s\": " << jsonNumber(cfg_.mid_window_s)
       << ", \"slow_window_s\": " << jsonNumber(cfg_.slow_window_s)
       << ", \"flight_recorder_depth\": "
       << cfg_.flight_recorder_depth << "},\n";
    os << "  \"totals\": {\"admitted\": " << summary_.admitted
       << ", \"shed\": " << summary_.shed
       << ", \"completed\": " << summary_.completed
       << ", \"page_alerts\": " << summary_.page_alerts
       << ", \"warn_alerts\": " << summary_.warn_alerts
       << ", \"clear_alerts\": " << summary_.clear_alerts
       << ", \"anomalies\": " << summary_.anomalies
       << ", \"incidents\": " << summary_.incidents
       << ", \"first_page_s\": "
       << jsonNumber(summary_.first_page_s) << "},\n";

    os << "  \"models\": [\n";
    for (std::size_t i = 0; i < summary_.models.size(); i++) {
        const ModelWatchStats &m = summary_.models[i];
        os << "    {\"model\": \"" << jsonEscape(m.model)
           << "\", \"tier\": \"" << alertTierName(m.tier)
           << "\", \"fast_burn\": " << jsonNumber(m.burn.fast)
           << ", \"mid_burn\": " << jsonNumber(m.burn.mid)
           << ", \"slow_burn\": " << jsonNumber(m.burn.slow)
           << ", \"observed\": " << m.observed
           << ", \"bad\": " << m.bad
           << ", \"stage_mean_ms\": {\"queue\": "
           << jsonNumber(m.queue_mean_ms) << ", \"dispatch_wait\": "
           << jsonNumber(m.dispatch_wait_mean_ms)
           << ", \"upload\": " << jsonNumber(m.upload_mean_ms)
           << ", \"compute\": " << jsonNumber(m.compute_mean_ms)
           << ", \"download\": " << jsonNumber(m.download_mean_ms)
           << ", \"total\": " << jsonNumber(m.total_mean_ms)
           << "}}"
           << (i + 1 < summary_.models.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"alerts\": [\n";
    for (std::size_t i = 0; i < summary_.alerts.size(); i++) {
        os << "    ";
        writeAlert(os, summary_.alerts[i]);
        os << (i + 1 < summary_.alerts.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"anomalies\": [\n";
    for (std::size_t i = 0;
         i < summary_.anomaly_findings.size(); i++) {
        os << "    ";
        writeAnomaly(os, summary_.anomaly_findings[i]);
        os << (i + 1 < summary_.anomaly_findings.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";

    os << "  \"slow_requests\": [\n";
    for (std::size_t i = 0; i < summary_.slow_requests.size();
         i++) {
        const RequestTrace &r = summary_.slow_requests[i];
        os << "    {\"id\": " << r.id << ", \"model\": \""
           << jsonEscape(modelName(r.model))
           << "\", \"device\": " << r.device
           << ", \"batch\": " << r.batch
           << ", \"arrival_s\": " << jsonNumber(r.arrival_s)
           << ", \"queue_ms\": " << jsonNumber(r.queueMs())
           << ", \"dispatch_wait_ms\": "
           << jsonNumber(r.dispatchWaitMs())
           << ", \"upload_ms\": " << jsonNumber(r.uploadMs())
           << ", \"compute_ms\": " << jsonNumber(r.computeMs())
           << ", \"download_ms\": " << jsonNumber(r.downloadMs())
           << ", \"total_ms\": " << jsonNumber(r.totalMs()) << "}"
           << (i + 1 < summary_.slow_requests.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";

    os << "  \"recorder\": {\"depth\": " << recorder_.depth()
       << ", \"recorded\": " << recorder_.totalRecorded()
       << ", \"incident_files\": [";
    for (std::size_t i = 0; i < incidents_.size(); i++)
        os << (i ? ", " : "") << "\""
           << jsonEscape(incidents_[i].first) << "\"";
    os << "]}\n";
    os << "}\n";
    return os.str();
}

void
EdgeWatch::writeFiles() const
{
    if (!cfg_.out_path.empty()) {
        std::ofstream f(cfg_.out_path);
        if (!f)
            fatal("EdgeWatch: cannot write report '", cfg_.out_path,
                  "'");
        f << reportJson();
    }
    // Incident files were written as they were dumped.
}

} // namespace edgert::watch
