#ifndef EDGERT_WATCH_ANOMALY_HH
#define EDGERT_WATCH_ANOMALY_HH

/**
 * @file
 * Latency-ordering anomaly detection across the device fleet.
 *
 * The paper's findings F4/F5 are the motivation: some engines run
 * genuinely *faster* on the weaker Xavier NX than on the AGX — an
 * inversion of the ordering the devices' raw capability predicts.
 * The detector keeps a windowed median of observed per-request
 * latency for every (model, device) pair; when the device with the
 * higher capability score (peak FLOPS) shows a median at least
 * `margin_pct` *slower* than a weaker device on the same model —
 * with both medians resting on enough samples — it flags one
 * AnomalyFinding per (model, device-pair) for the run.
 *
 * A flagged inversion is not necessarily a fault (the paper shows
 * real engines doing this), which is exactly why it is surfaced as
 * an observability finding rather than an error: a fleet scheduler
 * that assumes capability-ordered latency is leaving throughput on
 * the table.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace edgert::watch {

/** One detected latency-ordering inversion. */
struct AnomalyFinding
{
    double t_s = 0.0;       //!< time the inversion was confirmed
    std::string model;
    int fast_device = -1;   //!< weaker device that is winning
    int slow_device = -1;   //!< stronger device that is losing
    std::string fast_device_name;
    std::string slow_device_name;
    double fast_median_ms = 0.0; //!< weaker device's median
    double slow_median_ms = 0.0; //!< stronger device's median
    double margin_pct = 0.0;     //!< observed margin, percent
};

/** Windowed-median latency-inversion detector. */
class AnomalyDetector
{
  public:
    struct Config
    {
        int window = 64;        //!< latencies kept per (model,dev)
        int min_samples = 16;   //!< medians need this many samples
        double margin_pct = 10.0; //!< inversion must exceed this
    };

    /**
     * @param cfg           Detector knobs.
     * @param device_names  Fleet device names, index order.
     * @param device_scores Capability score per device (higher =
     *        expected faster; peak FLOPS is the natural choice).
     */
    AnomalyDetector(const Config &cfg,
                    std::vector<std::string> device_names,
                    std::vector<double> device_scores);

    /**
     * Record one completed request's latency; returns a finding the
     * first time each (model, device-pair) inversion is confirmed.
     */
    std::optional<AnomalyFinding> observe(double t_s,
                                          const std::string &model,
                                          int device,
                                          double latency_ms);

    const std::vector<AnomalyFinding> &findings() const
    {
        return findings_;
    }

  private:
    struct Series
    {
        std::vector<double> ring; //!< last `window` latencies
        std::int64_t count = 0;
    };

    double medianOf(const Series &s) const;

    Config cfg_;
    std::vector<std::string> names_;
    std::vector<double> scores_;
    std::map<std::pair<std::string, int>, Series> series_;
    std::map<std::pair<std::string, std::pair<int, int>>, bool>
        flagged_;
    std::vector<AnomalyFinding> findings_;
    mutable std::vector<double> scratch_; //!< medianOf sort buffer
};

} // namespace edgert::watch

#endif // EDGERT_WATCH_ANOMALY_HH
