#ifndef EDGERT_WATCH_ROLLUP_HH
#define EDGERT_WATCH_ROLLUP_HH

/**
 * @file
 * AlertRollup — per-node burn-rate alerts folded into one
 * fleet-wide view.
 *
 * A fleet runs one SloTracker per node; paging a human per node
 * does not scale to hundreds of nodes, so the rollup aggregates the
 * edge-triggered tier transitions into fleet totals and per-group
 * breakdowns (which device pool is burning?) while keeping the raw
 * transition log for the report. Observation order must be
 * time-ordered (the fleet control loop already is), making every
 * derived figure deterministic.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "watch/slo.hh"

namespace edgert::watch {

/** One per-node tier transition in the fleet-wide log. */
struct NodeAlert
{
    double t_s = 0.0;
    int node = -1;
    std::string group;             //!< device pool name
    Alert::Tier tier = Alert::kNone; //!< kNone = cleared
    BurnRates burn;
};

/** Per-group alert totals. */
struct GroupAlertCounts
{
    std::string group;
    std::int64_t pages = 0;
    std::int64_t warns = 0;
    std::int64_t clears = 0;
};

/** Fleet-wide aggregation of per-node SLO alerts. */
class AlertRollup
{
  public:
    /** Record one tier transition (t_s non-decreasing). */
    void observe(double t_s, int node, const std::string &group,
                 Alert::Tier tier, const BurnRates &burn);

    std::int64_t pages() const { return pages_; }
    std::int64_t warns() const { return warns_; }
    std::int64_t clears() const { return clears_; }

    /** Time of the first page transition; -1 when none paged. */
    double firstPageSeconds() const { return first_page_s_; }

    /** Raw transition log, observation order. */
    const std::vector<NodeAlert> &alerts() const { return alerts_; }

    /** Per-group totals, sorted by group name. */
    std::vector<GroupAlertCounts> byGroup() const;

  private:
    std::vector<NodeAlert> alerts_;
    std::map<std::string, GroupAlertCounts> groups_;
    std::int64_t pages_ = 0;
    std::int64_t warns_ = 0;
    std::int64_t clears_ = 0;
    double first_page_s_ = -1.0;
};

} // namespace edgert::watch

#endif // EDGERT_WATCH_ROLLUP_HH
